//! Streaming quickstart: push-mode mining against `mda-server`.
//!
//! Run with `cargo run --example stream_quickstart` to host an
//! in-process server on a loopback port, or pass the address of a
//! running server (`cargo run --example stream_quickstart -- 127.0.0.1:7171`)
//! to use this example as a protocol driver.
//!
//! Two connections: a *pusher* opens a stream and feeds it points; a
//! *subscriber* joins live and consumes one event per accepted point,
//! checking epoch contiguity (the gap-detection contract) and verifying
//! the served statistics bitwise against the batch z-norm over the same
//! window (exits non-zero on any mismatch). Finishes with a local
//! replay of the same recording through `mda-streaming`, demonstrating
//! that replays are byte-stable.

use std::net::SocketAddr;

use memristor_distance_accelerator::distance::znorm;
use memristor_distance_accelerator::server::{Client, Server, ServerConfig, StreamEventState};
use memristor_distance_accelerator::streaming::{replay, ReplayConfig, ReplaySpeed, StreamConfig};

const WINDOW: usize = 16;

fn point(i: usize) -> f64 {
    (i as f64 * 0.29).sin() * 2.0 + (i as f64 * 0.011).cos()
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let addr_arg = std::env::args().nth(1);
    let server = match addr_arg {
        Some(_) => None,
        None => Some(Server::start(ServerConfig::default())?),
    };
    let addr: SocketAddr = match (&server, &addr_arg) {
        (Some(s), _) => s.local_addr(),
        (None, Some(a)) => a.parse()?,
        (None, None) => unreachable!(),
    };
    println!(
        "stream_quickstart -> {addr} ({})",
        if server.is_some() {
            "in-process"
        } else {
            "external"
        }
    );

    // The pusher opens a push-mode stream: a sliding window of WINDOW
    // points, a 2-wide Sakoe-Chiba band, and the query the online
    // matcher hunts for.
    let query: Vec<f64> = (0..WINDOW).map(point).collect();
    let mut pusher = Client::connect(addr)?;
    let opened = pusher.open_stream(WINDOW, 2, &query, None)?;
    println!(
        "opened stream {} on shard {} (burn-in {} points)",
        opened.stream_id, opened.shard, opened.burn_in
    );

    // The subscriber joins live before any data flows: epoch 0, cold.
    let mut subscriber = Client::connect(addr)?;
    let sub = subscriber.subscribe(opened.stream_id)?;
    println!("subscribed at epoch {} (warm: {})", sub.epoch, sub.warm);

    // Push the recording in two batches; every accepted point fans one
    // event out to the subscriber.
    let recording: Vec<f64> = (0..3 * WINDOW).map(point).collect();
    let (head, tail) = recording.split_at(WINDOW);
    for batch in [head, tail] {
        let pushed = pusher.push_points(opened.stream_id, batch)?;
        println!(
            "pushed {} points, stream now at epoch {}",
            pushed.accepted, pushed.epoch
        );
    }

    // Consume one event per point. Epochs must be contiguous (that is
    // how subscribers detect gaps), frames must warm exactly until the
    // window fills, and ready statistics must be bitwise the batch
    // z-norm over the same window.
    let mut expected_epoch = sub.epoch;
    for _ in 0..recording.len() {
        let event = subscriber.next_event()?;
        expected_epoch += 1;
        if event.epoch != expected_epoch {
            return Err(format!("gap: event epoch {} != {expected_epoch}", event.epoch).into());
        }
        match event.state {
            StreamEventState::Warming { seen, burn_in } => {
                println!("epoch {:>2}: warming {seen}/{burn_in}", event.epoch);
            }
            StreamEventState::Ready {
                mean,
                std_dev,
                decision,
                bound,
                ..
            } => {
                let idx = event.epoch as usize;
                let window = &recording[idx - WINDOW..idx];
                if mean.to_bits() != znorm::mean(window).to_bits()
                    || std_dev.to_bits() != znorm::std_dev(window).to_bits()
                {
                    return Err(format!("epoch {idx}: stats diverge from batch z-norm").into());
                }
                println!(
                    "epoch {:>2}: mean {mean:>7.4} std {std_dev:>6.4} cascade {decision} (bound {bound:.4})",
                    event.epoch
                );
            }
        }
    }
    println!(
        "all {} events: contiguous, bitwise batch-equal",
        recording.len()
    );

    let pushed = pusher.close_stream(opened.stream_id)?;
    println!("closed stream after {pushed} points");
    if let Some(server) = server {
        server.shutdown_and_join();
    }

    // The same recording replayed locally, twice, at 8x: byte-identical.
    let config = StreamConfig {
        window: WINDOW,
        band: 2,
        query,
        threshold: None,
    };
    let rc = ReplayConfig {
        period_ns: 1_000_000,
        speed: ReplaySpeed::times(8)?,
    };
    let first = replay(&config, &recording, &rc)?;
    let second = replay(&config, &recording, &rc)?;
    if first.to_text() != second.to_text() {
        return Err("replays of one recording rendered differently".into());
    }
    println!(
        "replay x2: fingerprint {:016x}, byte-stable, virtual elapsed {} ms",
        first.fingerprint,
        first.virtual_elapsed_ns / 1_000_000
    );
    println!("done");
    Ok(())
}
