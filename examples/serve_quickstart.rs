//! Serving quickstart: query `mda-server` over the wire protocol.
//!
//! Run with `cargo run --example serve_quickstart` to host an in-process
//! server on a loopback port, or pass the address of a running server
//! (`cargo run --example serve_quickstart -- 127.0.0.1:7171`) to use this
//! example as a protocol driver — CI does exactly that against the
//! `mda-server` binary.
//!
//! Exercises ping, all six distance functions, and a kNN query, and
//! verifies the served distances bitwise against direct library calls
//! (exits non-zero on any mismatch).

use std::net::SocketAddr;

use memristor_distance_accelerator::distance::{boxed_distance, DistanceKind};
use memristor_distance_accelerator::server::protocol::TrainInstance;
use memristor_distance_accelerator::server::{Client, QueryOptions, Server, ServerConfig};

fn series(len: usize, seed: usize) -> Vec<f64> {
    (0..len)
        .map(|i| ((i + 17 * seed) as f64 * 0.31).sin() * 2.0 + (seed as f64 * 0.7).cos())
        .collect()
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Attach to a running server if an address was given, else host one
    // in this process on an ephemeral loopback port.
    let addr_arg = std::env::args().nth(1);
    let server = match addr_arg {
        Some(_) => None,
        None => Some(Server::start(ServerConfig::default())?),
    };
    let addr: SocketAddr = match (&server, &addr_arg) {
        (Some(s), _) => s.local_addr(),
        (None, Some(a)) => a.parse()?,
        (None, None) => unreachable!(),
    };
    println!(
        "serve_quickstart -> {addr} ({})",
        if server.is_some() {
            "in-process"
        } else {
            "external"
        }
    );

    let mut client = Client::connect(addr)?;
    client.ping()?;
    println!("ping ok");

    // All six functions through the wire, checked bitwise against the
    // digital reference the server itself batches over.
    let p = series(32, 1);
    let q = series(32, 2);
    println!("function | served value | bitwise-identical to direct call");
    println!("---------+--------------+---------------------------------");
    for kind in DistanceKind::ALL {
        let served = client
            .query_distance(kind, &p, &q, &QueryOptions::new())?
            .value;
        let direct = boxed_distance(kind).evaluate(&p, &q)?;
        if served.to_bits() != direct.to_bits() {
            return Err(format!("{kind}: served {served:e} != direct {direct:e}").into());
        }
        println!("{kind:>8} | {served:>12.6} | yes");
    }

    // A kNN classification: the training set travels with the query, the
    // server decomposes it into one coalesced batch of pairwise items.
    let train: Vec<TrainInstance> = (0..8)
        .map(|i| TrainInstance {
            label: i % 2,
            series: series(32, 10 + i),
        })
        .collect();
    let outcome = client
        .query_knn(DistanceKind::Dtw, 3, &p, &train, &QueryOptions::new())?
        .value;
    println!(
        "kNN (DTW, k=3): label {} (score {:.6}, nearest train index {})",
        outcome.label, outcome.score, outcome.nearest_index
    );

    if let Some(server) = server {
        server.shutdown_and_join();
    }
    println!("done");
    Ok(())
}
