//! Frequency pattern mining (motif discovery) — the third data-mining task
//! of the paper's Section 1.
//!
//! Finds the most similar pair of non-overlapping windows in a sensor
//! stream with lower-bound-pruned DTW, then confirms the motif distance on
//! the accelerator.
//!
//! Run with `cargo run --release --example motif_mining`.

use memristor_distance_accelerator::core::{AcceleratorConfig, DistanceAccelerator};
use memristor_distance_accelerator::distance::mining::MotifDiscovery;
use memristor_distance_accelerator::distance::DistanceKind;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A day of "power draw": a noisy baseline (deterministic pseudo-noise,
    // so no two background windows repeat) with two occurrences of the same
    // appliance cycle.
    let len = 400;
    let window = 20;
    let mut state = 0x5eed_u64;
    let mut noise = move || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        ((state >> 33) as f64 / (1u64 << 31) as f64) - 1.0
    };
    let mut stream: Vec<f64> = (0..len)
        .map(|i| 1.0 + (i as f64 * 0.013).sin() * 0.6 + noise() * 0.4)
        .collect();
    let cycle: Vec<f64> = (0..window)
        .map(|i| 4.0 * (-((i as f64 - 10.0) / 4.0).powi(2)).exp())
        .collect();
    stream[60..60 + window].copy_from_slice(&cycle);
    stream[290..290 + window].copy_from_slice(&cycle);

    let discovery = MotifDiscovery::new(window, 2);
    let (motif, stats) = discovery.find_with_stats(&stream)?;
    println!(
        "motif: windows at {} and {} (DTW distance {:.3})",
        motif.first, motif.second, motif.distance
    );
    println!(
        "pruning: {} of {} pairs skipped by lower bounds ({:.0}%), {} full DTWs",
        stats.pruned,
        stats.pairs,
        stats.pruned as f64 / stats.pairs as f64 * 100.0,
        stats.full_computations
    );
    assert_eq!((motif.first, motif.second), (60, 290));

    // Confirm the motif distance on the accelerator.
    let mut acc = DistanceAccelerator::new(AcceleratorConfig::paper_defaults());
    acc.configure(DistanceKind::Dtw)?;
    let a = &stream[motif.first..motif.first + window];
    let b = &stream[motif.second..motif.second + window];
    let outcome = acc.compute(a, b)?;
    println!(
        "accelerator confirms: analog DTW {:.3} (digital {:.3}) in {:.2} ns",
        outcome.value,
        outcome.reference,
        outcome.convergence_time_s * 1e9
    );
    Ok(())
}
