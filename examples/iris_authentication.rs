//! Iris authentication with Hamming distance — the paper's healthcare/
//! biometrics motivating application (Section 1, citing Vandal & Savvides'
//! CUDA iris template matching).
//!
//! Iris codes are binary templates compared by Hamming distance; a match is
//! declared below a decision threshold. This example encodes templates as
//! ±1 series, authenticates through the accelerator, and demonstrates the
//! early-determination read-out on the candidate gallery.
//!
//! Run with `cargo run --example iris_authentication`.

use memristor_distance_accelerator::core::accelerator::FunctionParams;
use memristor_distance_accelerator::core::early::early_determination;
use memristor_distance_accelerator::core::{AcceleratorConfig, DistanceAccelerator};
use memristor_distance_accelerator::distance::{DistanceKind, Hamming};

/// A deterministic pseudo-random ±1 iris template.
fn template(id: u64, bits: usize) -> Vec<f64> {
    let mut state = id
        .wrapping_mul(6364136223846793005)
        .wrapping_add(1442695040888963407);
    (0..bits)
        .map(|_| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            if (state >> 62) & 1 == 1 {
                1.0
            } else {
                -1.0
            }
        })
        .collect()
}

/// Flips `count` bits of a template (sensor noise between captures).
fn with_noise(t: &[f64], count: usize) -> Vec<f64> {
    let mut v = t.to_vec();
    for k in 0..count {
        let idx = (k * 7 + 3) % v.len();
        v[idx] = -v[idx];
    }
    v
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let bits = 32;
    let enrolled = template(42, bits);
    // A fresh capture of the same iris (3 flipped bits) and two impostors.
    let genuine = with_noise(&enrolled, 3);
    let impostor_a = template(7, bits);
    let impostor_b = template(99, bits);

    let decision_threshold = bits as f64 * 0.25; // accept below 25 % HD

    let hamming = Hamming::new(0.5);
    let mut accelerator = DistanceAccelerator::new(AcceleratorConfig::paper_defaults());
    accelerator.configure_with(
        DistanceKind::Hamming,
        FunctionParams {
            threshold: 0.5,
            ..FunctionParams::default()
        },
    )?;

    println!("capture    | digital HD | analog HD | decision");
    println!("-----------+------------+-----------+---------");
    for (label, capture) in [
        ("genuine   ", &genuine),
        ("impostor A", &impostor_a),
        ("impostor B", &impostor_b),
    ] {
        let digital = hamming.distance(&enrolled, capture)?;
        let outcome = accelerator.compute(&enrolled, capture)?;
        let accept = outcome.value < decision_threshold;
        println!(
            "{label} | {digital:>10.0} | {:>9.1} | {}",
            outcome.value,
            if accept { "ACCEPT" } else { "reject" }
        );
    }

    // Identification mode: find the nearest gallery template, reading the
    // analog outputs at one tenth of convergence (Section 3.3's early
    // determination).
    let gallery = vec![impostor_a.clone(), genuine.clone(), impostor_b.clone()];
    let decision = early_determination(&accelerator, &enrolled, &gallery, 0.1)?;
    println!(
        "\nidentification: early winner = gallery[{}] (expected 1), consistent with convergence: {}, read-out speedup {:.0}x",
        decision.early_winner,
        decision.consistent(),
        decision.speedup
    );
    Ok(())
}
