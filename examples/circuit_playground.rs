//! Device-level playground: use `mda-spice` directly to inspect the analog
//! primitives the accelerator is built from, then export a netlist as a
//! SPICE deck for cross-checking in ngspice.
//!
//! Run with `cargo run --release --example circuit_playground`.

use memristor_distance_accelerator::core::pe::common::{abs_module, Rails};
use memristor_distance_accelerator::spice::{
    dc_sweep, log_sweep, run_ac, to_spice_deck, Netlist, OpampModel, TransientSpec, Waveform,
};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. The absolution module's transfer curve: sweep P with Q at 0 and
    //    watch the output trace |P|.
    let mut net = Netlist::new();
    let rails = Rails::install(&mut net, 1.0, 10.0e-3, 2.0e-3, 100.0e3);
    let p = net.node("p");
    let p_src = net.voltage_source(p, Netlist::GROUND, Waveform::Dc(0.0));
    let q = net.node("q");
    net.voltage_source(q, Netlist::GROUND, Waveform::Dc(0.0));
    let out = abs_module(&mut net, &rails, p, q, 1.0);

    println!("absolution module transfer curve (Q = 0):");
    let values: Vec<f64> = (-4..=4).map(|i| i as f64 * 0.1).collect();
    let sweep = dc_sweep(&net, p_src, &values)?;
    for (v, sol) in values.iter().zip(&sweep) {
        println!("  P = {v:>5.2} V -> |P - Q| = {:>6.4} V", sol[out.index()]);
    }

    // 2. Transient: step the input and watch the module settle.
    let mut net2 = Netlist::new();
    let rails2 = Rails::install(&mut net2, 1.0, 10.0e-3, 2.0e-3, 100.0e3);
    let p2 = net2.node("p");
    net2.voltage_source(p2, Netlist::GROUND, Waveform::step(0.3));
    let q2 = net2.node("q");
    net2.voltage_source(q2, Netlist::GROUND, Waveform::Dc(0.1));
    let out2 = abs_module(&mut net2, &rails2, p2, q2, 1.0);
    net2.add_parasitic_capacitance(20.0e-15); // Table 1
    let result = net2.transient(&TransientSpec::new(2.0e-9, 1.0e-12))?;
    let trace = result.voltage(out2);
    let tconv = trace.convergence_time(0.001).unwrap_or(0.0);
    println!(
        "\ntransient: |0.3 - 0.1| settles to {:.4} V in {:.1} ps (0.1% criterion)",
        trace.last(),
        tconv * 1.0e12
    );

    // 3. AC: closed-loop bandwidth of a unity buffer built from the Table 1
    //    op-amp.
    let mut net3 = Netlist::new();
    let inp = net3.node("in");
    let src = net3.voltage_source(inp, Netlist::GROUND, Waveform::Dc(0.0));
    let buf = net3.buffer(inp, OpampModel::table1());
    net3.resistor(buf, Netlist::GROUND, 1.0e6);
    let ac = run_ac(&net3, src, &log_sweep(1.0e6, 1.0e12, 10))?;
    println!(
        "\nunity buffer: |H| = {:.4} at 1 MHz, {:.4} at 1 THz",
        ac.magnitude(buf)[0],
        ac.magnitude(buf).last().copied().unwrap_or(0.0)
    );

    // 4. Export the absolution module as a SPICE deck.
    let deck = to_spice_deck(&net, "mda absolution module");
    println!(
        "\nSPICE deck ({} lines) — first 10:\n",
        deck.lines().count()
    );
    for line in deck.lines().take(10) {
        println!("  {line}");
    }
    Ok(())
}
