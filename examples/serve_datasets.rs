//! Resident-dataset quickstart: upload a corpus once, then query it by id.
//!
//! Run with `cargo run --example serve_datasets` to host an in-process
//! server on a loopback port, or pass the address of a running server
//! (`cargo run --example serve_datasets -- 127.0.0.1:7171`).
//!
//! Demonstrates the serving tier's resident-dataset path:
//!
//! 1. upload a 32-series corpus → content-addressed dataset id;
//! 2. run the same kNN queries inline (corpus on every request) and
//!    resident (id on every request), verify the answers are bitwise
//!    identical, and compare the wire bytes each path moved;
//! 3. pipeline a burst of resident queries on one connection with
//!    `send_many`;
//! 4. list and drop the dataset.
//!
//! Exits non-zero on any mismatch.

use std::net::SocketAddr;

use memristor_distance_accelerator::distance::DistanceKind;
use memristor_distance_accelerator::server::protocol::{
    encode_request, DatasetEntry, DatasetRef, Envelope, Request, TrainInstance,
};
use memristor_distance_accelerator::server::{
    Client, QueryOptions, ResponseBody, Server, ServerConfig,
};

fn series(len: usize, seed: usize) -> Vec<f64> {
    (0..len)
        .map(|i| ((i + 23 * seed) as f64 * 0.29).sin() * 1.7 + (seed as f64 * 0.53).cos())
        .collect()
}

/// Canonical wire size of one request: 4-byte length prefix + payload.
fn wire_bytes(req: Request) -> u64 {
    encode_request(&Envelope { id: 1, req }).len() as u64 + 4
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let addr_arg = std::env::args().nth(1);
    let server = match addr_arg {
        Some(_) => None,
        None => Some(Server::start(ServerConfig::default())?),
    };
    let addr: SocketAddr = match (&server, &addr_arg) {
        (Some(s), _) => s.local_addr(),
        (None, Some(a)) => a.parse()?,
        (None, None) => unreachable!(),
    };
    println!(
        "serve_datasets -> {addr} ({})",
        if server.is_some() {
            "in-process"
        } else {
            "external"
        }
    );
    let mut client = Client::connect(addr)?;

    // A labelled corpus: 32 series of 96 points, 4 classes.
    let train: Vec<TrainInstance> = (0..32)
        .map(|i| TrainInstance {
            label: i % 4,
            series: series(96, 40 + i),
        })
        .collect();
    let entries: Vec<DatasetEntry> = train
        .iter()
        .map(|t| DatasetEntry {
            label: t.label,
            series: t.series.clone(),
        })
        .collect();

    // Upload once: the id is content-addressed, so re-uploading identical
    // bytes is free and returns the same id.
    let (dataset_id, version) = client.upload_dataset("demo-corpus", &entries)?;
    println!("uploaded demo-corpus: id {dataset_id} (version {version})");

    // Same queries, both paths; answers must match bit for bit.
    let queries: Vec<Vec<f64>> = (0..12).map(|i| series(96, 7000 + i)).collect();
    let opts = QueryOptions::new();
    let resident_opts = opts.clone().dataset(DatasetRef::by_id(&dataset_id));
    let mut inline_bytes = 0u64;
    let mut resident_bytes = wire_bytes(Request::UploadDataset {
        name: "demo-corpus".into(),
        entries: entries.clone(),
    });
    for (i, query) in queries.iter().enumerate() {
        let inline = client
            .query_knn(DistanceKind::Dtw, 3, query, &train, &opts)?
            .value;
        let resident = client
            .query_knn(DistanceKind::Dtw, 3, query, &[], &resident_opts)?
            .value;
        if inline.label != resident.label || inline.score.to_bits() != resident.score.to_bits() {
            return Err(format!("query {i}: inline {inline:?} != resident {resident:?}").into());
        }
        inline_bytes += wire_bytes(Request::Knn {
            kind: DistanceKind::Dtw,
            k: 3,
            query: query.clone(),
            train: train.clone(),
            dataset: None,
            threshold: None,
            band: None,
            deadline_ms: None,
            accuracy: None,
        });
        resident_bytes += wire_bytes(Request::Knn {
            kind: DistanceKind::Dtw,
            k: 3,
            query: query.clone(),
            train: Vec::new(),
            dataset: Some(DatasetRef::by_id(&dataset_id)),
            threshold: None,
            band: None,
            deadline_ms: None,
            accuracy: None,
        });
    }
    println!(
        "12 kNN queries bitwise-identical on both paths; wire bytes: inline {} vs resident {} ({:.1}x less, upload included)",
        inline_bytes,
        resident_bytes,
        inline_bytes as f64 / resident_bytes as f64
    );

    // Pipelining: one connection, one flush, many in-flight requests.
    let burst: Vec<Request> = queries
        .iter()
        .map(|query| Request::Knn {
            kind: DistanceKind::Dtw,
            k: 3,
            query: query.clone(),
            train: Vec::new(),
            dataset: Some(DatasetRef::by_id(&dataset_id)),
            threshold: None,
            band: None,
            deadline_ms: None,
            accuracy: None,
        })
        .collect();
    let replies = client.send_many(burst)?;
    let classified = replies
        .iter()
        .filter(|r| matches!(r, ResponseBody::Knn { .. }))
        .count();
    println!(
        "pipelined burst: {classified}/{} kNN replies on one connection",
        replies.len()
    );

    // Housekeeping: datasets are listable and droppable.
    for d in client.list_datasets()? {
        println!(
            "resident: {} (id {}, version {}, {} series, {} bytes)",
            d.name, d.dataset_id, d.version, d.count, d.bytes
        );
    }
    let dropped = client.drop_dataset(DatasetRef::by_id(&dataset_id))?;
    println!("dropped {dropped} dataset(s)");

    if let Some(server) = server {
        server.shutdown_and_join();
    }
    println!("done");
    Ok(())
}
