//! Quickstart: configure the accelerator for each of the six distance
//! functions and compare the analog result with the digital reference.
//!
//! Run with `cargo run --example quickstart`.

use memristor_distance_accelerator::core::accelerator::FunctionParams;
use memristor_distance_accelerator::core::{AcceleratorConfig, DistanceAccelerator};
use memristor_distance_accelerator::distance::DistanceKind;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Two short time series in sequence units (20 mV per unit on-chip).
    // Element differences are either tiny or large — decisive relative to
    // both the 0.5-unit match threshold and the 8-bit converter LSB, the
    // regime the thresholded functions are designed for.
    let p: Vec<f64> = (0..12).map(|i| (i as f64 * 0.5).sin() * 3.0).collect();
    let q: Vec<f64> = p
        .iter()
        .enumerate()
        .map(|(i, &v)| if i % 3 == 0 { v + 2.5 } else { v + 0.03 })
        .collect();

    let mut accelerator = DistanceAccelerator::new(AcceleratorConfig::paper_defaults());

    println!("function | analog value | digital ref | rel. error | convergence");
    println!("---------+--------------+-------------+------------+------------");
    for kind in DistanceKind::ALL {
        // One fabric, six functions: reconfigure and compute.
        accelerator.configure_with(
            kind,
            FunctionParams {
                threshold: 0.5,
                ..FunctionParams::default()
            },
        )?;
        let outcome = accelerator.compute(&p, &q)?;
        println!(
            "{:<8} | {:>12.3} | {:>11.3} | {:>9.2}% | {:>8.2} ns",
            kind.abbrev(),
            outcome.value,
            outcome.reference,
            outcome.relative_error * 100.0,
            outcome.convergence_time_s * 1.0e9,
        );
    }
    println!();
    println!(
        "reconfigurations performed: {}",
        accelerator.reconfigurations()
    );
    Ok(())
}
