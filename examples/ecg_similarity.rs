//! ECG similarity with LCS — the paper's healthcare motivating application
//! (Section 1, citing Han et al. on LCS-based ECG subsequence matching).
//!
//! Two electrocardiogram traces are compared with the thresholded longest
//! common subsequence: morphologically similar beats share long common
//! subsequences even when individual samples drift.
//!
//! Run with `cargo run --example ecg_similarity`.

use memristor_distance_accelerator::core::accelerator::FunctionParams;
use memristor_distance_accelerator::core::{AcceleratorConfig, DistanceAccelerator};
use memristor_distance_accelerator::distance::{DistanceKind, Lcs};

/// A stylised ECG beat: P wave, QRS complex, T wave.
fn ecg_beat(len: usize, qrs_amplitude: f64, t_shift: f64) -> Vec<f64> {
    (0..len)
        .map(|i| {
            let x = i as f64 / (len - 1) as f64;
            let gauss = |c: f64, a: f64, w: f64| a * (-((x - c) / w).powi(2)).exp();
            gauss(0.2, 0.4, 0.04)                      // P
                + gauss(0.42, -0.6, 0.012)             // Q
                + gauss(0.47, qrs_amplitude, 0.015)    // R
                + gauss(0.52, -0.8, 0.012)             // S
                + gauss(0.72 + t_shift, 0.9, 0.06) // T
        })
        .collect()
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let len = 24;
    let reference = ecg_beat(len, 3.0, 0.0);
    let same_patient = ecg_beat(len, 2.9, 0.01); // nearly identical beat
    let arrhythmic = ecg_beat(len, 1.2, 0.12); // depressed R, shifted T

    let threshold = 0.5;
    let lcs = Lcs::new(threshold);

    let mut accelerator = DistanceAccelerator::new(AcceleratorConfig::paper_defaults());
    accelerator.configure_with(
        DistanceKind::Lcs,
        FunctionParams {
            threshold,
            ..FunctionParams::default()
        },
    )?;

    println!("comparison                | digital LCS | analog LCS | max possible");
    println!("--------------------------+-------------+------------+-------------");
    for (label, other) in [
        ("reference vs same patient", &same_patient),
        ("reference vs arrhythmic  ", &arrhythmic),
    ] {
        let digital = lcs.similarity(&reference, other)?;
        let outcome = accelerator.compute(&reference, other)?;
        println!(
            "{label} | {digital:>11.1} | {:>10.1} | {len:>12}",
            outcome.value
        );
    }

    let d_same = lcs.similarity(&reference, &same_patient)?;
    let d_arr = lcs.similarity(&reference, &arrhythmic)?;
    println!(
        "\nLCS is a similarity: same-patient ({d_same:.0}) > arrhythmic ({d_arr:.0}) -> {}",
        if d_same > d_arr {
            "beats match as expected"
        } else {
            "UNEXPECTED"
        }
    );
    Ok(())
}
