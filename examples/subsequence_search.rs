//! Subsequence similarity search — the workload where "the computation of
//! distance function takes up to more than 99% of the runtime" (Section 1,
//! citing Rakthanmanon et al.'s trillion-subsequence study).
//!
//! A query pattern is located inside a long stream three ways: brute-force
//! DTW, lower-bound-pruned DTW (the CPU state of the art), and window
//! scoring on the accelerator model.
//!
//! Run with `cargo run --release --example subsequence_search`.

use std::time::Instant;

use memristor_distance_accelerator::core::{AcceleratorConfig, DistanceAccelerator};
use memristor_distance_accelerator::distance::mining::SubsequenceSearch;
use memristor_distance_accelerator::distance::DistanceKind;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A long sensor stream with one embedded pattern occurrence.
    let stream_len = 1200;
    let window = 24;
    let mut stream: Vec<f64> = (0..stream_len)
        .map(|i| (i as f64 * 0.11).sin() + (i as f64 * 0.037).cos() * 0.5)
        .collect();
    let pattern: Vec<f64> = (0..window).map(|i| (i as f64 * 0.8).sin() * 2.5).collect();
    let planted_at = 700;
    stream[planted_at..planted_at + window].copy_from_slice(&pattern);

    // 1. Brute force.
    let search = SubsequenceSearch::new(window, 2);
    let t0 = Instant::now();
    let brute = search.run_brute_force(&pattern, &stream)?;
    let brute_time = t0.elapsed();

    // 2. Cascading lower bounds (LB_Kim -> LB_Keogh -> DTW).
    let t0 = Instant::now();
    let (pruned, stats) = search.run(&pattern, &stream)?;
    let pruned_time = t0.elapsed();

    println!("stream length {stream_len}, window {window}, pattern planted at {planted_at}");
    println!(
        "brute force : offset {} (distance {:.3}) in {brute_time:?}",
        brute.offset, brute.distance
    );
    println!(
        "cascading LB: offset {} (distance {:.3}) in {pruned_time:?}; pruned {:.0}% of windows ({} Kim, {} Keogh, {} full DTW)",
        pruned.offset,
        pruned.distance,
        stats.prune_rate() * 100.0,
        stats.pruned_by_kim,
        stats.pruned_by_keogh,
        stats.full_computations,
    );

    // 3. Accelerator: each window is one analog computation. We score a
    // strided subset for demonstration and report the projected analog
    // runtime for the full scan.
    let mut accelerator = DistanceAccelerator::new(AcceleratorConfig::paper_defaults());
    accelerator.configure(DistanceKind::Dtw)?;
    let stride = 4;
    let mut best = (0usize, f64::INFINITY);
    let mut analog_time_s = 0.0;
    let mut windows = 0usize;
    for offset in (0..=(stream_len - window)).step_by(stride) {
        let candidate = &stream[offset..offset + window];
        let outcome = accelerator.compute(&pattern, candidate)?;
        analog_time_s += outcome.convergence_time_s;
        windows += 1;
        if outcome.value < best.1 {
            best = (offset, outcome.value);
        }
    }
    println!(
        "accelerator : offset {} (distance {:.3}); {} windows at stride {stride}, projected analog scan time {:.2} us",
        best.0,
        best.1,
        windows,
        analog_time_s * 1.0e6
    );
    println!(
        "\nall three agree on the planted location: {}",
        brute.offset == planted_at && pruned.offset == planted_at && best.0 == planted_at
    );
    Ok(())
}
