//! Accuracy-aware routing under a power budget.
//!
//! Run with `cargo run --release --example route_budget`.
//!
//! Two views of the same router:
//!
//! 1. **library** — a `Router` with a deliberately small fleet envelope
//!    routes a burst of tolerance-tagged DTW queries while every lease is
//!    held: the first few ride the analog fabric, the rest overflow to
//!    digital; releasing the leases restores analog admission;
//! 2. **served** — an in-process `mda-server` answers a mixed
//!    exact/tolerance workload; each tolerance reply reports the backend
//!    that answered and the error bound it guarantees, and every answer is
//!    checked against the direct digital call.
//!
//! Exits non-zero if any SLA is violated.

use memristor_distance_accelerator::distance::{boxed_distance, DistanceKind};
use memristor_distance_accelerator::routing::{
    BackendId, Router, RouterConfig, Sla, DIGITAL_HOST_WATTS,
};
use memristor_distance_accelerator::server::{Client, QueryOptions, Server, ServerConfig};

fn series(len: usize, seed: usize) -> Vec<f64> {
    (0..len)
        .map(|i| ((i + 19 * seed) as f64 * 0.33).sin() * 2.2 + (seed as f64 * 0.47).cos())
        .collect()
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // ---- 1. The router against a shrinking power envelope. -------------
    let router = Router::new(RouterConfig { fleet_power_w: 2.0 });
    println!(
        "fleet envelope: {:.1} W (digital host bills {DIGITAL_HOST_WATTS:.0} W per answer)",
        router.fleet().cap_w()
    );
    let mut held = Vec::new();
    for i in 0..6 {
        let route = router.route_pair(DistanceKind::Dtw, 128, Sla::tolerance(16.0)?);
        println!(
            "  burst query {i}: {} ({:.2} W of fleet in use)",
            route.backend,
            router.fleet().in_use_w()
        );
        held.push(route);
    }
    let analog_held = held
        .iter()
        .filter(|r| r.backend == BackendId::Analog)
        .count();
    println!(
        "  -> {analog_held} analog, {} digital overflow",
        6 - analog_held
    );
    held.clear(); // releases every PowerLease
    let after = router.route_pair(DistanceKind::Dtw, 128, Sla::tolerance(16.0)?);
    println!(
        "  after release: {} ({:.2} W in use)\n",
        after.backend,
        router.fleet().in_use_w()
    );

    // ---- 2. The same decisions over the wire. --------------------------
    let server = Server::start(ServerConfig::default())?;
    let mut client = Client::connect(server.local_addr())?;
    println!("served workload -> {}", server.local_addr());
    println!("  kind | sla        | backend       | bound (at ref) | within SLA");
    println!("  -----+------------+---------------+----------------+-----------");
    let mut violations = 0;
    for (i, kind) in DistanceKind::ALL.into_iter().enumerate() {
        let p = series(96, 2 * i + 1);
        let q = series(96, 2 * i + 2);
        let reference = boxed_distance(kind).evaluate(&p, &q)?;

        // Exact: the pre-routing contract, bit for bit.
        let exact =
            client.query_distance(kind, &p, &q, &QueryOptions::new().accuracy(Sla::Exact))?;
        let exact_ok = exact.value.to_bits() == reference.to_bits();

        // Tolerance: let the router spend accuracy to save watts.
        let eps = 16.0;
        let routed = client.query_distance(
            kind,
            &p,
            &q,
            &QueryOptions::new().accuracy(Sla::tolerance(eps)?),
        )?;
        let route = routed
            .route
            .expect("accuracy-tagged replies report a route");
        let tol_ok = (routed.value - reference).abs() <= eps;
        println!("  {kind:>4} | exact      | digital_exact | exact          | {exact_ok}");
        println!(
            "  {kind:>4} | ±{eps:<9} | {:<13} | ±{:<13.3} | {tol_ok}",
            route.backend.as_str(),
            route.bound.margin(reference.abs())
        );
        if !exact_ok || !tol_ok {
            violations += 1;
        }
    }
    server.shutdown_and_join();

    if violations > 0 {
        return Err(format!("{violations} SLA violation(s)").into());
    }
    println!("\nall answers within their SLA");
    Ok(())
}
