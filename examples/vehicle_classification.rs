//! Vehicle classification with DTW — the paper's smart-city motivating
//! application (Section 1, citing Weng et al., WCICA'04).
//!
//! Vehicles passing an inductive loop produce magnetic signature profiles;
//! 1-NN classification under DTW distinguishes vehicle classes. This
//! example trains a small digital 1-NN classifier and then shows the same
//! decisions coming out of the accelerator model.
//!
//! Run with `cargo run --example vehicle_classification`.

use memristor_distance_accelerator::core::{AcceleratorConfig, DistanceAccelerator};
use memristor_distance_accelerator::distance::mining::KnnClassifier;
use memristor_distance_accelerator::distance::{DistanceKind, Dtw};

/// Synthetic magnetic signature: cars are short single-hump profiles,
/// trucks long double-hump, buses long flat-topped.
fn signature(class: usize, len: usize, jitter: f64) -> Vec<f64> {
    (0..len)
        .map(|i| {
            let x = i as f64 / (len - 1) as f64;
            let v: f64 = match class {
                0 => (-((x - 0.5) * 4.0).powi(2)).exp() * 2.0, // car
                1 => {
                    // truck: cab hump + trailer hump
                    (-((x - 0.3) * 6.0).powi(2)).exp() * 1.8
                        + (-((x - 0.75) * 5.0).powi(2)).exp() * 2.2
                }
                _ => {
                    (1.0 / (1.0 + (-(x - 0.15) * 20.0).exp()))
                        * (1.0 / (1.0 + ((x - 0.85) * 20.0).exp()))
                        * 2.0
                } // bus: flat top
            };
            v + jitter * ((i * 37 + class * 13) % 7) as f64 / 7.0 * 0.2
        })
        .collect()
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    const CLASSES: [&str; 3] = ["car", "truck", "bus"];
    let len = 20;

    // Train a digital 1-NN/DTW classifier.
    let mut knn = KnnClassifier::new(Box::new(Dtw::new()), 1);
    for class in 0..3 {
        for j in 0..4 {
            knn.fit(class, signature(class, len, 0.1 + j as f64 * 0.05));
        }
    }
    println!(
        "leave-one-out accuracy (digital 1-NN/DTW): {:.0}%",
        knn.leave_one_out_accuracy()? * 100.0
    );

    // Accelerated classification: nearest neighbour by analog DTW.
    let mut accelerator = DistanceAccelerator::new(AcceleratorConfig::paper_defaults());
    accelerator.configure(DistanceKind::Dtw)?;

    println!("\nquery     | digital 1-NN | analog nearest | agree");
    println!("----------+--------------+----------------+------");
    let mut agreement = 0usize;
    let mut total = 0usize;
    for (true_class, true_name) in CLASSES.iter().enumerate() {
        let query = signature(true_class, len, 0.23);
        let digital = knn.classify(&query)?;

        // Analog: compute DTW against every training signature and take the
        // argmin of the decoded analog values.
        let mut best: Option<(usize, f64)> = None;
        for class in 0..3 {
            for j in 0..4 {
                let train = signature(class, len, 0.1 + j as f64 * 0.05);
                let outcome = accelerator.compute(&query, &train)?;
                if best.is_none_or(|(_, b)| outcome.value < b) {
                    best = Some((class, outcome.value));
                }
            }
        }
        let (analog_class, _) = best.expect("non-empty training set");
        let agree = digital.label == analog_class;
        agreement += usize::from(agree);
        total += 1;
        println!(
            "{:<9} | {:<12} | {:<14} | {}",
            true_name, CLASSES[digital.label], CLASSES[analog_class], agree
        );
    }
    println!("\nanalog/digital agreement: {agreement}/{total}");
    Ok(())
}
