//! Timing calibration: the behavioural engine's convergence times must be
//! the same order of magnitude as true device-level transient settling, so
//! the Fig. 5 / Fig. 6 runtime claims rest on circuit dynamics rather than
//! free parameters.

use memristor_distance_accelerator::core::analog::graph::builders;
use memristor_distance_accelerator::core::analog::{AnalogEngine, ErrorModel};
use memristor_distance_accelerator::core::pe::common::{abs_module, analog_adder, Rails};
use memristor_distance_accelerator::core::AcceleratorConfig;
use memristor_distance_accelerator::spice::{Netlist, TransientSpec, Waveform};

#[test]
fn md_row_device_and_behavioural_convergence_same_order() {
    let config = AcceleratorConfig::paper_defaults();
    let p = [1.0, 2.0];
    let q = [0.0, 0.0];

    // Device level: full MNA transient of the 2-element MD row with the
    // Table 1 parasitics, using LRS-level signal-path memristors (the same
    // assumption the behavioural model makes for its RC constants).
    let mut net = Netlist::new();
    let rails = Rails::install(
        &mut net,
        config.vcc,
        config.v_step,
        config.v_thre,
        config.signal_path_resistance,
    );
    let mut pes = Vec::new();
    for (i, (&pv, &qv)) in p.iter().zip(&q).enumerate() {
        let pn = net.node(&format!("p{i}"));
        net.voltage_source(
            pn,
            Netlist::GROUND,
            Waveform::step(config.value_to_voltage(pv)),
        );
        let qn = net.node(&format!("q{i}"));
        net.voltage_source(
            qn,
            Netlist::GROUND,
            Waveform::step(config.value_to_voltage(qv)),
        );
        pes.push(abs_module(&mut net, &rails, pn, qn, 1.0));
    }
    let out = analog_adder(&mut net, &rails, &pes, &[1.0; 2]);
    net.add_parasitic_capacitance(config.parasitic_capacitance);
    let result = net
        .transient(&TransientSpec::new(3.0e-9, 1.0e-12))
        .expect("device transient");
    let device_trace = result.voltage(out);
    let device_tconv = device_trace
        .convergence_time(0.001)
        .expect("device settles");
    // Sanity: the settled value decodes to MD = 3.
    let device_value = config.voltage_to_value(device_trace.last());
    assert!(
        (device_value - 3.0).abs() < 0.3,
        "device MD = {device_value}"
    );

    // Behavioural level.
    let volts =
        |xs: &[f64]| -> Vec<f64> { xs.iter().map(|&x| config.value_to_voltage(x)).collect() };
    let graph = builders::manhattan(
        &config,
        &volts(&p),
        &volts(&q),
        &[1.0; 2],
        &mut ErrorModel::ideal(),
    );
    let behavioural = AnalogEngine::new().simulate(&graph);

    // Both must land in the nanosecond regime the paper claims. The
    // behavioural model is deliberately conservative (its per-module lag
    // lumps interconnect and op-amp output loading that the stiff-output
    // device model ignores), so it may run up to ~100x slower than the
    // idealized MNA transient but never faster.
    let ratio = behavioural.convergence_time_s / device_tconv;
    assert!(
        (1.0..=128.0).contains(&ratio),
        "behavioural {:.3e} s vs device {:.3e} s (ratio {ratio:.2})",
        behavioural.convergence_time_s,
        device_tconv
    );
    assert!(
        device_tconv < 10.0e-9,
        "device settles in ns: {device_tconv:.3e}"
    );
    assert!(
        behavioural.convergence_time_s < 10.0e-9,
        "behavioural settles in ns: {:.3e}",
        behavioural.convergence_time_s
    );
}
