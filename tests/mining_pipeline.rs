//! End-to-end data-mining integration: the paper's three workloads
//! (classification, clustering, subsequence search) running on the
//! synthetic datasets, digitally and through the accelerator.

use memristor_distance_accelerator::core::{AcceleratorConfig, DistanceAccelerator};
use memristor_distance_accelerator::datasets::synthetic::{beef, osu_leaf, symbols, SyntheticSpec};
use memristor_distance_accelerator::distance::mining::{
    KMedoids, KnnClassifier, SubsequenceSearch,
};
use memristor_distance_accelerator::distance::{DistanceKind, Dtw, Manhattan};

#[test]
fn knn_classification_on_all_three_datasets() {
    for dataset in [
        beef(&SyntheticSpec::new(48, 4, 11)),
        symbols(&SyntheticSpec::new(48, 4, 11)),
        osu_leaf(&SyntheticSpec::new(48, 4, 11)),
    ] {
        let ds = dataset.z_normalized();
        let mut knn = KnnClassifier::new(Box::new(Dtw::new()), 1);
        for (label, s) in ds.iter() {
            knn.fit(label, s.to_vec());
        }
        let acc = knn.leave_one_out_accuracy().expect("enough data");
        assert!(
            acc >= 0.8,
            "{}: 1-NN/DTW leave-one-out accuracy {acc}",
            ds.name()
        );
    }
}

#[test]
fn kmedoids_recovers_class_structure() {
    let ds = beef(&SyntheticSpec::new(32, 3, 5)).z_normalized();
    let k = ds.classes().len();
    let series: Vec<Vec<f64>> = (0..ds.len()).map(|i| ds.series(i).to_vec()).collect();
    let result = KMedoids::new(Box::new(Manhattan::new()), k)
        .cluster(&series)
        .expect("enough series");
    // Compute clustering purity: majority label per cluster.
    let mut purity = 0usize;
    for cluster in 0..k {
        let members: Vec<usize> = (0..ds.len())
            .filter(|&i| result.assignments[i] == cluster)
            .collect();
        if members.is_empty() {
            continue;
        }
        let mut counts = std::collections::HashMap::new();
        for &m in &members {
            *counts.entry(ds.label(m)).or_insert(0usize) += 1;
        }
        purity += counts.values().max().copied().unwrap_or(0);
    }
    let purity = purity as f64 / ds.len() as f64;
    assert!(purity >= 0.7, "clustering purity {purity}");
}

#[test]
fn accelerated_one_nn_agrees_with_digital_on_separated_data() {
    let ds = symbols(&SyntheticSpec::new(24, 3, 21)).z_normalized();
    let mut knn = KnnClassifier::new(Box::new(Dtw::new()), 1);
    // Train on the first two series of each class; query with the third.
    let mut queries = Vec::new();
    for class in ds.classes() {
        let idx = ds.indices_of_class(class);
        knn.fit(class, ds.series(idx[0]).to_vec());
        knn.fit(class, ds.series(idx[1]).to_vec());
        queries.push((class, idx[2]));
    }

    let mut acc = DistanceAccelerator::new(AcceleratorConfig::paper_defaults());
    acc.configure(DistanceKind::Dtw).expect("valid");

    let mut digital_correct = 0usize;
    let mut agreement = 0usize;
    for &(true_class, qi) in &queries {
        let query = ds.series(qi);
        let digital = knn.classify(query).expect("trained").label;
        digital_correct += usize::from(digital == true_class);

        // Analog nearest neighbour over the same training set.
        let mut best: Option<(usize, f64)> = None;
        for class in ds.classes() {
            let idx = ds.indices_of_class(class);
            for &ti in &idx[..2] {
                let outcome = acc.compute(query, ds.series(ti)).expect("valid");
                if best.is_none_or(|(_, b)| outcome.value < b) {
                    best = Some((class, outcome.value));
                }
            }
        }
        let analog = best.expect("non-empty").0;
        agreement += usize::from(analog == digital);
    }
    assert!(
        digital_correct >= queries.len() - 1,
        "digital accuracy {digital_correct}/{}",
        queries.len()
    );
    assert!(
        agreement >= queries.len() - 1,
        "analog/digital agreement {agreement}/{}",
        queries.len()
    );
}

#[test]
fn pruned_search_on_synthetic_stream_matches_brute_force() {
    let ds = osu_leaf(&SyntheticSpec::new(200, 1, 31));
    let stream = ds.series(0);
    let query: Vec<f64> = stream[80..112].to_vec();
    let search = SubsequenceSearch::new(32, 2);
    let (pruned, stats) = search.run(&query, stream).expect("valid");
    let brute = search.run_brute_force(&query, stream).expect("valid");
    assert_eq!(pruned.offset, brute.offset);
    assert_eq!(pruned.offset, 80);
    assert_eq!(
        stats.windows,
        stats.pruned_by_kim
            + stats.pruned_by_keogh
            + stats.abandoned_early
            + stats.full_computations
    );
}
