//! Property-based tests (proptest) over the core invariants listed in
//! DESIGN.md §6.

use proptest::prelude::*;

use memristor_distance_accelerator::distance::dtw::Band;
use memristor_distance_accelerator::distance::lower_bounds::{lb_keogh, lb_kim};
use memristor_distance_accelerator::distance::{
    Distance, Dtw, EditDistance, Hamming, Hausdorff, Lcs, Manhattan,
};
use memristor_distance_accelerator::memristor::{BiolekParams, Memristor, StochasticParams};

fn series(max_len: usize) -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(-5.0f64..5.0, 1..max_len)
}

fn equal_length_pair(max_len: usize) -> impl Strategy<Value = (Vec<f64>, Vec<f64>)> {
    (1..max_len).prop_flat_map(|len| {
        (
            prop::collection::vec(-5.0f64..5.0, len),
            prop::collection::vec(-5.0f64..5.0, len),
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn dtw_identity_and_symmetry((p, q) in equal_length_pair(24)) {
        let dtw = Dtw::new();
        prop_assert!(dtw.evaluate(&p, &p).unwrap().abs() < 1e-9);
        let pq = dtw.evaluate(&p, &q).unwrap();
        let qp = dtw.evaluate(&q, &p).unwrap();
        prop_assert!((pq - qp).abs() < 1e-9);
        prop_assert!(pq >= 0.0);
    }

    #[test]
    fn dtw_band_at_max_len_equals_full(p in series(20), q in series(20)) {
        // A Sakoe–Chiba band of half-width max(m, n) admits every DP cell,
        // including the band-edge cells on unequal-length inputs, so the
        // banded distance must equal the unbanded one exactly.
        let r = p.len().max(q.len());
        let full = Dtw::new().evaluate(&p, &q).unwrap();
        let banded = Dtw::new()
            .with_band(Band::SakoeChiba(r))
            .evaluate(&p, &q)
            .unwrap();
        prop_assert!(
            (banded - full).abs() < 1e-12,
            "banded {banded} != full {full} for m={}, n={}",
            p.len(),
            q.len()
        );
    }

    #[test]
    fn dtw_band_monotone((p, q) in equal_length_pair(20), r in 0usize..20) {
        let full = Dtw::new().evaluate(&p, &q).unwrap();
        let banded = Dtw::new().with_band(Band::SakoeChiba(r)).evaluate(&p, &q);
        if let Ok(banded) = banded {
            prop_assert!(banded >= full - 1e-9, "banded {banded} < full {full}");
        }
    }

    #[test]
    fn dtw_bounded_by_manhattan((p, q) in equal_length_pair(24)) {
        // The diagonal path is admissible, so DTW <= MD.
        let dtw = Dtw::new().evaluate(&p, &q).unwrap();
        let md = Manhattan::new().evaluate(&p, &q).unwrap();
        prop_assert!(dtw <= md + 1e-9);
    }

    #[test]
    fn lb_kim_and_keogh_are_admissible((p, q) in equal_length_pair(20), r in 1usize..6) {
        let banded = Dtw::new().with_band(Band::SakoeChiba(r)).evaluate(&p, &q);
        if let Ok(d) = banded {
            prop_assert!(lb_kim(&p, &q).unwrap() <= d + 1e-9);
            prop_assert!(lb_keogh(&p, &q, r).unwrap() <= d + 1e-9);
        }
    }

    #[test]
    fn lcs_bounds(p in series(20), q in series(20), thr in 0.0f64..2.0) {
        let s = Lcs::new(thr).similarity(&p, &q).unwrap();
        prop_assert!(s >= 0.0);
        prop_assert!(s <= p.len().min(q.len()) as f64 + 1e-9);
        // Self-similarity is maximal.
        let self_s = Lcs::new(thr).similarity(&p, &p).unwrap();
        prop_assert!((self_s - p.len() as f64).abs() < 1e-9);
    }

    #[test]
    fn edit_distance_metric_properties(p in series(14), q in series(14), thr in 0.0f64..0.5) {
        let ed = EditDistance::new(thr);
        prop_assert!(ed.distance(&p, &p).unwrap().abs() < 1e-9);
        let pq = ed.distance(&p, &q).unwrap();
        prop_assert!((pq - ed.distance(&q, &p).unwrap()).abs() < 1e-9);
        // Bounded by max length and at least the length difference.
        prop_assert!(pq <= p.len().max(q.len()) as f64 + 1e-9);
        prop_assert!(pq >= (p.len() as f64 - q.len() as f64).abs() - 1e-9);
    }

    #[test]
    fn edit_distance_triangle(p in series(8), q in series(8), r in series(8)) {
        let ed = EditDistance::new(0.1);
        let pq = ed.distance(&p, &q).unwrap();
        let qr = ed.distance(&q, &r).unwrap();
        let pr = ed.distance(&p, &r).unwrap();
        prop_assert!(pr <= pq + qr + 1e-9);
    }

    #[test]
    fn hausdorff_identity_and_bound(p in series(16), q in series(16)) {
        let h = Hausdorff::new();
        prop_assert!(h.distance(&p, &p).unwrap().abs() < 1e-9);
        // Directed Hausdorff is bounded by the largest pointwise gap.
        let d = h.distance(&p, &q).unwrap();
        let max_gap = q.iter().map(|qv| {
            p.iter().map(|pv| (pv - qv).abs()).fold(f64::INFINITY, f64::min)
        }).fold(0.0f64, f64::max);
        prop_assert!((d - max_gap).abs() < 1e-9);
    }

    #[test]
    fn hamming_bounds((p, q) in equal_length_pair(24), thr in 0.0f64..1.0) {
        let h = Hamming::new(thr).distance(&p, &q).unwrap();
        prop_assert!(h >= 0.0);
        prop_assert!(h <= p.len() as f64 + 1e-9);
        // Monotone in threshold.
        let h_wider = Hamming::new(thr + 1.0).distance(&p, &q).unwrap();
        prop_assert!(h_wider <= h + 1e-9);
    }

    #[test]
    fn manhattan_triangle((p, q) in equal_length_pair(16), shift in -2.0f64..2.0) {
        let r: Vec<f64> = p.iter().map(|v| v + shift).collect();
        let md = Manhattan::new();
        let pq = md.evaluate(&p, &q).unwrap();
        let qr = md.evaluate(&q, &r).unwrap();
        let pr = md.evaluate(&p, &r).unwrap();
        prop_assert!(pr <= pq + qr + 1e-9);
    }

    #[test]
    fn memristor_state_stays_bounded(v in -4.0f64..4.0, duration_ns in 1.0f64..500.0) {
        let mut m = Memristor::at_state(BiolekParams::paper_defaults(), 0.5);
        m.apply_voltage(v, duration_ns * 1.0e-9, 1.0e-9);
        prop_assert!((0.0..=1.0).contains(&m.state()));
        let r = m.resistance();
        prop_assert!((1.0e3 - 1e-6..=100.0e3 + 1e-6).contains(&r));
    }

    #[test]
    fn subthreshold_switching_probability_negligible(v in 0.0f64..0.5, ns in 1.0f64..100.0) {
        // DESIGN.md §6: the paper's Section 4.2 claim holds across the whole
        // in-circuit operating envelope.
        let p = StochasticParams::table2();
        prop_assert!(p.switching_probability(v, ns * 1.0e-9) < 1e-9);
    }
}
