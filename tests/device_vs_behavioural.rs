//! Cross-fidelity integration: device-level MNA simulation of the Fig. 2
//! netlists, the behavioural analog engine, and the digital reference must
//! all agree on the same inputs.

use memristor_distance_accelerator::core::analog::graph::builders;
use memristor_distance_accelerator::core::analog::{AnalogEngine, ErrorModel};
use memristor_distance_accelerator::core::{pe, AcceleratorConfig};
use memristor_distance_accelerator::distance::dtw::Band;
use memristor_distance_accelerator::distance::{
    Distance, Dtw, EditDistance, Hamming, Hausdorff, Lcs, Manhattan,
};

fn config() -> AcceleratorConfig {
    AcceleratorConfig::paper_defaults()
}

fn volts(c: &AcceleratorConfig, xs: &[f64]) -> Vec<f64> {
    xs.iter().map(|&x| c.value_to_voltage(x)).collect()
}

#[test]
fn dtw_three_way_agreement() {
    let c = config();
    let p = [0.0, 1.0, 3.0];
    let q = [0.5, 1.5, 2.5];
    let digital = Dtw::new().evaluate(&p, &q).expect("valid");
    let device = pe::dtw::evaluate_dc(&c, &p, &q, 1.0).expect("device sim");
    let graph = builders::dtw(
        &c,
        &volts(&c, &p),
        &volts(&c, &q),
        1.0,
        Band::Full,
        &mut ErrorModel::new(c.noise_seed),
    );
    let behavioural = c.voltage_to_value(AnalogEngine::new().simulate(&graph).final_voltage);
    assert!(
        (device - digital).abs() < 0.3,
        "device {device} vs digital {digital}"
    );
    assert!(
        (behavioural - digital).abs() < 0.3,
        "behavioural {behavioural} vs digital {digital}"
    );
}

#[test]
fn lcs_three_way_agreement() {
    let c = config();
    let p = [0.0, 1.0, 4.0];
    let q = [0.0, 1.0, -4.0];
    let digital = Lcs::new(0.2).similarity(&p, &q).expect("valid");
    let device = pe::lcs::evaluate_dc(&c, &p, &q, 0.2, 1.0).expect("device sim");
    let graph = builders::lcs(
        &c,
        &volts(&c, &p),
        &volts(&c, &q),
        c.value_to_voltage(0.2),
        1.0,
        &mut ErrorModel::new(c.noise_seed),
    );
    let behavioural = AnalogEngine::new().simulate(&graph).final_voltage / c.v_step;
    assert!((device - digital).abs() < 0.5);
    assert!((behavioural - digital).abs() < 0.5);
}

#[test]
fn edit_three_way_agreement() {
    let c = config();
    let p = [0.0, 2.0, 4.0];
    let q = [0.0, 2.0, -4.0];
    let digital = EditDistance::new(0.2).distance(&p, &q).expect("valid");
    let device = pe::edit::evaluate_dc(&c, &p, &q, 0.2).expect("device sim");
    let graph = builders::edit(
        &c,
        &volts(&c, &p),
        &volts(&c, &q),
        c.value_to_voltage(0.2),
        &mut ErrorModel::new(c.noise_seed),
    );
    let behavioural = AnalogEngine::new().simulate(&graph).final_voltage / c.v_step;
    assert!((device - digital).abs() < 0.5);
    assert!((behavioural - digital).abs() < 0.5);
}

#[test]
fn hausdorff_three_way_agreement() {
    let c = config();
    let p = [0.0, 4.0];
    let q = [1.0, 3.5, 6.0];
    let digital = Hausdorff::new().distance(&p, &q).expect("valid");
    let device = pe::hausdorff::evaluate_dc(&c, &p, &q, 1.0).expect("device sim");
    let graph = builders::hausdorff(
        &c,
        &volts(&c, &p),
        &volts(&c, &q),
        1.0,
        &mut ErrorModel::new(c.noise_seed),
    );
    let behavioural = c.voltage_to_value(AnalogEngine::new().simulate(&graph).final_voltage);
    assert!(
        (device - digital).abs() < 0.5,
        "device {device} vs digital {digital}"
    );
    assert!((behavioural - digital).abs() < 0.5);
}

#[test]
fn hamming_three_way_agreement() {
    let c = config();
    let p = [0.0, 1.0, 2.0, 3.0];
    let q = [0.0, 5.0, 2.0, -3.0];
    let digital = Hamming::new(0.2).distance(&p, &q).expect("valid");
    let device = pe::hamming::evaluate_dc(&c, &p, &q, 0.2, &[1.0; 4]).expect("device sim");
    let graph = builders::hamming(
        &c,
        &volts(&c, &p),
        &volts(&c, &q),
        c.value_to_voltage(0.2),
        &[1.0; 4],
        &mut ErrorModel::new(c.noise_seed),
    );
    let behavioural = AnalogEngine::new().simulate(&graph).final_voltage / c.v_step;
    assert!((device - digital).abs() < 0.5);
    assert!((behavioural - digital).abs() < 0.5);
}

#[test]
fn manhattan_three_way_agreement() {
    let c = config();
    let p = [0.0, 2.0, -1.0, 0.5];
    let q = [1.0, 0.5, -0.5, 0.5];
    let digital = Manhattan::new().evaluate(&p, &q).expect("valid");
    let device = pe::manhattan::evaluate_dc(&c, &p, &q, &[1.0; 4]).expect("device sim");
    let graph = builders::manhattan(
        &c,
        &volts(&c, &p),
        &volts(&c, &q),
        &[1.0; 4],
        &mut ErrorModel::new(c.noise_seed),
    );
    let behavioural = c.voltage_to_value(AnalogEngine::new().simulate(&graph).final_voltage);
    assert!((device - digital).abs() < 0.5);
    assert!((behavioural - digital).abs() < 0.5);
}

#[test]
fn weighted_variants_agree_at_device_level() {
    // The memristor-ratio weighting (Section 3.2) must scale both fidelity
    // levels identically.
    let c = config();
    let w = 0.5;
    let device = pe::dtw::evaluate_dc(&c, &[2.0], &[0.0], w).expect("device sim");
    let graph = builders::dtw(
        &c,
        &volts(&c, &[2.0]),
        &volts(&c, &[0.0]),
        w,
        Band::Full,
        &mut ErrorModel::ideal(),
    );
    let behavioural = c.voltage_to_value(AnalogEngine::new().simulate(&graph).final_voltage);
    assert!((device - 1.0).abs() < 0.3, "device weighted {device}");
    assert!(
        (behavioural - 1.0).abs() < 0.1,
        "behavioural weighted {behavioural}"
    );
}
