//! Property tests of the early-determination optimization (Fig. 3): the
//! argmin read at a fraction of the convergence time must match the
//! converged argmin across randomized candidate sets.

use proptest::prelude::*;

use memristor_distance_accelerator::core::early::early_determination;
use memristor_distance_accelerator::core::{AcceleratorConfig, DistanceAccelerator};
use memristor_distance_accelerator::distance::DistanceKind;

fn configured(kind: DistanceKind) -> DistanceAccelerator {
    let mut acc = DistanceAccelerator::new(AcceleratorConfig::paper_defaults());
    acc.configure(kind).expect("valid configuration");
    acc
}

proptest! {
    // Each case runs several analog simulations; keep the count modest.
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn md_early_winner_matches_converged_winner(
        base in prop::collection::vec(-2.0f64..2.0, 8),
        offsets in prop::collection::vec(0.3f64..3.0, 3),
    ) {
        // Candidates at distinct, well-separated distances from the query.
        let mut sorted = offsets.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        prop_assume!(sorted.windows(2).all(|w| w[1] - w[0] > 0.25));

        let acc = configured(DistanceKind::Manhattan);
        let candidates: Vec<Vec<f64>> = offsets
            .iter()
            .map(|&o| base.iter().map(|v| v + o).collect())
            .collect();
        let decision = early_determination(&acc, &base, &candidates, 0.1)
            .expect("row-structure function");
        prop_assert!(decision.consistent(), "{decision:?}");
        // And the winner is the smallest-offset candidate.
        let expected = offsets
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.partial_cmp(b.1).expect("finite"))
            .map(|(i, _)| i)
            .expect("non-empty");
        prop_assert_eq!(decision.converged_winner, expected);
    }

    #[test]
    fn early_read_fraction_sweep_is_consistent(
        fraction in 0.05f64..0.5,
    ) {
        let acc = configured(DistanceKind::Hamming);
        let query = vec![0.0, 1.0, -1.0, 2.0, 0.5, -0.5];
        let near: Vec<f64> = query.iter().map(|v| v + 0.05).collect();
        let far: Vec<f64> = query.iter().map(|v| v + 2.0).collect();
        let decision = early_determination(&acc, &query, &[far, near], fraction)
            .expect("row-structure function");
        prop_assert_eq!(decision.converged_winner, 1);
        prop_assert!(decision.consistent(), "fraction {}: {:?}", fraction, decision);
    }
}
