//! Property tests of the behavioural analog engine: with the error model
//! disabled, the steady state must equal the digital reference *exactly*
//! (up to float tolerance) for every function on arbitrary inputs — the
//! graphs are the recurrences, so this pins the translation itself.

use proptest::prelude::*;

use memristor_distance_accelerator::core::analog::graph::builders;
use memristor_distance_accelerator::core::analog::{AnalogEngine, ErrorModel};
use memristor_distance_accelerator::core::AcceleratorConfig;
use memristor_distance_accelerator::distance::dtw::Band;
use memristor_distance_accelerator::distance::{
    Distance, Dtw, EditDistance, Hamming, Hausdorff, Lcs, Manhattan,
};

fn volts(c: &AcceleratorConfig, xs: &[f64]) -> Vec<f64> {
    xs.iter().map(|&x| c.value_to_voltage(x)).collect()
}

fn short_series() -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(-4.0f64..4.0, 1..8)
}

fn equal_pair() -> impl Strategy<Value = (Vec<f64>, Vec<f64>)> {
    (1usize..8).prop_flat_map(|len| {
        (
            prop::collection::vec(-4.0f64..4.0, len),
            prop::collection::vec(-4.0f64..4.0, len),
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn ideal_dtw_graph_equals_digital((p, q) in equal_pair()) {
        let c = AcceleratorConfig::paper_defaults();
        let g = builders::dtw(
            &c,
            &volts(&c, &p),
            &volts(&c, &q),
            1.0,
            Band::Full,
            &mut ErrorModel::ideal(),
        );
        let v = g.steady_state()[g.output().index()];
        let expected = Dtw::new().evaluate(&p, &q).unwrap();
        prop_assert!((c.voltage_to_value(v) - expected).abs() < 1e-6);
    }

    #[test]
    fn ideal_lcs_and_edit_graphs_equal_digital(p in short_series(), q in short_series(), thr in 0.1f64..1.5) {
        let c = AcceleratorConfig::paper_defaults();
        let tv = c.value_to_voltage(thr);
        let g = builders::lcs(&c, &volts(&c, &p), &volts(&c, &q), tv, 1.0, &mut ErrorModel::ideal());
        let v = g.steady_state()[g.output().index()];
        let expected = Lcs::new(thr).similarity(&p, &q).unwrap();
        prop_assert!((v / c.v_step - expected).abs() < 1e-6, "LCS {} vs {}", v / c.v_step, expected);

        let g = builders::edit(&c, &volts(&c, &p), &volts(&c, &q), tv, &mut ErrorModel::ideal());
        let v = g.steady_state()[g.output().index()];
        let expected = EditDistance::new(thr).distance(&p, &q).unwrap();
        prop_assert!((v / c.v_step - expected).abs() < 1e-6, "EdD {} vs {}", v / c.v_step, expected);
    }

    #[test]
    fn ideal_hausdorff_graph_equals_digital(p in short_series(), q in short_series()) {
        let c = AcceleratorConfig::paper_defaults();
        let g = builders::hausdorff(&c, &volts(&c, &p), &volts(&c, &q), 1.0, &mut ErrorModel::ideal());
        let v = g.steady_state()[g.output().index()];
        let expected = Hausdorff::new().distance(&p, &q).unwrap();
        prop_assert!((c.voltage_to_value(v) - expected).abs() < 1e-6);
    }

    #[test]
    fn ideal_row_graphs_equal_digital((p, q) in equal_pair(), thr in 0.1f64..1.5) {
        let c = AcceleratorConfig::paper_defaults();
        let w = vec![1.0; p.len()];
        let g = builders::hamming(
            &c, &volts(&c, &p), &volts(&c, &q), c.value_to_voltage(thr), &w,
            &mut ErrorModel::ideal(),
        );
        let v = g.steady_state()[g.output().index()];
        let expected = Hamming::new(thr).distance(&p, &q).unwrap();
        prop_assert!((v / c.v_step - expected).abs() < 1e-6);

        let g = builders::manhattan(&c, &volts(&c, &p), &volts(&c, &q), &w, &mut ErrorModel::ideal());
        let v = g.steady_state()[g.output().index()];
        let expected = Manhattan::new().evaluate(&p, &q).unwrap();
        prop_assert!((c.voltage_to_value(v) - expected).abs() < 1e-6);
    }

    #[test]
    fn simulation_reaches_steady_state_for_random_graphs((p, q) in equal_pair()) {
        // The dynamic simulation must land on the same value the fixed-point
        // evaluation predicts, for any input.
        let c = AcceleratorConfig::paper_defaults();
        let g = builders::dtw(
            &c, &volts(&c, &p), &volts(&c, &q), 1.0, Band::Full,
            &mut ErrorModel::new(c.noise_seed),
        );
        let steady = g.steady_state()[g.output().index()];
        let sim = AnalogEngine::new().simulate(&g);
        prop_assert!(
            (sim.final_voltage - steady).abs() <= (steady.abs() * 0.002).max(2e-6),
            "simulated {} vs steady {}",
            sim.final_voltage,
            steady
        );
        prop_assert!(sim.convergence_time_s > 0.0);
    }
}
