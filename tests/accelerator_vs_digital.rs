//! Cross-crate integration: the analog accelerator model must track the
//! digital reference for every function, across reconfiguration, banding
//! and tiling.

use memristor_distance_accelerator::core::accelerator::FunctionParams;
use memristor_distance_accelerator::core::{AcceleratorConfig, DistanceAccelerator};
use memristor_distance_accelerator::distance::dtw::Band;
use memristor_distance_accelerator::distance::DistanceKind;

fn decisive_series(len: usize, seed: u64) -> (Vec<f64>, Vec<f64>) {
    // Differences are either ~0.05 (clear match at threshold 0.5) or ~2.5
    // (clear mismatch) — decisive relative to the converter LSB.
    let mut state = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15).wrapping_add(1);
    let mut next = || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        ((state >> 33) as f64 / (1u64 << 31) as f64) - 1.0
    };
    let p: Vec<f64> = (0..len).map(|_| next() * 2.0).collect();
    // Guarantee a mix of clear matches and clear mismatches so thresholded
    // similarity counts are never degenerate.
    let q: Vec<f64> = p
        .iter()
        .enumerate()
        .map(|(i, &v)| {
            if i % 3 == 0 {
                v + 2.5 + next() * 0.3
            } else {
                v + 0.05 * next()
            }
        })
        .collect();
    (p, q)
}

fn accelerator(kind: DistanceKind) -> DistanceAccelerator {
    let mut acc = DistanceAccelerator::new(AcceleratorConfig::paper_defaults());
    acc.configure_with(
        kind,
        FunctionParams {
            threshold: 0.5,
            ..FunctionParams::default()
        },
    )
    .expect("valid configuration");
    acc
}

#[test]
fn all_functions_track_digital_reference_across_seeds() {
    for seed in 1..=5u64 {
        let (p, q) = decisive_series(10, seed);
        for kind in DistanceKind::ALL {
            let acc = accelerator(kind);
            let outcome = acc.compute(&p, &q).expect("valid inputs");
            // Small references are judged on absolute error (the ADC LSB is
            // ~0.2 units); everything else on relative error.
            let ok = outcome.relative_error < 0.30
                || (outcome.reference.abs() < 2.0
                    && (outcome.value - outcome.reference).abs() < 0.6);
            assert!(
                ok,
                "seed {seed}, {kind}: analog {} vs digital {} ({:.1}%)",
                outcome.value,
                outcome.reference,
                outcome.relative_error * 100.0
            );
        }
    }
}

#[test]
fn one_fabric_reconfigures_through_all_six_functions() {
    let mut acc = DistanceAccelerator::new(AcceleratorConfig::paper_defaults());
    let (p, q) = decisive_series(8, 42);
    for pass in 0..2 {
        for kind in DistanceKind::ALL {
            acc.configure_with(
                kind,
                FunctionParams {
                    threshold: 0.5,
                    ..FunctionParams::default()
                },
            )
            .expect("valid configuration");
            let outcome = acc.compute(&p, &q).expect("valid inputs");
            let ok = outcome.relative_error < 0.30
                || (outcome.reference.abs() < 2.0
                    && (outcome.value - outcome.reference).abs() < 0.6);
            assert!(
                ok,
                "pass {pass}, {kind}: rel {:.1}%",
                outcome.relative_error * 100.0
            );
        }
    }
    assert_eq!(acc.reconfigurations(), 12);
}

#[test]
fn banded_dtw_reports_fewer_active_pes_and_same_value_for_near_diagonal_pairs() {
    let (p, _) = decisive_series(16, 7);
    let q: Vec<f64> = p.iter().map(|v| v + 0.05).collect(); // near-diagonal alignment
    let full = accelerator(DistanceKind::Dtw)
        .compute(&p, &q)
        .expect("valid");

    let mut banded_acc = DistanceAccelerator::new(AcceleratorConfig::paper_defaults());
    banded_acc
        .configure_with(
            DistanceKind::Dtw,
            FunctionParams {
                band: Band::SakoeChiba(3),
                threshold: 0.5,
                ..FunctionParams::default()
            },
        )
        .expect("valid configuration");
    let banded = banded_acc.compute(&p, &q).expect("valid");

    assert!(banded.active_pes < full.active_pes);
    // For a near-diagonal pair the band doesn't change the distance.
    assert!(
        (banded.reference - full.reference).abs() < 1e-9,
        "banded ref {} vs full ref {}",
        banded.reference,
        full.reference
    );
}

#[test]
fn tiled_and_untiled_row_computations_agree() {
    let (p, q) = decisive_series(24, 3);
    // Big array: single pass.
    let untiled = accelerator(DistanceKind::Manhattan)
        .compute(&p, &q)
        .expect("valid");
    assert_eq!(untiled.tiling.passes, 1);

    // Tiny array: multiple passes, same digital reference and close analog
    // value.
    let mut config = AcceleratorConfig::paper_defaults();
    config.array = memristor_distance_accelerator::core::ArrayDimensions::new(8, 8);
    let mut acc = DistanceAccelerator::new(config);
    acc.configure(DistanceKind::Manhattan).expect("valid");
    let tiled = acc.compute(&p, &q).expect("valid");
    assert_eq!(tiled.tiling.passes, 3);
    assert_eq!(tiled.reference, untiled.reference);
    // Tiling multiplies the runtime.
    assert!(tiled.convergence_time_s > untiled.convergence_time_s);
}

#[test]
fn convergence_shapes_match_paper_fig5() {
    // DTW convergence grows with length; HauD saturates.
    let times = |kind: DistanceKind| -> (f64, f64) {
        let acc = accelerator(kind);
        let (p10, q10) = decisive_series(10, 9);
        let (p40, q40) = decisive_series(40, 9);
        let t10 = acc.compute(&p10, &q10).expect("valid").convergence_time_s;
        let t40 = acc.compute(&p40, &q40).expect("valid").convergence_time_s;
        (t10, t40)
    };
    let (dtw10, dtw40) = times(DistanceKind::Dtw);
    assert!(
        dtw40 > dtw10 * 1.5,
        "DTW must grow: {dtw10:.2e} -> {dtw40:.2e}"
    );
    let (hau10, hau40) = times(DistanceKind::Hausdorff);
    assert!(
        hau40 < hau10 * 2.0,
        "HauD must stay ~flat: {hau10:.2e} -> {hau40:.2e}"
    );
    let (md10, md40) = times(DistanceKind::Manhattan);
    assert!(md40 > md10 * 1.5, "MD must grow: {md10:.2e} -> {md40:.2e}");
}
