//! Regression suite for the `BatchEngine` determinism guarantee: every
//! mining driver and the accelerator pipeline must return **bitwise
//! identical** results on a serial engine and on multi-threaded engines,
//! with ties broken by lowest index exactly as the serial scans did.

use memristor_distance_accelerator::core::{AcceleratorConfig, DistanceAccelerator};
use memristor_distance_accelerator::distance::mining::{
    KMedoids, KnnClassifier, MotifDiscovery, SubsequenceSearch,
};
use memristor_distance_accelerator::distance::{BatchEngine, DistanceKind, Dtw, Manhattan};

fn series(len: usize, seed: usize) -> Vec<f64> {
    (0..len)
        .map(|i| ((i + 11 * seed) as f64 * 0.29).sin() * 2.0 + (seed as f64 * 0.618).cos() * 0.5)
        .collect()
}

fn engines() -> Vec<BatchEngine> {
    vec![
        BatchEngine::serial(),
        BatchEngine::serial().with_threads(2),
        BatchEngine::serial().with_threads(8).with_chunk_size(3),
    ]
}

#[test]
fn knn_classify_identical_across_engines() {
    let queries: Vec<Vec<f64>> = (50..56).map(|s| series(32, s)).collect();
    let mut reference = None;
    for engine in engines() {
        let mut knn = KnnClassifier::new(Box::new(Dtw::new()), 3).with_engine(engine);
        for i in 0..24 {
            knn.fit(i % 3, series(32, i));
        }
        let results: Vec<(usize, u64, usize)> = queries
            .iter()
            .map(|q| {
                let c = knn.classify(q).unwrap();
                (c.label, c.score.to_bits(), c.nearest_index)
            })
            .collect();
        match &reference {
            None => reference = Some(results),
            Some(r) => assert_eq!(&results, r),
        }
    }
}

#[test]
fn knn_leave_one_out_identical_across_engines() {
    let mut reference = None;
    for engine in engines() {
        let mut knn = KnnClassifier::new(Box::new(Manhattan::new()), 1).with_engine(engine);
        for i in 0..20 {
            knn.fit(i % 2, series(16, i));
        }
        let acc = knn.leave_one_out_accuracy().unwrap().to_bits();
        match reference {
            None => reference = Some(acc),
            Some(r) => assert_eq!(acc, r),
        }
    }
}

#[test]
fn kmedoids_identical_across_engines() {
    let data: Vec<Vec<f64>> = (0..18).map(|s| series(12, s)).collect();
    let mut reference = None;
    for engine in engines() {
        let km = KMedoids::new(Box::new(Dtw::new()), 3).with_engine(engine);
        let r = km.cluster(&data).unwrap();
        let key = (
            r.medoids.clone(),
            r.assignments.clone(),
            r.total_cost.to_bits(),
            r.iterations,
        );
        match &reference {
            None => reference = Some(key),
            Some(k) => assert_eq!(&key, k),
        }
    }
}

#[test]
fn motif_identical_across_engines_including_stats() {
    let mut xs: Vec<f64> = (0..220)
        .map(|i| i as f64 * 0.05 + (i as f64 * 0.618).sin() * 0.4)
        .collect();
    for i in 0..12 {
        let bump = (i as f64 * 0.7).sin() * 25.0;
        xs[30 + i] = bump;
        xs[160 + i] = bump + 0.01;
    }
    let mut reference = None;
    for engine in engines() {
        let (motif, stats) = MotifDiscovery::new(12, 2)
            .with_engine(engine)
            .find_with_stats(&xs)
            .unwrap();
        let key = (motif.first, motif.second, motif.distance.to_bits(), stats);
        match &reference {
            None => reference = Some(key),
            Some(k) => assert_eq!(&key, k),
        }
    }
    let (first, second, _, _) = reference.unwrap();
    assert_eq!((first, second), (30, 160));
}

#[test]
fn motif_agrees_with_brute_force_on_every_engine() {
    let xs: Vec<f64> = (0..150)
        .map(|i| (i as f64 * 0.21).sin() * 3.0 + (i as f64 * 0.05).cos())
        .collect();
    let discovery = MotifDiscovery::new(10, 2);
    let brute = discovery.find_brute_force(&xs).unwrap();
    for engine in engines() {
        let pruned = discovery.clone().with_engine(engine).find(&xs).unwrap();
        assert_eq!((pruned.first, pruned.second), (brute.first, brute.second));
        assert!((pruned.distance - brute.distance).abs() < 1e-12);
    }
}

#[test]
fn search_identical_across_engines_including_stats() {
    let mut haystack: Vec<f64> = (0..400).map(|i| (i as f64 * 0.13).sin() * 2.0).collect();
    let query: Vec<f64> = (0..16).map(|i| (i as f64 * 0.9).cos() * 4.0).collect();
    for (i, q) in query.iter().enumerate() {
        haystack[230 + i] = *q + 0.005;
    }
    let mut reference = None;
    for engine in engines() {
        let (best, stats) = SubsequenceSearch::new(16, 2)
            .with_engine(engine)
            .run(&query, &haystack)
            .unwrap();
        let key = (best.offset, best.distance.to_bits(), stats);
        match &reference {
            None => reference = Some(key),
            Some(k) => assert_eq!(&key, k),
        }
    }
    assert_eq!(reference.unwrap().0, 230);
}

#[test]
fn znormalized_search_agrees_with_brute_force_on_every_engine() {
    let haystack: Vec<f64> = (0..300)
        .map(|i| (i as f64 * 0.17).sin() * (1.0 + i as f64 * 0.01))
        .collect();
    let query: Vec<f64> = haystack[120..140].iter().map(|v| v * 3.0 + 5.0).collect();
    let search = SubsequenceSearch::new(20, 2).with_z_normalization(true);
    let brute = search.run_brute_force(&query, &haystack).unwrap();
    for engine in engines() {
        let (best, _) = search
            .clone()
            .with_engine(engine)
            .run(&query, &haystack)
            .unwrap();
        assert_eq!(best.offset, brute.offset);
        assert!((best.distance - brute.distance).abs() < 1e-12);
    }
}

#[test]
fn pipeline_stream_identical_across_engines() {
    let mut acc = DistanceAccelerator::new(AcceleratorConfig::paper_defaults());
    acc.configure(DistanceKind::Manhattan).unwrap();
    let pairs: Vec<(Vec<f64>, Vec<f64>)> = (0..10)
        .map(|k| (series(14, k), series(14, k + 100)))
        .collect();
    let serial = acc.run_stream_with(&pairs, &BatchEngine::serial()).unwrap();
    for engine in engines() {
        let report = acc.run_stream_with(&pairs, &engine).unwrap();
        assert_eq!(report, serial);
        assert_eq!(
            report.analog_time_s.to_bits(),
            serial.analog_time_s.to_bits()
        );
        assert_eq!(
            report.mean_relative_error.to_bits(),
            serial.mean_relative_error.to_bits()
        );
    }
}
