//! Golden equivalence at accelerator level: the structure-caching solver
//! core must reproduce the frozen legacy path on the actual Fig. 2 PE
//! netlists — one single-cell circuit per supported distance config — and
//! on an array-scale memristor netlist that lands on the sparse backend.

use memristor_distance_accelerator::core::{pe, AcceleratorConfig};
use memristor_distance_accelerator::spice::{legacy, Netlist, TransientSpec, Waveform};

const TOL: f64 = 1.0e-12;

fn assert_runs_match(
    what: &str,
    reference: &memristor_distance_accelerator::spice::TransientResult,
    new: &memristor_distance_accelerator::spice::TransientResult,
) {
    assert_eq!(reference.times(), new.times(), "{what}: time axes differ");
    let pairs = [
        ("voltage", reference.voltages_flat(), new.voltages_flat()),
        ("current", reference.currents_flat(), new.currents_flat()),
    ];
    for (kind, a, b) in pairs {
        assert_eq!(a.len(), b.len(), "{what}/{kind}: lengths differ");
        for (i, (&r, &n)) in a.iter().zip(b).enumerate() {
            assert!(
                (r - n).abs() <= TOL * r.abs().max(1.0),
                "{what}/{kind}[{i}]: legacy {r:.17e} vs new {n:.17e}"
            );
        }
    }
}

fn check_pe(what: &str, net: &Netlist) {
    // PE netlists are driven by DC-encoded inputs and settle from the
    // operating point; a cold start from all-zero state does not converge
    // (on the legacy path either), so run the settling transient from DC.
    let spec = TransientSpec::new(1.0e-9, 2.0e-12).from_dc();
    let reference = legacy::run_transient(net, &spec).unwrap();
    let new = net.transient(&spec).unwrap();
    assert_runs_match(what, &reference, &new);
    // And the DC operating point.
    let dc_ref = legacy::solve_dc(net).unwrap();
    let dc_new = net.dc().unwrap();
    for (i, (&r, &n)) in dc_ref.iter().zip(&dc_new).enumerate() {
        assert!(
            (r - n).abs() <= TOL * r.abs().max(1.0),
            "{what}/dc node {i}: legacy {r:.17e} vs new {n:.17e}"
        );
    }
}

#[test]
fn dtw_pe_matches_legacy() {
    let c = AcceleratorConfig::paper_defaults();
    let (net, _) = pe::dtw::build_matrix(&c, &[1.5], &[0.5], 1.0).unwrap();
    check_pe("dtw 1x1", &net);
}

#[test]
fn lcs_pe_matches_legacy() {
    let c = AcceleratorConfig::paper_defaults();
    let (net, _) = pe::lcs::build_matrix(&c, &[0.0], &[0.1], 0.2, 1.0).unwrap();
    check_pe("lcs 1x1", &net);
}

#[test]
fn edit_pe_matches_legacy() {
    let c = AcceleratorConfig::paper_defaults();
    let (net, _) = pe::edit::build_matrix(&c, &[0.0], &[2.0], 0.2).unwrap();
    check_pe("edit 1x1", &net);
}

#[test]
fn hausdorff_pe_matches_legacy() {
    let c = AcceleratorConfig::paper_defaults();
    let (net, _) = pe::hausdorff::build_matrix(&c, &[0.0, 4.0], &[1.0, 3.5], 1.0).unwrap();
    check_pe("hausdorff 2x2", &net);
}

#[test]
fn manhattan_row_matches_legacy() {
    let c = AcceleratorConfig::paper_defaults();
    let (net, _) =
        pe::manhattan::build_row(&c, &[0.0, 1.0, -0.5], &[0.5, 0.5, 0.5], &[1.0; 3]).unwrap();
    check_pe("manhattan row", &net);
}

#[test]
fn hamming_row_matches_legacy() {
    let c = AcceleratorConfig::paper_defaults();
    let (net, _) =
        pe::hamming::build_row(&c, &[0.0, 1.0, 2.0], &[0.0, 5.0, 2.0], 0.2, &[1.0; 3]).unwrap();
    check_pe("hamming row", &net);
}

#[test]
fn array_scale_netlist_matches_legacy_on_sparse_backend() {
    // A 16 x 16 memristive array with drivers and per-node parasitics:
    // ~270 unknowns, squarely on the sparse backend, well-conditioned.
    let mut net = Netlist::new();
    let n = 16usize;
    let mut nodes = Vec::with_capacity(n * n);
    for r in 0..n {
        for c in 0..n {
            nodes.push(net.node(&format!("a{r}_{c}")));
        }
    }
    let at = |r: usize, c: usize| nodes[r * n + c];
    for r in 0..n {
        let drv = net.node(&format!("drv{r}"));
        net.voltage_source(
            drv,
            Netlist::GROUND,
            Waveform::step(0.25 + 0.005 * r as f64),
        );
        net.resistor(drv, at(r, 0), 1.0e3);
        net.resistor(at(r, n - 1), Netlist::GROUND, 10.0e3);
    }
    for r in 0..n {
        for c in 0..n {
            let ohms = 1.0e3 + 99.0e3 * ((r * 13 + c * 7) % 89) as f64 / 88.0;
            if c + 1 < n {
                net.memristor(at(r, c), at(r, c + 1), ohms);
            }
            if r + 1 < n {
                net.memristor(at(r, c), at(r + 1, c), ohms + 750.0);
            }
            net.capacitor(at(r, c), Netlist::GROUND, 20.0e-15);
        }
    }
    let spec = TransientSpec::new(1.0e-9, 10.0e-12);
    let reference = legacy::run_transient(&net, &spec).unwrap();
    let new = net.transient(&spec).unwrap();
    assert_runs_match("array 16x16", &reference, &new);
    assert!(
        new.stats().n_unknowns > 150,
        "should be sparse-backend size"
    );
}
