//! Technology-node scaling of published component powers.
//!
//! Section 4.3: "The power for a recently popular op-amp with a
//! gain-bandwidth product 303 GHz is 197 µW [Zuo & Islam] under 0.35 µm
//! technology node, and the power for the 32 nm technology node is projected
//! to 18 µW with ideal scaling for capacitance. The same procedure goes for
//! a recent 8-bit 1.6 GS/s DAC (Tseng) in 90 nm."
//!
//! Ideal capacitance scaling makes dynamic power proportional to the feature
//! size (C ∝ λ at fixed voltage), so `P(node) = P(ref) · node/ref`.

/// A CMOS technology node.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd)]
pub struct TechnologyNode {
    /// Feature size, m.
    pub feature_size: f64,
}

impl TechnologyNode {
    /// 0.35 µm.
    pub const NM_350: TechnologyNode = TechnologyNode {
        feature_size: 350.0e-9,
    };
    /// 90 nm.
    pub const NM_90: TechnologyNode = TechnologyNode {
        feature_size: 90.0e-9,
    };
    /// 32 nm — the paper's implementation node.
    pub const NM_32: TechnologyNode = TechnologyNode {
        feature_size: 32.0e-9,
    };

    /// Projects a power figure published at `self` to `target` with ideal
    /// capacitance scaling.
    pub fn scale_power(self, power_w: f64, target: TechnologyNode) -> f64 {
        power_w * target.feature_size / self.feature_size
    }
}

/// The projected 32 nm op-amp power, W (paper: 18 µW).
pub fn opamp_power_32nm() -> f64 {
    TechnologyNode::NM_350.scale_power(197.0e-6, TechnologyNode::NM_32)
}

/// The projected 32 nm DAC power, W (paper: 32 mW from a 90 nm part).
///
/// Note: the paper quotes the *projected* power as 32 mW, implying the
/// published 90 nm part consumed ~90 mW; we carry the paper's projected
/// figure.
pub fn dac_power_32nm() -> f64 {
    32.0e-3
}

/// The 32 nm ADC power, W (published directly at 32 nm: 35 mW).
pub fn adc_power_32nm() -> f64 {
    35.0e-3
}

/// Static power of one HRS memristor path at the given supply, W.
///
/// The paper charges 10 µW per memristor assuming "at least one memristor
/// is set to HRS from the source to the ground": an average `Vcc/2` across
/// an effective 25 kΩ path.
pub fn memristor_power(vcc: f64) -> f64 {
    let v = vcc / 2.0;
    v * v / 25.0e3
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn opamp_projection_matches_paper() {
        // 197 µW × 32/350 = 18.01 µW.
        let p = opamp_power_32nm();
        assert!((p - 18.0e-6).abs() < 0.5e-6, "opamp power {p}");
    }

    #[test]
    fn memristor_power_matches_paper() {
        // (0.5 V)² / 25 kΩ = 10 µW.
        assert!((memristor_power(1.0) - 10.0e-6).abs() < 1e-9);
    }

    #[test]
    fn scaling_is_linear_in_feature_size() {
        let p90 = TechnologyNode::NM_90.scale_power(90.0e-3, TechnologyNode::NM_32);
        assert!((p90 - 32.0e-3).abs() < 1e-4, "90 nm -> 32 nm: {p90}");
        // Identity scaling.
        let same = TechnologyNode::NM_32.scale_power(1.0, TechnologyNode::NM_32);
        assert_eq!(same, 1.0);
    }

    #[test]
    fn converter_figures() {
        assert_eq!(dac_power_32nm(), 32.0e-3);
        assert_eq!(adc_power_32nm(), 35.0e-3);
    }
}
