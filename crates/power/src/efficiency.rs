//! Speedup and energy-efficiency comparisons — the quantities behind the
//! paper's headline "3.5×–376× speedup" and "1–3 orders of magnitude
//! energy-efficiency improvement (26.7×–8767×)".

use mda_distance::DistanceKind;

use crate::baselines::PublishedBaseline;

/// One accelerator-vs-baseline comparison.
#[derive(Debug, Clone, PartialEq)]
pub struct EfficiencyComparison {
    /// The distance function compared.
    pub kind: DistanceKind,
    /// Baseline platform label.
    pub platform: &'static str,
    /// Our per-element time, s.
    pub ours_time_s: f64,
    /// Baseline per-element time, s.
    pub baseline_time_s: f64,
    /// Our power, W.
    pub ours_power_w: f64,
    /// Baseline power, W.
    pub baseline_power_w: f64,
}

impl EfficiencyComparison {
    /// Builds a comparison from a measured per-element time and power
    /// budget against a published baseline.
    pub fn new(baseline: &PublishedBaseline, ours_time_s: f64, ours_power_w: f64) -> Self {
        EfficiencyComparison {
            kind: baseline.kind,
            platform: baseline.platform,
            ours_time_s,
            baseline_time_s: baseline.per_element_time_s,
            ours_power_w,
            baseline_power_w: baseline.power_w,
        }
    }

    /// Performance speedup: `baseline_time / ours_time`.
    pub fn speedup(&self) -> f64 {
        self.baseline_time_s / self.ours_time_s
    }

    /// Energy per element on our accelerator, J.
    pub fn ours_energy_j(&self) -> f64 {
        self.ours_time_s * self.ours_power_w
    }

    /// Energy per element on the baseline, J.
    pub fn baseline_energy_j(&self) -> f64 {
        self.baseline_time_s * self.baseline_power_w
    }

    /// Energy-efficiency improvement: `baseline_energy / ours_energy`,
    /// equivalently `speedup × power_ratio`.
    pub fn energy_efficiency_gain(&self) -> f64 {
        self.baseline_energy_j() / self.ours_energy_j()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baselines::baseline_for;

    #[test]
    fn speedup_and_efficiency_arithmetic() {
        let b = baseline_for(DistanceKind::Manhattan); // 1.5 ns/elem, 137 W
        let c = EfficiencyComparison::new(&b, 0.015e-9, 2.16);
        assert!((c.speedup() - 100.0).abs() < 1e-9);
        // Efficiency gain = speedup * power ratio = 100 * 137/2.16.
        let expected = 100.0 * 137.0 / 2.16;
        assert!((c.energy_efficiency_gain() - expected).abs() / expected < 1e-12);
    }

    #[test]
    fn identity_comparison_is_unity() {
        let b = baseline_for(DistanceKind::Dtw);
        let c = EfficiencyComparison::new(&b, b.per_element_time_s, b.power_w);
        assert!((c.speedup() - 1.0).abs() < 1e-12);
        assert!((c.energy_efficiency_gain() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn efficiency_decomposes_into_speedup_times_power_ratio() {
        let b = baseline_for(DistanceKind::Lcs);
        let c = EfficiencyComparison::new(&b, 1.0e-9, 2.97);
        let decomposed = c.speedup() * (c.baseline_power_w / c.ours_power_w);
        assert!((c.energy_efficiency_gain() - decomposed).abs() / decomposed < 1e-12);
    }
}
