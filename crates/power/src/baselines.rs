//! The published accelerators the paper compares against (Fig. 6(a) and the
//! Section 4.3 power figures), and the CPU reference platform of Fig. 6(b).
//!
//! The paper reports each baseline's *power* explicitly (FPGA via Xilinx
//! Power Estimator, GPUs at 80 % of TDP) but only the aggregate speedup
//! range (3.5×–376×). The per-element processing times below are estimates
//! reconstructed from the cited publications' throughput claims — e.g. a
//! systolic FPGA DTW pipeline retiring one cell per cycle at ~100 MHz, GPU
//! kernels amortizing launch overheads over batched comparisons — and are
//! documented here as the substitution for the unavailable original
//! measurements (see DESIGN.md).

use mda_distance::DistanceKind;

/// A published hardware baseline.
#[derive(Debug, Clone, PartialEq)]
pub struct PublishedBaseline {
    /// Which distance function it accelerates.
    pub kind: DistanceKind,
    /// Platform label used in Fig. 6(a).
    pub platform: &'static str,
    /// Citation key from the paper's bibliography.
    pub citation: &'static str,
    /// Estimated per-element processing time, s.
    pub per_element_time_s: f64,
    /// Power draw used in the paper's Section 4.3 comparison, W.
    pub power_w: f64,
}

/// The six baselines of Fig. 6(a), in the paper's order.
pub fn published_baselines() -> Vec<PublishedBaseline> {
    vec![
        PublishedBaseline {
            kind: DistanceKind::Dtw,
            platform: "FPGA",
            citation: "[25] Sart et al., ICDE'10",
            // Deeply pipelined systolic array retiring one sequence
            // element per ~0.8 ns across its PE row — within a small factor
            // of the analog fabric, which is why the paper's speedup range
            // bottoms out at 3.5x.
            per_element_time_s: 0.8e-9,
            power_w: 4.76,
        },
        PublishedBaseline {
            kind: DistanceKind::Lcs,
            platform: "GPU",
            citation: "[22] Ozsoy et al., PMAM'14",
            per_element_time_s: 20.0e-9,
            power_w: 240.0,
        },
        PublishedBaseline {
            kind: DistanceKind::Edit,
            platform: "GPU",
            citation: "[9] Farivar et al., InPar'12",
            per_element_time_s: 90.0e-9,
            power_w: 175.0,
        },
        PublishedBaseline {
            kind: DistanceKind::Hausdorff,
            platform: "GPU",
            citation: "[14] Kim et al., Visual Computer'10",
            per_element_time_s: 1.0e-9,
            power_w: 120.0,
        },
        PublishedBaseline {
            kind: DistanceKind::Hamming,
            platform: "GPU",
            citation: "[29] Vandal & Savvides, BTAS'10",
            per_element_time_s: 1.8e-9,
            power_w: 150.0,
        },
        PublishedBaseline {
            kind: DistanceKind::Manhattan,
            platform: "GPU",
            citation: "[8] Chang et al., SNPD'09",
            per_element_time_s: 1.5e-9,
            power_w: 137.0,
        },
    ]
}

/// The baseline for one function.
pub fn baseline_for(kind: DistanceKind) -> PublishedBaseline {
    published_baselines()
        .into_iter()
        .find(|b| b.kind == kind)
        .expect("all six functions have baselines")
}

/// The CPU reference platform of Fig. 6(b): the paper used a quad-core
/// i5-3470 running MSVC `-O2` C; this reproduction measures the
/// `mda-distance` implementations on the host instead. A nominal desktop
/// package power is carried for energy comparisons.
pub fn cpu_reference() -> PublishedBaseline {
    PublishedBaseline {
        kind: DistanceKind::Dtw, // placeholder kind; the CPU runs all six
        platform: "CPU",
        citation: "i5-3470 class desktop, optimized C (paper Section 4.3)",
        per_element_time_s: f64::NAN, // measured at run time by the harness
        power_w: 77.0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn one_baseline_per_function() {
        let bs = published_baselines();
        assert_eq!(bs.len(), 6);
        for kind in DistanceKind::ALL {
            assert!(bs.iter().any(|b| b.kind == kind), "{kind} missing");
        }
    }

    #[test]
    fn power_figures_match_paper_section_4_3() {
        assert_eq!(baseline_for(DistanceKind::Dtw).power_w, 4.76);
        assert_eq!(baseline_for(DistanceKind::Lcs).power_w, 240.0);
        assert_eq!(baseline_for(DistanceKind::Edit).power_w, 175.0);
        assert_eq!(baseline_for(DistanceKind::Hausdorff).power_w, 120.0);
        assert_eq!(baseline_for(DistanceKind::Hamming).power_w, 150.0);
        assert_eq!(baseline_for(DistanceKind::Manhattan).power_w, 137.0);
    }

    #[test]
    fn only_dtw_uses_fpga() {
        for b in published_baselines() {
            if b.kind == DistanceKind::Dtw {
                assert_eq!(b.platform, "FPGA");
            } else {
                assert_eq!(b.platform, "GPU");
            }
        }
    }

    #[test]
    fn per_element_times_are_plausible() {
        for b in published_baselines() {
            assert!(b.per_element_time_s >= 0.5e-9 && b.per_element_time_s < 1.0e-6);
        }
    }
}
