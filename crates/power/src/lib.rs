//! # mda-power
//!
//! Power and energy-efficiency models reproducing the paper's Section 4.3:
//!
//! * [`technology`] — ideal-capacitance scaling of published component
//!   powers across technology nodes (the 197 µW / 0.35 µm op-amp projected
//!   to 18 µW at 32 nm, the 90 nm DAC to 32 mW);
//! * [`budget`] — per-configuration accelerator power budgets: active
//!   op-amps, memristor static power, DAC/ADC arrays;
//! * [`baselines`] — the published FPGA/GPU accelerators the paper compares
//!   against (per-element processing-time estimates and power draws);
//! * [`efficiency`] — speedup and energy-efficiency ratios (the paper's
//!   26.7×–8767× improvement range).
//!
//! ```
//! use mda_power::budget::PowerBudget;
//! use mda_distance::DistanceKind;
//!
//! // The paper's DTW operating point: 128-PE array, Sakoe–Chiba R = 5%·n.
//! let b = PowerBudget::paper_operating_point(DistanceKind::Dtw);
//! assert!((b.total_w() - 0.58).abs() < 0.06); // Section 4.3: 0.58 W
//! ```

pub mod baselines;
pub mod budget;
pub mod efficiency;
pub mod technology;

pub use baselines::{cpu_reference, PublishedBaseline};
pub use budget::{PowerBreakdown, PowerBudget};
pub use efficiency::EfficiencyComparison;
pub use technology::TechnologyNode;
