//! Per-configuration accelerator power budgets — the arithmetic of the
//! paper's Section 4.3.
//!
//! For the DTW configuration the paper powers only the Sakoe–Chiba band:
//! `7R(2n − R)` op-amps with `R = 5%·n`; every other configuration powers
//! the full `n × n` array (row-structure functions process `n` sequences
//! concurrently, one per array row). Converter power scales with the element
//! throughput across the analog interface.

use mda_core::{AcceleratorConfig, ConfigurationLib};
use mda_distance::DistanceKind;

use crate::technology::{adc_power_32nm, dac_power_32nm, memristor_power, opamp_power_32nm};

/// The element rate the paper's converter figures imply (0.13 W of DAC at
/// 32 mW per 1.6 GS/s converter ⇒ 6.5 GS/s on both interfaces).
pub const PAPER_ELEMENT_RATE: f64 = 6.5e9;

/// A power budget broken down by component class.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PowerBreakdown {
    /// Active op-amps, W.
    pub opamps_w: f64,
    /// Memristor static power, W.
    pub memristors_w: f64,
    /// DAC array, W.
    pub dac_w: f64,
    /// ADC array, W.
    pub adc_w: f64,
}

impl PowerBreakdown {
    /// Total power, W.
    pub fn total_w(&self) -> f64 {
        self.opamps_w + self.memristors_w + self.dac_w + self.adc_w
    }
}

/// Computes accelerator power budgets.
#[derive(Debug, Clone)]
pub struct PowerBudget {
    config: AcceleratorConfig,
    lib: ConfigurationLib,
}

impl PowerBudget {
    /// A budget calculator for the given configuration.
    pub fn new(config: AcceleratorConfig) -> Self {
        PowerBudget {
            config,
            lib: ConfigurationLib::paper_library(),
        }
    }

    /// Number of active op-amps for a length-`n` configuration.
    ///
    /// DTW uses the paper's banded closed form `7R(2n − R)`, `R = 5%·n`;
    /// the rest power the full array.
    pub fn active_opamps(&self, kind: DistanceKind, n: usize) -> f64 {
        let per_pe = self.lib.configuration(kind).opamps_per_pe as f64;
        let n = n as f64;
        match kind {
            DistanceKind::Dtw => {
                let r = 0.05 * n;
                per_pe * r * (2.0 * n - r)
            }
            _ => per_pe * n * n,
        }
    }

    /// The full breakdown at sequence length `n` and converter element rate
    /// `element_rate` (samples/s on each interface).
    pub fn breakdown(&self, kind: DistanceKind, n: usize, element_rate: f64) -> PowerBreakdown {
        let opamps = self.active_opamps(kind, n);
        let opamps_w = opamps * opamp_power_32nm();
        // "Assuming at least one memristor is set to HRS from the source to
        // the ground": two static paths per op-amp at 10 µW each.
        let memristors_w = opamps * 2.0 * memristor_power(self.config.vcc);
        let dac_w = element_rate / self.config.dac.sample_rate * dac_power_32nm();
        let adc_w = element_rate / self.config.adc.sample_rate * adc_power_32nm();
        PowerBreakdown {
            opamps_w,
            memristors_w,
            dac_w,
            adc_w,
        }
    }

    /// The Section 4.3 operating point: `n = 128`, the paper's implied
    /// 6.5 GS/s element rate.
    pub fn paper_operating_point(kind: DistanceKind) -> PowerBreakdown {
        PowerBudget::new(AcceleratorConfig::paper_defaults()).breakdown(
            kind,
            128,
            PAPER_ELEMENT_RATE,
        )
    }
}

/// The total power figures the paper reports in Section 4.3, W.
pub fn paper_reported_power(kind: DistanceKind) -> f64 {
    match kind {
        DistanceKind::Dtw => 0.58,
        DistanceKind::Lcs => 2.97,
        DistanceKind::Edit => 6.36,
        DistanceKind::Hausdorff => 2.64,
        DistanceKind::Hamming => 2.95,
        DistanceKind::Manhattan => 2.16,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dtw_budget_reproduces_paper_terms() {
        let b = PowerBudget::paper_operating_point(DistanceKind::Dtw);
        // Paper: op-amps 0.20 W, memristors 0.22 W, DAC 0.13 W, ADC 0.026 W.
        assert!((b.opamps_w - 0.20).abs() < 0.01, "opamps {}", b.opamps_w);
        assert!(
            (b.memristors_w - 0.22).abs() < 0.01,
            "memristors {}",
            b.memristors_w
        );
        assert!((b.dac_w - 0.13).abs() < 0.005, "dac {}", b.dac_w);
        assert!((b.adc_w - 0.026).abs() < 0.002, "adc {}", b.adc_w);
        assert!((b.total_w() - 0.58).abs() < 0.02, "total {}", b.total_w());
    }

    #[test]
    fn all_configurations_within_shape_of_paper() {
        // We don't match the paper's per-function op-amp census exactly, but
        // every configuration must land within 25 % of its reported total
        // and preserve the ordering DTW << MD < HauD/HamD/LCS < EdD.
        for kind in DistanceKind::ALL {
            let total = PowerBudget::paper_operating_point(kind).total_w();
            let reported = paper_reported_power(kind);
            let rel = (total - reported).abs() / reported;
            assert!(
                rel < 0.25,
                "{kind}: computed {total:.2} W vs reported {reported} W (rel {rel:.2})"
            );
        }
        let t = |k| PowerBudget::paper_operating_point(k).total_w();
        assert!(t(DistanceKind::Dtw) < t(DistanceKind::Manhattan));
        assert!(t(DistanceKind::Manhattan) < t(DistanceKind::Edit));
        assert!(t(DistanceKind::Lcs) < t(DistanceKind::Edit));
    }

    #[test]
    fn banding_makes_dtw_cheapest() {
        // The Sakoe–Chiba band powers ~10x fewer op-amps than a full array
        // would.
        let budget = PowerBudget::new(AcceleratorConfig::paper_defaults());
        let banded = budget.active_opamps(DistanceKind::Dtw, 128);
        let full = 7.0 * 128.0 * 128.0;
        assert!(banded < full / 5.0);
    }

    #[test]
    fn power_scales_with_length() {
        let budget = PowerBudget::new(AcceleratorConfig::paper_defaults());
        let small = budget.breakdown(DistanceKind::Lcs, 32, PAPER_ELEMENT_RATE);
        let large = budget.breakdown(DistanceKind::Lcs, 128, PAPER_ELEMENT_RATE);
        assert!(large.opamps_w > small.opamps_w * 10.0);
        // Converter power is rate-bound, not length-bound.
        assert_eq!(small.dac_w, large.dac_w);
    }
}
