//! The TCP server: an epoll event-loop serving thread, one coalescing
//! dispatcher, and graceful drain-then-shutdown.
//!
//! All connections are multiplexed on a single readiness-driven thread
//! ([`crate::event_loop`]): non-blocking sockets, per-connection read/write
//! buffers with incremental frame decode, and request pipelining up to
//! `max_pipeline_depth` per connection. Control ops (ping/metrics) and
//! dataset management (upload/list/drop against the resident
//! [`DatasetStore`]) are answered inline on the loop; compute ops are
//! decomposed — resolving resident-dataset references — and submitted to
//! the coalescing queue, whose dispatcher pushes finished replies back to
//! the loop through the completion queue + eventfd wake. Connections that
//! open with `GET ` are served the metrics registry as an HTTP/1.1 text
//! response and closed — point a browser or scraper at the same port.
//!
//! Shutdown is a drain: the listener is dropped, admission control refuses
//! new work with `shutting_down`, every already-queued job still computes,
//! and its reply is flushed before sockets close (the dispatcher is joined
//! *before* the loop is told to finish, so every admitted completion is
//! serialized first).

use std::io;
use std::net::SocketAddr;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

use mda_distance::BatchEngine;
use mda_routing::{Router, RouterConfig};

use crate::config::{ConfigError, ServerConfig};
use crate::datasets::DatasetStore;
use crate::event_loop::{wake_pair, EventLoop};
use crate::metrics::Metrics;
use crate::queue::Coalescer;

/// Why the server failed to start.
#[derive(Debug)]
pub enum ServerError {
    /// The configuration was rejected.
    Config(ConfigError),
    /// Binding or socket setup failed.
    Io(io::Error),
}

impl std::fmt::Display for ServerError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServerError::Config(e) => write!(f, "{e}"),
            ServerError::Io(e) => write!(f, "server io error: {e}"),
        }
    }
}

impl std::error::Error for ServerError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServerError::Config(e) => Some(e),
            ServerError::Io(e) => Some(e),
        }
    }
}

impl From<ConfigError> for ServerError {
    fn from(e: ConfigError) -> Self {
        ServerError::Config(e)
    }
}

impl From<io::Error> for ServerError {
    fn from(e: io::Error) -> Self {
        ServerError::Io(e)
    }
}

/// A running `mda-server` instance.
///
/// Dropping the handle performs a full graceful shutdown (equivalent to
/// [`Server::shutdown_and_join`]).
pub struct Server {
    local_addr: SocketAddr,
    metrics: Arc<Metrics>,
    queue: Arc<Coalescer>,
    store: Arc<DatasetStore>,
    shutdown: Arc<AtomicBool>,
    finish: Arc<AtomicBool>,
    router: Arc<Router>,
    wake: Arc<crate::event_loop::WakeFd>,
    serve: Option<JoinHandle<()>>,
    dispatcher: Option<JoinHandle<()>>,
}

impl Server {
    /// Validates `config`, binds the listener, and spawns the event-loop
    /// and dispatcher threads.
    ///
    /// # Errors
    ///
    /// [`ServerError::Config`] for invalid settings, [`ServerError::Io`]
    /// when the bind or epoll/eventfd setup fails.
    pub fn start(config: ServerConfig) -> Result<Server, ServerError> {
        config.validate()?;
        let mut engine = BatchEngine::new();
        if let Some(workers) = config.workers {
            engine = engine.with_threads(workers);
        }
        if let Some(chunk) = config.chunk_size {
            engine = engine.with_chunk_size(chunk);
        }
        let listener = std::net::TcpListener::bind(&config.addr)?;
        let local_addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;

        let metrics = Arc::new(Metrics::new());
        let queue = Arc::new(Coalescer::new(
            Arc::clone(&metrics),
            config.max_queue_items,
            config.batch_max_items,
        ));
        let store = Arc::new(DatasetStore::new(config.dataset_max_bytes));
        let (wake, completions) = wake_pair()?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let finish = Arc::new(AtomicBool::new(false));
        let router = Arc::new(Router::new(RouterConfig {
            fleet_power_w: config.fleet_power_w,
        }));

        let dispatcher = queue.spawn_dispatcher(engine);
        // Streams shard over the same worker count the engine uses; the
        // ring is the routing seam a multi-worker deployment will honour.
        let stream_shards = config.workers.unwrap_or(4).max(1) as u32;
        let event_loop = EventLoop {
            config,
            metrics: Arc::clone(&metrics),
            queue: Arc::clone(&queue),
            store: Arc::clone(&store),
            completions,
            wake: Arc::clone(&wake),
            shutdown: Arc::clone(&shutdown),
            finish: Arc::clone(&finish),
            router: Arc::clone(&router),
            streams: std::cell::RefCell::new(crate::streams::StreamRegistry::new(stream_shards)),
            stream_events: std::cell::RefCell::new(Vec::new()),
        };
        let serve = std::thread::Builder::new()
            .name("mda-event-loop".into())
            .spawn(move || event_loop.run(listener))
            .expect("spawn event-loop thread");

        Ok(Server {
            local_addr,
            metrics,
            queue,
            store,
            shutdown,
            finish,
            router,
            wake,
            serve: Some(serve),
            dispatcher: Some(dispatcher),
        })
    }

    /// The bound address (resolves port 0 binds).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// The live metrics registry.
    pub fn metrics(&self) -> &Arc<Metrics> {
        &self.metrics
    }

    /// The resident dataset store (for embedding and tests).
    pub fn datasets(&self) -> &Arc<DatasetStore> {
        &self.store
    }

    /// The accuracy-SLA / power-budget router serving this instance.
    pub fn router(&self) -> &Arc<Router> {
        &self.router
    }

    /// Starts the drain: stop accepting, refuse new work, keep computing
    /// what is already queued. Idempotent and non-blocking.
    pub fn begin_shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
        self.queue.begin_drain();
        self.wake.wake();
    }

    /// `true` once [`Server::begin_shutdown`] has been called.
    pub fn is_shutting_down(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
    }

    /// Drains and stops the server: every job queued before the call is
    /// computed and its reply flushed before sockets close.
    pub fn shutdown_and_join(mut self) {
        self.join_all();
    }

    fn join_all(&mut self) {
        self.begin_shutdown();
        // The dispatcher exits only after the queue is drained, so every
        // admitted reply is in the completion queue by the time it joins.
        if let Some(h) = self.dispatcher.take() {
            let _ = h.join();
        }
        // Now tell the loop to serialize the remaining completions, flush
        // every write buffer, and exit.
        self.finish.store(true, Ordering::SeqCst);
        self.wake.wake();
        if let Some(h) = self.serve.take() {
            let _ = h.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.join_all();
    }
}
