//! The TCP server: accept loop, per-connection reader/writer threads, and
//! graceful drain-then-shutdown.
//!
//! Each connection gets a reader thread (decodes frames, answers control
//! ops inline, submits compute ops to the coalescing queue) and a writer
//! thread (serializes replies from an mpsc channel, so dispatcher replies
//! and inline replies share one ordered writer). Connections that open
//! with `GET ` are served the metrics registry as an HTTP/1.1 text
//! response and closed — point a browser or scraper at the same port.
//!
//! Shutdown is a drain: the accept loop stops, admission control refuses
//! new work with `shutting_down`, every already-queued job still computes
//! and its reply is flushed, and only then are sockets closed.

use std::io::{self, BufReader, BufWriter, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use mda_distance::BatchEngine;

use crate::config::{ConfigError, ServerConfig};
use crate::exec::decompose;
use crate::metrics::Metrics;
use crate::protocol::{
    decode_request, encode_reply, read_frame, write_frame, Envelope, ProtocolError, Reply, Request,
    ResponseBody,
};
use crate::queue::{Coalescer, Job};

/// Why the server failed to start.
#[derive(Debug)]
pub enum ServerError {
    /// The configuration was rejected.
    Config(ConfigError),
    /// Binding or socket setup failed.
    Io(io::Error),
}

impl std::fmt::Display for ServerError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServerError::Config(e) => write!(f, "{e}"),
            ServerError::Io(e) => write!(f, "server io error: {e}"),
        }
    }
}

impl std::error::Error for ServerError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServerError::Config(e) => Some(e),
            ServerError::Io(e) => Some(e),
        }
    }
}

impl From<ConfigError> for ServerError {
    fn from(e: ConfigError) -> Self {
        ServerError::Config(e)
    }
}

impl From<io::Error> for ServerError {
    fn from(e: io::Error) -> Self {
        ServerError::Io(e)
    }
}

struct Inner {
    config: ServerConfig,
    metrics: Arc<Metrics>,
    queue: Arc<Coalescer>,
    shutdown: AtomicBool,
    /// Socket clones for unblocking readers at shutdown.
    conns: Mutex<Vec<TcpStream>>,
    conn_handles: Mutex<Vec<JoinHandle<()>>>,
}

/// A running `mda-server` instance.
///
/// Dropping the handle performs a full graceful shutdown (equivalent to
/// [`Server::shutdown_and_join`]).
pub struct Server {
    local_addr: SocketAddr,
    inner: Arc<Inner>,
    accept: Option<JoinHandle<()>>,
    dispatcher: Option<JoinHandle<()>>,
}

impl Server {
    /// Validates `config`, binds the listener, and spawns the accept and
    /// dispatcher threads.
    ///
    /// # Errors
    ///
    /// [`ServerError::Config`] for invalid settings, [`ServerError::Io`]
    /// when the bind fails.
    pub fn start(config: ServerConfig) -> Result<Server, ServerError> {
        config.validate()?;
        let mut engine = BatchEngine::new();
        if let Some(workers) = config.workers {
            engine = engine.with_threads(workers);
        }
        if let Some(chunk) = config.chunk_size {
            engine = engine.with_chunk_size(chunk);
        }
        let listener = TcpListener::bind(&config.addr)?;
        let local_addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;

        let metrics = Arc::new(Metrics::new());
        let queue = Arc::new(Coalescer::new(
            Arc::clone(&metrics),
            config.max_queue_items,
            config.batch_max_items,
        ));
        let dispatcher = queue.spawn_dispatcher(engine);
        let inner = Arc::new(Inner {
            config,
            metrics,
            queue,
            shutdown: AtomicBool::new(false),
            conns: Mutex::new(Vec::new()),
            conn_handles: Mutex::new(Vec::new()),
        });

        let accept_inner = Arc::clone(&inner);
        let accept = std::thread::Builder::new()
            .name("mda-accept".into())
            .spawn(move || accept_loop(&accept_inner, listener))
            .expect("spawn accept thread");

        Ok(Server {
            local_addr,
            inner,
            accept: Some(accept),
            dispatcher: Some(dispatcher),
        })
    }

    /// The bound address (resolves port 0 binds).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// The live metrics registry.
    pub fn metrics(&self) -> &Arc<Metrics> {
        &self.inner.metrics
    }

    /// Starts the drain: stop accepting, refuse new work, keep computing
    /// what is already queued. Idempotent and non-blocking.
    pub fn begin_shutdown(&self) {
        self.inner.shutdown.store(true, Ordering::SeqCst);
        self.inner.queue.begin_drain();
    }

    /// `true` once [`Server::begin_shutdown`] has been called.
    pub fn is_shutting_down(&self) -> bool {
        self.inner.shutdown.load(Ordering::SeqCst)
    }

    /// Drains and stops the server: every job queued before the call is
    /// computed and its reply flushed before sockets close.
    pub fn shutdown_and_join(mut self) {
        self.join_all();
    }

    fn join_all(&mut self) {
        self.begin_shutdown();
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        // The dispatcher exits only after the queue is drained, so every
        // admitted reply is in its connection channel by the time it joins.
        if let Some(h) = self.dispatcher.take() {
            let _ = h.join();
        }
        // Unblock readers waiting on idle sockets; writers then flush any
        // remaining replies and exit on channel close.
        for conn in self.inner.conns.lock().expect("conns mutex").drain(..) {
            let _ = conn.shutdown(Shutdown::Read);
        }
        let handles: Vec<_> = self
            .inner
            .conn_handles
            .lock()
            .expect("conn handles mutex")
            .drain(..)
            .collect();
        for h in handles {
            let _ = h.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.join_all();
    }
}

fn accept_loop(inner: &Arc<Inner>, listener: TcpListener) {
    loop {
        if inner.shutdown.load(Ordering::SeqCst) {
            return;
        }
        match listener.accept() {
            Ok((stream, _peer)) => {
                inner.metrics.connections.inc();
                let _ = stream.set_nodelay(true);
                if let Ok(clone) = stream.try_clone() {
                    inner.conns.lock().expect("conns mutex").push(clone);
                }
                let conn_inner = Arc::clone(inner);
                let handle = std::thread::Builder::new()
                    .name("mda-conn".into())
                    .spawn(move || handle_conn(&conn_inner, stream))
                    .expect("spawn connection thread");
                inner
                    .conn_handles
                    .lock()
                    .expect("conn handles mutex")
                    .push(handle);
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(10));
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(_) => return,
        }
    }
}

/// Sniffs the first bytes of a fresh connection: `GET ` means an HTTP
/// metrics scrape, anything else is the binary frame protocol.
fn is_http_get(stream: &TcpStream) -> io::Result<bool> {
    let mut buf = [0u8; 4];
    loop {
        let n = stream.peek(&mut buf)?;
        if n == 0 {
            return Ok(false); // closed before a full header; frame path reports EOF
        }
        if buf[0] != b'G' {
            return Ok(false);
        }
        if n >= 4 {
            return Ok(&buf == b"GET ");
        }
        std::thread::sleep(Duration::from_millis(1));
    }
}

fn serve_http_metrics(inner: &Inner, mut stream: TcpStream) {
    // Drain the request head so the peer sees a clean exchange.
    let mut reader = BufReader::new(stream.try_clone().expect("clone http stream"));
    let mut head = Vec::new();
    let mut byte = [0u8; 1];
    while !head.ends_with(b"\r\n\r\n") && head.len() < 8192 {
        match reader.read(&mut byte) {
            Ok(0) => break,
            Ok(_) => head.push(byte[0]),
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(_) => return,
        }
    }
    inner.metrics.count_request("metrics");
    let body = inner.metrics.render_text();
    let response = format!(
        "HTTP/1.1 200 OK\r\nContent-Type: text/plain; version=0.0.4\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    let _ = stream.write_all(response.as_bytes());
    let _ = stream.flush();
    let _ = stream.shutdown(Shutdown::Both);
}

fn handle_conn(inner: &Arc<Inner>, stream: TcpStream) {
    match is_http_get(&stream) {
        Ok(true) => return serve_http_metrics(inner, stream),
        Ok(false) => {}
        Err(_) => return,
    }

    let Ok(write_half) = stream.try_clone() else {
        return;
    };
    let (tx, rx) = mpsc::channel::<Reply>();
    let writer = std::thread::Builder::new()
        .name("mda-conn-write".into())
        .spawn(move || {
            let mut w = BufWriter::new(write_half);
            while let Ok(reply) = rx.recv() {
                if write_frame(&mut w, &encode_reply(&reply)).is_err() {
                    // Peer gone: drain remaining replies without writing.
                    while rx.recv().is_ok() {}
                    return;
                }
            }
        })
        .expect("spawn connection writer");

    let max_frame = inner.config.max_frame_bytes;
    let mut reader = BufReader::new(stream);
    loop {
        match read_frame(&mut reader, max_frame) {
            Ok(payload) => handle_frame(inner, &payload, &tx),
            Err(err) => {
                if let ProtocolError::FrameTooLarge { .. } = &err {
                    // The payload was never read, so the stream is beyond
                    // resync: report and close.
                    inner.metrics.replies_error.inc();
                    let _ = tx.send(Reply {
                        id: 0,
                        body: ResponseBody::Error {
                            code: crate::protocol::ErrorCode::BadRequest,
                            message: err.to_string(),
                        },
                    });
                }
                break;
            }
        }
    }
    // Reader done: close our sender so the writer exits once the
    // dispatcher has delivered (and the writer flushed) pending replies.
    drop(tx);
    let _ = writer.join();
}

fn handle_frame(inner: &Arc<Inner>, payload: &[u8], tx: &mpsc::Sender<Reply>) {
    let Envelope { id, req } = match decode_request(payload) {
        Ok(env) => env,
        Err(err) => {
            inner.metrics.replies_error.inc();
            let _ = tx.send(Reply {
                id: 0,
                body: ResponseBody::Error {
                    code: crate::protocol::ErrorCode::BadRequest,
                    message: err.to_string(),
                },
            });
            return;
        }
    };
    inner.metrics.count_request(req.op());
    match req {
        Request::Ping => {
            inner.metrics.replies_ok.inc();
            let _ = tx.send(Reply {
                id,
                body: ResponseBody::Pong,
            });
        }
        Request::Metrics => {
            inner.metrics.replies_ok.inc();
            let _ = tx.send(Reply {
                id,
                body: ResponseBody::MetricsText(inner.metrics.render_text()),
            });
        }
        req => {
            let deadline = req
                .deadline()
                .or(inner.config.default_deadline)
                .map(|d| Instant::now() + d);
            let Some(decomposed) = decompose(req) else {
                unreachable!("control ops handled above");
            };
            let job = Job {
                id,
                items: decomposed.items,
                assemble: decomposed.assemble,
                reply: tx.clone(),
                deadline,
                enqueued: Instant::now(),
            };
            if let Err(refusal) = inner.queue.submit(job) {
                inner.metrics.replies_error.inc();
                let _ = tx.send(Reply {
                    id,
                    body: ResponseBody::Error {
                        code: refusal.code(),
                        message: refusal.message(),
                    },
                });
            }
        }
    }
}
