//! A blocking client for the `mda-server` frame protocol.
//!
//! One [`Client`] wraps one TCP connection and issues synchronous calls;
//! open several clients for concurrency (the server coalesces their
//! queries into shared engine batches).

use std::fmt;
use std::io::{self, BufReader, BufWriter};
use std::net::{TcpStream, ToSocketAddrs};

use mda_distance::DistanceKind;

use crate::protocol::{
    decode_reply, encode_request, read_frame, write_frame, Envelope, ErrorCode, ProtocolError,
    Reply, Request, ResponseBody, TrainInstance, DEFAULT_MAX_FRAME_BYTES,
};

/// A failed client call.
#[derive(Debug)]
pub enum ClientError {
    /// Transport failure.
    Io(io::Error),
    /// The reply could not be decoded.
    Protocol(ProtocolError),
    /// The server answered with an error reply.
    Server {
        /// Machine-readable class (`overloaded`, `timeout`, …).
        code: ErrorCode,
        /// Human-readable description.
        message: String,
    },
    /// The reply decoded but did not match the request (wrong id or shape).
    UnexpectedReply(String),
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "client io error: {e}"),
            ClientError::Protocol(e) => write!(f, "client protocol error: {e}"),
            ClientError::Server { code, message } => write!(f, "server error [{code}]: {message}"),
            ClientError::UnexpectedReply(msg) => write!(f, "unexpected reply: {msg}"),
        }
    }
}

impl std::error::Error for ClientError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ClientError::Io(e) => Some(e),
            ClientError::Protocol(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        ClientError::Io(e)
    }
}

impl From<ProtocolError> for ClientError {
    fn from(e: ProtocolError) -> Self {
        ClientError::Protocol(e)
    }
}

impl ClientError {
    /// `true` when the server shed this request under load.
    pub fn is_overloaded(&self) -> bool {
        matches!(
            self,
            ClientError::Server {
                code: ErrorCode::Overloaded,
                ..
            }
        )
    }
}

/// Per-query options.
#[derive(Debug, Clone, Copy, Default)]
pub struct QueryOpts {
    /// Match threshold override (LCS/EdD/HamD); `None` = paper default.
    pub threshold: Option<f64>,
    /// Sakoe–Chiba radius (DTW); `None` = full matrix.
    pub band: Option<usize>,
    /// Queue-wait budget in milliseconds.
    pub deadline_ms: Option<u64>,
}

/// A kNN classification result.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KnnOutcome {
    /// Predicted label.
    pub label: usize,
    /// Score of the nearest neighbour (similarities negated).
    pub score: f64,
    /// Index of the nearest training instance.
    pub nearest_index: usize,
}

/// A subsequence-search result.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SearchOutcome {
    /// Start offset of the best window.
    pub offset: usize,
    /// Its banded DTW distance.
    pub distance: f64,
}

/// One blocking connection to an `mda-server`.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
    next_id: u64,
    max_frame_bytes: usize,
}

impl Client {
    /// Connects to a server.
    ///
    /// # Errors
    ///
    /// Any connection failure.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Client, ClientError> {
        let stream = TcpStream::connect(addr)?;
        let _ = stream.set_nodelay(true);
        let reader = BufReader::new(stream.try_clone()?);
        Ok(Client {
            reader,
            writer: BufWriter::new(stream),
            next_id: 1,
            max_frame_bytes: DEFAULT_MAX_FRAME_BYTES,
        })
    }

    /// Issues one request and waits for its reply.
    fn call(&mut self, req: Request) -> Result<ResponseBody, ClientError> {
        let id = self.next_id;
        self.next_id += 1;
        let env = Envelope { id, req };
        write_frame(&mut self.writer, &encode_request(&env))?;
        let payload = read_frame(&mut self.reader, self.max_frame_bytes)?;
        let Reply { id: got, body } = decode_reply(&payload)?;
        if got != id {
            return Err(ClientError::UnexpectedReply(format!(
                "reply id {got} does not match request id {id}"
            )));
        }
        if let ResponseBody::Error { code, message } = body {
            return Err(ClientError::Server { code, message });
        }
        Ok(body)
    }

    /// Liveness probe.
    ///
    /// # Errors
    ///
    /// Transport/protocol failures or a server error reply.
    pub fn ping(&mut self) -> Result<(), ClientError> {
        match self.call(Request::Ping)? {
            ResponseBody::Pong => Ok(()),
            other => Err(ClientError::UnexpectedReply(format!("{other:?}"))),
        }
    }

    /// Fetches the metrics registry as Prometheus-style text.
    ///
    /// # Errors
    ///
    /// Transport/protocol failures or a server error reply.
    pub fn metrics_text(&mut self) -> Result<String, ClientError> {
        match self.call(Request::Metrics)? {
            ResponseBody::MetricsText(text) => Ok(text),
            other => Err(ClientError::UnexpectedReply(format!("{other:?}"))),
        }
    }

    /// Evaluates one distance with default options.
    ///
    /// # Errors
    ///
    /// Transport/protocol failures or a server error reply.
    pub fn distance(
        &mut self,
        kind: DistanceKind,
        p: &[f64],
        q: &[f64],
    ) -> Result<f64, ClientError> {
        self.distance_with(kind, p, q, QueryOpts::default())
    }

    /// Evaluates one distance.
    ///
    /// # Errors
    ///
    /// Transport/protocol failures or a server error reply.
    pub fn distance_with(
        &mut self,
        kind: DistanceKind,
        p: &[f64],
        q: &[f64],
        opts: QueryOpts,
    ) -> Result<f64, ClientError> {
        let body = self.call(Request::Distance {
            kind,
            p: p.to_vec(),
            q: q.to_vec(),
            threshold: opts.threshold,
            band: opts.band,
            deadline_ms: opts.deadline_ms,
        })?;
        match body {
            ResponseBody::Distance { value } => Ok(value),
            other => Err(ClientError::UnexpectedReply(format!("{other:?}"))),
        }
    }

    /// Evaluates a pairwise batch; one value per pair, in input order.
    ///
    /// # Errors
    ///
    /// Transport/protocol failures or a server error reply.
    pub fn batch(
        &mut self,
        kind: DistanceKind,
        pairs: &[(Vec<f64>, Vec<f64>)],
        opts: QueryOpts,
    ) -> Result<Vec<f64>, ClientError> {
        let body = self.call(Request::Batch {
            kind,
            pairs: pairs.to_vec(),
            threshold: opts.threshold,
            band: opts.band,
            deadline_ms: opts.deadline_ms,
        })?;
        match body {
            ResponseBody::Batch { values } => Ok(values),
            other => Err(ClientError::UnexpectedReply(format!("{other:?}"))),
        }
    }

    /// Classifies `query` against a labelled training set.
    ///
    /// # Errors
    ///
    /// Transport/protocol failures or a server error reply.
    pub fn knn(
        &mut self,
        kind: DistanceKind,
        k: usize,
        query: &[f64],
        train: &[TrainInstance],
        opts: QueryOpts,
    ) -> Result<KnnOutcome, ClientError> {
        let body = self.call(Request::Knn {
            kind,
            k,
            query: query.to_vec(),
            train: train.to_vec(),
            threshold: opts.threshold,
            band: opts.band,
            deadline_ms: opts.deadline_ms,
        })?;
        match body {
            ResponseBody::Knn {
                label,
                score,
                nearest_index,
            } => Ok(KnnOutcome {
                label,
                score,
                nearest_index,
            }),
            other => Err(ClientError::UnexpectedReply(format!("{other:?}"))),
        }
    }

    /// Finds the best-matching window of `query` in `haystack` under
    /// banded DTW.
    ///
    /// # Errors
    ///
    /// Transport/protocol failures or a server error reply.
    pub fn search(
        &mut self,
        query: &[f64],
        haystack: &[f64],
        window: usize,
        band: usize,
        opts: QueryOpts,
    ) -> Result<SearchOutcome, ClientError> {
        let body = self.call(Request::Search {
            query: query.to_vec(),
            haystack: haystack.to_vec(),
            window,
            band,
            deadline_ms: opts.deadline_ms,
        })?;
        match body {
            ResponseBody::Search { offset, distance } => Ok(SearchOutcome { offset, distance }),
            other => Err(ClientError::UnexpectedReply(format!("{other:?}"))),
        }
    }
}
