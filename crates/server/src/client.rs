//! A blocking client for the `mda-server` frame protocol.
//!
//! One [`Client`] wraps one TCP connection, reused across any number of
//! calls. Synchronous methods issue one request and wait; the pipelined
//! [`Client::send_many`] writes a whole burst of requests before reading
//! any reply, exercising the server's per-connection pipelining so a
//! single connection can fill coalesced batches by itself. Resident
//! datasets are managed with [`Client::upload_dataset`] /
//! [`Client::list_datasets`] / [`Client::drop_dataset`] and then referenced
//! from queries via [`DatasetRef`].

use std::collections::{HashMap, VecDeque};
use std::fmt;
use std::io::{self, BufReader, BufWriter, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

use mda_distance::DistanceKind;
use mda_routing::Sla;

use crate::protocol::{
    decode_reply, encode_request, read_frame, write_frame, DatasetEntry, DatasetRef,
    DatasetSummary, Envelope, ErrorCode, ProtocolError, Reply, Request, ResponseBody, RouteInfo,
    StreamEventBody, TrainInstance, DEFAULT_MAX_FRAME_BYTES,
};

/// A failed client call.
#[derive(Debug)]
pub enum ClientError {
    /// Transport failure.
    Io(io::Error),
    /// The reply could not be decoded.
    Protocol(ProtocolError),
    /// The server answered with an error reply.
    Server {
        /// Machine-readable class (`overloaded`, `timeout`, …).
        code: ErrorCode,
        /// Human-readable description.
        message: String,
    },
    /// The reply decoded but did not match the request (wrong id or shape).
    UnexpectedReply(String),
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "client io error: {e}"),
            ClientError::Protocol(e) => write!(f, "client protocol error: {e}"),
            ClientError::Server { code, message } => write!(f, "server error [{code}]: {message}"),
            ClientError::UnexpectedReply(msg) => write!(f, "unexpected reply: {msg}"),
        }
    }
}

impl std::error::Error for ClientError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ClientError::Io(e) => Some(e),
            ClientError::Protocol(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        ClientError::Io(e)
    }
}

impl From<ProtocolError> for ClientError {
    fn from(e: ProtocolError) -> Self {
        ClientError::Protocol(e)
    }
}

impl ClientError {
    /// `true` when the server shed this request under load.
    pub fn is_overloaded(&self) -> bool {
        matches!(
            self,
            ClientError::Server {
                code: ErrorCode::Overloaded,
                ..
            }
        )
    }
}

/// Per-query options (legacy positional form).
///
/// New code should use the [`QueryOptions`] builder, which adds accuracy
/// SLAs and resident-dataset references; this struct remains for the
/// deprecated positional helpers and converts losslessly via [`From`].
#[derive(Debug, Clone, Copy, Default)]
pub struct QueryOpts {
    /// Match threshold override (LCS/EdD/HamD); `None` = paper default.
    pub threshold: Option<f64>,
    /// Sakoe–Chiba radius (DTW); `None` = full matrix.
    pub band: Option<usize>,
    /// Queue-wait budget in milliseconds.
    pub deadline_ms: Option<u64>,
}

/// Builder-style per-query options for the `query_*` methods.
///
/// The default options encode to exactly the same wire bytes as the legacy
/// positional helpers with [`QueryOpts::default`] — a request with no
/// explicit accuracy is byte-identical to the pre-routing protocol and is
/// answered by the bitwise digital path.
///
/// ```no_run
/// use std::time::Duration;
/// use mda_routing::Sla;
/// use mda_server::client::QueryOptions;
///
/// let opts = QueryOptions::new()
///     .accuracy(Sla::tolerance(16.0).unwrap())
///     .timeout(Duration::from_millis(250));
/// ```
#[derive(Debug, Clone, Default)]
pub struct QueryOptions {
    threshold: Option<f64>,
    band: Option<usize>,
    deadline_ms: Option<u64>,
    accuracy: Option<Sla>,
    dataset: Option<DatasetRef>,
}

impl QueryOptions {
    /// Default options: exact accuracy, no deadline, paper-default
    /// function parameters, no dataset reference.
    pub fn new() -> QueryOptions {
        QueryOptions::default()
    }

    /// Sets the accuracy SLA. Requests carrying an explicit SLA get the
    /// answering backend and its guaranteed bound reported on the reply.
    #[must_use]
    pub fn accuracy(mut self, sla: Sla) -> QueryOptions {
        self.accuracy = Some(sla);
        self
    }

    /// Sets the queue-wait budget (rounded down to whole milliseconds).
    #[must_use]
    pub fn timeout(mut self, timeout: Duration) -> QueryOptions {
        self.deadline_ms = Some(timeout.as_millis() as u64);
        self
    }

    /// References a resident dataset (batch/kNN/search resident forms).
    #[must_use]
    pub fn dataset(mut self, dataset: DatasetRef) -> QueryOptions {
        self.dataset = Some(dataset);
        self
    }

    /// Overrides the match threshold (LCS/EdD/HamD).
    #[must_use]
    pub fn threshold(mut self, threshold: f64) -> QueryOptions {
        self.threshold = Some(threshold);
        self
    }

    /// Sets a Sakoe–Chiba band radius (DTW).
    #[must_use]
    pub fn band(mut self, radius: usize) -> QueryOptions {
        self.band = Some(radius);
        self
    }
}

impl From<QueryOpts> for QueryOptions {
    fn from(opts: QueryOpts) -> QueryOptions {
        QueryOptions {
            threshold: opts.threshold,
            band: opts.band,
            deadline_ms: opts.deadline_ms,
            accuracy: None,
            dataset: None,
        }
    }
}

/// A reply value plus the routing report the server attached to it.
#[derive(Debug, Clone, PartialEq)]
pub struct Routed<T> {
    /// The answer.
    pub value: T,
    /// Which backend answered and the bound it guarantees. `None` when the
    /// request carried no explicit accuracy SLA.
    pub route: Option<RouteInfo>,
}

/// A kNN classification result.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KnnOutcome {
    /// Predicted label.
    pub label: usize,
    /// Score of the nearest neighbour (similarities negated).
    pub score: f64,
    /// Index of the nearest training instance.
    pub nearest_index: usize,
}

/// A subsequence-search result.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SearchOutcome {
    /// Start offset of the best window.
    pub offset: usize,
    /// Its banded DTW distance.
    pub distance: f64,
}

/// A successfully opened push-mode stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StreamOpen {
    /// Server-assigned stream id — quote it on every subsequent verb.
    pub stream_id: u64,
    /// Consistent-hash shard the stream is pinned to.
    pub shard: u32,
    /// Points the stream must see before subscribers get ready frames.
    pub burn_in: u64,
}

/// A `push_points` acknowledgement.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PushedPoints {
    /// Points the server accepted (all-or-nothing per call).
    pub accepted: u64,
    /// The stream's epoch (total accepted points) after this push.
    pub epoch: u64,
}

/// A subscription acknowledgement.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Subscription {
    /// Stream epoch at subscription time — the first event's epoch is
    /// `epoch + 1`; any larger gap means events were missed.
    pub epoch: u64,
    /// `true` once the stream has completed burn-in.
    pub warm: bool,
}

/// One blocking connection to an `mda-server`.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
    next_id: u64,
    max_frame_bytes: usize,
    /// Subscription events that arrived while waiting for a synchronous
    /// reply; consumed by [`Client::next_event`] in arrival order.
    pending_events: VecDeque<StreamEventBody>,
}

impl Client {
    /// Connects to a server.
    ///
    /// # Errors
    ///
    /// Any connection failure.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Client, ClientError> {
        let stream = TcpStream::connect(addr)?;
        let _ = stream.set_nodelay(true);
        let reader = BufReader::new(stream.try_clone()?);
        Ok(Client {
            reader,
            writer: BufWriter::new(stream),
            next_id: 1,
            max_frame_bytes: DEFAULT_MAX_FRAME_BYTES,
            pending_events: VecDeque::new(),
        })
    }

    /// Reads the next non-event reply, buffering any stream events that
    /// arrive in between (a subscribed connection receives unsolicited
    /// `stream_event` frames interleaved with its synchronous replies).
    fn read_reply(&mut self) -> Result<Reply, ClientError> {
        loop {
            let payload = read_frame(&mut self.reader, self.max_frame_bytes)?;
            let reply = decode_reply(&payload)?;
            match reply.body {
                ResponseBody::StreamEvent(event) => self.pending_events.push_back(event),
                _ => return Ok(reply),
            }
        }
    }

    /// Issues one request and waits for its reply, keeping the routing
    /// report (when the server attached one).
    fn call_routed(
        &mut self,
        req: Request,
    ) -> Result<(ResponseBody, Option<RouteInfo>), ClientError> {
        let id = self.next_id;
        self.next_id += 1;
        let env = Envelope { id, req };
        write_frame(&mut self.writer, &encode_request(&env))?;
        let Reply {
            id: got,
            body,
            route,
        } = self.read_reply()?;
        if got != id {
            return Err(ClientError::UnexpectedReply(format!(
                "reply id {got} does not match request id {id}"
            )));
        }
        if let ResponseBody::Error { code, message } = body {
            return Err(ClientError::Server { code, message });
        }
        Ok((body, route))
    }

    /// Issues one request and waits for its reply.
    fn call(&mut self, req: Request) -> Result<ResponseBody, ClientError> {
        self.call_routed(req).map(|(body, _)| body)
    }

    /// Liveness probe.
    ///
    /// # Errors
    ///
    /// Transport/protocol failures or a server error reply.
    pub fn ping(&mut self) -> Result<(), ClientError> {
        match self.call(Request::Ping)? {
            ResponseBody::Pong => Ok(()),
            other => Err(ClientError::UnexpectedReply(format!("{other:?}"))),
        }
    }

    /// Fetches the metrics registry as Prometheus-style text.
    ///
    /// # Errors
    ///
    /// Transport/protocol failures or a server error reply.
    pub fn metrics_text(&mut self) -> Result<String, ClientError> {
        match self.call(Request::Metrics)? {
            ResponseBody::MetricsText(text) => Ok(text),
            other => Err(ClientError::UnexpectedReply(format!("{other:?}"))),
        }
    }

    /// Evaluates one distance pair.
    ///
    /// With an explicit [`QueryOptions::accuracy`], the returned
    /// [`Routed::route`] reports which backend answered and the error bound
    /// it guarantees.
    ///
    /// # Errors
    ///
    /// Transport/protocol failures or a server error reply.
    pub fn query_distance(
        &mut self,
        kind: DistanceKind,
        p: &[f64],
        q: &[f64],
        opts: &QueryOptions,
    ) -> Result<Routed<f64>, ClientError> {
        let (body, route) = self.call_routed(Request::Distance {
            kind,
            p: p.to_vec(),
            q: q.to_vec(),
            threshold: opts.threshold,
            band: opts.band,
            deadline_ms: opts.deadline_ms,
            accuracy: opts.accuracy,
        })?;
        match body {
            ResponseBody::Distance { value } => Ok(Routed { value, route }),
            other => Err(ClientError::UnexpectedReply(format!("{other:?}"))),
        }
    }

    /// Evaluates a batch: the inline `pairs`, or — when the options carry a
    /// [`QueryOptions::dataset`] reference — `probe` against every resident
    /// series. One value per pair/series, in input/upload order.
    ///
    /// # Errors
    ///
    /// Transport/protocol failures or a server error reply (`not_found` /
    /// `stale_version` when a dataset reference fails to resolve).
    pub fn query_batch(
        &mut self,
        kind: DistanceKind,
        pairs: &[(Vec<f64>, Vec<f64>)],
        probe: Option<&[f64]>,
        opts: &QueryOptions,
    ) -> Result<Routed<Vec<f64>>, ClientError> {
        let (body, route) = self.call_routed(Request::Batch {
            kind,
            pairs: pairs.to_vec(),
            query: probe.map(|s| s.to_vec()),
            dataset: opts.dataset.clone(),
            threshold: opts.threshold,
            band: opts.band,
            deadline_ms: opts.deadline_ms,
            accuracy: opts.accuracy,
        })?;
        match body {
            ResponseBody::Batch { values } => Ok(Routed {
                value: values,
                route,
            }),
            other => Err(ClientError::UnexpectedReply(format!("{other:?}"))),
        }
    }

    /// Classifies `query` against `train` — or against a resident dataset's
    /// labelled series when the options carry a [`QueryOptions::dataset`]
    /// reference (the inline `train` is ignored by the server then).
    ///
    /// # Errors
    ///
    /// Transport/protocol failures or a server error reply (`not_found` /
    /// `stale_version` when a dataset reference fails to resolve).
    pub fn query_knn(
        &mut self,
        kind: DistanceKind,
        k: usize,
        query: &[f64],
        train: &[TrainInstance],
        opts: &QueryOptions,
    ) -> Result<Routed<KnnOutcome>, ClientError> {
        let (body, route) = self.call_routed(Request::Knn {
            kind,
            k,
            query: query.to_vec(),
            train: train.to_vec(),
            dataset: opts.dataset.clone(),
            threshold: opts.threshold,
            band: opts.band,
            deadline_ms: opts.deadline_ms,
            accuracy: opts.accuracy,
        })?;
        match body {
            ResponseBody::Knn {
                label,
                score,
                nearest_index,
            } => Ok(Routed {
                value: KnnOutcome {
                    label,
                    score,
                    nearest_index,
                },
                route,
            }),
            other => Err(ClientError::UnexpectedReply(format!("{other:?}"))),
        }
    }

    /// Finds the best-matching window of `query` under banded DTW — in the
    /// inline `haystack`, or in series `series_index` of a resident dataset
    /// when the options carry a [`QueryOptions::dataset`] reference.
    ///
    /// # Errors
    ///
    /// Transport/protocol failures or a server error reply (`not_found` /
    /// `stale_version` when a dataset reference fails to resolve).
    pub fn query_search(
        &mut self,
        query: &[f64],
        haystack: &[f64],
        series_index: usize,
        window: usize,
        band: usize,
        opts: &QueryOptions,
    ) -> Result<Routed<SearchOutcome>, ClientError> {
        let (body, route) = self.call_routed(Request::Search {
            query: query.to_vec(),
            haystack: haystack.to_vec(),
            dataset: opts.dataset.clone(),
            series_index,
            window,
            band,
            deadline_ms: opts.deadline_ms,
            accuracy: opts.accuracy,
        })?;
        match body {
            ResponseBody::Search { offset, distance } => Ok(Routed {
                value: SearchOutcome { offset, distance },
                route,
            }),
            other => Err(ClientError::UnexpectedReply(format!("{other:?}"))),
        }
    }

    /// Evaluates one distance with default options.
    ///
    /// # Errors
    ///
    /// Transport/protocol failures or a server error reply.
    #[deprecated(since = "0.1.0", note = "use `query_distance` with `QueryOptions`")]
    pub fn distance(
        &mut self,
        kind: DistanceKind,
        p: &[f64],
        q: &[f64],
    ) -> Result<f64, ClientError> {
        self.query_distance(kind, p, q, &QueryOptions::new())
            .map(|r| r.value)
    }

    /// Evaluates one distance.
    ///
    /// # Errors
    ///
    /// Transport/protocol failures or a server error reply.
    #[deprecated(since = "0.1.0", note = "use `query_distance` with `QueryOptions`")]
    pub fn distance_with(
        &mut self,
        kind: DistanceKind,
        p: &[f64],
        q: &[f64],
        opts: QueryOpts,
    ) -> Result<f64, ClientError> {
        self.query_distance(kind, p, q, &opts.into())
            .map(|r| r.value)
    }

    /// Evaluates a pairwise batch; one value per pair, in input order.
    ///
    /// # Errors
    ///
    /// Transport/protocol failures or a server error reply.
    #[deprecated(since = "0.1.0", note = "use `query_batch` with `QueryOptions`")]
    pub fn batch(
        &mut self,
        kind: DistanceKind,
        pairs: &[(Vec<f64>, Vec<f64>)],
        opts: QueryOpts,
    ) -> Result<Vec<f64>, ClientError> {
        self.query_batch(kind, pairs, None, &opts.into())
            .map(|r| r.value)
    }

    /// Evaluates `query` against every series of a resident dataset; one
    /// value per dataset series, in upload order.
    ///
    /// # Errors
    ///
    /// Transport/protocol failures or a server error reply (`not_found` /
    /// `stale_version` when the reference fails to resolve).
    #[deprecated(
        since = "0.1.0",
        note = "use `query_batch` with `QueryOptions::dataset`"
    )]
    pub fn batch_resident(
        &mut self,
        kind: DistanceKind,
        query: &[f64],
        dataset: DatasetRef,
        opts: QueryOpts,
    ) -> Result<Vec<f64>, ClientError> {
        let opts = QueryOptions::from(opts).dataset(dataset);
        self.query_batch(kind, &[], Some(query), &opts)
            .map(|r| r.value)
    }

    /// Classifies `query` against a labelled training set.
    ///
    /// # Errors
    ///
    /// Transport/protocol failures or a server error reply.
    #[deprecated(since = "0.1.0", note = "use `query_knn` with `QueryOptions`")]
    pub fn knn(
        &mut self,
        kind: DistanceKind,
        k: usize,
        query: &[f64],
        train: &[TrainInstance],
        opts: QueryOpts,
    ) -> Result<KnnOutcome, ClientError> {
        self.query_knn(kind, k, query, train, &opts.into())
            .map(|r| r.value)
    }

    /// Classifies `query` against a resident dataset's labelled series.
    ///
    /// # Errors
    ///
    /// Transport/protocol failures or a server error reply (`not_found` /
    /// `stale_version` when the reference fails to resolve).
    #[deprecated(since = "0.1.0", note = "use `query_knn` with `QueryOptions::dataset`")]
    pub fn knn_resident(
        &mut self,
        kind: DistanceKind,
        k: usize,
        query: &[f64],
        dataset: DatasetRef,
        opts: QueryOpts,
    ) -> Result<KnnOutcome, ClientError> {
        let opts = QueryOptions::from(opts).dataset(dataset);
        self.query_knn(kind, k, query, &[], &opts).map(|r| r.value)
    }

    /// Finds the best-matching window of `query` in `haystack` under
    /// banded DTW.
    ///
    /// # Errors
    ///
    /// Transport/protocol failures or a server error reply.
    #[deprecated(since = "0.1.0", note = "use `query_search` with `QueryOptions`")]
    pub fn search(
        &mut self,
        query: &[f64],
        haystack: &[f64],
        window: usize,
        band: usize,
        opts: QueryOpts,
    ) -> Result<SearchOutcome, ClientError> {
        self.query_search(query, haystack, 0, window, band, &opts.into())
            .map(|r| r.value)
    }

    /// Finds the best-matching window of `query` in series `series_index`
    /// of a resident dataset.
    ///
    /// # Errors
    ///
    /// Transport/protocol failures or a server error reply (`not_found` /
    /// `stale_version` when the reference fails to resolve).
    #[deprecated(
        since = "0.1.0",
        note = "use `query_search` with `QueryOptions::dataset`"
    )]
    pub fn search_resident(
        &mut self,
        query: &[f64],
        dataset: DatasetRef,
        series_index: usize,
        window: usize,
        band: usize,
        opts: QueryOpts,
    ) -> Result<SearchOutcome, ClientError> {
        let opts = QueryOptions::from(opts).dataset(dataset);
        self.query_search(query, &[], series_index, window, band, &opts)
            .map(|r| r.value)
    }

    /// Uploads (or idempotently re-uploads) a resident dataset. Returns
    /// `(dataset_id, version)` — pin the id in subsequent queries.
    ///
    /// # Errors
    ///
    /// Transport/protocol failures or a server error reply (`overloaded`
    /// when the store's byte budget is exhausted).
    pub fn upload_dataset(
        &mut self,
        name: &str,
        entries: &[DatasetEntry],
    ) -> Result<(String, u64), ClientError> {
        let body = self.call(Request::UploadDataset {
            name: name.to_string(),
            entries: entries.to_vec(),
        })?;
        match body {
            ResponseBody::DatasetUploaded {
                dataset_id,
                version,
                ..
            } => Ok((dataset_id, version)),
            other => Err(ClientError::UnexpectedReply(format!("{other:?}"))),
        }
    }

    /// Lists resident datasets, sorted by name.
    ///
    /// # Errors
    ///
    /// Transport/protocol failures or a server error reply.
    pub fn list_datasets(&mut self) -> Result<Vec<DatasetSummary>, ClientError> {
        match self.call(Request::ListDatasets)? {
            ResponseBody::Datasets { items } => Ok(items),
            other => Err(ClientError::UnexpectedReply(format!("{other:?}"))),
        }
    }

    /// Drops a resident dataset by reference.
    ///
    /// # Errors
    ///
    /// Transport/protocol failures or a server error reply (`not_found`
    /// when the reference does not resolve).
    pub fn drop_dataset(&mut self, dataset: DatasetRef) -> Result<usize, ClientError> {
        match self.call(Request::DropDataset { dataset })? {
            ResponseBody::Dropped { count } => Ok(count),
            other => Err(ClientError::UnexpectedReply(format!("{other:?}"))),
        }
    }

    /// Opens a push-mode stream: an incremental operator DAG matching
    /// `query` against every window of the live series under banded DTW.
    ///
    /// `threshold`, when set, must be finite and positive; it caps the
    /// match cascade's pruning threshold (best-so-far tightens it further).
    ///
    /// # Errors
    ///
    /// Transport/protocol failures or a server error reply
    /// (`invalid_parameter` for a rejected configuration).
    pub fn open_stream(
        &mut self,
        window: usize,
        band: usize,
        query: &[f64],
        threshold: Option<f64>,
    ) -> Result<StreamOpen, ClientError> {
        match self.call(Request::OpenStream {
            window,
            band,
            query: query.to_vec(),
            threshold,
        })? {
            ResponseBody::StreamOpened {
                stream_id,
                shard,
                burn_in,
            } => Ok(StreamOpen {
                stream_id,
                shard,
                burn_in,
            }),
            other => Err(ClientError::UnexpectedReply(format!("{other:?}"))),
        }
    }

    /// Pushes points to an open stream. All-or-nothing: a non-finite point
    /// rejects the whole batch (`invalid_parameter`) without mutating the
    /// stream.
    ///
    /// On a subscribed connection the acknowledgement always precedes the
    /// events this push caused, so `push_points` then [`Client::next_event`]
    /// never deadlocks.
    ///
    /// # Errors
    ///
    /// Transport/protocol failures or a server error reply (`not_found`
    /// for an unknown or closed stream).
    pub fn push_points(
        &mut self,
        stream_id: u64,
        points: &[f64],
    ) -> Result<PushedPoints, ClientError> {
        match self.call(Request::PushPoints {
            stream_id,
            points: points.to_vec(),
        })? {
            ResponseBody::PointsPushed {
                accepted, epoch, ..
            } => Ok(PushedPoints { accepted, epoch }),
            other => Err(ClientError::UnexpectedReply(format!("{other:?}"))),
        }
    }

    /// Subscribes this connection to a stream: every subsequent accepted
    /// push produces one [`StreamEventBody`], delivered in push order and
    /// consumed with [`Client::next_event`].
    ///
    /// Events carry the stream epoch; compare consecutive epochs against
    /// [`Subscription::epoch`] to detect gaps.
    ///
    /// # Errors
    ///
    /// Transport/protocol failures or a server error reply (`not_found`
    /// for an unknown or closed stream).
    pub fn subscribe(&mut self, stream_id: u64) -> Result<Subscription, ClientError> {
        match self.call(Request::Subscribe { stream_id })? {
            ResponseBody::Subscribed { epoch, warm, .. } => Ok(Subscription { epoch, warm }),
            other => Err(ClientError::UnexpectedReply(format!("{other:?}"))),
        }
    }

    /// Returns the next subscription event: buffered ones first (events
    /// that arrived interleaved with synchronous replies), then blocking
    /// on the socket.
    ///
    /// # Errors
    ///
    /// Transport/protocol failures, or a non-event frame arriving with no
    /// request outstanding.
    pub fn next_event(&mut self) -> Result<StreamEventBody, ClientError> {
        if let Some(event) = self.pending_events.pop_front() {
            return Ok(event);
        }
        let payload = read_frame(&mut self.reader, self.max_frame_bytes)?;
        let reply = decode_reply(&payload)?;
        match reply.body {
            ResponseBody::StreamEvent(event) => Ok(event),
            other => Err(ClientError::UnexpectedReply(format!("{other:?}"))),
        }
    }

    /// Closes a stream, dropping its state and every subscription to it.
    /// Returns how many points the stream accepted over its lifetime.
    ///
    /// # Errors
    ///
    /// Transport/protocol failures or a server error reply (`not_found`
    /// for an unknown or already-closed stream).
    pub fn close_stream(&mut self, stream_id: u64) -> Result<u64, ClientError> {
        match self.call(Request::CloseStream { stream_id })? {
            ResponseBody::StreamClosed { pushed, .. } => Ok(pushed),
            other => Err(ClientError::UnexpectedReply(format!("{other:?}"))),
        }
    }

    /// Issues a burst of requests **pipelined** on this connection: every
    /// request is written (one flush) before any reply is read, then all
    /// replies are collected and returned in request order.
    ///
    /// Per-request server errors (`overloaded`, `not_found`, …) come back
    /// as [`ResponseBody::Error`] values rather than failing the whole
    /// burst — pipelined bursts are exactly where partial shedding occurs.
    ///
    /// # Errors
    ///
    /// Transport/protocol failures, or an unmatched/duplicate reply id.
    pub fn send_many(&mut self, reqs: Vec<Request>) -> Result<Vec<ResponseBody>, ClientError> {
        Ok(self
            .send_many_full(reqs)?
            .into_iter()
            .map(|reply| reply.body)
            .collect())
    }

    /// Like [`Client::send_many`], but returns the full replies — including
    /// the per-request routing report for accuracy-tagged requests.
    ///
    /// # Errors
    ///
    /// Transport/protocol failures, or an unmatched/duplicate reply id.
    pub fn send_many_full(&mut self, reqs: Vec<Request>) -> Result<Vec<Reply>, ClientError> {
        let ids: Vec<u64> = reqs
            .iter()
            .map(|_| {
                let id = self.next_id;
                self.next_id += 1;
                id
            })
            .collect();
        for (id, req) in ids.iter().zip(reqs) {
            let env = Envelope { id: *id, req };
            let payload = encode_request(&env);
            let len = u32::try_from(payload.len()).map_err(|_| {
                ClientError::Io(io::Error::new(
                    io::ErrorKind::InvalidInput,
                    "payload exceeds u32 length",
                ))
            })?;
            self.writer.write_all(&len.to_be_bytes())?;
            self.writer.write_all(&payload)?;
        }
        self.writer.flush()?;
        let mut by_id: HashMap<u64, Reply> = HashMap::with_capacity(ids.len());
        for _ in 0..ids.len() {
            // Events caused by pushes inside the burst are buffered for
            // `next_event`, not counted against the expected replies.
            let reply = self.read_reply()?;
            let id = reply.id;
            if !ids.contains(&id) || by_id.insert(id, reply).is_some() {
                return Err(ClientError::UnexpectedReply(format!(
                    "reply id {id} does not match a pending pipelined request"
                )));
            }
        }
        Ok(ids
            .into_iter()
            .map(|id| by_id.remove(&id).expect("collected above"))
            .collect())
    }
}
