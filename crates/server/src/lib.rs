//! # mda-server
//!
//! A batching network service for the memristor distance accelerator: the
//! "data center" deployment of the DAC'17 paper, where many clients share
//! one accelerator host and throughput comes from **batching**, not from
//! per-client parallelism.
//!
//! The server speaks a dependency-free, length-prefixed JSON protocol
//! ([`protocol`]) over TCP and exposes the library's six distance
//! functions plus its mining primitives:
//!
//! * `distance` — one pair, one value;
//! * `batch` — pairwise batch, one value per pair (or one query vs a
//!   resident dataset);
//! * `knn` — k-nearest-neighbour classification (exact
//!   `KnnClassifier::classify` semantics), inline train set or resident;
//! * `search` — banded-DTW subsequence search, inline or resident haystack;
//! * `upload_dataset` / `list_datasets` / `drop_dataset` — resident
//!   dataset management ([`datasets`]): upload a corpus once, then query it
//!   by content-addressed id so the wire carries queries, not corpora;
//! * `open_stream` / `push_points` / `subscribe` / `close_stream` —
//!   push-mode mining ([`streams`]): points fan through `mda-streaming`'s
//!   incremental operator DAG and every accepted point emits one
//!   epoch-tagged event per subscriber (epoch contiguity is the
//!   gap-detection contract; a push reply always precedes the events it
//!   caused on the same connection);
//! * `ping` / `metrics` — control plane.
//!
//! ## Architecture
//!
//! ```text
//! clients ══frames══► epoll event loop ──decompose──► CoalescingQueue
//!    (pipelined)        │ one thread,    (resolve          │ (admission
//!                       │ all conns       datasets)        │  control)
//!                       │                           dispatcher thread
//!                       │ inline: ping/metrics/           │ coalesced
//!                       │ upload/list/drop                ▼ batch
//!                       │                            BatchEngine
//!                       ▲                                 │
//! clients ◄══frames═══ write buffers ◄─completions+─ per-job replies
//!                                       eventfd wake
//! ```
//!
//! The serving core is a single readiness-based event-loop thread
//! ([`event_loop`]: epoll via raw FFI, non-blocking sockets, incremental
//! frame decode, per-connection pipelining with write-buffer
//! backpressure). Concurrent — and pipelined — requests are flattened into
//! shared [`BatchEngine`] batches ([`queue`]), so the engine's workers
//! stay saturated regardless of how the load is spread across connections.
//! Admission control sheds work beyond a bounded queue depth
//! (`overloaded`), queue-wait deadlines produce `timeout` replies, dataset
//! references that fail to resolve produce `not_found`/`stale_version`,
//! and shutdown drains every admitted job before closing sockets. Live
//! counters and latency histograms ([`metrics`]) are served both
//! in-protocol and as an HTTP/1.1 text endpoint on the same port (open
//! `http://host:port/` in a scraper).
//!
//! Results are **bitwise identical** to direct library calls: the
//! dispatcher evaluates every work item with the same
//! `Distance::evaluate_with` entry points and scratch reuse the mining
//! drivers use, and the JSON codec round-trips every finite `f64` exactly
//! (shortest-representation printing, [`json`]).
//!
//! ## Quick example
//!
//! ```
//! use mda_server::{Client, QueryOptions, Server, ServerConfig};
//! use mda_distance::DistanceKind;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let server = Server::start(ServerConfig::default())?; // 127.0.0.1, OS port
//! let mut client = Client::connect(server.local_addr())?;
//! let d = client
//!     .query_distance(DistanceKind::Manhattan, &[0.0, 1.0], &[0.0, 3.0], &QueryOptions::new())?
//!     .value;
//! assert_eq!(d, 2.0);
//! server.shutdown_and_join(); // drains in-flight work first
//! # Ok(())
//! # }
//! ```
//!
//! [`BatchEngine`]: mda_distance::BatchEngine

pub mod client;
pub mod config;
pub mod datasets;
pub mod event_loop;
pub mod exec;
pub mod json;
pub mod metrics;
pub mod protocol;
pub mod queue;
pub mod server;
pub mod streams;

pub use client::{
    Client, ClientError, KnnOutcome, PushedPoints, QueryOptions, QueryOpts, Routed, SearchOutcome,
    StreamOpen, Subscription,
};
pub use config::{ConfigError, ServerConfig};
pub use datasets::{DatasetStore, ResolveError};
pub use metrics::Metrics;
pub use protocol::{
    DatasetEntry, DatasetRef, DatasetSummary, ErrorCode, MatchRecord, ProtocolError, Request,
    ResponseBody, RouteInfo, StreamEventBody, StreamEventState, TrainInstance,
};
pub use server::{Server, ServerError};
pub use streams::{
    CloseOutcome, ConsistentRing, OpenOutcome, PushOutcome, RegistryError, StreamRegistry,
    SubscribeOutcome,
};

// Routing vocabulary used by the request surface, re-exported so clients
// need only this crate to express accuracy SLAs and read routing reports.
pub use mda_routing::{BackendId, Bound, Sla, SlaError};
