//! # mda-server
//!
//! A batching network service for the memristor distance accelerator: the
//! "data center" deployment of the DAC'17 paper, where many clients share
//! one accelerator host and throughput comes from **batching**, not from
//! per-client parallelism.
//!
//! The server speaks a dependency-free, length-prefixed JSON protocol
//! ([`protocol`]) over TCP and exposes the library's six distance
//! functions plus its mining primitives:
//!
//! * `distance` — one pair, one value;
//! * `batch` — pairwise batch, one value per pair;
//! * `knn` — k-nearest-neighbour classification (exact
//!   `KnnClassifier::classify` semantics);
//! * `search` — banded-DTW subsequence search;
//! * `ping` / `metrics` — control plane.
//!
//! ## Architecture
//!
//! ```text
//! clients ──frames──► reader threads ──decompose──► CoalescingQueue
//!                                                        │ (admission
//!                                                        │  control)
//!                                              dispatcher thread
//!                                                        │ coalesced
//!                                                        ▼ batch
//!                                                  BatchEngine
//!                                                        │
//! clients ◄──frames── writer threads ◄──assemble── per-job replies
//! ```
//!
//! Concurrent requests are flattened into shared [`BatchEngine`] batches
//! ([`queue`]), so the engine's workers stay saturated regardless of how
//! the load is spread across connections. Admission control sheds work
//! beyond a bounded queue depth (`overloaded`), queue-wait deadlines
//! produce `timeout` replies, and shutdown drains every admitted job
//! before closing sockets. Live counters and latency histograms
//! ([`metrics`]) are served both in-protocol and as an HTTP/1.1 text
//! endpoint on the same port (open `http://host:port/` in a scraper).
//!
//! Results are **bitwise identical** to direct library calls: the
//! dispatcher evaluates every work item with the same
//! `Distance::evaluate_with` entry points and scratch reuse the mining
//! drivers use, and the JSON codec round-trips every finite `f64` exactly
//! (shortest-representation printing, [`json`]).
//!
//! ## Quick example
//!
//! ```
//! use mda_server::{Client, Server, ServerConfig};
//! use mda_distance::DistanceKind;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let server = Server::start(ServerConfig::default())?; // 127.0.0.1, OS port
//! let mut client = Client::connect(server.local_addr())?;
//! let d = client.distance(DistanceKind::Manhattan, &[0.0, 1.0], &[0.0, 3.0])?;
//! assert_eq!(d, 2.0);
//! server.shutdown_and_join(); // drains in-flight work first
//! # Ok(())
//! # }
//! ```
//!
//! [`BatchEngine`]: mda_distance::BatchEngine

pub mod client;
pub mod config;
pub mod exec;
pub mod json;
pub mod metrics;
pub mod protocol;
pub mod queue;
pub mod server;

pub use client::{Client, ClientError, KnnOutcome, QueryOpts, SearchOutcome};
pub use config::{ConfigError, ServerConfig};
pub use metrics::Metrics;
pub use protocol::{ErrorCode, ProtocolError, Request, ResponseBody, TrainInstance};
pub use server::{Server, ServerError};
