//! Live serving metrics: lock-free counters and log-bucketed latency
//! histograms, rendered as a Prometheus-style text exposition.
//!
//! Every counter is a relaxed atomic — recording a sample on the hot path
//! is a handful of `fetch_add`s, never a lock. Quantiles (p50/p95/p99) are
//! estimated from the histogram buckets at render time, which is the usual
//! monitoring-system trade-off: exact counts, bucket-resolution quantiles.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

use mda_routing::BackendId;

/// Histogram bucket upper bounds, in microseconds (the last bucket is
/// implicit +inf). Roughly logarithmic from 50 µs to 5 s.
pub const BUCKET_BOUNDS_US: [u64; 16] = [
    50, 100, 200, 500, 1_000, 2_000, 5_000, 10_000, 20_000, 50_000, 100_000, 200_000, 500_000,
    1_000_000, 2_000_000, 5_000_000,
];

/// A log-bucketed latency histogram with atomic buckets.
#[derive(Debug, Default)]
pub struct Histogram {
    buckets: [AtomicU64; BUCKET_BOUNDS_US.len() + 1],
    count: AtomicU64,
    sum_us: AtomicU64,
    max_us: AtomicU64,
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one sample.
    pub fn record_us(&self, us: u64) {
        let idx = BUCKET_BOUNDS_US
            .iter()
            .position(|&b| us <= b)
            .unwrap_or(BUCKET_BOUNDS_US.len());
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum_us.fetch_add(us, Ordering::Relaxed);
        self.max_us.fetch_max(us, Ordering::Relaxed);
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Mean sample, µs (0 when empty).
    pub fn mean_us(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            return 0.0;
        }
        self.sum_us.load(Ordering::Relaxed) as f64 / n as f64
    }

    /// Largest sample seen, µs.
    pub fn max_us(&self) -> u64 {
        self.max_us.load(Ordering::Relaxed)
    }

    /// Estimates quantile `q` in [0, 1] as the upper bound of the bucket
    /// holding the q-th sample (the +inf bucket reports the observed max).
    pub fn quantile_us(&self, q: f64) -> u64 {
        let n = self.count();
        if n == 0 {
            return 0;
        }
        let rank = ((q * n as f64).ceil() as u64).clamp(1, n);
        let mut seen = 0u64;
        for (i, bucket) in self.buckets.iter().enumerate() {
            seen += bucket.load(Ordering::Relaxed);
            if seen >= rank {
                return BUCKET_BOUNDS_US
                    .get(i)
                    .copied()
                    .unwrap_or_else(|| self.max_us());
            }
        }
        self.max_us()
    }
}

/// One monotonically increasing counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Adds 1.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A settable instantaneous value (resident counts, open connections).
#[derive(Debug, Default)]
pub struct Gauge(AtomicU64);

impl Gauge {
    /// Sets the current value.
    pub fn set(&self, v: u64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Adds 1.
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Subtracts 1 (saturating at 0).
    pub fn dec(&self) {
        let _ = self
            .0
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |v| {
                Some(v.saturating_sub(1))
            });
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// The server's metrics registry. One instance per [`crate::Server`],
/// shared by every connection and the dispatcher.
#[derive(Debug, Default)]
pub struct Metrics {
    /// Requests received, by operation (indexed like [`Metrics::OPS`]).
    pub requests: [Counter; 13],
    /// Successful replies sent.
    pub replies_ok: Counter,
    /// Error replies sent (all codes).
    pub replies_error: Counter,
    /// Requests shed by admission control (`overloaded`).
    pub shed: Counter,
    /// Requests whose deadline expired in the queue (`timeout`).
    pub timeouts: Counter,
    /// Coalesced batches dispatched to the engine.
    pub batches: Counter,
    /// Work items executed across all batches.
    pub batch_items: Counter,
    /// Distinct requests coalesced across all batches.
    pub batch_requests: Counter,
    /// Largest single-batch item count seen.
    pub max_batch_items: AtomicUsize,
    /// Connections accepted.
    pub connections: Counter,
    /// Connections currently open on the event loop.
    pub open_connections: Gauge,
    /// Connections refused at accept (over the connection cap).
    pub connections_rejected: Counter,
    /// Compute requests submitted from connections (pipelined or not).
    pub pipeline_submits: Counter,
    /// Sum over submissions of the submitting connection's in-flight depth
    /// (including the new request) — mean depth = sum / submits.
    pub pipeline_depth_sum: Counter,
    /// Deepest single-connection pipeline observed.
    pub pipeline_depth_max: AtomicUsize,
    /// Datasets currently resident.
    pub datasets_resident: Gauge,
    /// Bytes of resident dataset samples.
    pub dataset_resident_bytes: Gauge,
    /// Successful dataset uploads (including idempotent re-uploads).
    pub dataset_uploads: Counter,
    /// Datasets dropped.
    pub dataset_drops: Counter,
    /// Queries that resolved a dataset reference.
    pub dataset_hits: Counter,
    /// Queries whose dataset reference failed (`not_found`/`stale_version`).
    pub dataset_misses: Counter,
    /// Time requests spent queued before dispatch.
    pub queue_wait: Histogram,
    /// Time completed replies waited in a connection's completion queue
    /// before being flushed into its write buffer.
    pub conn_wait: Histogram,
    /// End-to-end service latency (enqueue → reply handoff).
    pub latency: Histogram,
    /// Analog-mode computations served (requests flagged `analog`).
    pub analog_computations: Counter,
    /// Accumulated analog busy time, ns.
    pub analog_busy_ns: Counter,
    /// Routed compute requests, by chosen backend (indexed by
    /// [`BackendId`] discriminant, labels from [`BackendId::ALL`]).
    pub backend_selected: [Counter; 5],
    /// Work items whose analog answer saturated (or failed to encode) and
    /// silently fell back to a digital recompute.
    pub route_fallbacks: Counter,
    /// Analog fleet power currently reserved, microwatts (sampled at
    /// routing time, so it can lag lease releases by one submission).
    pub fleet_in_use_uw: Gauge,
    /// Push-mode streams currently open on the event loop.
    pub streams_open: Gauge,
    /// Streams opened over the server's lifetime.
    pub streams_opened: Counter,
    /// Points accepted across all streams.
    pub stream_points: Counter,
    /// Active stream subscriptions (fan-out width).
    pub stream_subscriptions: Gauge,
    /// Subscription events fanned out to subscribers.
    pub stream_events: Counter,
    /// Pushes that evicted a window point (pushes past burn-in).
    pub stream_evictions: Counter,
    /// Inline `push_points` handling latency (whole batch, incl. fan-out).
    pub stream_push: Histogram,
}

impl Metrics {
    /// Operation labels, index-aligned with [`Metrics::requests`].
    pub const OPS: [&'static str; 13] = [
        "ping",
        "metrics",
        "distance",
        "batch",
        "knn",
        "search",
        "upload_dataset",
        "list_datasets",
        "drop_dataset",
        "open_stream",
        "push_points",
        "subscribe",
        "close_stream",
    ];

    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Counts one received request for `op` (unknown labels are ignored).
    pub fn count_request(&self, op: &str) {
        if let Some(i) = Self::OPS.iter().position(|&o| o == op) {
            self.requests[i].inc();
        }
    }

    /// Counts one routed compute request for `backend`.
    pub fn count_backend(&self, backend: BackendId) {
        self.backend_selected[backend as usize].inc();
    }

    /// Records a dispatched coalesced batch.
    pub fn record_batch(&self, requests: usize, items: usize) {
        self.batches.inc();
        self.batch_requests.add(requests as u64);
        self.batch_items.add(items as u64);
        self.max_batch_items.fetch_max(items, Ordering::Relaxed);
    }

    /// Mean work items per dispatched batch — the coalescing occupancy.
    pub fn mean_batch_occupancy(&self) -> f64 {
        let batches = self.batches.get();
        if batches == 0 {
            return 0.0;
        }
        self.batch_items.get() as f64 / batches as f64
    }

    /// Records one compute submission from a connection with `depth`
    /// requests in flight on that connection (including this one).
    pub fn record_pipeline_submit(&self, depth: usize) {
        self.pipeline_submits.inc();
        self.pipeline_depth_sum.add(depth as u64);
        self.pipeline_depth_max.fetch_max(depth, Ordering::Relaxed);
    }

    /// Mean per-connection in-flight depth at submission time.
    pub fn mean_pipeline_depth(&self) -> f64 {
        let submits = self.pipeline_submits.get();
        if submits == 0 {
            return 0.0;
        }
        self.pipeline_depth_sum.get() as f64 / submits as f64
    }

    /// Renders the registry as Prometheus-style text.
    pub fn render_text(&self) -> String {
        let mut out = String::with_capacity(1024);
        for (i, op) in Self::OPS.iter().enumerate() {
            out.push_str(&format!(
                "mda_requests_total{{op=\"{op}\"}} {}\n",
                self.requests[i].get()
            ));
        }
        out.push_str(&format!("mda_replies_ok_total {}\n", self.replies_ok.get()));
        out.push_str(&format!(
            "mda_replies_error_total {}\n",
            self.replies_error.get()
        ));
        out.push_str(&format!("mda_shed_total {}\n", self.shed.get()));
        out.push_str(&format!("mda_timeout_total {}\n", self.timeouts.get()));
        out.push_str(&format!("mda_batches_total {}\n", self.batches.get()));
        out.push_str(&format!(
            "mda_batch_items_total {}\n",
            self.batch_items.get()
        ));
        out.push_str(&format!(
            "mda_batch_occupancy_mean {:.3}\n",
            self.mean_batch_occupancy()
        ));
        out.push_str(&format!(
            "mda_batch_items_max {}\n",
            self.max_batch_items.load(Ordering::Relaxed)
        ));
        out.push_str(&format!(
            "mda_connections_total {}\n",
            self.connections.get()
        ));
        out.push_str(&format!(
            "mda_open_connections {}\n",
            self.open_connections.get()
        ));
        out.push_str(&format!(
            "mda_connections_rejected_total {}\n",
            self.connections_rejected.get()
        ));
        out.push_str(&format!(
            "mda_pipeline_submits_total {}\n",
            self.pipeline_submits.get()
        ));
        out.push_str(&format!(
            "mda_pipeline_depth_mean {:.3}\n",
            self.mean_pipeline_depth()
        ));
        out.push_str(&format!(
            "mda_pipeline_depth_max {}\n",
            self.pipeline_depth_max.load(Ordering::Relaxed)
        ));
        out.push_str(&format!(
            "mda_datasets_resident {}\n",
            self.datasets_resident.get()
        ));
        out.push_str(&format!(
            "mda_dataset_resident_bytes {}\n",
            self.dataset_resident_bytes.get()
        ));
        out.push_str(&format!(
            "mda_dataset_uploads_total {}\n",
            self.dataset_uploads.get()
        ));
        out.push_str(&format!(
            "mda_dataset_drops_total {}\n",
            self.dataset_drops.get()
        ));
        out.push_str(&format!(
            "mda_dataset_hits_total {}\n",
            self.dataset_hits.get()
        ));
        out.push_str(&format!(
            "mda_dataset_misses_total {}\n",
            self.dataset_misses.get()
        ));
        out.push_str(&format!("mda_streams_open {}\n", self.streams_open.get()));
        out.push_str(&format!(
            "mda_streams_opened_total {}\n",
            self.streams_opened.get()
        ));
        out.push_str(&format!(
            "mda_stream_points_total {}\n",
            self.stream_points.get()
        ));
        out.push_str(&format!(
            "mda_stream_subscriptions {}\n",
            self.stream_subscriptions.get()
        ));
        out.push_str(&format!(
            "mda_stream_events_total {}\n",
            self.stream_events.get()
        ));
        out.push_str(&format!(
            "mda_stream_evictions_total {}\n",
            self.stream_evictions.get()
        ));
        for (name, h) in [
            ("queue_wait", &self.queue_wait),
            ("conn_wait", &self.conn_wait),
            ("latency", &self.latency),
            ("stream_push", &self.stream_push),
        ] {
            out.push_str(&format!("mda_{name}_us_count {}\n", h.count()));
            out.push_str(&format!("mda_{name}_us_mean {:.1}\n", h.mean_us()));
            for (q, label) in [(0.5, "0.5"), (0.95, "0.95"), (0.99, "0.99")] {
                out.push_str(&format!(
                    "mda_{name}_us{{quantile=\"{label}\"}} {}\n",
                    h.quantile_us(q)
                ));
            }
            out.push_str(&format!("mda_{name}_us_max {}\n", h.max_us()));
        }
        for (i, backend) in BackendId::ALL.into_iter().enumerate() {
            out.push_str(&format!(
                "mda_backend_selected_total{{backend=\"{backend}\"}} {}\n",
                self.backend_selected[i].get()
            ));
        }
        out.push_str(&format!(
            "mda_route_fallbacks_total {}\n",
            self.route_fallbacks.get()
        ));
        out.push_str(&format!(
            "mda_fleet_in_use_watts {:.6}\n",
            self.fleet_in_use_uw.get() as f64 / 1e6
        ));
        out.push_str(&format!(
            "mda_analog_computations_total {}\n",
            self.analog_computations.get()
        ));
        out.push_str(&format!(
            "mda_analog_busy_seconds {:.9}\n",
            self.analog_busy_ns.get() as f64 * 1.0e-9
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_quantiles_land_in_right_buckets() {
        let h = Histogram::new();
        // 90 fast samples, 10 slow ones.
        for _ in 0..90 {
            h.record_us(80);
        }
        for _ in 0..10 {
            h.record_us(40_000);
        }
        assert_eq!(h.count(), 100);
        assert_eq!(h.quantile_us(0.5), 100); // 80 µs → "≤ 100 µs" bucket
        assert_eq!(h.quantile_us(0.95), 50_000); // slow tail bucket
        assert_eq!(h.max_us(), 40_000);
        assert!((h.mean_us() - (90.0 * 80.0 + 10.0 * 40_000.0) / 100.0).abs() < 1e-9);
    }

    #[test]
    fn empty_histogram_reports_zero() {
        let h = Histogram::new();
        assert_eq!(h.quantile_us(0.99), 0);
        assert_eq!(h.mean_us(), 0.0);
    }

    #[test]
    fn overflow_bucket_reports_observed_max() {
        let h = Histogram::new();
        h.record_us(30_000_000);
        assert_eq!(h.quantile_us(0.5), 30_000_000);
    }

    #[test]
    fn render_contains_every_series() {
        let m = Metrics::new();
        m.count_request("distance");
        m.record_batch(2, 10);
        m.replies_ok.inc();
        m.shed.inc();
        m.queue_wait.record_us(120);
        m.count_request("upload_dataset");
        m.record_pipeline_submit(4);
        m.open_connections.set(3);
        m.datasets_resident.set(2);
        m.dataset_resident_bytes.set(4096);
        m.count_backend(BackendId::Analog);
        m.route_fallbacks.inc();
        m.fleet_in_use_uw.set(580_000);
        m.count_request("open_stream");
        m.count_request("push_points");
        m.streams_open.set(1);
        m.streams_opened.inc();
        m.stream_points.add(7);
        m.stream_subscriptions.set(2);
        m.stream_events.add(14);
        m.stream_evictions.add(3);
        m.stream_push.record_us(60);
        let text = m.render_text();
        for needle in [
            "mda_requests_total{op=\"distance\"} 1",
            "mda_requests_total{op=\"upload_dataset\"} 1",
            "mda_batches_total 1",
            "mda_batch_occupancy_mean 10.000",
            "mda_shed_total 1",
            "mda_queue_wait_us{quantile=\"0.5\"} 200",
            "mda_latency_us_count 0",
            "mda_open_connections 3",
            "mda_pipeline_depth_mean 4.000",
            "mda_pipeline_depth_max 4",
            "mda_datasets_resident 2",
            "mda_dataset_resident_bytes 4096",
            "mda_conn_wait_us_count 0",
            "mda_backend_selected_total{backend=\"analog\"} 1",
            "mda_backend_selected_total{backend=\"digital_exact\"} 0",
            "mda_route_fallbacks_total 1",
            "mda_fleet_in_use_watts 0.580000",
            "mda_requests_total{op=\"open_stream\"} 1",
            "mda_requests_total{op=\"push_points\"} 1",
            "mda_streams_open 1",
            "mda_streams_opened_total 1",
            "mda_stream_points_total 7",
            "mda_stream_subscriptions 2",
            "mda_stream_events_total 14",
            "mda_stream_evictions_total 3",
            "mda_stream_push_us_count 1",
        ] {
            assert!(text.contains(needle), "missing `{needle}` in:\n{text}");
        }
    }

    #[test]
    fn gauge_tracks_ups_and_downs() {
        let g = Gauge::default();
        g.inc();
        g.inc();
        g.dec();
        assert_eq!(g.get(), 1);
        g.dec();
        g.dec(); // saturates at 0
        assert_eq!(g.get(), 0);
        g.set(42);
        assert_eq!(g.get(), 42);
    }

    #[test]
    fn occupancy_mean_tracks_items_per_batch() {
        let m = Metrics::new();
        m.record_batch(1, 1);
        m.record_batch(3, 9);
        assert!((m.mean_batch_occupancy() - 5.0).abs() < 1e-12);
        assert_eq!(m.max_batch_items.load(Ordering::Relaxed), 9);
    }
}
