//! The request-coalescing queue: admission control at the front, one
//! dispatcher thread at the back.
//!
//! Connections never compute. They decompose requests into work items
//! ([`crate::exec`]) and [`submit`](Coalescer::submit) them; the single
//! dispatcher thread drains the queue into **coalesced batches** — work
//! items from as many queued requests as fit the batch budget — and runs
//! each batch through one [`BatchEngine`] map call. Throughput therefore
//! scales with the engine's worker threads (one accelerator host core
//! each), not with the number of open connections.
//!
//! Admission control is item-based: the queue holds at most
//! `max_queue_items` work items. A submission that would overflow is
//! rejected immediately (`overloaded` reply, no queuing, no blocking) —
//! load-shedding at the door instead of collapse under backlog. One
//! oversized job is still admitted when the queue is empty, so capacity
//! bounds backlog without capping single-request size.
//!
//! Deadlines bound *queue wait*: a request whose `deadline_ms` expires
//! before dispatch is answered with `timeout` and never computed. Batches
//! in flight always run to completion — graceful drain relies on that.

use std::collections::VecDeque;
use std::sync::mpsc::Sender;
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use mda_distance::{BatchEngine, DistanceError, DpScratch};
use mda_routing::PowerLease;

use crate::event_loop::Completions;
use crate::exec::{execute_item_routed, Assemble, ItemOutcome, WorkItem};
use crate::metrics::Metrics;
use crate::protocol::{ErrorCode, Reply, ResponseBody, RouteInfo};

/// Where a finished job's reply goes.
///
/// The event loop cannot block on a channel: its connections are plain
/// state machines owned by one thread. Dispatcher completions for event-loop
/// connections are therefore pushed onto a shared [`Completions`] queue
/// (keyed by connection token) and the loop is woken via its eventfd; tests
/// and embedders can still use a plain mpsc channel.
#[derive(Debug, Clone)]
pub enum ReplySink {
    /// Deliver over an mpsc channel (tests, embedding).
    Channel(Sender<Reply>),
    /// Deliver to an event-loop connection by token.
    Conn {
        /// The connection's event-loop token.
        token: u64,
        /// The loop's completion queue (push wakes the loop).
        completions: Arc<Completions>,
    },
}

impl ReplySink {
    /// Delivers one reply. A vanished receiver (disconnected channel or
    /// already-closed connection) is not an error: the reply is dropped.
    pub fn send(&self, reply: Reply) {
        match self {
            ReplySink::Channel(tx) => {
                let _ = tx.send(reply);
            }
            ReplySink::Conn { token, completions } => completions.push(*token, reply),
        }
    }
}

/// One queued compute request.
#[derive(Debug)]
pub struct Job {
    /// Envelope id, echoed on the reply.
    pub id: u64,
    /// Flattened work items.
    pub items: Vec<WorkItem>,
    /// Reduction back to one reply.
    pub assemble: Assemble,
    /// Where the reply goes.
    pub reply: ReplySink,
    /// Absolute queue-wait deadline, if the request set one.
    pub deadline: Option<Instant>,
    /// When the job entered the queue.
    pub enqueued: Instant,
    /// Routing decision to report on the reply (`None` when the request
    /// carried no explicit accuracy SLA — keeps default replies
    /// byte-identical to the pre-routing protocol).
    pub route: Option<RouteInfo>,
    /// Analog fleet power reservation, held until the job finishes.
    pub lease: Option<PowerLease>,
}

/// Why a submission was refused.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SubmitError {
    /// The queue is at capacity; the request was shed.
    Overloaded {
        /// Items currently queued.
        queued: usize,
        /// The configured capacity.
        capacity: usize,
    },
    /// The server is draining.
    ShuttingDown,
}

impl SubmitError {
    /// The wire error code for this refusal.
    pub fn code(self) -> ErrorCode {
        match self {
            SubmitError::Overloaded { .. } => ErrorCode::Overloaded,
            SubmitError::ShuttingDown => ErrorCode::ShuttingDown,
        }
    }

    /// Human-readable reply message.
    pub fn message(self) -> String {
        match self {
            SubmitError::Overloaded { queued, capacity } => format!(
                "server overloaded: {queued} work items queued (capacity {capacity}); retry later"
            ),
            SubmitError::ShuttingDown => "server is draining and no longer accepts work".into(),
        }
    }
}

#[derive(Debug, Default)]
struct QueueState {
    jobs: VecDeque<Job>,
    queued_items: usize,
    draining: bool,
}

/// The shared coalescing queue.
#[derive(Debug)]
pub struct Coalescer {
    state: Mutex<QueueState>,
    cv: Condvar,
    metrics: Arc<Metrics>,
    max_queue_items: usize,
    batch_max_items: usize,
}

impl Coalescer {
    /// Creates a queue with the given capacity and per-batch item budget.
    pub fn new(metrics: Arc<Metrics>, max_queue_items: usize, batch_max_items: usize) -> Self {
        Coalescer {
            state: Mutex::new(QueueState::default()),
            cv: Condvar::new(),
            metrics,
            max_queue_items: max_queue_items.max(1),
            batch_max_items: batch_max_items.max(1),
        }
    }

    /// Admits or sheds one job. Never blocks.
    ///
    /// # Errors
    ///
    /// [`SubmitError::Overloaded`] when the job would overflow the queue
    /// (the shed counter is incremented here), [`SubmitError::ShuttingDown`]
    /// once draining has begun.
    pub fn submit(&self, job: Job) -> Result<(), SubmitError> {
        let mut state = self.state.lock().expect("queue mutex poisoned");
        if state.draining {
            return Err(SubmitError::ShuttingDown);
        }
        let incoming = job.items.len();
        if !state.jobs.is_empty() && state.queued_items + incoming > self.max_queue_items {
            let queued = state.queued_items;
            drop(state);
            self.metrics.shed.inc();
            return Err(SubmitError::Overloaded {
                queued,
                capacity: self.max_queue_items,
            });
        }
        state.queued_items += incoming;
        state.jobs.push_back(job);
        drop(state);
        self.cv.notify_one();
        Ok(())
    }

    /// Work items currently queued (for tests and introspection).
    pub fn queued_items(&self) -> usize {
        self.state
            .lock()
            .expect("queue mutex poisoned")
            .queued_items
    }

    /// Starts draining: new submissions are refused, queued jobs will still
    /// be dispatched. Idempotent.
    pub fn begin_drain(&self) {
        let mut state = self.state.lock().expect("queue mutex poisoned");
        state.draining = true;
        drop(state);
        self.cv.notify_all();
    }

    /// Blocks until jobs are available (or drain + empty), then takes one
    /// coalesced batch: at least one job, then more jobs while the combined
    /// item count stays within the batch budget. Returns `None` when
    /// draining and empty — the dispatcher's exit signal.
    fn next_batch(&self) -> Option<Vec<Job>> {
        let mut state = self.state.lock().expect("queue mutex poisoned");
        loop {
            if !state.jobs.is_empty() {
                break;
            }
            if state.draining {
                return None;
            }
            let (next, _) = self
                .cv
                .wait_timeout(state, Duration::from_millis(100))
                .expect("queue mutex poisoned");
            state = next;
        }
        let mut batch = Vec::new();
        let mut total = 0usize;
        while let Some(job) = state.jobs.front() {
            let n = job.items.len();
            if !batch.is_empty() && total + n > self.batch_max_items {
                break;
            }
            total += n;
            let job = state.jobs.pop_front().expect("front() was Some");
            batch.push(job);
            if total >= self.batch_max_items {
                break;
            }
        }
        state.queued_items -= total;
        Some(batch)
    }

    /// Runs the dispatcher until drain completes. One thread per server.
    pub fn dispatch_loop(&self, engine: &BatchEngine) {
        while let Some(batch) = self.next_batch() {
            self.dispatch(batch, engine);
        }
    }

    /// Spawns the dispatcher thread.
    pub fn spawn_dispatcher(self: &Arc<Self>, engine: BatchEngine) -> JoinHandle<()> {
        let queue = Arc::clone(self);
        std::thread::Builder::new()
            .name("mda-dispatch".into())
            .spawn(move || queue.dispatch_loop(&engine))
            .expect("spawn dispatcher thread")
    }

    /// Executes one coalesced batch and delivers every reply.
    fn dispatch(&self, batch: Vec<Job>, engine: &BatchEngine) {
        let now = Instant::now();

        // Expired-deadline jobs time out without computing.
        let (live, dead): (Vec<Job>, Vec<Job>) = batch
            .into_iter()
            .partition(|job| job.deadline.is_none_or(|d| now <= d));
        for job in dead {
            self.metrics.timeouts.inc();
            self.finish(
                &job,
                ResponseBody::Error {
                    code: ErrorCode::Timeout,
                    message: "deadline expired while queued".into(),
                },
            );
        }
        if live.is_empty() {
            return;
        }

        // Flatten all live jobs' items into one engine batch.
        let mut flat: Vec<WorkItem> = Vec::with_capacity(live.iter().map(|j| j.items.len()).sum());
        for job in &live {
            self.metrics
                .queue_wait
                .record_us(now.duration_since(job.enqueued).as_micros() as u64);
            flat.extend(job.items.iter().cloned());
        }
        self.metrics.record_batch(live.len(), flat.len());

        // Item errors are carried as values, so one bad request can never
        // abort a batch it shares with healthy neighbours.
        let routed: Vec<Result<(ItemOutcome, bool), DistanceError>> =
            match engine.try_map_with(&flat, DpScratch::new, |scratch, _, item| {
                Ok::<_, std::convert::Infallible>(execute_item_routed(item, scratch))
            }) {
                Ok(v) => v,
                Err(e) => match e {},
            };
        let fallbacks = routed.iter().filter(|r| matches!(r, Ok((_, true)))).count();
        if fallbacks > 0 {
            self.metrics.route_fallbacks.add(fallbacks as u64);
        }
        let outcomes: Vec<Result<ItemOutcome, DistanceError>> = routed
            .into_iter()
            .map(|r| r.map(|(outcome, _)| outcome))
            .collect();

        let mut offset = 0usize;
        for job in &live {
            let n = job.items.len();
            let body = assemble(&job.assemble, &outcomes[offset..offset + n]);
            offset += n;
            self.finish(job, body);
        }
        // `live` drops here, releasing every job's fleet lease.
    }

    /// Sends the reply and records the reply + latency metrics.
    fn finish(&self, job: &Job, body: ResponseBody) {
        let is_error = matches!(body, ResponseBody::Error { .. });
        if is_error {
            self.metrics.replies_error.inc();
        } else {
            self.metrics.replies_ok.inc();
        }
        self.metrics
            .latency
            .record_us(job.enqueued.elapsed().as_micros() as u64);
        let mut reply = Reply::new(job.id, body);
        if !is_error {
            reply.route = job.route;
        }
        // A disconnected client is not an error: drop the reply.
        job.reply.send(reply);
    }
}

/// Folds a job's item outcomes into its reply body, reporting the
/// lowest-indexed item error (the error a serial loop would hit first).
fn assemble(assemble: &Assemble, outcomes: &[Result<ItemOutcome, DistanceError>]) -> ResponseBody {
    if let Some(err) = outcomes.iter().find_map(|o| o.as_ref().err()) {
        return ResponseBody::Error {
            code: ErrorCode::BadRequest,
            message: err.to_string(),
        };
    }
    let value_at = |i: usize| match outcomes[i] {
        Ok(ItemOutcome::Value(v)) => v,
        _ => f64::NAN,
    };
    match assemble {
        Assemble::Single => match outcomes.first() {
            Some(Ok(ItemOutcome::Value(value))) => ResponseBody::Distance { value: *value },
            _ => internal("distance job had no value outcome"),
        },
        Assemble::Values => ResponseBody::Batch {
            values: (0..outcomes.len()).map(value_at).collect(),
        },
        Assemble::Search => match outcomes.first() {
            Some(Ok(ItemOutcome::Match { offset, distance })) => ResponseBody::Search {
                offset: *offset,
                distance: *distance,
            },
            _ => internal("search job had no match outcome"),
        },
        Assemble::Knn { k, labels, invert } => {
            if labels.is_empty() {
                return ResponseBody::Error {
                    code: ErrorCode::BadRequest,
                    message: "classifier has no training data".into(),
                };
            }
            // Mirrors `KnnClassifier::classify` exactly: scores in training
            // order, stable sort (ties to lowest index), majority vote with
            // vote-ties broken by the single nearest neighbour's label.
            let mut scored: Vec<(usize, f64)> = (0..outcomes.len())
                .map(|i| {
                    let raw = value_at(i);
                    (i, if *invert { -raw } else { raw })
                })
                .collect();
            if scored.iter().any(|(_, s)| s.is_nan()) {
                return internal("non-finite kNN score");
            }
            scored.sort_by(|a, b| a.1.partial_cmp(&b.1).expect("scores checked finite"));
            let k = (*k).min(scored.len());
            let mut votes = std::collections::HashMap::new();
            for &(idx, _) in &scored[..k] {
                *votes.entry(labels[idx]).or_insert(0usize) += 1;
            }
            let nearest = scored[0];
            let best_count = *votes.values().max().expect("k >= 1");
            let winners: Vec<usize> = votes
                .iter()
                .filter(|(_, &c)| c == best_count)
                .map(|(&l, _)| l)
                .collect();
            let label = if winners.len() == 1 {
                winners[0]
            } else {
                labels[nearest.0]
            };
            ResponseBody::Knn {
                label,
                score: nearest.1,
                nearest_index: nearest.0,
            }
        }
    }
}

fn internal(message: &str) -> ResponseBody {
    ResponseBody::Error {
        code: ErrorCode::Internal,
        message: message.into(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::{decompose, PairSpec};
    use mda_distance::DistanceKind;
    use mda_routing::BackendId;
    use std::sync::mpsc;

    fn pair_items(n: usize, len: usize) -> Vec<WorkItem> {
        (0..n)
            .map(|i| WorkItem::Pair {
                spec: PairSpec {
                    kind: DistanceKind::Manhattan,
                    threshold: None,
                    band: None,
                    backend: BackendId::DigitalExact,
                },
                p: (0..len).map(|j| (i + j) as f64).collect::<Vec<_>>().into(),
                q: (0..len).map(|j| j as f64).collect::<Vec<_>>().into(),
            })
            .collect()
    }

    fn job(items: Vec<WorkItem>, reply: Sender<Reply>) -> Job {
        Job {
            id: 1,
            items,
            assemble: Assemble::Values,
            reply: ReplySink::Channel(reply),
            deadline: None,
            enqueued: Instant::now(),
            route: None,
            lease: None,
        }
    }

    #[test]
    fn admission_sheds_beyond_capacity_without_dispatcher() {
        let metrics = Arc::new(Metrics::new());
        let queue = Coalescer::new(Arc::clone(&metrics), 4, 4);
        let (tx, _rx) = mpsc::channel();
        // First job admitted (queue empty), second overflows.
        queue.submit(job(pair_items(3, 4), tx.clone())).unwrap();
        let err = queue.submit(job(pair_items(2, 4), tx.clone())).unwrap_err();
        assert!(matches!(err, SubmitError::Overloaded { queued: 3, .. }));
        assert_eq!(err.code(), ErrorCode::Overloaded);
        assert_eq!(metrics.shed.get(), 1);
        // A job fitting the remaining capacity is still admitted.
        queue.submit(job(pair_items(1, 4), tx)).unwrap();
        assert_eq!(queue.queued_items(), 4);
    }

    #[test]
    fn oversized_job_admitted_only_when_queue_empty() {
        let metrics = Arc::new(Metrics::new());
        let queue = Coalescer::new(metrics, 4, 4);
        let (tx, _rx) = mpsc::channel();
        queue.submit(job(pair_items(10, 4), tx.clone())).unwrap();
        assert!(queue.submit(job(pair_items(1, 4), tx)).is_err());
    }

    #[test]
    fn drain_refuses_new_work() {
        let metrics = Arc::new(Metrics::new());
        let queue = Coalescer::new(metrics, 16, 16);
        queue.begin_drain();
        let (tx, _rx) = mpsc::channel();
        assert_eq!(
            queue.submit(job(pair_items(1, 4), tx)).unwrap_err(),
            SubmitError::ShuttingDown
        );
    }

    #[test]
    fn dispatcher_coalesces_multiple_jobs_into_one_batch() {
        let metrics = Arc::new(Metrics::new());
        let queue = Arc::new(Coalescer::new(Arc::clone(&metrics), 1024, 1024));
        let (tx_a, rx_a) = mpsc::channel();
        let (tx_b, rx_b) = mpsc::channel();
        queue.submit(job(pair_items(3, 8), tx_a)).unwrap();
        queue.submit(job(pair_items(2, 8), tx_b)).unwrap();
        let handle = queue.spawn_dispatcher(BatchEngine::serial());
        let a = rx_a.recv_timeout(Duration::from_secs(10)).unwrap();
        let b = rx_b.recv_timeout(Duration::from_secs(10)).unwrap();
        let (ResponseBody::Batch { values: va }, ResponseBody::Batch { values: vb }) =
            (&a.body, &b.body)
        else {
            panic!("batch replies expected, got {a:?} / {b:?}");
        };
        assert_eq!((va.len(), vb.len()), (3, 2));
        // Both jobs were queued before the dispatcher started, so they ride
        // one coalesced batch of 5 items.
        assert_eq!(metrics.batches.get(), 1);
        assert_eq!(metrics.batch_items.get(), 5);
        assert!((metrics.mean_batch_occupancy() - 5.0).abs() < 1e-12);
        queue.begin_drain();
        handle.join().unwrap();
    }

    #[test]
    fn expired_deadline_times_out_instead_of_computing() {
        let metrics = Arc::new(Metrics::new());
        let queue = Arc::new(Coalescer::new(Arc::clone(&metrics), 64, 64));
        let (tx, rx) = mpsc::channel();
        let mut j = job(pair_items(1, 4), tx);
        j.deadline = Some(Instant::now() - Duration::from_millis(10));
        queue.submit(j).unwrap();
        let handle = queue.spawn_dispatcher(BatchEngine::serial());
        let reply = rx.recv_timeout(Duration::from_secs(10)).unwrap();
        assert!(matches!(
            reply.body,
            ResponseBody::Error {
                code: ErrorCode::Timeout,
                ..
            }
        ));
        assert_eq!(metrics.timeouts.get(), 1);
        queue.begin_drain();
        handle.join().unwrap();
    }

    #[test]
    fn item_error_answers_only_the_offending_job() {
        let metrics = Arc::new(Metrics::new());
        let queue = Arc::new(Coalescer::new(metrics, 64, 64));
        let (tx_ok, rx_ok) = mpsc::channel();
        let (tx_bad, rx_bad) = mpsc::channel();
        queue.submit(job(pair_items(2, 4), tx_ok)).unwrap();
        let bad_item = WorkItem::Pair {
            spec: PairSpec {
                kind: DistanceKind::Manhattan,
                threshold: None,
                band: None,
                backend: BackendId::DigitalExact,
            },
            p: vec![0.0].into(),
            q: vec![0.0, 1.0].into(),
        };
        queue.submit(job(vec![bad_item], tx_bad)).unwrap();
        let handle = queue.spawn_dispatcher(BatchEngine::serial());
        let ok = rx_ok.recv_timeout(Duration::from_secs(10)).unwrap();
        let bad = rx_bad.recv_timeout(Duration::from_secs(10)).unwrap();
        assert!(matches!(ok.body, ResponseBody::Batch { .. }));
        assert!(matches!(
            bad.body,
            ResponseBody::Error {
                code: ErrorCode::BadRequest,
                ..
            }
        ));
        queue.begin_drain();
        handle.join().unwrap();
    }

    #[test]
    fn knn_assembly_matches_classifier_semantics() {
        // Distances 1.0 (label 0), 0.5 (label 1), 2.0 (label 0), k=3:
        // votes 0:2, 1:1 → label 0; nearest is index 1 (score 0.5).
        let outcomes: Vec<Result<ItemOutcome, DistanceError>> = vec![
            Ok(ItemOutcome::Value(1.0)),
            Ok(ItemOutcome::Value(0.5)),
            Ok(ItemOutcome::Value(2.0)),
        ];
        let body = assemble(
            &Assemble::Knn {
                k: 3,
                labels: vec![0, 1, 0],
                invert: false,
            },
            &outcomes,
        );
        assert_eq!(
            body,
            ResponseBody::Knn {
                label: 0,
                score: 0.5,
                nearest_index: 1
            }
        );
    }

    #[test]
    fn knn_empty_train_is_bad_request() {
        let body = assemble(
            &Assemble::Knn {
                k: 1,
                labels: vec![],
                invert: false,
            },
            &[],
        );
        assert!(matches!(
            body,
            ResponseBody::Error {
                code: ErrorCode::BadRequest,
                ..
            }
        ));
    }

    #[test]
    fn decomposed_knn_round_trips_through_dispatch() {
        use crate::protocol::{Request, TrainInstance};
        let req = Request::Knn {
            kind: DistanceKind::Manhattan,
            k: 1,
            query: vec![0.0, 0.1],
            train: vec![
                TrainInstance {
                    label: 4,
                    series: vec![0.0, 0.0],
                },
                TrainInstance {
                    label: 9,
                    series: vec![5.0, 5.0],
                },
            ],
            dataset: None,
            threshold: None,
            band: None,
            deadline_ms: None,
            accuracy: None,
        };
        let store = crate::datasets::DatasetStore::new(u64::MAX);
        let d = decompose(req, &store).unwrap().unwrap();
        let metrics = Arc::new(Metrics::new());
        let queue = Arc::new(Coalescer::new(metrics, 64, 64));
        let (tx, rx) = mpsc::channel();
        queue
            .submit(Job {
                id: 77,
                items: d.items,
                assemble: d.assemble,
                reply: ReplySink::Channel(tx),
                deadline: None,
                enqueued: Instant::now(),
                route: None,
                lease: None,
            })
            .unwrap();
        let handle = queue.spawn_dispatcher(BatchEngine::serial());
        let reply = rx.recv_timeout(Duration::from_secs(10)).unwrap();
        assert_eq!(reply.id, 77);
        assert!(matches!(
            reply.body,
            ResponseBody::Knn {
                label: 4,
                nearest_index: 0,
                ..
            }
        ));
        queue.begin_drain();
        handle.join().unwrap();
    }
}
