//! Minimal JSON support for the wire protocol.
//!
//! The build environment is offline (no serde), so the server carries its
//! own JSON value type, parser and writer. Design constraints, in order:
//!
//! 1. **Never panic.** Every malformed input path returns [`JsonError`];
//!    nesting depth is capped so adversarial `[[[[…` input cannot overflow
//!    the stack. The protocol property tests fuzz this.
//! 2. **Bitwise `f64` round-trips.** Numbers are written with Rust's
//!    shortest-round-trip `Display` and re-parsed with `str::parse::<f64>`
//!    (correctly rounded), so a finite `f64` survives encode → decode with
//!    its exact bit pattern — the property the end-to-end "server equals
//!    direct `BatchEngine` call" guarantee rests on.
//! 3. **Deterministic output.** Objects keep insertion order (a `Vec` of
//!    pairs, not a hash map).
//!
//! Non-finite numbers serialize as `null`, like serde_json; distances are
//! finite so this only affects deliberately hostile inputs.

use std::fmt;

/// Maximum nesting depth the parser accepts before erroring out.
pub const MAX_DEPTH: usize = 64;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in insertion order.
    Obj(Vec<(String, Json)>),
}

/// Error from [`Json::parse`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset the error was detected at.
    pub offset: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid JSON at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

/// Serializes the value to a compact JSON document (`to_string()`).
impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut out = String::new();
        self.write(&mut out);
        f.write_str(&out)
    }
}

impl Json {
    /// Parses one JSON document; trailing non-whitespace is an error.
    ///
    /// # Errors
    ///
    /// Returns [`JsonError`] on any syntax violation, non-UTF-8 escape,
    /// or nesting beyond [`MAX_DEPTH`].
    pub fn parse(input: &[u8]) -> Result<Json, JsonError> {
        let mut p = Parser {
            bytes: input,
            pos: 0,
        };
        p.skip_ws();
        let value = p.value(0)?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing data after document"));
        }
        Ok(value)
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(x) => {
                if x.is_finite() {
                    out.push_str(&format!("{x}"));
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_string(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(pairs) => {
                out.push('{');
                for (i, (key, value)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_string(key, out);
                    out.push(':');
                    value.write(out);
                }
                out.push('}');
            }
        }
    }

    /// Looks up `key` in an object; `None` for missing keys or non-objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(x) => Some(*x),
            _ => None,
        }
    }

    /// The value as a non-negative integer (rejects fractional parts and
    /// anything beyond 2^53, where `f64` stops being exact).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(x) if *x >= 0.0 && x.fract() == 0.0 && *x <= 9.0e15 => Some(*x as u64),
            _ => None,
        }
    }

    /// The value as an index-sized integer.
    pub fn as_usize(&self) -> Option<usize> {
        self.as_u64().and_then(|v| usize::try_from(v).ok())
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The value as an `f64` vector (errors on any non-number element).
    pub fn as_f64_vec(&self) -> Option<Vec<f64>> {
        self.as_array()?.iter().map(Json::as_f64).collect()
    }

    /// Builds an array of numbers.
    pub fn from_f64s(xs: &[f64]) -> Json {
        Json::Arr(xs.iter().map(|&x| Json::Num(x)).collect())
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &str) -> JsonError {
        JsonError {
            offset: self.pos,
            message: message.into(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), JsonError> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", byte as char)))
        }
    }

    fn literal(&mut self, text: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected `{text}`")))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, JsonError> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{08}'),
                        Some(b'f') => out.push('\u{0c}'),
                        Some(b'u') => {
                            self.pos += 1;
                            let c = self.unicode_escape()?;
                            out.push(c);
                            continue;
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(c) if c < 0x20 => return Err(self.err("raw control character in string")),
                Some(_) => {
                    // Copy one UTF-8 scalar; reject invalid encodings.
                    let rest = &self.bytes[self.pos..];
                    let len = utf8_len(rest[0]);
                    if len == 0 || rest.len() < len {
                        return Err(self.err("invalid UTF-8 in string"));
                    }
                    match std::str::from_utf8(&rest[..len]) {
                        Ok(s) => out.push_str(s),
                        Err(_) => return Err(self.err("invalid UTF-8 in string")),
                    }
                    self.pos += len;
                }
            }
        }
    }

    /// Parses the 4 hex digits after `\u` (the `u` is already consumed),
    /// combining surrogate pairs. Leaves `pos` after the final digit's
    /// closing position.
    fn unicode_escape(&mut self) -> Result<char, JsonError> {
        let hi = self.hex4()?;
        if (0xd800..0xdc00).contains(&hi) {
            // High surrogate: a `\uXXXX` low surrogate must follow.
            if self.bytes[self.pos..].starts_with(b"\\u") {
                self.pos += 2;
                let lo = self.hex4()?;
                if !(0xdc00..0xe000).contains(&lo) {
                    return Err(self.err("invalid low surrogate"));
                }
                let code = 0x10000 + ((hi - 0xd800) << 10) + (lo - 0xdc00);
                return char::from_u32(code).ok_or_else(|| self.err("invalid surrogate pair"));
            }
            return Err(self.err("unpaired high surrogate"));
        }
        if (0xdc00..0xe000).contains(&hi) {
            return Err(self.err("unpaired low surrogate"));
        }
        char::from_u32(hi).ok_or_else(|| self.err("invalid \\u escape"))
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let mut code = 0u32;
        for _ in 0..4 {
            let d = match self.peek() {
                Some(c @ b'0'..=b'9') => u32::from(c - b'0'),
                Some(c @ b'a'..=b'f') => u32::from(c - b'a') + 10,
                Some(c @ b'A'..=b'F') => u32::from(c - b'A') + 10,
                _ => return Err(self.err("expected 4 hex digits")),
            };
            code = code * 16 + d;
            self.pos += 1;
        }
        Ok(code)
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        // Integer part: `0` or a nonzero digit followed by digits.
        match self.peek() {
            Some(b'0') => self.pos += 1,
            Some(b'1'..=b'9') => {
                while matches!(self.peek(), Some(b'0'..=b'9')) {
                    self.pos += 1;
                }
            }
            _ => return Err(self.err("expected digit")),
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.err("expected digit after '.'"));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.err("expected exponent digit"));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("non-UTF-8 number"))?;
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err("unparseable number"))
    }
}

/// Expected byte length of a UTF-8 scalar starting with `first`; 0 for
/// continuation/invalid lead bytes.
fn utf8_len(first: u8) -> usize {
    match first {
        0x00..=0x7f => 1,
        0xc2..=0xdf => 2,
        0xe0..=0xef => 3,
        0xf0..=0xf4 => 4,
        _ => 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(v: &Json) -> Json {
        Json::parse(v.to_string().as_bytes()).expect("writer output must parse")
    }

    #[test]
    fn scalars_roundtrip() {
        for v in [
            Json::Null,
            Json::Bool(true),
            Json::Bool(false),
            Json::Num(0.0),
            Json::Num(-0.0),
            Json::Num(1.5e-300),
            Json::Num(12345678901234.0),
            Json::Str("hé\"\\\n\t\u{1}\u{1F600}".into()),
        ] {
            assert_eq!(roundtrip(&v), v);
        }
    }

    #[test]
    fn f64_roundtrip_is_bitwise() {
        for &x in &[
            0.1,
            -0.0,
            1.0 / 3.0,
            f64::MIN_POSITIVE,
            2.225_073_858_507_201e-308, // subnormal-boundary classic
            9.869604401089358,
        ] {
            let Json::Num(y) = roundtrip(&Json::Num(x)) else {
                panic!("number became non-number");
            };
            assert_eq!(x.to_bits(), y.to_bits(), "{x} did not round-trip");
        }
    }

    #[test]
    fn nested_structures_roundtrip() {
        let v = Json::Obj(vec![
            ("id".into(), Json::Num(7.0)),
            ("xs".into(), Json::from_f64s(&[1.0, -2.5, 3.25])),
            (
                "inner".into(),
                Json::Obj(vec![("empty".into(), Json::Arr(vec![]))]),
            ),
        ]);
        assert_eq!(roundtrip(&v), v);
        assert_eq!(v.get("id").and_then(Json::as_u64), Some(7));
        assert_eq!(
            v.get("xs").and_then(Json::as_f64_vec),
            Some(vec![1.0, -2.5, 3.25])
        );
    }

    #[test]
    fn malformed_inputs_error() {
        for bad in [
            &b""[..],
            b"{",
            b"[1,]",
            b"{\"a\":}",
            b"01",
            b"1.",
            b"1e",
            b"\"\\x\"",
            b"\"\\ud800\"",
            b"\"unterminated",
            b"nul",
            b"[1] trailing",
            b"\xff",
            b"\"\xc3\"",
        ] {
            assert!(Json::parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn deep_nesting_rejected_without_overflow() {
        let mut doc = Vec::new();
        doc.extend(std::iter::repeat_n(b'[', 10_000));
        doc.extend(std::iter::repeat_n(b']', 10_000));
        assert!(Json::parse(&doc).is_err());
    }

    #[test]
    fn surrogate_pair_escape() {
        let v = Json::parse(br#""\ud83d\ude00""#).unwrap();
        assert_eq!(v, Json::Str("\u{1F600}".into()));
    }

    #[test]
    fn non_finite_serializes_as_null() {
        assert_eq!(Json::Num(f64::NAN).to_string(), "null");
        assert_eq!(Json::Num(f64::INFINITY).to_string(), "null");
    }

    #[test]
    fn as_u64_rejects_fractional_and_negative() {
        assert_eq!(Json::Num(1.5).as_u64(), None);
        assert_eq!(Json::Num(-1.0).as_u64(), None);
        assert_eq!(Json::Num(1.0e16).as_u64(), None);
        assert_eq!(Json::Num(42.0).as_u64(), Some(42));
    }
}
