//! Server configuration with fail-fast validation.

use std::fmt;
use std::time::Duration;

use crate::protocol::DEFAULT_MAX_FRAME_BYTES;

/// A rejected configuration value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfigError(String);

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid server config: {}", self.0)
    }
}

impl std::error::Error for ConfigError {}

/// Tunables for a [`crate::Server`].
#[derive(Debug, Clone, PartialEq)]
pub struct ServerConfig {
    /// Bind address (use port 0 to let the OS pick one).
    pub addr: String,
    /// Engine worker threads (`None` = available parallelism).
    pub workers: Option<usize>,
    /// Engine chunk size (`None` = engine default).
    pub chunk_size: Option<usize>,
    /// Admission-control capacity: max work items queued before shedding.
    pub max_queue_items: usize,
    /// Coalescing budget: max work items per dispatched batch.
    pub batch_max_items: usize,
    /// Frame payload cap, bytes.
    pub max_frame_bytes: usize,
    /// Default queue-wait deadline applied when a request sets none
    /// (`None` = unbounded wait).
    pub default_deadline: Option<Duration>,
    /// Maximum concurrently open connections; accepts beyond this are
    /// closed immediately (and counted as rejected).
    pub max_connections: usize,
    /// Maximum requests one connection may have in flight; the event loop
    /// stops reading from a connection at this depth until replies drain.
    pub max_pipeline_depth: usize,
    /// Per-connection write-buffer high-water mark, bytes: past it the loop
    /// stops reading from that connection until the peer drains replies.
    pub write_high_water: usize,
    /// Byte budget for resident dataset samples across all datasets.
    pub dataset_max_bytes: u64,
    /// Analog fleet power envelope, watts: tolerance-tagged work is routed
    /// onto the analog fabric only while its modeled draw fits under this
    /// cap. `0.0` disables analog routing entirely (everything digital).
    pub fleet_power_w: f64,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".into(),
            workers: None,
            chunk_size: None,
            max_queue_items: 4096,
            batch_max_items: 1024,
            max_frame_bytes: DEFAULT_MAX_FRAME_BYTES,
            default_deadline: None,
            max_connections: 4096,
            max_pipeline_depth: 128,
            write_high_water: 1 << 20,
            dataset_max_bytes: 1 << 30,
            fleet_power_w: 50.0,
        }
    }
}

impl ServerConfig {
    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// [`ConfigError`] naming the offending field: zero worker count, zero
    /// chunk size, zero queue capacity, zero batch budget, or a frame cap
    /// too small to carry a request.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.workers == Some(0) {
            return Err(ConfigError("`workers` must be at least 1".into()));
        }
        if self.chunk_size == Some(0) {
            return Err(ConfigError("`chunk_size` must be at least 1".into()));
        }
        if self.max_queue_items == 0 {
            return Err(ConfigError("`max_queue_items` must be at least 1".into()));
        }
        if self.batch_max_items == 0 {
            return Err(ConfigError("`batch_max_items` must be at least 1".into()));
        }
        if self.max_frame_bytes < 64 {
            return Err(ConfigError(
                "`max_frame_bytes` must be at least 64 bytes".into(),
            ));
        }
        if self.max_connections == 0 {
            return Err(ConfigError("`max_connections` must be at least 1".into()));
        }
        if self.max_pipeline_depth == 0 {
            return Err(ConfigError(
                "`max_pipeline_depth` must be at least 1".into(),
            ));
        }
        if self.write_high_water < 4096 {
            return Err(ConfigError(
                "`write_high_water` must be at least 4096 bytes".into(),
            ));
        }
        if !self.fleet_power_w.is_finite() || self.fleet_power_w < 0.0 {
            return Err(ConfigError(
                "`fleet_power_w` must be finite and non-negative".into(),
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_valid() {
        ServerConfig::default().validate().unwrap();
    }

    #[test]
    fn zero_values_are_rejected_with_field_names() {
        type Mutator = fn(&mut ServerConfig);
        let cases: [(Mutator, &str); 10] = [
            (|c| c.workers = Some(0), "workers"),
            (|c| c.chunk_size = Some(0), "chunk_size"),
            (|c| c.max_queue_items = 0, "max_queue_items"),
            (|c| c.batch_max_items = 0, "batch_max_items"),
            (|c| c.max_frame_bytes = 8, "max_frame_bytes"),
            (|c| c.max_connections = 0, "max_connections"),
            (|c| c.max_pipeline_depth = 0, "max_pipeline_depth"),
            (|c| c.write_high_water = 16, "write_high_water"),
            (|c| c.fleet_power_w = -1.0, "fleet_power_w"),
            (|c| c.fleet_power_w = f64::NAN, "fleet_power_w"),
        ];
        for (mutate, field) in cases {
            let mut cfg = ServerConfig::default();
            mutate(&mut cfg);
            let err = cfg.validate().unwrap_err();
            assert!(err.to_string().contains(field), "{err}");
        }
    }
}
