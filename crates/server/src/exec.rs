//! Decomposition of protocol requests into engine work items, and the
//! per-item kernel the dispatcher maps over a coalesced batch.
//!
//! Every compute request flattens into [`WorkItem`]s — the unit the
//! coalescing dispatcher shards across the [`BatchEngine`]'s workers:
//!
//! * `distance` → one pair item;
//! * `batch` → one pair item per input pair;
//! * `knn` → one pair item per training instance (the vote is a serial
//!   reduction afterwards, replicating `KnnClassifier::classify` exactly);
//! * `search` → a single opaque item that runs the full pruned subsequence
//!   search *serially inside one worker* (searches parallelize across
//!   concurrent requests, not within one, so a coalesced batch never
//!   oversubscribes the host).
//!
//! Item evaluation calls the same `Distance::evaluate_with` entry points
//! the library's mining drivers use, with the same per-worker
//! [`DpScratch`], so a value served over the wire is bitwise identical to
//! the value a direct `BatchEngine` call produces.
//!
//! [`BatchEngine`]: mda_distance::BatchEngine

use std::sync::Arc;

use mda_distance::mining::SubsequenceSearch;
use mda_distance::{BatchEngine, DistanceError, DistanceKind, DpScratch};
use mda_routing::{evaluate_routed, BackendId, PairRequest};

use crate::datasets::{DatasetStore, ResolveError};
use crate::protocol::{ErrorCode, Request, TrainInstance};

/// Distance-function parameters carried by a pair item.
#[derive(Debug, Clone, Copy)]
pub struct PairSpec {
    /// Which of the six functions.
    pub kind: DistanceKind,
    /// Match threshold override (LCS/EdD/HamD); `None` = paper default 0.1.
    pub threshold: Option<f64>,
    /// Sakoe–Chiba radius (DTW); `None` = full matrix.
    pub band: Option<usize>,
    /// The answer path this item was routed to. [`BackendId::DigitalExact`]
    /// out of [`decompose`]; the event loop overrides it with the router's
    /// per-request decision before admission.
    pub backend: BackendId,
}

/// One unit of engine work.
#[derive(Debug, Clone)]
pub enum WorkItem {
    /// Evaluate one distance pair.
    Pair {
        /// Function and parameters.
        spec: PairSpec,
        /// First series (shared, not cloned per item).
        p: Arc<[f64]>,
        /// Second series.
        q: Arc<[f64]>,
    },
    /// Run one full subsequence search.
    Search {
        /// The query series.
        query: Arc<[f64]>,
        /// The series to scan.
        haystack: Arc<[f64]>,
        /// Window length.
        window: usize,
        /// Sakoe–Chiba radius.
        band: usize,
    },
}

/// Outcome of one executed work item.
#[derive(Debug, Clone, Copy)]
pub enum ItemOutcome {
    /// A distance value.
    Value(f64),
    /// A search match.
    Match {
        /// Best window start offset.
        offset: usize,
        /// Its banded DTW distance.
        distance: f64,
    },
}

/// How a job folds its item outcomes back into one reply.
#[derive(Debug, Clone)]
pub enum Assemble {
    /// One item, reply its value (`distance`).
    Single,
    /// Reply all values in item order (`batch`).
    Values,
    /// Serial kNN vote over the per-instance distances.
    Knn {
        /// Neighbour count.
        k: usize,
        /// Training labels, item-order aligned.
        labels: Vec<usize>,
        /// `true` for similarity functions (LCS): negate before ranking.
        invert: bool,
    },
    /// One item, reply its match (`search`).
    Search,
}

/// A compute request decomposed into engine work.
#[derive(Debug, Clone)]
pub struct Decomposed {
    /// The flattened work items.
    pub items: Vec<WorkItem>,
    /// The reduction to apply to their outcomes.
    pub assemble: Assemble,
}

impl Decomposed {
    /// The routing problem size: the longest series among the pair items
    /// (0 for search-only jobs, which route separately).
    pub fn max_pair_len(&self) -> usize {
        self.items
            .iter()
            .map(|item| match item {
                WorkItem::Pair { p, q, .. } => p.len().max(q.len()),
                WorkItem::Search { .. } => 0,
            })
            .max()
            .unwrap_or(0)
    }

    /// Points every pair item at `backend` — applying the router's
    /// per-request decision before the job is admitted.
    pub fn route_to(&mut self, backend: BackendId) {
        for item in &mut self.items {
            if let WorkItem::Pair { spec, .. } = item {
                spec.backend = backend;
            }
        }
    }
}

/// Flattens a compute request into work items, resolving any resident
/// dataset references against `store`. Returns `Ok(None)` for non-compute
/// ops (ping/metrics/dataset management), which never enter the queue, and
/// a typed [`ResolveError`] (`not_found` / `stale_version`) when a dataset
/// reference cannot be resolved — resolution happens *before* admission, so
/// a bad reference never occupies queue capacity.
///
/// Resolution clones `Arc` handles to the stored series — no samples are
/// copied and the bits a query sees are exactly the bits uploaded, which is
/// what keeps the resident path bitwise identical to inline corpora.
pub fn decompose(req: Request, store: &DatasetStore) -> Result<Option<Decomposed>, ResolveError> {
    match req {
        Request::Ping
        | Request::Metrics
        | Request::UploadDataset { .. }
        | Request::ListDatasets
        | Request::DropDataset { .. }
        | Request::OpenStream { .. }
        | Request::PushPoints { .. }
        | Request::Subscribe { .. }
        | Request::CloseStream { .. } => Ok(None),
        Request::Distance {
            kind,
            p,
            q,
            threshold,
            band,
            ..
        } => Ok(Some(Decomposed {
            items: vec![WorkItem::Pair {
                spec: PairSpec {
                    kind,
                    threshold,
                    band,
                    backend: BackendId::DigitalExact,
                },
                p: p.into(),
                q: q.into(),
            }],
            assemble: Assemble::Single,
        })),
        Request::Batch {
            kind,
            pairs,
            query,
            dataset,
            threshold,
            band,
            ..
        } => {
            let spec = PairSpec {
                kind,
                threshold,
                band,
                backend: BackendId::DigitalExact,
            };
            let items = if let Some(dref) = dataset {
                // Resident form: the query series vs every dataset series.
                let resolved = store.resolve(&dref)?;
                let query: Arc<[f64]> = query
                    .ok_or_else(|| ResolveError {
                        code: ErrorCode::BadRequest,
                        message: "batch with `dataset` requires `query`".into(),
                    })?
                    .into();
                resolved
                    .series
                    .iter()
                    .map(|s| WorkItem::Pair {
                        spec,
                        p: Arc::clone(&query),
                        q: Arc::clone(s),
                    })
                    .collect()
            } else {
                pairs
                    .into_iter()
                    .map(|(p, q)| WorkItem::Pair {
                        spec,
                        p: p.into(),
                        q: q.into(),
                    })
                    .collect()
            };
            Ok(Some(Decomposed {
                items,
                assemble: Assemble::Values,
            }))
        }
        Request::Knn {
            kind,
            k,
            query,
            train,
            dataset,
            threshold,
            band,
            ..
        } => {
            let spec = PairSpec {
                kind,
                threshold,
                band,
                backend: BackendId::DigitalExact,
            };
            let query: Arc<[f64]> = query.into();
            let (labels, items): (Vec<usize>, Vec<WorkItem>) = if let Some(dref) = dataset {
                // Resident form: training set is the dataset (labels included).
                let resolved = store.resolve(&dref)?;
                let items = resolved
                    .series
                    .iter()
                    .map(|s| WorkItem::Pair {
                        spec,
                        p: Arc::clone(&query),
                        q: Arc::clone(s),
                    })
                    .collect();
                (resolved.labels.to_vec(), items)
            } else {
                let labels = train.iter().map(|t| t.label).collect();
                let items = train
                    .into_iter()
                    .map(|TrainInstance { series, .. }| WorkItem::Pair {
                        spec,
                        p: Arc::clone(&query),
                        q: series.into(),
                    })
                    .collect();
                (labels, items)
            };
            Ok(Some(Decomposed {
                items,
                assemble: Assemble::Knn {
                    k,
                    labels,
                    invert: kind.is_similarity(),
                },
            }))
        }
        Request::Search {
            query,
            haystack,
            dataset,
            series_index,
            window,
            band,
            ..
        } => {
            let haystack: Arc<[f64]> = if let Some(dref) = dataset {
                // Resident form: scan one series of the dataset.
                let resolved = store.resolve(&dref)?;
                let s = resolved
                    .series
                    .get(series_index)
                    .ok_or_else(|| ResolveError {
                        code: ErrorCode::NotFound,
                        message: format!(
                        "series_index {series_index} out of range for dataset \"{}\" ({} series)",
                        resolved.name,
                        resolved.series.len()
                    ),
                    })?;
                Arc::clone(s)
            } else {
                haystack.into()
            };
            Ok(Some(Decomposed {
                items: vec![WorkItem::Search {
                    query: query.into(),
                    haystack,
                    window,
                    band,
                }],
                assemble: Assemble::Search,
            }))
        }
    }
}

/// Executes one work item through its routed backend, reporting whether
/// the analog path silently fell back to a digital recompute. Errors are
/// per-item values — a failing item never aborts the coalesced batch it
/// shares with other requests.
///
/// Pair items dispatch through [`evaluate_routed`]: on the default
/// [`BackendId::DigitalExact`] route that is the exact `Distance`
/// constructors the digital reference library uses — bitwise identical to
/// a direct call — while analog routes carry the saturation/encoding
/// fallback guard.
pub fn execute_item_routed(
    item: &WorkItem,
    scratch: &mut DpScratch,
) -> Result<(ItemOutcome, bool), DistanceError> {
    match item {
        WorkItem::Pair { spec, p, q } => {
            let req = PairRequest {
                kind: spec.kind,
                threshold: spec.threshold,
                band: spec.band,
            };
            let routed = evaluate_routed(spec.backend, &req, p, q, scratch)?;
            Ok((ItemOutcome::Value(routed.value), routed.fell_back))
        }
        WorkItem::Search {
            query,
            haystack,
            window,
            band,
        } => {
            // Serial engine: the item already runs on an engine worker.
            let search = SubsequenceSearch::new(*window, *band).with_engine(BatchEngine::serial());
            let (m, _stats) = search.run(query, haystack)?;
            Ok((
                ItemOutcome::Match {
                    offset: m.offset,
                    distance: m.distance,
                },
                false,
            ))
        }
    }
}

/// [`execute_item_routed`] without the fallback flag.
pub fn execute_item(
    item: &WorkItem,
    scratch: &mut DpScratch,
) -> Result<ItemOutcome, DistanceError> {
    execute_item_routed(item, scratch).map(|(outcome, _)| outcome)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::Request;
    use mda_distance::dtw::Band;
    use mda_distance::{Distance, Dtw};

    fn series(len: usize, phase: f64) -> Vec<f64> {
        (0..len).map(|i| (i as f64 * 0.4 + phase).sin()).collect()
    }

    #[test]
    fn pair_item_matches_direct_evaluation() {
        let p = series(16, 0.0);
        let q = series(16, 0.7);
        let mut scratch = DpScratch::new();
        for kind in DistanceKind::ALL {
            let item = WorkItem::Pair {
                spec: PairSpec {
                    kind,
                    threshold: None,
                    band: None,
                    backend: BackendId::DigitalExact,
                },
                p: p.clone().into(),
                q: q.clone().into(),
            };
            let ItemOutcome::Value(served) = execute_item(&item, &mut scratch).unwrap() else {
                panic!("pair item must yield a value");
            };
            let direct = mda_distance::boxed_distance(kind).evaluate(&p, &q).unwrap();
            assert_eq!(served.to_bits(), direct.to_bits(), "{kind}");
        }
    }

    #[test]
    fn banded_dtw_spec_is_honoured() {
        let p = series(24, 0.0);
        let q = series(24, 1.1);
        let mut scratch = DpScratch::new();
        let item = WorkItem::Pair {
            spec: PairSpec {
                kind: DistanceKind::Dtw,
                threshold: None,
                band: Some(2),
                backend: BackendId::DigitalExact,
            },
            p: p.clone().into(),
            q: q.clone().into(),
        };
        let ItemOutcome::Value(served) = execute_item(&item, &mut scratch).unwrap() else {
            panic!()
        };
        let direct = Dtw::new()
            .with_band(Band::SakoeChiba(2))
            .evaluate(&p, &q)
            .unwrap();
        assert_eq!(served.to_bits(), direct.to_bits());
    }

    #[test]
    fn knn_decomposition_shares_the_query() {
        let store = DatasetStore::new(u64::MAX);
        let req = Request::Knn {
            kind: DistanceKind::Manhattan,
            k: 1,
            query: vec![0.0, 1.0],
            train: vec![
                TrainInstance {
                    label: 3,
                    series: vec![0.0, 1.0],
                },
                TrainInstance {
                    label: 5,
                    series: vec![9.0, 9.0],
                },
            ],
            dataset: None,
            threshold: None,
            band: None,
            deadline_ms: None,
            accuracy: None,
        };
        let d = decompose(req, &store).unwrap().unwrap();
        assert_eq!(d.items.len(), 2);
        let Assemble::Knn { k, labels, invert } = &d.assemble else {
            panic!("knn assembly expected");
        };
        assert_eq!(
            (*k, labels.as_slice(), *invert),
            (1, &[3usize, 5][..], false)
        );
        let (WorkItem::Pair { p: p0, .. }, WorkItem::Pair { p: p1, .. }) =
            (&d.items[0], &d.items[1])
        else {
            panic!("pair items expected");
        };
        assert!(Arc::ptr_eq(p0, p1), "query must be shared, not cloned");
    }

    #[test]
    fn item_errors_stay_per_item() {
        let mut scratch = DpScratch::new();
        let bad = WorkItem::Pair {
            spec: PairSpec {
                kind: DistanceKind::Manhattan,
                threshold: None,
                band: None,
                backend: BackendId::DigitalExact,
            },
            p: vec![0.0].into(),
            q: vec![0.0, 1.0].into(),
        };
        assert!(execute_item(&bad, &mut scratch).is_err());
    }

    #[test]
    fn control_ops_do_not_decompose() {
        let store = DatasetStore::new(u64::MAX);
        assert!(decompose(Request::Ping, &store).unwrap().is_none());
        assert!(decompose(Request::Metrics, &store).unwrap().is_none());
        assert!(decompose(Request::ListDatasets, &store).unwrap().is_none());
        assert!(decompose(Request::Subscribe { stream_id: 1 }, &store)
            .unwrap()
            .is_none());
    }

    #[test]
    fn resident_knn_decomposes_identically_to_inline_train() {
        let store = DatasetStore::new(u64::MAX);
        let train: Vec<Vec<f64>> = vec![series(8, 0.0), series(8, 0.3), series(8, 0.9)];
        let up = store.upload("train", vec![3, 5, 5], train.clone()).unwrap();
        let resident = decompose(
            Request::Knn {
                kind: DistanceKind::Dtw,
                k: 1,
                query: series(8, 0.1),
                train: Vec::new(),
                dataset: Some(crate::protocol::DatasetRef::by_id(&up.dataset_id)),
                threshold: None,
                band: None,
                deadline_ms: None,
                accuracy: None,
            },
            &store,
        )
        .unwrap()
        .unwrap();
        let inline = decompose(
            Request::Knn {
                kind: DistanceKind::Dtw,
                k: 1,
                query: series(8, 0.1),
                train: train
                    .iter()
                    .zip([3usize, 5, 5])
                    .map(|(s, label)| TrainInstance {
                        label,
                        series: s.clone(),
                    })
                    .collect(),
                dataset: None,
                threshold: None,
                band: None,
                deadline_ms: None,
                accuracy: None,
            },
            &store,
        )
        .unwrap()
        .unwrap();
        assert_eq!(resident.items.len(), inline.items.len());
        let mut scratch = DpScratch::new();
        for (a, b) in resident.items.iter().zip(&inline.items) {
            let (ItemOutcome::Value(x), ItemOutcome::Value(y)) = (
                execute_item(a, &mut scratch).unwrap(),
                execute_item(b, &mut scratch).unwrap(),
            ) else {
                panic!("value items expected");
            };
            assert_eq!(x.to_bits(), y.to_bits());
        }
        let (Assemble::Knn { labels: la, .. }, Assemble::Knn { labels: lb, .. }) =
            (&resident.assemble, &inline.assemble)
        else {
            panic!("knn assembly expected");
        };
        assert_eq!(la, lb);
    }

    #[test]
    fn resident_resolution_errors_are_typed_and_pre_admission() {
        let store = DatasetStore::new(u64::MAX);
        store.upload("d", vec![0], vec![vec![1.0, 2.0]]).unwrap();
        // Unknown id → not_found.
        let err = decompose(
            Request::Search {
                query: vec![1.0],
                haystack: Vec::new(),
                dataset: Some(crate::protocol::DatasetRef::by_id("missing")),
                series_index: 0,
                window: 1,
                band: 0,
                deadline_ms: None,
                accuracy: None,
            },
            &store,
        )
        .unwrap_err();
        assert_eq!(err.code, ErrorCode::NotFound);
        // series_index past the end → not_found naming the range.
        let err = decompose(
            Request::Search {
                query: vec![1.0],
                haystack: Vec::new(),
                dataset: Some(crate::protocol::DatasetRef::by_name("d")),
                series_index: 9,
                window: 1,
                band: 0,
                deadline_ms: None,
                accuracy: None,
            },
            &store,
        )
        .unwrap_err();
        assert_eq!(err.code, ErrorCode::NotFound);
        assert!(err.message.contains("series_index 9"), "{}", err.message);
        // Batch resident form without a query → bad_request.
        let err = decompose(
            Request::Batch {
                kind: DistanceKind::Manhattan,
                pairs: Vec::new(),
                query: None,
                dataset: Some(crate::protocol::DatasetRef::by_name("d")),
                threshold: None,
                band: None,
                deadline_ms: None,
                accuracy: None,
            },
            &store,
        )
        .unwrap_err();
        assert_eq!(err.code, ErrorCode::BadRequest);
    }
}
