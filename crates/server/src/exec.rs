//! Decomposition of protocol requests into engine work items, and the
//! per-item kernel the dispatcher maps over a coalesced batch.
//!
//! Every compute request flattens into [`WorkItem`]s — the unit the
//! coalescing dispatcher shards across the [`BatchEngine`]'s workers:
//!
//! * `distance` → one pair item;
//! * `batch` → one pair item per input pair;
//! * `knn` → one pair item per training instance (the vote is a serial
//!   reduction afterwards, replicating `KnnClassifier::classify` exactly);
//! * `search` → a single opaque item that runs the full pruned subsequence
//!   search *serially inside one worker* (searches parallelize across
//!   concurrent requests, not within one, so a coalesced batch never
//!   oversubscribes the host).
//!
//! Item evaluation calls the same `Distance::evaluate_with` entry points
//! the library's mining drivers use, with the same per-worker
//! [`DpScratch`], so a value served over the wire is bitwise identical to
//! the value a direct `BatchEngine` call produces.
//!
//! [`BatchEngine`]: mda_distance::BatchEngine

use std::sync::Arc;

use mda_distance::dtw::Band;
use mda_distance::mining::SubsequenceSearch;
use mda_distance::{
    BatchEngine, Distance, DistanceError, DistanceKind, DpScratch, Dtw, EditDistance, Hamming,
    Hausdorff, Lcs, Manhattan,
};

use crate::protocol::{Request, TrainInstance};

/// Distance-function parameters carried by a pair item.
#[derive(Debug, Clone, Copy)]
pub struct PairSpec {
    /// Which of the six functions.
    pub kind: DistanceKind,
    /// Match threshold override (LCS/EdD/HamD); `None` = paper default 0.1.
    pub threshold: Option<f64>,
    /// Sakoe–Chiba radius (DTW); `None` = full matrix.
    pub band: Option<usize>,
}

/// One unit of engine work.
#[derive(Debug, Clone)]
pub enum WorkItem {
    /// Evaluate one distance pair.
    Pair {
        /// Function and parameters.
        spec: PairSpec,
        /// First series (shared, not cloned per item).
        p: Arc<[f64]>,
        /// Second series.
        q: Arc<[f64]>,
    },
    /// Run one full subsequence search.
    Search {
        /// The query series.
        query: Arc<[f64]>,
        /// The series to scan.
        haystack: Arc<[f64]>,
        /// Window length.
        window: usize,
        /// Sakoe–Chiba radius.
        band: usize,
    },
}

/// Outcome of one executed work item.
#[derive(Debug, Clone, Copy)]
pub enum ItemOutcome {
    /// A distance value.
    Value(f64),
    /// A search match.
    Match {
        /// Best window start offset.
        offset: usize,
        /// Its banded DTW distance.
        distance: f64,
    },
}

/// How a job folds its item outcomes back into one reply.
#[derive(Debug, Clone)]
pub enum Assemble {
    /// One item, reply its value (`distance`).
    Single,
    /// Reply all values in item order (`batch`).
    Values,
    /// Serial kNN vote over the per-instance distances.
    Knn {
        /// Neighbour count.
        k: usize,
        /// Training labels, item-order aligned.
        labels: Vec<usize>,
        /// `true` for similarity functions (LCS): negate before ranking.
        invert: bool,
    },
    /// One item, reply its match (`search`).
    Search,
}

/// A compute request decomposed into engine work.
#[derive(Debug, Clone)]
pub struct Decomposed {
    /// The flattened work items.
    pub items: Vec<WorkItem>,
    /// The reduction to apply to their outcomes.
    pub assemble: Assemble,
}

/// Flattens a compute request into work items. Returns `None` for
/// non-compute ops (ping/metrics), which never enter the queue.
pub fn decompose(req: Request) -> Option<Decomposed> {
    match req {
        Request::Ping | Request::Metrics => None,
        Request::Distance {
            kind,
            p,
            q,
            threshold,
            band,
            ..
        } => Some(Decomposed {
            items: vec![WorkItem::Pair {
                spec: PairSpec {
                    kind,
                    threshold,
                    band,
                },
                p: p.into(),
                q: q.into(),
            }],
            assemble: Assemble::Single,
        }),
        Request::Batch {
            kind,
            pairs,
            threshold,
            band,
            ..
        } => {
            let spec = PairSpec {
                kind,
                threshold,
                band,
            };
            Some(Decomposed {
                items: pairs
                    .into_iter()
                    .map(|(p, q)| WorkItem::Pair {
                        spec,
                        p: p.into(),
                        q: q.into(),
                    })
                    .collect(),
                assemble: Assemble::Values,
            })
        }
        Request::Knn {
            kind,
            k,
            query,
            train,
            threshold,
            band,
            ..
        } => {
            let spec = PairSpec {
                kind,
                threshold,
                band,
            };
            let query: Arc<[f64]> = query.into();
            let labels: Vec<usize> = train.iter().map(|t| t.label).collect();
            let items = train
                .into_iter()
                .map(|TrainInstance { series, .. }| WorkItem::Pair {
                    spec,
                    p: Arc::clone(&query),
                    q: series.into(),
                })
                .collect();
            Some(Decomposed {
                items,
                assemble: Assemble::Knn {
                    k,
                    labels,
                    invert: kind.is_similarity(),
                },
            })
        }
        Request::Search {
            query,
            haystack,
            window,
            band,
            ..
        } => Some(Decomposed {
            items: vec![WorkItem::Search {
                query: query.into(),
                haystack: haystack.into(),
                window,
                band,
            }],
            assemble: Assemble::Search,
        }),
    }
}

/// Evaluates one pair with the exact `Distance` instances the digital
/// reference library constructs, reusing the worker's scratch rows.
fn evaluate_pair(
    spec: &PairSpec,
    p: &[f64],
    q: &[f64],
    scratch: &mut DpScratch,
) -> Result<f64, DistanceError> {
    let threshold = spec.threshold.unwrap_or(0.1);
    match spec.kind {
        DistanceKind::Dtw => {
            let mut dtw = Dtw::new();
            if let Some(r) = spec.band {
                dtw = dtw.with_band(Band::SakoeChiba(r));
            }
            dtw.evaluate_with(p, q, scratch)
        }
        DistanceKind::Lcs => Lcs::new(threshold).evaluate_with(p, q, scratch),
        DistanceKind::Edit => EditDistance::new(threshold).evaluate_with(p, q, scratch),
        DistanceKind::Hausdorff => Hausdorff::new().evaluate_with(p, q, scratch),
        DistanceKind::Hamming => Hamming::new(threshold).evaluate_with(p, q, scratch),
        DistanceKind::Manhattan => Manhattan::new().evaluate_with(p, q, scratch),
    }
}

/// Executes one work item. Errors are per-item values — a failing item
/// never aborts the coalesced batch it shares with other requests.
pub fn execute_item(
    item: &WorkItem,
    scratch: &mut DpScratch,
) -> Result<ItemOutcome, DistanceError> {
    match item {
        WorkItem::Pair { spec, p, q } => evaluate_pair(spec, p, q, scratch).map(ItemOutcome::Value),
        WorkItem::Search {
            query,
            haystack,
            window,
            band,
        } => {
            // Serial engine: the item already runs on an engine worker.
            let search = SubsequenceSearch::new(*window, *band).with_engine(BatchEngine::serial());
            let (m, _stats) = search.run(query, haystack)?;
            Ok(ItemOutcome::Match {
                offset: m.offset,
                distance: m.distance,
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::Request;

    fn series(len: usize, phase: f64) -> Vec<f64> {
        (0..len).map(|i| (i as f64 * 0.4 + phase).sin()).collect()
    }

    #[test]
    fn pair_item_matches_direct_evaluation() {
        let p = series(16, 0.0);
        let q = series(16, 0.7);
        let mut scratch = DpScratch::new();
        for kind in DistanceKind::ALL {
            let item = WorkItem::Pair {
                spec: PairSpec {
                    kind,
                    threshold: None,
                    band: None,
                },
                p: p.clone().into(),
                q: q.clone().into(),
            };
            let ItemOutcome::Value(served) = execute_item(&item, &mut scratch).unwrap() else {
                panic!("pair item must yield a value");
            };
            let direct = mda_distance::boxed_distance(kind).evaluate(&p, &q).unwrap();
            assert_eq!(served.to_bits(), direct.to_bits(), "{kind}");
        }
    }

    #[test]
    fn banded_dtw_spec_is_honoured() {
        let p = series(24, 0.0);
        let q = series(24, 1.1);
        let mut scratch = DpScratch::new();
        let item = WorkItem::Pair {
            spec: PairSpec {
                kind: DistanceKind::Dtw,
                threshold: None,
                band: Some(2),
            },
            p: p.clone().into(),
            q: q.clone().into(),
        };
        let ItemOutcome::Value(served) = execute_item(&item, &mut scratch).unwrap() else {
            panic!()
        };
        let direct = Dtw::new()
            .with_band(Band::SakoeChiba(2))
            .evaluate(&p, &q)
            .unwrap();
        assert_eq!(served.to_bits(), direct.to_bits());
    }

    #[test]
    fn knn_decomposition_shares_the_query() {
        let req = Request::Knn {
            kind: DistanceKind::Manhattan,
            k: 1,
            query: vec![0.0, 1.0],
            train: vec![
                TrainInstance {
                    label: 3,
                    series: vec![0.0, 1.0],
                },
                TrainInstance {
                    label: 5,
                    series: vec![9.0, 9.0],
                },
            ],
            threshold: None,
            band: None,
            deadline_ms: None,
        };
        let d = decompose(req).unwrap();
        assert_eq!(d.items.len(), 2);
        let Assemble::Knn { k, labels, invert } = &d.assemble else {
            panic!("knn assembly expected");
        };
        assert_eq!(
            (*k, labels.as_slice(), *invert),
            (1, &[3usize, 5][..], false)
        );
        let (WorkItem::Pair { p: p0, .. }, WorkItem::Pair { p: p1, .. }) =
            (&d.items[0], &d.items[1])
        else {
            panic!("pair items expected");
        };
        assert!(Arc::ptr_eq(p0, p1), "query must be shared, not cloned");
    }

    #[test]
    fn item_errors_stay_per_item() {
        let mut scratch = DpScratch::new();
        let bad = WorkItem::Pair {
            spec: PairSpec {
                kind: DistanceKind::Manhattan,
                threshold: None,
                band: None,
            },
            p: vec![0.0].into(),
            q: vec![0.0, 1.0].into(),
        };
        assert!(execute_item(&bad, &mut scratch).is_err());
    }

    #[test]
    fn control_ops_do_not_decompose() {
        assert!(decompose(Request::Ping).is_none());
        assert!(decompose(Request::Metrics).is_none());
    }
}
