//! Readiness-based serving core: one thread, epoll, non-blocking sockets.
//!
//! The thread-per-connection model spends its concurrency budget on parked
//! reader threads; on the paper's data-center framing the socket layer must
//! cost nothing so the `BatchEngine` is the only thing that saturates. This
//! module replaces it with a single event-loop thread multiplexing every
//! connection over `epoll` — raw `extern "C"` FFI against the three epoll
//! syscall wrappers plus `eventfd`, matching the repo's no-external-deps
//! discipline (the `mda-server` binary already talks to `signal(2)` the same
//! way).
//!
//! Per connection the loop keeps a read buffer (incremental frame decode: a
//! frame may arrive over any number of `read()`s and several frames may
//! arrive in one) and a write buffer (replies are serialized into it and
//! flushed as the socket accepts bytes). Requests are **pipelined**: the
//! loop keeps decoding and submitting while earlier requests are still in
//! the dispatcher, up to `max_pipeline_depth` per connection — this is what
//! actually fills coalesced batches on a small host. Backpressure is
//! readiness-native: past the write high-water mark (or the depth cap) the
//! loop simply stops asking epoll for readability on that connection, so a
//! slow reader throttles itself without blocking anyone else.
//!
//! Dispatcher → loop handoff: worker replies are pushed onto a shared
//! [`Completions`] queue keyed by connection token and the loop is woken via
//! its eventfd ([`WakeFd`]); the loop drains completions every iteration,
//! appends the encoded replies to the owning connection's write buffer, and
//! resumes parsing any frames that were parked on the depth cap.
//!
//! Everything observable is preserved from the threaded core: the `GET `
//! HTTP metrics sniff on the same port, malformed-JSON frames answered in
//! band (id 0) without closing, oversized frames answered then closed (the
//! stream is beyond resync), and drain-then-shutdown — every admitted job's
//! reply is flushed before its socket closes.

use std::cell::RefCell;
use std::collections::HashMap;
use std::io::{self, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::os::fd::AsRawFd;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use mda_routing::{BackendId, Bound, Route, Router};

use crate::config::ServerConfig;
use crate::datasets::DatasetStore;
use crate::exec::{decompose, Assemble, WorkItem};
use crate::metrics::Metrics;
use crate::protocol::{
    decode_request, encode_reply, write_frame, Envelope, ErrorCode, ProtocolError, Reply, Request,
    ResponseBody, RouteInfo,
};
use crate::queue::{Coalescer, Job, ReplySink};
use crate::streams::StreamRegistry;
use mda_streaming::{StreamConfig, StreamError};

// ---------------------------------------------------------------------------
// Raw epoll / eventfd FFI (Linux). No libc crate: these are the same thin
// `extern "C"` declarations the server binary uses for `signal(2)`.

const EPOLL_CLOEXEC: i32 = 0o2000000;
const EPOLL_CTL_ADD: i32 = 1;
const EPOLL_CTL_DEL: i32 = 2;
const EPOLL_CTL_MOD: i32 = 3;
const EPOLLIN: u32 = 0x001;
const EPOLLOUT: u32 = 0x004;
const EPOLLERR: u32 = 0x008;
const EPOLLHUP: u32 = 0x010;
const EFD_CLOEXEC: i32 = 0o2000000;
const EFD_NONBLOCK: i32 = 0o4000;

/// `struct epoll_event`. The kernel ABI packs it on x86-64 (12 bytes) and
/// keeps natural alignment (16 bytes) everywhere else.
#[cfg(target_arch = "x86_64")]
#[repr(C, packed)]
#[derive(Clone, Copy)]
struct EpollEvent {
    events: u32,
    data: u64,
}

#[cfg(not(target_arch = "x86_64"))]
#[repr(C)]
#[derive(Clone, Copy)]
struct EpollEvent {
    events: u32,
    data: u64,
}

extern "C" {
    fn epoll_create1(flags: i32) -> i32;
    fn epoll_ctl(epfd: i32, op: i32, fd: i32, event: *mut EpollEvent) -> i32;
    fn epoll_wait(epfd: i32, events: *mut EpollEvent, maxevents: i32, timeout_ms: i32) -> i32;
    fn eventfd(initval: u32, flags: i32) -> i32;
    fn close(fd: i32) -> i32;
    fn read(fd: i32, buf: *mut u8, count: usize) -> isize;
    fn write(fd: i32, buf: *const u8, count: usize) -> isize;
}

fn last_os_error() -> io::Error {
    io::Error::last_os_error()
}

/// Owned epoll instance.
struct Poller {
    epfd: i32,
}

impl Poller {
    fn new() -> io::Result<Poller> {
        // SAFETY: plain syscall wrapper; a negative return is an error.
        let epfd = unsafe { epoll_create1(EPOLL_CLOEXEC) };
        if epfd < 0 {
            return Err(last_os_error());
        }
        Ok(Poller { epfd })
    }

    fn ctl(&self, op: i32, fd: i32, token: u64, interest: u32) -> io::Result<()> {
        let mut ev = EpollEvent {
            events: interest,
            data: token,
        };
        let evp = if op == EPOLL_CTL_DEL {
            std::ptr::null_mut()
        } else {
            &mut ev as *mut EpollEvent
        };
        // SAFETY: `ev` outlives the call; the kernel copies it.
        if unsafe { epoll_ctl(self.epfd, op, fd, evp) } < 0 {
            return Err(last_os_error());
        }
        Ok(())
    }

    fn add(&self, fd: i32, token: u64, interest: u32) -> io::Result<()> {
        self.ctl(EPOLL_CTL_ADD, fd, token, interest)
    }

    fn modify(&self, fd: i32, token: u64, interest: u32) -> io::Result<()> {
        self.ctl(EPOLL_CTL_MOD, fd, token, interest)
    }

    fn delete(&self, fd: i32) {
        let _ = self.ctl(EPOLL_CTL_DEL, fd, 0, 0);
    }

    /// Waits for events (level-triggered). Returns how many are valid.
    fn wait(&self, events: &mut [EpollEvent], timeout_ms: i32) -> io::Result<usize> {
        loop {
            // SAFETY: `events` is a valid out-buffer of `len()` entries.
            let n = unsafe {
                epoll_wait(
                    self.epfd,
                    events.as_mut_ptr(),
                    events.len() as i32,
                    timeout_ms,
                )
            };
            if n >= 0 {
                return Ok(n as usize);
            }
            let err = last_os_error();
            if err.kind() != io::ErrorKind::Interrupted {
                return Err(err);
            }
        }
    }
}

impl Drop for Poller {
    fn drop(&mut self) {
        // SAFETY: fd is owned by this instance.
        unsafe { close(self.epfd) };
    }
}

/// An `eventfd`-backed wakeup: any thread writes, the event loop polls.
#[derive(Debug)]
pub struct WakeFd {
    fd: i32,
}

// SAFETY: the wrapped value is a file descriptor; `read`/`write` on it are
// thread-safe syscalls.
unsafe impl Send for WakeFd {}
unsafe impl Sync for WakeFd {}

impl WakeFd {
    fn new() -> io::Result<WakeFd> {
        // SAFETY: plain syscall wrapper.
        let fd = unsafe { eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK) };
        if fd < 0 {
            return Err(last_os_error());
        }
        Ok(WakeFd { fd })
    }

    /// Makes the next (or current) `epoll_wait` return immediately.
    pub fn wake(&self) {
        let one = 1u64.to_ne_bytes();
        // SAFETY: valid buffer; an EAGAIN (counter saturated) still leaves
        // the fd readable, which is all a wakeup needs.
        unsafe { write(self.fd, one.as_ptr(), one.len()) };
    }

    /// Resets the counter so level-triggered polling goes quiet again.
    fn drain(&self) {
        let mut buf = [0u8; 8];
        // SAFETY: valid buffer; EAGAIN means already drained.
        unsafe { read(self.fd, buf.as_mut_ptr(), buf.len()) };
    }
}

impl Drop for WakeFd {
    fn drop(&mut self) {
        // SAFETY: fd is owned by this instance.
        unsafe { close(self.fd) };
    }
}

// ---------------------------------------------------------------------------
// Dispatcher → event-loop completion handoff.

/// Replies finished by the dispatcher, waiting for the loop to serialize
/// them into their connection's write buffer. Pushing wakes the loop.
#[derive(Debug)]
pub struct Completions {
    ready: Mutex<Vec<(u64, Reply, Instant)>>,
    wake: Arc<WakeFd>,
}

impl Completions {
    fn new(wake: Arc<WakeFd>) -> Completions {
        Completions {
            ready: Mutex::new(Vec::new()),
            wake,
        }
    }

    /// Queues one finished reply for connection `token` and wakes the loop.
    pub fn push(&self, token: u64, reply: Reply) {
        self.ready
            .lock()
            .expect("completions mutex poisoned")
            .push((token, reply, Instant::now()));
        self.wake.wake();
    }

    fn drain(&self) -> Vec<(u64, Reply, Instant)> {
        std::mem::take(&mut *self.ready.lock().expect("completions mutex poisoned"))
    }
}

// ---------------------------------------------------------------------------
// Per-connection state machine.

const TOKEN_LISTENER: u64 = 0;
const TOKEN_WAKE: u64 = 1;
const FIRST_CONN_TOKEN: u64 = 2;
const READ_CHUNK: usize = 64 * 1024;
const MAX_EVENTS: usize = 1024;
const HTTP_HEAD_CAP: usize = 8192;
/// How long the final drain may keep flushing write buffers to slow peers.
const FLUSH_DEADLINE: Duration = Duration::from_secs(5);

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ConnMode {
    /// First bytes not seen yet: HTTP `GET ` or binary frames?
    Sniffing,
    /// Length-prefixed JSON frames.
    Frames,
    /// One HTTP metrics scrape, then close.
    Http,
}

struct Conn {
    stream: TcpStream,
    fd: i32,
    mode: ConnMode,
    /// Bytes received but not yet consumed by the parser.
    read_buf: Vec<u8>,
    /// Encoded replies not yet accepted by the socket.
    write_buf: Vec<u8>,
    write_pos: usize,
    /// Requests submitted to the dispatcher, reply not yet serialized.
    in_flight: usize,
    /// Peer sent EOF (or the parser decided to stop reading for good).
    read_closed: bool,
    /// Close as soon as the write buffer is flushed.
    kill_after_flush: bool,
    /// Interest currently registered with epoll.
    interest: u32,
}

impl Conn {
    fn new(stream: TcpStream, fd: i32) -> Conn {
        Conn {
            stream,
            fd,
            mode: ConnMode::Sniffing,
            read_buf: Vec::new(),
            write_buf: Vec::new(),
            write_pos: 0,
            in_flight: 0,
            read_closed: false,
            kill_after_flush: false,
            interest: 0,
        }
    }

    fn unflushed(&self) -> usize {
        self.write_buf.len() - self.write_pos
    }

    fn push_reply(&mut self, reply: &Reply) {
        write_frame(&mut self.write_buf, &encode_reply(reply)).expect("Vec write is infallible");
    }

    /// Non-blocking flush. `Ok(true)` = fully flushed, `Ok(false)` = socket
    /// full, `Err` = peer gone.
    fn flush(&mut self) -> io::Result<bool> {
        while self.write_pos < self.write_buf.len() {
            match (&self.stream).write(&self.write_buf[self.write_pos..]) {
                Ok(0) => return Err(io::ErrorKind::WriteZero.into()),
                Ok(n) => self.write_pos += n,
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return Ok(false),
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }
        self.write_buf.clear();
        self.write_pos = 0;
        Ok(true)
    }

    /// Reads everything currently available, recording a clean EOF in
    /// `read_closed`; `Err` = connection is dead.
    fn fill(&mut self) -> io::Result<()> {
        let mut chunk = [0u8; READ_CHUNK];
        loop {
            match (&self.stream).read(&mut chunk) {
                Ok(0) => {
                    self.read_closed = true;
                    return Ok(());
                }
                Ok(n) => self.read_buf.extend_from_slice(&chunk[..n]),
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return Ok(()),
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }
    }
}

// ---------------------------------------------------------------------------
// The loop itself.

/// Shared state the serving thread runs on. Constructed by
/// [`crate::Server::start`]; `run` consumes the listener.
pub(crate) struct EventLoop {
    pub(crate) config: ServerConfig,
    pub(crate) metrics: Arc<Metrics>,
    pub(crate) queue: Arc<Coalescer>,
    pub(crate) store: Arc<DatasetStore>,
    pub(crate) completions: Arc<Completions>,
    pub(crate) wake: Arc<WakeFd>,
    pub(crate) shutdown: Arc<AtomicBool>,
    pub(crate) finish: Arc<AtomicBool>,
    pub(crate) router: Arc<Router>,
    /// Push-mode stream state. `RefCell`, not `Mutex`: streams live and
    /// die on this thread only (`Send` because operators are `Send`).
    pub(crate) streams: RefCell<StreamRegistry>,
    /// Subscription events produced while one connection was mutably
    /// borrowed, waiting to be fanned out to their target connections.
    /// Unlike [`Completions`], draining these must NOT touch `in_flight`:
    /// events are unsolicited, nothing was submitted for them.
    pub(crate) stream_events: RefCell<Vec<(u64, Reply)>>,
}

/// Builds the wake/completion pair shared between loop and dispatcher.
pub(crate) fn wake_pair() -> io::Result<(Arc<WakeFd>, Arc<Completions>)> {
    let wake = Arc::new(WakeFd::new()?);
    let completions = Arc::new(Completions::new(Arc::clone(&wake)));
    Ok((wake, completions))
}

impl EventLoop {
    pub(crate) fn run(self, listener: TcpListener) {
        let poller = match Poller::new() {
            Ok(p) => p,
            Err(_) => return,
        };
        let listener_fd = listener.as_raw_fd();
        if poller.add(listener_fd, TOKEN_LISTENER, EPOLLIN).is_err() {
            return;
        }
        if poller.add(self.wake.fd, TOKEN_WAKE, EPOLLIN).is_err() {
            return;
        }

        let mut conns: HashMap<u64, Conn> = HashMap::new();
        let mut next_token = FIRST_CONN_TOKEN;
        let mut listener = Some(listener);
        let mut events = vec![EpollEvent { events: 0, data: 0 }; MAX_EVENTS];
        let mut flush_deadline: Option<Instant> = None;

        while let Ok(n) = poller.wait(&mut events, 100) {
            let mut dead: Vec<u64> = Vec::new();

            for ev in &events[..n] {
                let token = ev.data;
                let bits = ev.events;
                match token {
                    TOKEN_LISTENER => {
                        if let Some(l) = &listener {
                            self.accept_ready(l, &poller, &mut conns, &mut next_token);
                        }
                    }
                    TOKEN_WAKE => self.wake.drain(),
                    token => {
                        let Some(conn) = conns.get_mut(&token) else {
                            continue;
                        };
                        if bits & (EPOLLERR | EPOLLHUP) != 0 {
                            // Peer is gone; pending compute replies have
                            // nowhere to go.
                            dead.push(token);
                            continue;
                        }
                        if bits & EPOLLIN != 0 {
                            if conn.fill().is_err() {
                                dead.push(token);
                                continue;
                            }
                            self.advance(token, conn);
                        }
                        if bits & EPOLLOUT != 0 && conn.flush().is_err() {
                            dead.push(token);
                        }
                    }
                }
            }

            // Serialize dispatcher completions into their connections and
            // resume any parsing parked on the pipeline-depth cap.
            for (token, reply, pushed) in self.completions.drain() {
                self.metrics
                    .conn_wait
                    .record_us(pushed.elapsed().as_micros() as u64);
                let Some(conn) = conns.get_mut(&token) else {
                    continue; // connection closed while the job ran
                };
                conn.in_flight -= 1;
                conn.push_reply(&reply);
                self.advance(token, conn);
            }

            // Fan out stream subscription events queued while handling
            // pushes this iteration. Drained AFTER completions and after
            // the push's own reply was buffered, so a subscriber that is
            // also the pusher always sees its `points_pushed` reply before
            // the events it caused. No `in_flight` bookkeeping: events are
            // unsolicited.
            for (token, reply) in self.stream_events.borrow_mut().drain(..) {
                if let Some(conn) = conns.get_mut(&token) {
                    conn.push_reply(&reply);
                }
            }

            // Stop accepting the moment shutdown begins.
            if self.shutdown.load(Ordering::SeqCst) {
                if let Some(l) = listener.take() {
                    poller.delete(l.as_raw_fd());
                }
            }

            // Flush, retire finished connections, refresh epoll interest.
            for (token, conn) in conns.iter_mut() {
                if conn.flush().is_err() {
                    dead.push(*token);
                    continue;
                }
                let flushed = conn.unflushed() == 0;
                if flushed && conn.kill_after_flush {
                    dead.push(*token);
                    continue;
                }
                if flushed && conn.read_closed && conn.in_flight == 0 {
                    dead.push(*token);
                    continue;
                }
                let want_read = !conn.read_closed
                    && !conn.kill_after_flush
                    && conn.in_flight < self.config.max_pipeline_depth
                    && conn.unflushed() < self.config.write_high_water;
                let mut interest = 0u32;
                if want_read {
                    interest |= EPOLLIN;
                }
                if conn.unflushed() > 0 {
                    interest |= EPOLLOUT;
                }
                if interest != conn.interest {
                    if poller.modify(conn.fd, *token, interest).is_err() {
                        dead.push(*token);
                        continue;
                    }
                    conn.interest = interest;
                }
            }
            dead.sort_unstable();
            dead.dedup();
            for token in dead {
                if let Some(conn) = conns.remove(&token) {
                    poller.delete(conn.fd);
                    self.metrics.open_connections.dec();
                    // A dead connection's stream subscriptions die with it;
                    // its opened streams stay (another client may push).
                    if self.streams.borrow_mut().drop_token(token) > 0 {
                        self.sync_stream_gauges();
                    }
                }
            }

            // Final drain: the dispatcher has joined, every completion is
            // serialized — flush what the peers will take, then exit.
            if self.finish.load(Ordering::SeqCst) {
                let deadline =
                    *flush_deadline.get_or_insert_with(|| Instant::now() + FLUSH_DEADLINE);
                let all_flushed = conns
                    .values()
                    .all(|c| c.unflushed() == 0 && c.in_flight == 0);
                if all_flushed || Instant::now() > deadline {
                    break;
                }
            }
        }
        for (_, conn) in conns.drain() {
            poller.delete(conn.fd);
            self.metrics.open_connections.dec();
        }
    }

    fn accept_ready(
        &self,
        listener: &TcpListener,
        poller: &Poller,
        conns: &mut HashMap<u64, Conn>,
        next_token: &mut u64,
    ) {
        loop {
            match listener.accept() {
                Ok((stream, _peer)) => {
                    if conns.len() >= self.config.max_connections {
                        self.metrics.connections_rejected.inc();
                        continue; // dropped: closed immediately
                    }
                    if stream.set_nonblocking(true).is_err() {
                        continue;
                    }
                    let _ = stream.set_nodelay(true);
                    let fd = stream.as_raw_fd();
                    let token = *next_token;
                    *next_token += 1;
                    let mut conn = Conn::new(stream, fd);
                    conn.interest = EPOLLIN;
                    if poller.add(fd, token, EPOLLIN).is_err() {
                        continue;
                    }
                    self.metrics.connections.inc();
                    self.metrics.open_connections.inc();
                    conns.insert(token, conn);
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(_) => return,
            }
        }
    }

    /// Runs the connection's parser over whatever is buffered: protocol
    /// sniffing, then frame extraction + request handling (or the HTTP
    /// scrape). Called after reads and after completions free depth.
    fn advance(&self, token: u64, conn: &mut Conn) {
        if conn.mode == ConnMode::Sniffing {
            if conn.read_buf.is_empty() {
                return;
            }
            if conn.read_buf[0] != b'G' {
                conn.mode = ConnMode::Frames;
            } else if conn.read_buf.len() >= 4 {
                conn.mode = if &conn.read_buf[..4] == b"GET " {
                    ConnMode::Http
                } else {
                    ConnMode::Frames
                };
            } else if conn.read_closed {
                // EOF before the sniff resolved: nothing to serve.
                conn.kill_after_flush = true;
                return;
            } else {
                return; // need more bytes
            }
        }
        match conn.mode {
            ConnMode::Sniffing => unreachable!("resolved above"),
            ConnMode::Http => self.advance_http(conn),
            ConnMode::Frames => self.advance_frames(token, conn),
        }
    }

    /// One-shot HTTP metrics scrape on the frame port.
    fn advance_http(&self, conn: &mut Conn) {
        if conn.kill_after_flush {
            return; // response already queued
        }
        let head_done = conn.read_buf.windows(4).any(|w| w == b"\r\n\r\n");
        if !head_done && conn.read_buf.len() < HTTP_HEAD_CAP && !conn.read_closed {
            return; // request head still arriving
        }
        self.metrics.count_request("metrics");
        let body = self.metrics.render_text();
        let response = format!(
            "HTTP/1.1 200 OK\r\nContent-Type: text/plain; version=0.0.4\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
            body.len()
        );
        conn.write_buf.extend_from_slice(response.as_bytes());
        conn.read_buf.clear();
        conn.read_closed = true;
        conn.kill_after_flush = true;
    }

    /// Extracts and handles every complete frame in the buffer, respecting
    /// the per-connection pipeline-depth cap.
    fn advance_frames(&self, token: u64, conn: &mut Conn) {
        let mut pos = 0usize;
        while !conn.kill_after_flush {
            if conn.in_flight >= self.config.max_pipeline_depth {
                break; // parked: resumed when a completion frees depth
            }
            let avail = conn.read_buf.len() - pos;
            if avail < 4 {
                break;
            }
            let len = u32::from_be_bytes(
                conn.read_buf[pos..pos + 4]
                    .try_into()
                    .expect("4-byte slice"),
            ) as usize;
            if len > self.config.max_frame_bytes {
                // The payload was never read, so the stream is beyond
                // resync: report and close (same contract as read_frame).
                self.metrics.replies_error.inc();
                let reply = Reply::new(
                    0,
                    ResponseBody::Error {
                        code: ErrorCode::BadRequest,
                        message: format!(
                            "frame of {len} bytes exceeds the {}-byte cap",
                            self.config.max_frame_bytes
                        ),
                    },
                );
                conn.push_reply(&reply);
                conn.read_closed = true;
                conn.kill_after_flush = true;
                break;
            }
            if avail < 4 + len {
                break; // partial frame: wait for more reads
            }
            let payload_start = pos + 4;
            let payload: Vec<u8> = conn.read_buf[payload_start..payload_start + len].to_vec();
            pos = payload_start + len;
            self.handle_payload(token, conn, &payload);
        }
        if pos > 0 {
            conn.read_buf.drain(..pos);
        }
    }

    /// Handles one decoded frame: control ops and dataset management are
    /// answered inline; compute ops are decomposed (resolving dataset
    /// references) and submitted to the coalescing queue.
    fn handle_payload(&self, token: u64, conn: &mut Conn, payload: &[u8]) {
        let Envelope { id, req } = match decode_request(payload) {
            Ok(env) => env,
            Err(err) => {
                // In-band schema error; the framing is intact, so the
                // connection survives. Domain violations (a malformed
                // accuracy tolerance) get their own typed code.
                let code = match &err {
                    ProtocolError::InvalidParameter(_) => ErrorCode::InvalidParameter,
                    _ => ErrorCode::BadRequest,
                };
                self.metrics.replies_error.inc();
                conn.push_reply(&Reply::new(
                    0,
                    ResponseBody::Error {
                        code,
                        message: err.to_string(),
                    },
                ));
                return;
            }
        };
        self.metrics.count_request(req.op());
        match req {
            Request::Ping => {
                self.metrics.replies_ok.inc();
                conn.push_reply(&Reply::new(id, ResponseBody::Pong));
            }
            Request::Metrics => {
                self.metrics.replies_ok.inc();
                conn.push_reply(&Reply::new(
                    id,
                    ResponseBody::MetricsText(self.metrics.render_text()),
                ));
            }
            Request::UploadDataset { name, entries } => {
                let labels: Vec<usize> = entries.iter().map(|e| e.label).collect();
                let series: Vec<Vec<f64>> = entries.into_iter().map(|e| e.series).collect();
                let body = match self.store.upload(&name, labels, series) {
                    Ok(out) => {
                        self.metrics.dataset_uploads.inc();
                        self.metrics.replies_ok.inc();
                        ResponseBody::DatasetUploaded {
                            dataset_id: out.dataset_id,
                            version: out.version,
                            count: out.count,
                            bytes: out.bytes,
                        }
                    }
                    Err(e) => {
                        self.metrics.replies_error.inc();
                        ResponseBody::Error {
                            code: e.code,
                            message: e.message,
                        }
                    }
                };
                self.sync_dataset_gauges();
                conn.push_reply(&Reply::new(id, body));
            }
            Request::ListDatasets => {
                self.metrics.replies_ok.inc();
                conn.push_reply(&Reply::new(
                    id,
                    ResponseBody::Datasets {
                        items: self.store.list(),
                    },
                ));
            }
            Request::DropDataset { dataset } => {
                let body = match self.store.drop_ref(&dataset) {
                    Ok(count) => {
                        self.metrics.dataset_drops.inc();
                        self.metrics.replies_ok.inc();
                        ResponseBody::Dropped { count }
                    }
                    Err(e) => {
                        self.metrics.replies_error.inc();
                        ResponseBody::Error {
                            code: e.code,
                            message: e.message,
                        }
                    }
                };
                self.sync_dataset_gauges();
                conn.push_reply(&Reply::new(id, body));
            }
            Request::OpenStream {
                window,
                band,
                query,
                threshold,
            } => {
                let body = match self.streams.borrow_mut().open(StreamConfig {
                    window,
                    band,
                    query,
                    threshold,
                }) {
                    Ok(out) => {
                        self.metrics.replies_ok.inc();
                        self.metrics.streams_opened.inc();
                        ResponseBody::StreamOpened {
                            stream_id: out.stream_id,
                            shard: out.shard,
                            burn_in: out.burn_in,
                        }
                    }
                    Err(e) => {
                        self.metrics.replies_error.inc();
                        ResponseBody::Error {
                            code: match e {
                                StreamError::InvalidParameter(_) => ErrorCode::InvalidParameter,
                                _ => ErrorCode::BadRequest,
                            },
                            message: e.to_string(),
                        }
                    }
                };
                self.sync_stream_gauges();
                conn.push_reply(&Reply::new(id, body));
            }
            Request::PushPoints { stream_id, points } => {
                let started = Instant::now();
                let body = match self.streams.borrow_mut().push(stream_id, &points) {
                    Ok(out) => {
                        self.metrics.stream_points.add(out.accepted);
                        self.metrics.stream_evictions.add(out.evictions);
                        self.metrics.stream_events.add(out.events.len() as u64);
                        let mut queued = self.stream_events.borrow_mut();
                        for (target, sub_id, event) in out.events {
                            queued.push((
                                target,
                                Reply::new(sub_id, ResponseBody::StreamEvent(event)),
                            ));
                        }
                        self.metrics.replies_ok.inc();
                        ResponseBody::PointsPushed {
                            stream_id,
                            accepted: out.accepted,
                            epoch: out.epoch,
                        }
                    }
                    Err(e) => {
                        self.metrics.replies_error.inc();
                        ResponseBody::Error {
                            code: e.code(),
                            message: e.to_string(),
                        }
                    }
                };
                self.metrics
                    .stream_push
                    .record_us(started.elapsed().as_micros() as u64);
                conn.push_reply(&Reply::new(id, body));
            }
            Request::Subscribe { stream_id } => {
                // Events for this subscription carry the subscribe request's
                // id, so a pipelining client can correlate them.
                let body = match self.streams.borrow_mut().subscribe(stream_id, token, id) {
                    Ok(out) => {
                        self.metrics.replies_ok.inc();
                        ResponseBody::Subscribed {
                            stream_id,
                            epoch: out.epoch,
                            warm: out.warm,
                        }
                    }
                    Err(e) => {
                        self.metrics.replies_error.inc();
                        ResponseBody::Error {
                            code: e.code(),
                            message: e.to_string(),
                        }
                    }
                };
                self.sync_stream_gauges();
                conn.push_reply(&Reply::new(id, body));
            }
            Request::CloseStream { stream_id } => {
                let body = match self.streams.borrow_mut().close(stream_id) {
                    Ok(out) => {
                        self.metrics.replies_ok.inc();
                        ResponseBody::StreamClosed {
                            stream_id,
                            pushed: out.pushed,
                        }
                    }
                    Err(e) => {
                        self.metrics.replies_error.inc();
                        ResponseBody::Error {
                            code: e.code(),
                            message: e.to_string(),
                        }
                    }
                };
                self.sync_stream_gauges();
                conn.push_reply(&Reply::new(id, body));
            }
            req => {
                let used_dataset = matches!(
                    &req,
                    Request::Batch {
                        dataset: Some(_),
                        ..
                    } | Request::Knn {
                        dataset: Some(_),
                        ..
                    } | Request::Search {
                        dataset: Some(_),
                        ..
                    }
                );
                let deadline = req
                    .deadline()
                    .or(self.config.default_deadline)
                    .map(|d| Instant::now() + d);
                let accuracy = req.accuracy();
                let mut decomposed = match decompose(req, &self.store) {
                    Ok(Some(d)) => d,
                    Ok(None) => unreachable!("control ops handled above"),
                    Err(e) => {
                        // Resolution failures never occupy queue capacity.
                        if matches!(e.code, ErrorCode::NotFound | ErrorCode::StaleVersion) {
                            self.metrics.dataset_misses.inc();
                        }
                        self.metrics.replies_error.inc();
                        conn.push_reply(&Reply::new(
                            id,
                            ResponseBody::Error {
                                code: e.code,
                                message: e.message,
                            },
                        ));
                        return;
                    }
                };
                if used_dataset {
                    self.metrics.dataset_hits.inc();
                }
                let route = self.route(&decomposed, accuracy);
                decomposed.route_to(route.backend);
                self.metrics.count_backend(route.backend);
                self.metrics
                    .fleet_in_use_uw
                    .set((self.router.fleet().in_use_w() * 1e6).round() as u64);
                conn.in_flight += 1;
                self.metrics.record_pipeline_submit(conn.in_flight);
                let job = Job {
                    id,
                    items: decomposed.items,
                    assemble: decomposed.assemble,
                    reply: ReplySink::Conn {
                        token,
                        completions: Arc::clone(&self.completions),
                    },
                    deadline,
                    enqueued: Instant::now(),
                    // Routing is reported only when the client opted into
                    // the accuracy surface; default replies stay
                    // byte-identical to the pre-routing protocol.
                    route: accuracy.map(|_| RouteInfo {
                        backend: route.backend,
                        bound: route.bound,
                    }),
                    lease: route.lease,
                };
                if let Err(refusal) = self.queue.submit(job) {
                    conn.in_flight -= 1;
                    self.metrics.replies_error.inc();
                    conn.push_reply(&Reply::new(
                        id,
                        ResponseBody::Error {
                            code: refusal.code(),
                            message: refusal.message(),
                        },
                    ));
                }
            }
        }
    }

    /// Picks a backend for one decomposed request: searches pin the pruned
    /// digital path, pair work goes through the SLA/power-aware router, and
    /// a degenerate job with no pair items trivially routes digital-exact.
    fn route(
        &self,
        decomposed: &crate::exec::Decomposed,
        accuracy: Option<mda_routing::Sla>,
    ) -> Route {
        let sla = accuracy.unwrap_or_default();
        if matches!(decomposed.assemble, Assemble::Search) {
            return self.router.route_search(sla);
        }
        let kind = decomposed.items.iter().find_map(|item| match item {
            WorkItem::Pair { spec, .. } => Some(spec.kind),
            WorkItem::Search { .. } => None,
        });
        match kind {
            Some(kind) => self.router.route_pair(kind, decomposed.max_pair_len(), sla),
            None => Route {
                backend: BackendId::DigitalExact,
                bound: Bound::EXACT,
                lease: None,
            },
        }
    }

    fn sync_stream_gauges(&self) {
        let streams = self.streams.borrow();
        self.metrics.streams_open.set(streams.open_count() as u64);
        self.metrics
            .stream_subscriptions
            .set(streams.subscriber_count() as u64);
    }

    fn sync_dataset_gauges(&self) {
        let (count, bytes) = self.store.stats();
        self.metrics.datasets_resident.set(count as u64);
        self.metrics.dataset_resident_bytes.set(bytes);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wakefd_wakes_and_drains() {
        let wake = WakeFd::new().unwrap();
        let poller = Poller::new().unwrap();
        poller.add(wake.fd, TOKEN_WAKE, EPOLLIN).unwrap();
        let mut events = [EpollEvent { events: 0, data: 0 }; 4];
        // Nothing pending: times out.
        assert_eq!(poller.wait(&mut events, 0).unwrap(), 0);
        wake.wake();
        assert_eq!(poller.wait(&mut events, 1000).unwrap(), 1);
        let token = events[0].data; // copy out: the struct may be packed
        assert_eq!(token, TOKEN_WAKE);
        wake.drain();
        assert_eq!(poller.wait(&mut events, 0).unwrap(), 0);
    }

    #[test]
    fn completions_wake_their_loop() {
        let (wake, completions) = wake_pair().unwrap();
        let poller = Poller::new().unwrap();
        poller.add(wake.fd, TOKEN_WAKE, EPOLLIN).unwrap();
        completions.push(42, Reply::new(7, ResponseBody::Pong));
        let mut events = [EpollEvent { events: 0, data: 0 }; 4];
        assert_eq!(poller.wait(&mut events, 1000).unwrap(), 1);
        let drained = completions.drain();
        assert_eq!(drained.len(), 1);
        assert_eq!(drained[0].0, 42);
        assert_eq!(drained[0].1.id, 7);
        assert!(completions.drain().is_empty());
    }

    #[test]
    fn epoll_event_layout_matches_kernel_abi() {
        #[cfg(target_arch = "x86_64")]
        assert_eq!(std::mem::size_of::<EpollEvent>(), 12);
        #[cfg(not(target_arch = "x86_64"))]
        assert_eq!(std::mem::size_of::<EpollEvent>(), 16);
    }
}
