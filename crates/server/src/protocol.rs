//! The `mda-server` wire protocol: length-prefixed JSON frames.
//!
//! Every message is one frame: a 4-byte big-endian payload length followed
//! by exactly that many bytes of UTF-8 JSON (one document per frame). The
//! same framing is used in both directions.
//!
//! ## Requests
//!
//! Every request is an object with a client-chosen `id` (echoed on the
//! reply, so clients may pipeline) and an `op`:
//!
//! ```json
//! {"id": 1, "op": "ping"}
//! {"id": 2, "op": "metrics"}
//! {"id": 3, "op": "distance", "kind": "DTW", "p": [0,1], "q": [0,2]}
//! {"id": 4, "op": "batch", "kind": "MD", "pairs": [[[0,1],[0,2]], [[1,1],[2,2]]]}
//! {"id": 5, "op": "knn", "kind": "DTW", "k": 1, "query": [0,1],
//!  "train": [{"label": 0, "series": [0,1]}, {"label": 1, "series": [5,5]}]}
//! {"id": 6, "op": "search", "query": [0,1], "haystack": [0,1,0,1], "window": 2, "band": 1}
//! ```
//!
//! Optional request fields: `threshold` (LCS/EdD/HamD match threshold),
//! `band` (Sakoe–Chiba radius for DTW), `deadline_ms` (queue-wait budget;
//! requests still queued when it expires are answered with a `timeout`
//! error instead of being computed), and `accuracy` (the answer-path SLA).
//!
//! ## Accuracy SLAs
//!
//! The compute ops (`distance`, `batch`, `knn`, `search`) accept an
//! optional `accuracy` field — either the string `"exact"` or an object
//! `{"tolerance": ε}` with finite non-negative ε:
//!
//! ```json
//! {"id": 13, "op": "distance", "kind": "DTW", "p": [0,1], "q": [0,2],
//!  "accuracy": {"tolerance": 16.0}}
//! ```
//!
//! An absent field means `exact` and leaves both request and reply bytes
//! identical to the pre-routing protocol. A malformed tolerance (NaN,
//! infinite, negative) is rejected at decode with the typed
//! `invalid_parameter` error. When a request *does* carry `accuracy`, its
//! reply reports which backend answered and the error bound it guarantees:
//!
//! ```json
//! {"id": 13, "ok": true, "result": {"value": 1.02},
//!  "backend": "analog", "bound": {"abs": 7.0, "rel": 0.3}}
//! ```
//!
//! ## Resident datasets
//!
//! A corpus can be uploaded once and then referenced by id, so the wire
//! carries queries instead of re-shipping the reference set:
//!
//! ```json
//! {"id": 7, "op": "upload_dataset", "name": "corpus",
//!  "entries": [[0,1,2], {"label": 1, "series": [3,4,5]}]}
//! {"id": 8, "op": "knn", "kind": "DTW", "k": 1, "query": [0,1],
//!  "dataset": "a1b2…"}
//! {"id": 9, "op": "batch", "kind": "MD", "query": [0,1],
//!  "dataset_name": "corpus", "version": 1}
//! {"id": 10, "op": "search", "query": [0,1], "dataset_name": "corpus",
//!  "series_index": 0, "window": 2, "band": 1}
//! {"id": 11, "op": "list_datasets"}
//! {"id": 12, "op": "drop_dataset", "dataset_name": "corpus"}
//! ```
//!
//! A dataset reference is either `dataset` (the content-addressed id
//! returned by `upload_dataset`) or `dataset_name` plus an optional
//! pinned `version`. Referencing an unknown id/name yields `not_found`;
//! pinning a superseded version yields `stale_version`.
//!
//! ## Push-mode streams
//!
//! Live series are mined incrementally: open a stream (fixing the window,
//! band, query, and optional match threshold), push points as they
//! arrive, and subscribe to per-push operator frames:
//!
//! ```json
//! {"id": 20, "op": "open_stream", "window": 16, "band": 2, "query": [0,1, "…"]}
//! {"id": 21, "op": "push_points", "stream_id": 1, "points": [0.5, 0.25]}
//! {"id": 22, "op": "subscribe", "stream_id": 1}
//! {"id": 23, "op": "close_stream", "stream_id": 1}
//! ```
//!
//! `open_stream` replies with the assigned `stream_id`, the consistent-hash
//! `shard` the stream is pinned to, and its `burn_in` (pushes before the
//! first ready frame). After `subscribe`, every accepted push produces one
//! unsolicited event frame on the subscriber's connection, carrying the
//! **subscribe request's id** and the operator `epoch` so consumers detect
//! gaps:
//!
//! ```json
//! {"id": 22, "ok": true, "result": {"event": {"stream_id": 1, "epoch": 4,
//!  "state": "warming", "seen": 4, "burn_in": 16}}}
//! {"id": 22, "ok": true, "result": {"event": {"stream_id": 1, "epoch": 17,
//!  "state": "ready", "mean": 0.5, "std_dev": 1.25, "decision": "pruned_keogh",
//!  "bound": 9.0, "threshold": 4.0, "motif": {"epoch": 16, "distance": 2.5}}}}
//! ```
//!
//! Pushing to an unknown or closed stream yields `not_found`; non-finite
//! points yield `invalid_parameter`; both are in-band replies and the
//! connection survives. A connection that subscribes and also pushes
//! receives each push's direct reply **before** the events it triggered.
//!
//! ## Replies
//!
//! ```json
//! {"id": 3, "ok": true, "result": {"value": 1.0}}
//! {"id": 4, "ok": false, "error": {"code": "overloaded", "message": "…"}}
//! ```
//!
//! Error codes: `overloaded` (admission control shed the request),
//! `timeout` (deadline expired in the queue), `bad_request` (malformed or
//! rejected by the distance definition), `invalid_parameter` (a field
//! parsed but its value is out of domain, e.g. a negative tolerance),
//! `not_found` (unknown dataset id or name), `stale_version` (pinned
//! dataset version superseded), `shutting_down` (server is draining),
//! `internal`.

use std::fmt;
use std::io::{self, Read, Write};
use std::time::Duration;

use mda_distance::DistanceKind;
use mda_routing::{BackendId, Bound, Sla};

use crate::json::{Json, JsonError};

/// Default cap on a frame's payload size (16 MiB).
pub const DEFAULT_MAX_FRAME_BYTES: usize = 16 * 1024 * 1024;

/// Error raised while reading or interpreting a frame.
#[derive(Debug)]
pub enum ProtocolError {
    /// The underlying transport failed (includes truncated frames, which
    /// surface as [`io::ErrorKind::UnexpectedEof`]).
    Io(io::Error),
    /// The frame header announced a payload larger than the negotiated cap.
    FrameTooLarge {
        /// Announced payload length.
        len: usize,
        /// Configured maximum.
        max: usize,
    },
    /// The payload was not valid JSON.
    Json(JsonError),
    /// The payload was valid JSON but not a valid message.
    Schema(String),
    /// A field parsed but its value is outside the accepted domain (e.g. a
    /// negative or non-finite tolerance). Answered with the typed
    /// `invalid_parameter` error code rather than generic `bad_request`.
    InvalidParameter(String),
}

impl fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProtocolError::Io(e) => write!(f, "transport error: {e}"),
            ProtocolError::FrameTooLarge { len, max } => {
                write!(f, "frame of {len} bytes exceeds the {max}-byte cap")
            }
            ProtocolError::Json(e) => write!(f, "malformed payload: {e}"),
            ProtocolError::Schema(msg) => write!(f, "invalid message: {msg}"),
            ProtocolError::InvalidParameter(msg) => write!(f, "invalid parameter: {msg}"),
        }
    }
}

impl std::error::Error for ProtocolError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ProtocolError::Io(e) => Some(e),
            ProtocolError::Json(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for ProtocolError {
    fn from(e: io::Error) -> Self {
        ProtocolError::Io(e)
    }
}

impl From<JsonError> for ProtocolError {
    fn from(e: JsonError) -> Self {
        ProtocolError::Json(e)
    }
}

impl ProtocolError {
    /// `true` when the peer simply closed the connection cleanly before a
    /// frame header (not mid-frame) — the normal end of a session.
    pub fn is_clean_eof(&self) -> bool {
        matches!(self, ProtocolError::Io(e)
        if e.kind() == io::ErrorKind::UnexpectedEof && e.get_ref().is_some_and(|inner| {
            inner.to_string() == CLEAN_EOF
        }))
    }
}

const CLEAN_EOF: &str = "connection closed between frames";

/// Writes one frame (header + payload).
///
/// # Errors
///
/// Any transport error; payloads beyond `u32::MAX` are rejected.
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> io::Result<()> {
    let len = u32::try_from(payload.len())
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidInput, "payload exceeds u32 length"))?;
    w.write_all(&len.to_be_bytes())?;
    w.write_all(payload)?;
    w.flush()
}

/// Reads one frame's payload, enforcing the size cap **before** allocating.
///
/// # Errors
///
/// [`ProtocolError::FrameTooLarge`] for oversized announcements, an
/// `UnexpectedEof` [`ProtocolError::Io`] for truncated frames, and a
/// distinguishable clean-EOF error (see [`ProtocolError::is_clean_eof`])
/// when the stream ends exactly on a frame boundary.
pub fn read_frame(r: &mut impl Read, max: usize) -> Result<Vec<u8>, ProtocolError> {
    let mut header = [0u8; 4];
    // First header byte: distinguish clean EOF from a truncated header.
    let mut first = [0u8; 1];
    loop {
        match r.read(&mut first) {
            Ok(0) => {
                return Err(ProtocolError::Io(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    CLEAN_EOF,
                )))
            }
            Ok(_) => break,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(ProtocolError::Io(e)),
        }
    }
    header[0] = first[0];
    r.read_exact(&mut header[1..])?;
    let len = u32::from_be_bytes(header) as usize;
    if len > max {
        return Err(ProtocolError::FrameTooLarge { len, max });
    }
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload)?;
    Ok(payload)
}

/// Parses the paper's abbreviation (`DTW`, `LCS`, `EdD`, `HauD`, `HamD`,
/// `MD`) into a [`DistanceKind`].
#[deprecated(
    since = "0.1.0",
    note = "use `str::parse::<DistanceKind>()`, the canonical `FromStr`"
)]
pub fn parse_kind(name: &str) -> Option<DistanceKind> {
    name.parse().ok()
}

/// A labelled training series for a kNN request.
#[derive(Debug, Clone, PartialEq)]
pub struct TrainInstance {
    /// Class label.
    pub label: usize,
    /// The series.
    pub series: Vec<f64>,
}

/// A reference to a resident dataset: by content-addressed id, or by name
/// with an optional pinned version.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct DatasetRef {
    /// The content-addressed id returned by `upload_dataset`.
    pub id: Option<String>,
    /// The upload name.
    pub name: Option<String>,
    /// Pinned version (only meaningful with `name`; a superseded pin is
    /// answered with `stale_version`).
    pub version: Option<u64>,
}

impl DatasetRef {
    /// A reference by content-addressed id.
    pub fn by_id(id: impl Into<String>) -> DatasetRef {
        DatasetRef {
            id: Some(id.into()),
            ..DatasetRef::default()
        }
    }

    /// A reference by name (current version).
    pub fn by_name(name: impl Into<String>) -> DatasetRef {
        DatasetRef {
            name: Some(name.into()),
            ..DatasetRef::default()
        }
    }

    /// A reference by name pinned to a specific version.
    pub fn by_name_version(name: impl Into<String>, version: u64) -> DatasetRef {
        DatasetRef {
            name: Some(name.into()),
            version: Some(version),
            ..DatasetRef::default()
        }
    }
}

/// One entry in a dataset upload: a series with an optional class label
/// (defaults to 0; labels matter only for kNN queries).
#[derive(Debug, Clone, PartialEq)]
pub struct DatasetEntry {
    /// Class label (0 when the wire entry is a bare array).
    pub label: usize,
    /// The series.
    pub series: Vec<f64>,
}

/// Summary row for `list_datasets` replies.
#[derive(Debug, Clone, PartialEq)]
pub struct DatasetSummary {
    /// Upload name.
    pub name: String,
    /// Content-addressed id.
    pub dataset_id: String,
    /// Current version under this name.
    pub version: u64,
    /// Number of series.
    pub count: usize,
    /// Resident payload bytes (8 bytes per sample).
    pub bytes: u64,
}

/// One request, without its envelope `id`.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Liveness probe.
    Ping,
    /// Fetch the metrics registry as text.
    Metrics,
    /// One distance evaluation.
    Distance {
        /// Which of the six functions.
        kind: DistanceKind,
        /// First series.
        p: Vec<f64>,
        /// Second series.
        q: Vec<f64>,
        /// Match threshold override (LCS/EdD/HamD).
        threshold: Option<f64>,
        /// Sakoe–Chiba radius (DTW).
        band: Option<usize>,
        /// Queue-wait budget.
        deadline_ms: Option<u64>,
        /// Accuracy SLA (absent ⇒ `exact`).
        accuracy: Option<Sla>,
    },
    /// A pairwise batch: one value per pair (inline `pairs`), or — with a
    /// dataset reference — `query` against every resident series.
    Batch {
        /// Which of the six functions.
        kind: DistanceKind,
        /// The pairs to evaluate (inline form; empty when `dataset` set).
        pairs: Vec<(Vec<f64>, Vec<f64>)>,
        /// The query series (resident form: one value per dataset series).
        query: Option<Vec<f64>>,
        /// Resident corpus reference (mutually exclusive with `pairs`).
        dataset: Option<DatasetRef>,
        /// Match threshold override (LCS/EdD/HamD).
        threshold: Option<f64>,
        /// Sakoe–Chiba radius (DTW).
        band: Option<usize>,
        /// Queue-wait budget.
        deadline_ms: Option<u64>,
        /// Accuracy SLA (absent ⇒ `exact`).
        accuracy: Option<Sla>,
    },
    /// k-nearest-neighbour classification of `query` against `train` or a
    /// resident labelled dataset.
    Knn {
        /// Which of the six functions.
        kind: DistanceKind,
        /// Neighbour count (≥ 1).
        k: usize,
        /// The query series.
        query: Vec<f64>,
        /// Labelled training set (inline form; empty when `dataset` set).
        train: Vec<TrainInstance>,
        /// Resident training-set reference (mutually exclusive with `train`).
        dataset: Option<DatasetRef>,
        /// Match threshold override (LCS/EdD/HamD).
        threshold: Option<f64>,
        /// Sakoe–Chiba radius (DTW).
        band: Option<usize>,
        /// Queue-wait budget.
        deadline_ms: Option<u64>,
        /// Accuracy SLA (absent ⇒ `exact`).
        accuracy: Option<Sla>,
    },
    /// Banded-DTW subsequence search of `query` in `haystack` or a
    /// resident series.
    Search {
        /// The query series.
        query: Vec<f64>,
        /// The long series to scan (inline form; empty when `dataset` set).
        haystack: Vec<f64>,
        /// Resident haystack reference (mutually exclusive with `haystack`).
        dataset: Option<DatasetRef>,
        /// Which series of the dataset to scan (resident form; default 0).
        series_index: usize,
        /// Window length (≥ 1).
        window: usize,
        /// Sakoe–Chiba radius.
        band: usize,
        /// Queue-wait budget.
        deadline_ms: Option<u64>,
        /// Accuracy SLA (absent ⇒ `exact`; searches answer exactly either
        /// way, but the reply then reports its backend and bound).
        accuracy: Option<Sla>,
    },
    /// Open a push-mode stream: fixes the sliding window, band, query, and
    /// optional match threshold for the stream's operator DAG.
    OpenStream {
        /// Sliding-window length (≥ 1); also the burn-in.
        window: usize,
        /// Sakoe–Chiba radius for the online matcher.
        band: usize,
        /// The query subsequence (length must equal `window`).
        query: Vec<f64>,
        /// Optional match threshold (finite, positive).
        threshold: Option<f64>,
    },
    /// Append points to an open stream.
    PushPoints {
        /// The stream to push to.
        stream_id: u64,
        /// The points, oldest first.
        points: Vec<f64>,
    },
    /// Subscribe this connection to a stream's per-push events.
    Subscribe {
        /// The stream to follow.
        stream_id: u64,
    },
    /// Close a stream, dropping its state and subscriptions.
    CloseStream {
        /// The stream to close.
        stream_id: u64,
    },
    /// Upload a resident dataset; replies with its content-addressed id.
    UploadDataset {
        /// Name the dataset is versioned under.
        name: String,
        /// The series (with optional labels).
        entries: Vec<DatasetEntry>,
    },
    /// List resident datasets.
    ListDatasets,
    /// Drop a resident dataset by id or name.
    DropDataset {
        /// Which dataset.
        dataset: DatasetRef,
    },
}

impl Request {
    /// Short operation label, used for metrics.
    pub fn op(&self) -> &'static str {
        match self {
            Request::Ping => "ping",
            Request::Metrics => "metrics",
            Request::Distance { .. } => "distance",
            Request::Batch { .. } => "batch",
            Request::Knn { .. } => "knn",
            Request::Search { .. } => "search",
            Request::OpenStream { .. } => "open_stream",
            Request::PushPoints { .. } => "push_points",
            Request::Subscribe { .. } => "subscribe",
            Request::CloseStream { .. } => "close_stream",
            Request::UploadDataset { .. } => "upload_dataset",
            Request::ListDatasets => "list_datasets",
            Request::DropDataset { .. } => "drop_dataset",
        }
    }

    /// The request's queue-wait budget, if any.
    pub fn deadline(&self) -> Option<Duration> {
        let ms = match self {
            Request::Distance { deadline_ms, .. }
            | Request::Batch { deadline_ms, .. }
            | Request::Knn { deadline_ms, .. }
            | Request::Search { deadline_ms, .. } => *deadline_ms,
            _ => None,
        };
        ms.map(Duration::from_millis)
    }

    /// The request's explicit accuracy SLA, if it carried one. `None`
    /// means the wire field was absent — semantically `exact`, and the
    /// reply stays in the pre-routing shape.
    pub fn accuracy(&self) -> Option<Sla> {
        match self {
            Request::Distance { accuracy, .. }
            | Request::Batch { accuracy, .. }
            | Request::Knn { accuracy, .. }
            | Request::Search { accuracy, .. } => *accuracy,
            _ => None,
        }
    }
}

/// A request plus its envelope `id`.
#[derive(Debug, Clone, PartialEq)]
pub struct Envelope {
    /// Client-chosen id, echoed on the reply.
    pub id: u64,
    /// The request.
    pub req: Request,
}

/// Machine-readable error class on an error reply.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorCode {
    /// Admission control shed the request (queue full).
    Overloaded,
    /// The deadline expired while the request was queued.
    Timeout,
    /// The request was malformed or rejected by the distance definition.
    BadRequest,
    /// A field parsed but its value is out of domain (e.g. a NaN, infinite
    /// or negative tolerance).
    InvalidParameter,
    /// The referenced dataset id or name is not resident.
    NotFound,
    /// The request pinned a dataset version that has been superseded.
    StaleVersion,
    /// The server is draining and no longer accepts work.
    ShuttingDown,
    /// Unexpected server-side failure.
    Internal,
}

impl ErrorCode {
    /// The wire name.
    pub fn as_str(self) -> &'static str {
        match self {
            ErrorCode::Overloaded => "overloaded",
            ErrorCode::Timeout => "timeout",
            ErrorCode::BadRequest => "bad_request",
            ErrorCode::InvalidParameter => "invalid_parameter",
            ErrorCode::NotFound => "not_found",
            ErrorCode::StaleVersion => "stale_version",
            ErrorCode::ShuttingDown => "shutting_down",
            ErrorCode::Internal => "internal",
        }
    }

    /// Parses the wire name.
    pub fn parse(s: &str) -> Option<ErrorCode> {
        [
            ErrorCode::Overloaded,
            ErrorCode::Timeout,
            ErrorCode::BadRequest,
            ErrorCode::InvalidParameter,
            ErrorCode::NotFound,
            ErrorCode::StaleVersion,
            ErrorCode::ShuttingDown,
            ErrorCode::Internal,
        ]
        .into_iter()
        .find(|c| c.as_str() == s)
    }
}

impl fmt::Display for ErrorCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// A best-so-far motif/discord record on a stream event.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MatchRecord {
    /// The push epoch the record was set at.
    pub epoch: u64,
    /// Its distance (motif: computed DTW; discord: certified lower bound).
    pub distance: f64,
}

/// What a subscribed connection receives after each accepted push.
#[derive(Debug, Clone, PartialEq)]
pub struct StreamEventBody {
    /// The stream the event belongs to.
    pub stream_id: u64,
    /// The operator epoch (push count) — consecutive per stream, so a gap
    /// tells the subscriber it missed events.
    pub epoch: u64,
    /// Warming progress or the ready frame.
    pub state: StreamEventState,
}

/// The operator DAG's state carried on one stream event.
#[derive(Debug, Clone, PartialEq)]
pub enum StreamEventState {
    /// The window has not filled yet; no frames are emitted.
    Warming {
        /// Points seen so far.
        seen: u64,
        /// Points required before the first ready frame.
        burn_in: u64,
    },
    /// One ready frame from the incremental operators.
    Ready {
        /// Sliding-window mean.
        mean: f64,
        /// Sliding-window standard deviation.
        std_dev: f64,
        /// Cascade outcome: `computed`, `pruned_kim`, `pruned_keogh`, or
        /// `abandoned`.
        decision: String,
        /// The certified lower bound on this window's distance.
        bound: f64,
        /// Effective pruning threshold ([`f64::INFINITY`] = unbounded;
        /// omitted from the wire then).
        threshold: f64,
        /// Best (smallest computed) match so far.
        motif: Option<MatchRecord>,
        /// Largest certified lower bound so far.
        discord: Option<MatchRecord>,
    },
}

/// The body of a reply (success variants mirror the request ops).
#[derive(Debug, Clone, PartialEq)]
pub enum ResponseBody {
    /// Reply to `ping`.
    Pong,
    /// Reply to `metrics`: the rendered registry.
    MetricsText(String),
    /// Reply to `distance`.
    Distance {
        /// The computed value.
        value: f64,
    },
    /// Reply to `batch`.
    Batch {
        /// One value per input pair, in input order.
        values: Vec<f64>,
    },
    /// Reply to `knn`.
    Knn {
        /// Predicted label.
        label: usize,
        /// Score of the deciding neighbour.
        score: f64,
        /// Index of the nearest training instance.
        nearest_index: usize,
    },
    /// Reply to `search`.
    Search {
        /// Start offset of the best window.
        offset: usize,
        /// Its banded DTW distance.
        distance: f64,
    },
    /// Reply to `upload_dataset`.
    DatasetUploaded {
        /// Content-addressed id for query references.
        dataset_id: String,
        /// Version assigned under the upload name.
        version: u64,
        /// Number of series.
        count: usize,
        /// Resident payload bytes.
        bytes: u64,
    },
    /// Reply to `list_datasets`.
    Datasets {
        /// One row per resident dataset.
        items: Vec<DatasetSummary>,
    },
    /// Reply to `drop_dataset`.
    Dropped {
        /// Number of datasets removed (0 or 1).
        count: usize,
    },
    /// Reply to `open_stream`.
    StreamOpened {
        /// The assigned stream id — use it in every later stream op.
        stream_id: u64,
        /// The consistent-hash shard the stream is pinned to.
        shard: u32,
        /// Pushes before the first ready frame.
        burn_in: u64,
    },
    /// Reply to `push_points`.
    PointsPushed {
        /// Echo of the stream id.
        stream_id: u64,
        /// Points accepted by this push.
        accepted: u64,
        /// The stream's epoch after the push.
        epoch: u64,
    },
    /// Reply to `subscribe`.
    Subscribed {
        /// Echo of the stream id.
        stream_id: u64,
        /// The stream's epoch at subscription time.
        epoch: u64,
        /// `true` once burn-in has completed.
        warm: bool,
    },
    /// Reply to `close_stream`.
    StreamClosed {
        /// Echo of the stream id.
        stream_id: u64,
        /// Total points the stream accepted over its lifetime.
        pushed: u64,
    },
    /// An unsolicited per-push event on a subscribed connection (carries
    /// the subscribe request's id).
    StreamEvent(StreamEventBody),
    /// Any failure.
    Error {
        /// Machine-readable class.
        code: ErrorCode,
        /// Human-readable description.
        message: String,
    },
}

/// Which backend answered a routed request, and with what guarantee.
/// Attached to a reply only when the request carried an explicit
/// `accuracy` field — absent otherwise, keeping the pre-routing reply
/// bytes unchanged.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RouteInfo {
    /// The answering backend.
    pub backend: BackendId,
    /// The error bound the answer is guaranteed to satisfy against the
    /// exact digital value.
    pub bound: Bound,
}

/// A reply plus the echoed request `id`.
#[derive(Debug, Clone, PartialEq)]
pub struct Reply {
    /// Echo of the request id.
    pub id: u64,
    /// The body.
    pub body: ResponseBody,
    /// Routing report for explicitly accuracy-tagged requests.
    pub route: Option<RouteInfo>,
}

impl Reply {
    /// A reply with no routing report — the shape of every reply to a
    /// request without an explicit `accuracy` field.
    pub fn new(id: u64, body: ResponseBody) -> Reply {
        Reply {
            id,
            body,
            route: None,
        }
    }

    /// This reply with a routing report attached.
    pub fn with_route(mut self, route: RouteInfo) -> Reply {
        self.route = Some(route);
        self
    }
}

fn opt_f64(v: &Json, key: &str) -> Result<Option<f64>, ProtocolError> {
    match v.get(key) {
        None | Some(Json::Null) => Ok(None),
        Some(x) => x
            .as_f64()
            .map(Some)
            .ok_or_else(|| ProtocolError::Schema(format!("`{key}` must be a number"))),
    }
}

fn opt_usize(v: &Json, key: &str) -> Result<Option<usize>, ProtocolError> {
    match v.get(key) {
        None | Some(Json::Null) => Ok(None),
        Some(x) => x.as_usize().map(Some).ok_or_else(|| {
            ProtocolError::Schema(format!("`{key}` must be a non-negative integer"))
        }),
    }
}

fn opt_u64(v: &Json, key: &str) -> Result<Option<u64>, ProtocolError> {
    match v.get(key) {
        None | Some(Json::Null) => Ok(None),
        Some(x) => x.as_u64().map(Some).ok_or_else(|| {
            ProtocolError::Schema(format!("`{key}` must be a non-negative integer"))
        }),
    }
}

fn req_series(v: &Json, key: &str) -> Result<Vec<f64>, ProtocolError> {
    v.get(key)
        .and_then(Json::as_f64_vec)
        .ok_or_else(|| ProtocolError::Schema(format!("`{key}` must be an array of numbers")))
}

fn req_usize(v: &Json, key: &str) -> Result<usize, ProtocolError> {
    v.get(key)
        .and_then(Json::as_usize)
        .ok_or_else(|| ProtocolError::Schema(format!("`{key}` must be a non-negative integer")))
}

fn req_u64(v: &Json, key: &str) -> Result<u64, ProtocolError> {
    v.get(key)
        .and_then(Json::as_u64)
        .ok_or_else(|| ProtocolError::Schema(format!("`{key}` must be a non-negative integer")))
}

fn opt_str(v: &Json, key: &str) -> Result<Option<String>, ProtocolError> {
    match v.get(key) {
        None | Some(Json::Null) => Ok(None),
        Some(x) => x
            .as_str()
            .map(|s| Some(s.to_string()))
            .ok_or_else(|| ProtocolError::Schema(format!("`{key}` must be a string"))),
    }
}

/// Parses the optional dataset reference triple (`dataset`,
/// `dataset_name`, `version`) shared by the compute ops.
fn opt_dataset_ref(v: &Json) -> Result<Option<DatasetRef>, ProtocolError> {
    let id = opt_str(v, "dataset")?;
    let name = opt_str(v, "dataset_name")?;
    let version = opt_u64(v, "version")?;
    if id.is_some() && name.is_some() {
        return Err(ProtocolError::Schema(
            "specify `dataset` or `dataset_name`, not both".into(),
        ));
    }
    if version.is_some() && name.is_none() {
        return Err(ProtocolError::Schema(
            "`version` requires `dataset_name`".into(),
        ));
    }
    if id.is_none() && name.is_none() {
        return Ok(None);
    }
    Ok(Some(DatasetRef { id, name, version }))
}

fn req_dataset_ref(v: &Json) -> Result<DatasetRef, ProtocolError> {
    opt_dataset_ref(v)?
        .ok_or_else(|| ProtocolError::Schema("a `dataset` id or `dataset_name` is required".into()))
}

fn req_kind(v: &Json) -> Result<DistanceKind, ProtocolError> {
    let name = v
        .get("kind")
        .and_then(Json::as_str)
        .ok_or_else(|| ProtocolError::Schema("`kind` must be a string".into()))?;
    name.parse()
        .map_err(|e| ProtocolError::Schema(format!("{e}")))
}

/// Parses the optional `accuracy` field: the string `"exact"` or an
/// object `{"tolerance": ε}`. Domain violations (non-finite or negative
/// ε, unknown names) are [`ProtocolError::InvalidParameter`], so clients
/// get the typed `invalid_parameter` reply rather than `bad_request`.
fn opt_accuracy(v: &Json) -> Result<Option<Sla>, ProtocolError> {
    let field = match v.get("accuracy") {
        None | Some(Json::Null) => return Ok(None),
        Some(x) => x,
    };
    match field {
        Json::Str(s) if s == "exact" => Ok(Some(Sla::Exact)),
        Json::Str(s) => Err(ProtocolError::InvalidParameter(format!(
            "unknown accuracy `{s}` (expected \"exact\" or {{\"tolerance\": ε}})"
        ))),
        Json::Obj(_) => {
            let eps = field
                .get("tolerance")
                .and_then(Json::as_f64)
                .ok_or_else(|| {
                    ProtocolError::Schema(
                        "`accuracy` object must carry a numeric `tolerance`".into(),
                    )
                })?;
            let sla = Sla::tolerance(eps)
                .map_err(|e| ProtocolError::InvalidParameter(format!("`accuracy`: {e}")))?;
            Ok(Some(sla))
        }
        _ => Err(ProtocolError::Schema(
            "`accuracy` must be \"exact\" or {\"tolerance\": ε}".into(),
        )),
    }
}

/// Decodes a request envelope from a frame payload.
///
/// # Errors
///
/// [`ProtocolError::Json`] for malformed JSON, [`ProtocolError::Schema`]
/// for structurally invalid messages. Never panics, whatever the payload.
pub fn decode_request(payload: &[u8]) -> Result<Envelope, ProtocolError> {
    let v = Json::parse(payload)?;
    let id = v
        .get("id")
        .and_then(Json::as_u64)
        .ok_or_else(|| ProtocolError::Schema("`id` must be a non-negative integer".into()))?;
    let op = v
        .get("op")
        .and_then(Json::as_str)
        .ok_or_else(|| ProtocolError::Schema("`op` must be a string".into()))?;
    let req = match op {
        "ping" => Request::Ping,
        "metrics" => Request::Metrics,
        "distance" => Request::Distance {
            kind: req_kind(&v)?,
            p: req_series(&v, "p")?,
            q: req_series(&v, "q")?,
            threshold: opt_f64(&v, "threshold")?,
            band: opt_usize(&v, "band")?,
            deadline_ms: opt_u64(&v, "deadline_ms")?,
            accuracy: opt_accuracy(&v)?,
        },
        "batch" => {
            let dataset = opt_dataset_ref(&v)?;
            let (pairs, query) = if dataset.is_some() {
                if v.get("pairs").is_some() {
                    return Err(ProtocolError::Schema(
                        "`pairs` and a dataset reference are mutually exclusive".into(),
                    ));
                }
                (Vec::new(), Some(req_series(&v, "query")?))
            } else {
                let pairs_json = v
                    .get("pairs")
                    .and_then(Json::as_array)
                    .ok_or_else(|| ProtocolError::Schema("`pairs` must be an array".into()))?;
                let mut pairs = Vec::with_capacity(pairs_json.len());
                for pair in pairs_json {
                    let items = pair.as_array().filter(|a| a.len() == 2).ok_or_else(|| {
                        ProtocolError::Schema("each pair must be `[p, q]`".into())
                    })?;
                    let p = items[0].as_f64_vec().ok_or_else(|| {
                        ProtocolError::Schema("pair series must be numbers".into())
                    })?;
                    let q = items[1].as_f64_vec().ok_or_else(|| {
                        ProtocolError::Schema("pair series must be numbers".into())
                    })?;
                    pairs.push((p, q));
                }
                (pairs, None)
            };
            Request::Batch {
                kind: req_kind(&v)?,
                pairs,
                query,
                dataset,
                threshold: opt_f64(&v, "threshold")?,
                band: opt_usize(&v, "band")?,
                deadline_ms: opt_u64(&v, "deadline_ms")?,
                accuracy: opt_accuracy(&v)?,
            }
        }
        "knn" => {
            let dataset = opt_dataset_ref(&v)?;
            let train = if dataset.is_some() {
                if v.get("train").is_some() {
                    return Err(ProtocolError::Schema(
                        "`train` and a dataset reference are mutually exclusive".into(),
                    ));
                }
                Vec::new()
            } else {
                let train_json = v
                    .get("train")
                    .and_then(Json::as_array)
                    .ok_or_else(|| ProtocolError::Schema("`train` must be an array".into()))?;
                let mut train = Vec::with_capacity(train_json.len());
                for inst in train_json {
                    let label = inst.get("label").and_then(Json::as_usize).ok_or_else(|| {
                        ProtocolError::Schema("train `label` must be an integer".into())
                    })?;
                    let series =
                        inst.get("series")
                            .and_then(Json::as_f64_vec)
                            .ok_or_else(|| {
                                ProtocolError::Schema("train `series` must be numbers".into())
                            })?;
                    train.push(TrainInstance { label, series });
                }
                train
            };
            let k = req_usize(&v, "k")?;
            if k == 0 {
                return Err(ProtocolError::Schema("`k` must be at least 1".into()));
            }
            Request::Knn {
                kind: req_kind(&v)?,
                k,
                query: req_series(&v, "query")?,
                train,
                dataset,
                threshold: opt_f64(&v, "threshold")?,
                band: opt_usize(&v, "band")?,
                deadline_ms: opt_u64(&v, "deadline_ms")?,
                accuracy: opt_accuracy(&v)?,
            }
        }
        "search" => {
            let window = req_usize(&v, "window")?;
            if window == 0 {
                return Err(ProtocolError::Schema("`window` must be at least 1".into()));
            }
            let dataset = opt_dataset_ref(&v)?;
            let (haystack, series_index) = if dataset.is_some() {
                if v.get("haystack").is_some() {
                    return Err(ProtocolError::Schema(
                        "`haystack` and a dataset reference are mutually exclusive".into(),
                    ));
                }
                (Vec::new(), opt_usize(&v, "series_index")?.unwrap_or(0))
            } else {
                if v.get("series_index").is_some() {
                    return Err(ProtocolError::Schema(
                        "`series_index` requires a dataset reference".into(),
                    ));
                }
                (req_series(&v, "haystack")?, 0)
            };
            Request::Search {
                query: req_series(&v, "query")?,
                haystack,
                dataset,
                series_index,
                window,
                band: opt_usize(&v, "band")?.unwrap_or(0),
                deadline_ms: opt_u64(&v, "deadline_ms")?,
                accuracy: opt_accuracy(&v)?,
            }
        }
        "open_stream" => {
            let window = req_usize(&v, "window")?;
            if window == 0 {
                return Err(ProtocolError::Schema("`window` must be at least 1".into()));
            }
            let threshold = opt_f64(&v, "threshold")?;
            if let Some(t) = threshold {
                if !t.is_finite() || t <= 0.0 {
                    return Err(ProtocolError::InvalidParameter(
                        "`threshold` must be finite and positive".into(),
                    ));
                }
            }
            Request::OpenStream {
                window,
                band: opt_usize(&v, "band")?.unwrap_or(0),
                query: req_series(&v, "query")?,
                threshold,
            }
        }
        "push_points" => Request::PushPoints {
            stream_id: req_u64(&v, "stream_id")?,
            points: req_series(&v, "points")?,
        },
        "subscribe" => Request::Subscribe {
            stream_id: req_u64(&v, "stream_id")?,
        },
        "close_stream" => Request::CloseStream {
            stream_id: req_u64(&v, "stream_id")?,
        },
        "upload_dataset" => {
            let name = opt_str(&v, "name")?
                .filter(|n| !n.is_empty())
                .ok_or_else(|| ProtocolError::Schema("`name` must be a non-empty string".into()))?;
            let entries_json = v
                .get("entries")
                .and_then(Json::as_array)
                .ok_or_else(|| ProtocolError::Schema("`entries` must be an array".into()))?;
            let mut entries = Vec::with_capacity(entries_json.len());
            for entry in entries_json {
                let parsed = match entry {
                    Json::Arr(_) => entry
                        .as_f64_vec()
                        .map(|series| DatasetEntry { label: 0, series }),
                    Json::Obj(_) => {
                        let label = match entry.get("label") {
                            None | Some(Json::Null) => Some(0),
                            Some(l) => l.as_usize(),
                        };
                        match (label, entry.get("series").and_then(Json::as_f64_vec)) {
                            (Some(label), Some(series)) => Some(DatasetEntry { label, series }),
                            _ => None,
                        }
                    }
                    _ => None,
                };
                entries.push(parsed.ok_or_else(|| {
                    ProtocolError::Schema(
                        "each entry must be an array of numbers or `{label?, series}`".into(),
                    )
                })?);
            }
            Request::UploadDataset { name, entries }
        }
        "list_datasets" => Request::ListDatasets,
        "drop_dataset" => Request::DropDataset {
            dataset: req_dataset_ref(&v)?,
        },
        other => return Err(ProtocolError::Schema(format!("unknown op `{other}`"))),
    };
    Ok(Envelope { id, req })
}

/// Encodes a request envelope to a frame payload.
pub fn encode_request(env: &Envelope) -> Vec<u8> {
    let mut pairs: Vec<(String, Json)> = vec![
        ("id".into(), Json::Num(env.id as f64)),
        ("op".into(), Json::Str(env.req.op().into())),
    ];
    let mut push_opts = |threshold: &Option<f64>,
                         band: &Option<usize>,
                         deadline_ms: &Option<u64>,
                         accuracy: &Option<Sla>| {
        if let Some(t) = threshold {
            pairs.push(("threshold".into(), Json::Num(*t)));
        }
        if let Some(b) = band {
            pairs.push(("band".into(), Json::Num(*b as f64)));
        }
        if let Some(d) = deadline_ms {
            pairs.push(("deadline_ms".into(), Json::Num(*d as f64)));
        }
        // Omitted entirely when absent, keeping default-option requests
        // byte-identical to the pre-routing wire format.
        match accuracy {
            None => {}
            Some(Sla::Exact) => pairs.push(("accuracy".into(), Json::Str("exact".into()))),
            Some(Sla::Tolerance(e)) => pairs.push((
                "accuracy".into(),
                Json::Obj(vec![("tolerance".into(), Json::Num(*e))]),
            )),
        }
    };
    let dataset_ref_pairs = |r: &DatasetRef| {
        let mut out: Vec<(String, Json)> = Vec::new();
        if let Some(id) = &r.id {
            out.push(("dataset".into(), Json::Str(id.clone())));
        }
        if let Some(name) = &r.name {
            out.push(("dataset_name".into(), Json::Str(name.clone())));
        }
        if let Some(version) = r.version {
            out.push(("version".into(), Json::Num(version as f64)));
        }
        out
    };
    match &env.req {
        Request::Ping | Request::Metrics | Request::ListDatasets => {}
        Request::Distance {
            kind,
            p,
            q,
            threshold,
            band,
            deadline_ms,
            accuracy,
        } => {
            push_opts(threshold, band, deadline_ms, accuracy);
            pairs.push(("kind".into(), Json::Str(kind.abbrev().into())));
            pairs.push(("p".into(), Json::from_f64s(p)));
            pairs.push(("q".into(), Json::from_f64s(q)));
        }
        Request::Batch {
            kind,
            pairs: ps,
            query,
            dataset,
            threshold,
            band,
            deadline_ms,
            accuracy,
        } => {
            push_opts(threshold, band, deadline_ms, accuracy);
            pairs.push(("kind".into(), Json::Str(kind.abbrev().into())));
            if let Some(dataset) = dataset {
                pairs.extend(dataset_ref_pairs(dataset));
                if let Some(query) = query {
                    pairs.push(("query".into(), Json::from_f64s(query)));
                }
            } else {
                pairs.push((
                    "pairs".into(),
                    Json::Arr(
                        ps.iter()
                            .map(|(p, q)| Json::Arr(vec![Json::from_f64s(p), Json::from_f64s(q)]))
                            .collect(),
                    ),
                ));
            }
        }
        Request::Knn {
            kind,
            k,
            query,
            train,
            dataset,
            threshold,
            band,
            deadline_ms,
            accuracy,
        } => {
            push_opts(threshold, band, deadline_ms, accuracy);
            pairs.push(("kind".into(), Json::Str(kind.abbrev().into())));
            pairs.push(("k".into(), Json::Num(*k as f64)));
            pairs.push(("query".into(), Json::from_f64s(query)));
            if let Some(dataset) = dataset {
                pairs.extend(dataset_ref_pairs(dataset));
            } else {
                pairs.push((
                    "train".into(),
                    Json::Arr(
                        train
                            .iter()
                            .map(|t| {
                                Json::Obj(vec![
                                    ("label".into(), Json::Num(t.label as f64)),
                                    ("series".into(), Json::from_f64s(&t.series)),
                                ])
                            })
                            .collect(),
                    ),
                ));
            }
        }
        Request::Search {
            query,
            haystack,
            dataset,
            series_index,
            window,
            band,
            deadline_ms,
            accuracy,
        } => {
            push_opts(&None, &Some(*band), deadline_ms, accuracy);
            pairs.push(("query".into(), Json::from_f64s(query)));
            if let Some(dataset) = dataset {
                pairs.extend(dataset_ref_pairs(dataset));
                pairs.push(("series_index".into(), Json::Num(*series_index as f64)));
            } else {
                pairs.push(("haystack".into(), Json::from_f64s(haystack)));
            }
            pairs.push(("window".into(), Json::Num(*window as f64)));
        }
        Request::OpenStream {
            window,
            band,
            query,
            threshold,
        } => {
            if let Some(t) = threshold {
                pairs.push(("threshold".into(), Json::Num(*t)));
            }
            pairs.push(("window".into(), Json::Num(*window as f64)));
            pairs.push(("band".into(), Json::Num(*band as f64)));
            pairs.push(("query".into(), Json::from_f64s(query)));
        }
        Request::PushPoints { stream_id, points } => {
            pairs.push(("stream_id".into(), Json::Num(*stream_id as f64)));
            pairs.push(("points".into(), Json::from_f64s(points)));
        }
        Request::Subscribe { stream_id } | Request::CloseStream { stream_id } => {
            pairs.push(("stream_id".into(), Json::Num(*stream_id as f64)));
        }
        Request::UploadDataset { name, entries } => {
            pairs.push(("name".into(), Json::Str(name.clone())));
            pairs.push((
                "entries".into(),
                Json::Arr(
                    entries
                        .iter()
                        .map(|e| {
                            Json::Obj(vec![
                                ("label".into(), Json::Num(e.label as f64)),
                                ("series".into(), Json::from_f64s(&e.series)),
                            ])
                        })
                        .collect(),
                ),
            ));
        }
        Request::DropDataset { dataset } => {
            pairs.extend(dataset_ref_pairs(dataset));
        }
    }
    Json::Obj(pairs).to_string().into_bytes()
}

/// Encodes a reply to a frame payload.
pub fn encode_reply(reply: &Reply) -> Vec<u8> {
    let mut pairs: Vec<(String, Json)> = vec![("id".into(), Json::Num(reply.id as f64))];
    match &reply.body {
        ResponseBody::Error { code, message } => {
            pairs.push(("ok".into(), Json::Bool(false)));
            pairs.push((
                "error".into(),
                Json::Obj(vec![
                    ("code".into(), Json::Str(code.as_str().into())),
                    ("message".into(), Json::Str(message.clone())),
                ]),
            ));
        }
        body => {
            pairs.push(("ok".into(), Json::Bool(true)));
            let result = match body {
                ResponseBody::Pong => Json::Obj(vec![("pong".into(), Json::Bool(true))]),
                ResponseBody::MetricsText(text) => {
                    Json::Obj(vec![("text".into(), Json::Str(text.clone()))])
                }
                ResponseBody::Distance { value } => {
                    Json::Obj(vec![("value".into(), Json::Num(*value))])
                }
                ResponseBody::Batch { values } => {
                    Json::Obj(vec![("values".into(), Json::from_f64s(values))])
                }
                ResponseBody::Knn {
                    label,
                    score,
                    nearest_index,
                } => Json::Obj(vec![
                    ("label".into(), Json::Num(*label as f64)),
                    ("score".into(), Json::Num(*score)),
                    ("nearest_index".into(), Json::Num(*nearest_index as f64)),
                ]),
                ResponseBody::Search { offset, distance } => Json::Obj(vec![
                    ("offset".into(), Json::Num(*offset as f64)),
                    ("distance".into(), Json::Num(*distance)),
                ]),
                ResponseBody::DatasetUploaded {
                    dataset_id,
                    version,
                    count,
                    bytes,
                } => Json::Obj(vec![
                    ("dataset_id".into(), Json::Str(dataset_id.clone())),
                    ("version".into(), Json::Num(*version as f64)),
                    ("count".into(), Json::Num(*count as f64)),
                    ("bytes".into(), Json::Num(*bytes as f64)),
                ]),
                ResponseBody::Datasets { items } => Json::Obj(vec![(
                    "datasets".into(),
                    Json::Arr(
                        items
                            .iter()
                            .map(|d| {
                                Json::Obj(vec![
                                    ("name".into(), Json::Str(d.name.clone())),
                                    ("dataset_id".into(), Json::Str(d.dataset_id.clone())),
                                    ("version".into(), Json::Num(d.version as f64)),
                                    ("count".into(), Json::Num(d.count as f64)),
                                    ("bytes".into(), Json::Num(d.bytes as f64)),
                                ])
                            })
                            .collect(),
                    ),
                )]),
                ResponseBody::Dropped { count } => {
                    Json::Obj(vec![("dropped".into(), Json::Num(*count as f64))])
                }
                ResponseBody::StreamOpened {
                    stream_id,
                    shard,
                    burn_in,
                } => Json::Obj(vec![
                    ("stream_id".into(), Json::Num(*stream_id as f64)),
                    ("shard".into(), Json::Num(*shard as f64)),
                    ("burn_in".into(), Json::Num(*burn_in as f64)),
                ]),
                ResponseBody::PointsPushed {
                    stream_id,
                    accepted,
                    epoch,
                } => Json::Obj(vec![
                    ("stream_id".into(), Json::Num(*stream_id as f64)),
                    ("accepted".into(), Json::Num(*accepted as f64)),
                    ("epoch".into(), Json::Num(*epoch as f64)),
                ]),
                ResponseBody::Subscribed {
                    stream_id,
                    epoch,
                    warm,
                } => Json::Obj(vec![
                    ("subscribed".into(), Json::Bool(true)),
                    ("stream_id".into(), Json::Num(*stream_id as f64)),
                    ("epoch".into(), Json::Num(*epoch as f64)),
                    ("warm".into(), Json::Bool(*warm)),
                ]),
                ResponseBody::StreamClosed { stream_id, pushed } => Json::Obj(vec![
                    ("closed".into(), Json::Bool(true)),
                    ("stream_id".into(), Json::Num(*stream_id as f64)),
                    ("pushed".into(), Json::Num(*pushed as f64)),
                ]),
                ResponseBody::StreamEvent(event) => {
                    Json::Obj(vec![("event".into(), encode_stream_event(event))])
                }
                ResponseBody::Error { .. } => unreachable!("handled above"),
            };
            pairs.push(("result".into(), result));
        }
    }
    if let Some(route) = &reply.route {
        pairs.push(("backend".into(), Json::Str(route.backend.as_str().into())));
        pairs.push((
            "bound".into(),
            Json::Obj(vec![
                ("abs".into(), Json::Num(route.bound.abs)),
                ("rel".into(), Json::Num(route.bound.rel)),
            ]),
        ));
    }
    Json::Obj(pairs).to_string().into_bytes()
}

fn encode_stream_event(event: &StreamEventBody) -> Json {
    let mut fields: Vec<(String, Json)> = vec![
        ("stream_id".into(), Json::Num(event.stream_id as f64)),
        ("epoch".into(), Json::Num(event.epoch as f64)),
    ];
    match &event.state {
        StreamEventState::Warming { seen, burn_in } => {
            fields.push(("state".into(), Json::Str("warming".into())));
            fields.push(("seen".into(), Json::Num(*seen as f64)));
            fields.push(("burn_in".into(), Json::Num(*burn_in as f64)));
        }
        StreamEventState::Ready {
            mean,
            std_dev,
            decision,
            bound,
            threshold,
            motif,
            discord,
        } => {
            fields.push(("state".into(), Json::Str("ready".into())));
            fields.push(("mean".into(), Json::Num(*mean)));
            fields.push(("std_dev".into(), Json::Num(*std_dev)));
            fields.push(("decision".into(), Json::Str(decision.clone())));
            fields.push(("bound".into(), Json::Num(*bound)));
            // An unbounded (infinite) threshold is not representable in
            // JSON: omitted on the wire, restored at decode.
            if threshold.is_finite() {
                fields.push(("threshold".into(), Json::Num(*threshold)));
            }
            for (key, record) in [("motif", motif), ("discord", discord)] {
                if let Some(r) = record {
                    fields.push((
                        key.into(),
                        Json::Obj(vec![
                            ("epoch".into(), Json::Num(r.epoch as f64)),
                            ("distance".into(), Json::Num(r.distance)),
                        ]),
                    ));
                }
            }
        }
    }
    Json::Obj(fields)
}

fn decode_match_record(v: &Json, key: &str) -> Result<Option<MatchRecord>, ProtocolError> {
    match v.get(key) {
        None | Some(Json::Null) => Ok(None),
        Some(r) => {
            let epoch = r
                .get("epoch")
                .and_then(Json::as_u64)
                .ok_or_else(|| ProtocolError::Schema(format!("`{key}` lacks `epoch`")))?;
            let distance = r
                .get("distance")
                .and_then(Json::as_f64)
                .ok_or_else(|| ProtocolError::Schema(format!("`{key}` lacks `distance`")))?;
            Ok(Some(MatchRecord { epoch, distance }))
        }
    }
}

fn decode_stream_event(ev: &Json) -> Result<StreamEventBody, ProtocolError> {
    let stream_id = req_u64(ev, "stream_id")?;
    let epoch = req_u64(ev, "epoch")?;
    let state = match ev.get("state").and_then(Json::as_str) {
        Some("warming") => StreamEventState::Warming {
            seen: req_u64(ev, "seen")?,
            burn_in: req_u64(ev, "burn_in")?,
        },
        Some("ready") => StreamEventState::Ready {
            mean: ev
                .get("mean")
                .and_then(Json::as_f64)
                .ok_or_else(|| ProtocolError::Schema("event lacks numeric `mean`".into()))?,
            std_dev: ev
                .get("std_dev")
                .and_then(Json::as_f64)
                .ok_or_else(|| ProtocolError::Schema("event lacks numeric `std_dev`".into()))?,
            decision: ev
                .get("decision")
                .and_then(Json::as_str)
                .ok_or_else(|| ProtocolError::Schema("event lacks `decision`".into()))?
                .to_string(),
            bound: ev
                .get("bound")
                .and_then(Json::as_f64)
                .ok_or_else(|| ProtocolError::Schema("event lacks numeric `bound`".into()))?,
            threshold: ev
                .get("threshold")
                .and_then(Json::as_f64)
                .unwrap_or(f64::INFINITY),
            motif: decode_match_record(ev, "motif")?,
            discord: decode_match_record(ev, "discord")?,
        },
        _ => {
            return Err(ProtocolError::Schema(
                "event `state` must be \"warming\" or \"ready\"".into(),
            ))
        }
    };
    Ok(StreamEventBody {
        stream_id,
        epoch,
        state,
    })
}

/// Decodes a reply from a frame payload. The reply shape is inferred from
/// the result keys, so the caller matches on [`ResponseBody`].
///
/// # Errors
///
/// [`ProtocolError::Json`] / [`ProtocolError::Schema`]; never panics.
pub fn decode_reply(payload: &[u8]) -> Result<Reply, ProtocolError> {
    let v = Json::parse(payload)?;
    let id = v
        .get("id")
        .and_then(Json::as_u64)
        .ok_or_else(|| ProtocolError::Schema("reply `id` must be an integer".into()))?;
    let ok = match v.get("ok") {
        Some(Json::Bool(b)) => *b,
        _ => return Err(ProtocolError::Schema("reply `ok` must be a bool".into())),
    };
    let route = decode_route(&v)?;
    if !ok {
        let err = v
            .get("error")
            .ok_or_else(|| ProtocolError::Schema("error reply lacks `error`".into()))?;
        let code = err
            .get("code")
            .and_then(Json::as_str)
            .and_then(ErrorCode::parse)
            .ok_or_else(|| ProtocolError::Schema("unknown error `code`".into()))?;
        let message = err
            .get("message")
            .and_then(Json::as_str)
            .unwrap_or_default()
            .to_string();
        return Ok(Reply {
            id,
            body: ResponseBody::Error { code, message },
            route,
        });
    }
    let result = v
        .get("result")
        .ok_or_else(|| ProtocolError::Schema("ok reply lacks `result`".into()))?;
    let body = if result.get("pong").is_some() {
        ResponseBody::Pong
    } else if let Some(text) = result.get("text").and_then(Json::as_str) {
        ResponseBody::MetricsText(text.to_string())
    } else if let Some(dataset_id) = result.get("dataset_id").and_then(Json::as_str) {
        let version = result
            .get("version")
            .and_then(Json::as_u64)
            .ok_or_else(|| ProtocolError::Schema("upload result lacks `version`".into()))?;
        let count = result
            .get("count")
            .and_then(Json::as_usize)
            .ok_or_else(|| ProtocolError::Schema("upload result lacks `count`".into()))?;
        let bytes = result
            .get("bytes")
            .and_then(Json::as_u64)
            .ok_or_else(|| ProtocolError::Schema("upload result lacks `bytes`".into()))?;
        ResponseBody::DatasetUploaded {
            dataset_id: dataset_id.to_string(),
            version,
            count,
            bytes,
        }
    } else if let Some(Json::Arr(list)) = result.get("datasets") {
        let mut items = Vec::with_capacity(list.len());
        for d in list {
            let name = d
                .get("name")
                .and_then(Json::as_str)
                .ok_or_else(|| ProtocolError::Schema("dataset summary lacks `name`".into()))?
                .to_string();
            let dataset_id = d
                .get("dataset_id")
                .and_then(Json::as_str)
                .ok_or_else(|| ProtocolError::Schema("dataset summary lacks `dataset_id`".into()))?
                .to_string();
            let version = d
                .get("version")
                .and_then(Json::as_u64)
                .ok_or_else(|| ProtocolError::Schema("dataset summary lacks `version`".into()))?;
            let count = d
                .get("count")
                .and_then(Json::as_usize)
                .ok_or_else(|| ProtocolError::Schema("dataset summary lacks `count`".into()))?;
            let bytes = d
                .get("bytes")
                .and_then(Json::as_u64)
                .ok_or_else(|| ProtocolError::Schema("dataset summary lacks `bytes`".into()))?;
            items.push(DatasetSummary {
                name,
                dataset_id,
                version,
                count,
                bytes,
            });
        }
        ResponseBody::Datasets { items }
    } else if let Some(count) = result.get("dropped").and_then(Json::as_usize) {
        ResponseBody::Dropped { count }
    } else if let Some(ev) = result.get("event") {
        ResponseBody::StreamEvent(decode_stream_event(ev)?)
    } else if result.get("subscribed").is_some() {
        ResponseBody::Subscribed {
            stream_id: req_u64(result, "stream_id")?,
            epoch: req_u64(result, "epoch")?,
            warm: matches!(result.get("warm"), Some(Json::Bool(true))),
        }
    } else if result.get("closed").is_some() {
        ResponseBody::StreamClosed {
            stream_id: req_u64(result, "stream_id")?,
            pushed: req_u64(result, "pushed")?,
        }
    } else if result.get("burn_in").is_some() {
        ResponseBody::StreamOpened {
            stream_id: req_u64(result, "stream_id")?,
            shard: req_u64(result, "shard")? as u32,
            burn_in: req_u64(result, "burn_in")?,
        }
    } else if result.get("accepted").is_some() {
        ResponseBody::PointsPushed {
            stream_id: req_u64(result, "stream_id")?,
            accepted: req_u64(result, "accepted")?,
            epoch: req_u64(result, "epoch")?,
        }
    } else if let Some(value) = result.get("value").and_then(Json::as_f64) {
        ResponseBody::Distance { value }
    } else if let Some(values) = result.get("values").and_then(Json::as_f64_vec) {
        ResponseBody::Batch { values }
    } else if let (Some(label), Some(score), Some(nearest_index)) = (
        result.get("label").and_then(Json::as_usize),
        result.get("score").and_then(Json::as_f64),
        result.get("nearest_index").and_then(Json::as_usize),
    ) {
        ResponseBody::Knn {
            label,
            score,
            nearest_index,
        }
    } else if let (Some(offset), Some(distance)) = (
        result.get("offset").and_then(Json::as_usize),
        result.get("distance").and_then(Json::as_f64),
    ) {
        ResponseBody::Search { offset, distance }
    } else {
        return Err(ProtocolError::Schema("unrecognized result shape".into()));
    };
    Ok(Reply { id, body, route })
}

/// Parses the optional routing report (`backend` + `bound`) off a reply.
fn decode_route(v: &Json) -> Result<Option<RouteInfo>, ProtocolError> {
    let backend = match v.get("backend") {
        None | Some(Json::Null) => return Ok(None),
        Some(x) => x
            .as_str()
            .ok_or_else(|| ProtocolError::Schema("reply `backend` must be a string".into()))?
            .parse::<BackendId>()
            .map_err(|e| ProtocolError::Schema(e.to_string()))?,
    };
    let bound = v
        .get("bound")
        .ok_or_else(|| ProtocolError::Schema("reply `backend` requires `bound`".into()))?;
    let abs = bound
        .get("abs")
        .and_then(Json::as_f64)
        .ok_or_else(|| ProtocolError::Schema("reply `bound` lacks numeric `abs`".into()))?;
    let rel = bound
        .get("rel")
        .and_then(Json::as_f64)
        .ok_or_else(|| ProtocolError::Schema("reply `bound` lacks numeric `rel`".into()))?;
    Ok(Some(RouteInfo {
        backend,
        bound: Bound { abs, rel },
    }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn frame_roundtrip() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello").unwrap();
        let mut cur = Cursor::new(buf);
        assert_eq!(
            read_frame(&mut cur, DEFAULT_MAX_FRAME_BYTES).unwrap(),
            b"hello"
        );
        // A second read hits clean EOF.
        let err = read_frame(&mut cur, DEFAULT_MAX_FRAME_BYTES).unwrap_err();
        assert!(err.is_clean_eof(), "{err}");
    }

    #[test]
    fn oversized_frame_rejected_before_allocation() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&u32::MAX.to_be_bytes());
        let err = read_frame(&mut Cursor::new(buf), 1024).unwrap_err();
        assert!(matches!(err, ProtocolError::FrameTooLarge { .. }), "{err}");
    }

    #[test]
    fn truncated_frame_is_io_error_not_clean_eof() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello").unwrap();
        buf.truncate(buf.len() - 2);
        let err = read_frame(&mut Cursor::new(buf), 1024).unwrap_err();
        assert!(matches!(err, ProtocolError::Io(_)));
        assert!(!err.is_clean_eof());
    }

    #[test]
    fn request_roundtrip_all_ops() {
        let envs = vec![
            Envelope {
                id: 0,
                req: Request::Ping,
            },
            Envelope {
                id: 1,
                req: Request::Metrics,
            },
            Envelope {
                id: 2,
                req: Request::Distance {
                    kind: DistanceKind::Dtw,
                    p: vec![0.0, 1.5, -2.25],
                    q: vec![0.5, 1.0],
                    threshold: None,
                    band: Some(3),
                    deadline_ms: Some(250),
                    accuracy: Some(Sla::Tolerance(2.5)),
                },
            },
            Envelope {
                id: 3,
                req: Request::Batch {
                    kind: DistanceKind::Manhattan,
                    pairs: vec![(vec![0.0], vec![1.0]), (vec![2.0, 3.0], vec![2.0, 3.5])],
                    query: None,
                    dataset: None,
                    threshold: None,
                    band: None,
                    deadline_ms: None,
                    accuracy: None,
                },
            },
            Envelope {
                id: 4,
                req: Request::Knn {
                    kind: DistanceKind::Lcs,
                    k: 3,
                    query: vec![1.0, 2.0],
                    train: vec![
                        TrainInstance {
                            label: 0,
                            series: vec![1.0, 2.0],
                        },
                        TrainInstance {
                            label: 7,
                            series: vec![9.0],
                        },
                    ],
                    dataset: None,
                    threshold: Some(0.25),
                    band: None,
                    deadline_ms: None,
                    accuracy: Some(Sla::Exact),
                },
            },
            Envelope {
                id: 5,
                req: Request::Search {
                    query: vec![0.0, 1.0],
                    haystack: vec![0.0, 1.0, 0.0, 1.0],
                    dataset: None,
                    series_index: 0,
                    window: 2,
                    band: 1,
                    deadline_ms: Some(1_000),
                    accuracy: None,
                },
            },
            Envelope {
                id: 6,
                req: Request::UploadDataset {
                    name: "sensors".into(),
                    entries: vec![
                        DatasetEntry {
                            label: 0,
                            series: vec![0.0, 1.5, -2.25],
                        },
                        DatasetEntry {
                            label: 3,
                            series: vec![9.0],
                        },
                    ],
                },
            },
            Envelope {
                id: 7,
                req: Request::ListDatasets,
            },
            Envelope {
                id: 8,
                req: Request::DropDataset {
                    dataset: DatasetRef::by_name("sensors"),
                },
            },
            Envelope {
                id: 9,
                req: Request::Knn {
                    kind: DistanceKind::Dtw,
                    k: 1,
                    query: vec![1.0, 2.0],
                    train: Vec::new(),
                    dataset: Some(DatasetRef::by_id("abc123")),
                    threshold: None,
                    band: Some(2),
                    deadline_ms: None,
                    accuracy: None,
                },
            },
            Envelope {
                id: 10,
                req: Request::Batch {
                    kind: DistanceKind::Hausdorff,
                    pairs: Vec::new(),
                    query: Some(vec![0.25, -1.0]),
                    dataset: Some(DatasetRef::by_name_version("sensors", 2)),
                    threshold: None,
                    band: None,
                    deadline_ms: Some(50),
                    accuracy: Some(Sla::Tolerance(12.0)),
                },
            },
            Envelope {
                id: 11,
                req: Request::Search {
                    query: vec![0.0, 1.0],
                    haystack: Vec::new(),
                    dataset: Some(DatasetRef::by_name("sensors")),
                    series_index: 3,
                    window: 2,
                    band: 1,
                    deadline_ms: None,
                    accuracy: None,
                },
            },
        ];
        for env in envs {
            let decoded = decode_request(&encode_request(&env)).unwrap();
            assert_eq!(decoded, env);
        }
    }

    #[test]
    fn stream_request_roundtrip() {
        let envs = vec![
            Envelope {
                id: 20,
                req: Request::OpenStream {
                    window: 16,
                    band: 2,
                    query: (0..16).map(|i| i as f64 * 0.5).collect(),
                    threshold: Some(4.0),
                },
            },
            Envelope {
                id: 21,
                req: Request::OpenStream {
                    window: 1,
                    band: 0,
                    query: vec![0.0],
                    threshold: None,
                },
            },
            Envelope {
                id: 22,
                req: Request::PushPoints {
                    stream_id: 3,
                    points: vec![0.5, -0.25, 1e9],
                },
            },
            Envelope {
                id: 23,
                req: Request::Subscribe { stream_id: 3 },
            },
            Envelope {
                id: 24,
                req: Request::CloseStream { stream_id: 3 },
            },
        ];
        for env in envs {
            assert_eq!(decode_request(&encode_request(&env)).unwrap(), env);
        }
    }

    #[test]
    fn stream_request_schema_and_domain_violations() {
        // Structural problems are schema errors (bad_request)…
        for bad in [
            &br#"{"id":1,"op":"open_stream","window":0,"query":[1.0]}"#[..],
            br#"{"id":1,"op":"open_stream","query":[1.0]}"#,
            br#"{"id":1,"op":"open_stream","window":2}"#,
            br#"{"id":1,"op":"push_points","points":[1.0]}"#,
            br#"{"id":1,"op":"push_points","stream_id":1,"points":[true]}"#,
            br#"{"id":1,"op":"subscribe"}"#,
            br#"{"id":1,"op":"close_stream","stream_id":-1}"#,
        ] {
            let err = decode_request(bad).unwrap_err();
            assert!(
                matches!(err, ProtocolError::Schema(_)),
                "{}: {err}",
                String::from_utf8_lossy(bad)
            );
        }
        // …while an out-of-domain threshold is the typed invalid_parameter.
        for bad in [
            &br#"{"id":1,"op":"open_stream","window":2,"query":[0.0,1.0],"threshold":-1.0}"#[..],
            br#"{"id":1,"op":"open_stream","window":2,"query":[0.0,1.0],"threshold":0}"#,
            br#"{"id":1,"op":"open_stream","window":2,"query":[0.0,1.0],"threshold":1e999}"#,
        ] {
            let err = decode_request(bad).unwrap_err();
            assert!(
                matches!(err, ProtocolError::InvalidParameter(_)),
                "{}: {err}",
                String::from_utf8_lossy(bad)
            );
        }
    }

    #[test]
    fn stream_reply_roundtrip_all_shapes() {
        let replies = vec![
            Reply::new(
                30,
                ResponseBody::StreamOpened {
                    stream_id: 7,
                    shard: 2,
                    burn_in: 16,
                },
            ),
            Reply::new(
                31,
                ResponseBody::PointsPushed {
                    stream_id: 7,
                    accepted: 3,
                    epoch: 19,
                },
            ),
            Reply::new(
                32,
                ResponseBody::Subscribed {
                    stream_id: 7,
                    epoch: 19,
                    warm: true,
                },
            ),
            Reply::new(
                33,
                ResponseBody::Subscribed {
                    stream_id: 8,
                    epoch: 0,
                    warm: false,
                },
            ),
            Reply::new(
                34,
                ResponseBody::StreamClosed {
                    stream_id: 7,
                    pushed: 19,
                },
            ),
            Reply::new(
                32,
                ResponseBody::StreamEvent(StreamEventBody {
                    stream_id: 7,
                    epoch: 4,
                    state: StreamEventState::Warming {
                        seen: 4,
                        burn_in: 16,
                    },
                }),
            ),
            Reply::new(
                32,
                ResponseBody::StreamEvent(StreamEventBody {
                    stream_id: 7,
                    epoch: 20,
                    state: StreamEventState::Ready {
                        mean: 0.5,
                        std_dev: 1.25,
                        decision: "pruned_keogh".into(),
                        bound: 9.0,
                        threshold: 4.0,
                        motif: Some(MatchRecord {
                            epoch: 17,
                            distance: 2.5,
                        }),
                        discord: None,
                    },
                }),
            ),
            // An unbounded threshold survives the omit-then-restore rule.
            Reply::new(
                32,
                ResponseBody::StreamEvent(StreamEventBody {
                    stream_id: 7,
                    epoch: 21,
                    state: StreamEventState::Ready {
                        mean: -0.0,
                        std_dev: 0.0,
                        decision: "computed".into(),
                        bound: 1.5,
                        threshold: f64::INFINITY,
                        motif: None,
                        discord: Some(MatchRecord {
                            epoch: 20,
                            distance: 8.0,
                        }),
                    },
                }),
            ),
        ];
        for reply in replies {
            let decoded = decode_reply(&encode_reply(&reply)).unwrap();
            assert_eq!(decoded, reply);
        }
    }

    #[test]
    fn reply_roundtrip_all_shapes() {
        let replies = vec![
            Reply::new(9, ResponseBody::Pong),
            Reply::new(10, ResponseBody::MetricsText("a 1\nb 2\n".into())),
            Reply::new(11, ResponseBody::Distance { value: -0.0 }),
            Reply::new(
                12,
                ResponseBody::Batch {
                    values: vec![1.0 / 3.0, 4.5],
                },
            ),
            Reply::new(
                13,
                ResponseBody::Knn {
                    label: 2,
                    score: 0.125,
                    nearest_index: 5,
                },
            ),
            Reply::new(
                14,
                ResponseBody::Search {
                    offset: 40,
                    distance: 0.0,
                },
            ),
            Reply::new(
                15,
                ResponseBody::Error {
                    code: ErrorCode::Overloaded,
                    message: "queue full".into(),
                },
            ),
            Reply::new(
                16,
                ResponseBody::DatasetUploaded {
                    dataset_id: "deadbeef01234567".into(),
                    version: 2,
                    count: 64,
                    bytes: 65_536,
                },
            ),
            Reply::new(
                17,
                ResponseBody::Datasets {
                    items: vec![DatasetSummary {
                        name: "sensors".into(),
                        dataset_id: "deadbeef01234567".into(),
                        version: 2,
                        count: 64,
                        bytes: 65_536,
                    }],
                },
            ),
            Reply::new(18, ResponseBody::Dropped { count: 1 }),
            Reply::new(
                19,
                ResponseBody::Error {
                    code: ErrorCode::NotFound,
                    message: "no dataset".into(),
                },
            ),
            Reply::new(
                20,
                ResponseBody::Error {
                    code: ErrorCode::StaleVersion,
                    message: "version 1 superseded by 2".into(),
                },
            ),
            Reply::new(21, ResponseBody::Distance { value: 1.25 }).with_route(RouteInfo {
                backend: BackendId::Analog,
                bound: Bound { abs: 7.0, rel: 0.3 },
            }),
            Reply::new(
                22,
                ResponseBody::Batch {
                    values: vec![0.5, 0.75],
                },
            )
            .with_route(RouteInfo {
                backend: BackendId::DigitalExact,
                bound: Bound::EXACT,
            }),
        ];
        for reply in replies {
            let decoded = decode_reply(&encode_reply(&reply)).unwrap();
            assert_eq!(decoded, reply);
        }
    }

    #[test]
    fn accuracy_absent_keeps_the_pre_routing_wire_bytes() {
        // The canonical pre-routing encoding of a default-option request:
        // adding the accuracy surface must not perturb a single byte.
        let env = Envelope {
            id: 2,
            req: Request::Distance {
                kind: DistanceKind::Dtw,
                p: vec![0.0, 1.0],
                q: vec![0.0, 2.0],
                threshold: None,
                band: None,
                deadline_ms: None,
                accuracy: None,
            },
        };
        assert_eq!(
            encode_request(&env),
            br#"{"id":2,"op":"distance","kind":"DTW","p":[0,1],"q":[0,2]}"#.to_vec()
        );
        let reply = Reply::new(2, ResponseBody::Distance { value: 1.0 });
        assert_eq!(
            encode_reply(&reply),
            br#"{"id":2,"ok":true,"result":{"value":1}}"#.to_vec()
        );
    }

    #[test]
    fn accuracy_decodes_exact_and_tolerance_forms() {
        let env = decode_request(
            br#"{"id":1,"op":"distance","kind":"MD","p":[0],"q":[1],"accuracy":"exact"}"#,
        )
        .unwrap();
        assert_eq!(env.req.accuracy(), Some(Sla::Exact));
        let env = decode_request(
            br#"{"id":1,"op":"distance","kind":"MD","p":[0],"q":[1],"accuracy":{"tolerance":0.5}}"#,
        )
        .unwrap();
        assert_eq!(env.req.accuracy(), Some(Sla::Tolerance(0.5)));
        let env =
            decode_request(br#"{"id":1,"op":"distance","kind":"MD","p":[0],"q":[1]}"#).unwrap();
        assert_eq!(env.req.accuracy(), None);
    }

    #[test]
    fn malformed_tolerances_are_typed_invalid_parameter() {
        for bad in [
            &br#"{"id":1,"op":"distance","kind":"MD","p":[0],"q":[1],"accuracy":{"tolerance":-0.5}}"#[..],
            br#"{"id":1,"op":"distance","kind":"MD","p":[0],"q":[1],"accuracy":{"tolerance":1e999}}"#,
            br#"{"id":1,"op":"knn","kind":"MD","k":1,"query":[0],"train":[],"accuracy":"fast"}"#,
        ] {
            let err = decode_request(bad).unwrap_err();
            assert!(
                matches!(err, ProtocolError::InvalidParameter(_)),
                "{}: {err}",
                String::from_utf8_lossy(bad)
            );
        }
        // A structurally wrong accuracy (not string/object) is a schema
        // error, not a domain error.
        let err =
            decode_request(br#"{"id":1,"op":"distance","kind":"MD","p":[0],"q":[1],"accuracy":7}"#)
                .unwrap_err();
        assert!(matches!(err, ProtocolError::Schema(_)), "{err}");
    }

    #[test]
    fn schema_violations_error_cleanly() {
        for bad in [
            &br#"{"op":"ping"}"#[..],                                          // no id
            br#"{"id":1}"#,                                                    // no op
            br#"{"id":1,"op":"warp"}"#,                                        // unknown op
            br#"{"id":1,"op":"distance","kind":"XX","p":[],"q":[]}"#,          // bad kind
            br#"{"id":1,"op":"distance","kind":"MD","p":[true],"q":[]}"#,      // bad series
            br#"{"id":1,"op":"knn","kind":"MD","k":0,"query":[],"train":[]}"#, // k = 0
            br#"{"id":1,"op":"search","query":[],"haystack":[],"window":0}"#,  // window = 0
            br#"{"id":1.5,"op":"ping"}"#,                                      // fractional id
            // dataset-protocol schema violations
            br#"{"id":1,"op":"upload_dataset","name":"","entries":[[1.0]]}"#, // empty name
            br#"{"id":1,"op":"upload_dataset","name":"x","entries":[true]}"#, // bad entry
            br#"{"id":1,"op":"knn","kind":"MD","k":1,"query":[1.0],"train":[{"label":0,"series":[1.0]}],"dataset":"abc"}"#, // train AND dataset
            br#"{"id":1,"op":"search","query":[1.0],"haystack":[],"dataset_name":"x","version":2,"series_index":0,"window":1,"dataset":"abc"}"#, // id AND name
            br#"{"id":1,"op":"search","query":[1.0],"haystack":[],"version":2,"series_index":0,"window":1}"#, // version w/o name
            br#"{"id":1,"op":"search","query":[1.0],"haystack":[1.0,2.0],"series_index":1,"window":1}"#, // series_index w/o dataset
            br#"{"id":1,"op":"drop_dataset"}"#, // drop with no ref
        ] {
            assert!(
                decode_request(bad).is_err(),
                "{} should fail",
                String::from_utf8_lossy(bad)
            );
        }
    }

    #[test]
    fn kind_names_match_paper_abbreviations() {
        for kind in DistanceKind::ALL {
            assert_eq!(kind.abbrev().parse(), Ok(kind));
        }
        assert!("dtw".parse::<DistanceKind>().is_err());
    }

    #[test]
    #[allow(deprecated)]
    fn deprecated_parse_kind_still_delegates_to_from_str() {
        for kind in DistanceKind::ALL {
            assert_eq!(parse_kind(kind.abbrev()), Some(kind));
        }
        assert_eq!(parse_kind("dtw"), None);
    }
}
