//! The `mda-server` wire protocol: length-prefixed JSON frames.
//!
//! Every message is one frame: a 4-byte big-endian payload length followed
//! by exactly that many bytes of UTF-8 JSON (one document per frame). The
//! same framing is used in both directions.
//!
//! ## Requests
//!
//! Every request is an object with a client-chosen `id` (echoed on the
//! reply, so clients may pipeline) and an `op`:
//!
//! ```json
//! {"id": 1, "op": "ping"}
//! {"id": 2, "op": "metrics"}
//! {"id": 3, "op": "distance", "kind": "DTW", "p": [0,1], "q": [0,2]}
//! {"id": 4, "op": "batch", "kind": "MD", "pairs": [[[0,1],[0,2]], [[1,1],[2,2]]]}
//! {"id": 5, "op": "knn", "kind": "DTW", "k": 1, "query": [0,1],
//!  "train": [{"label": 0, "series": [0,1]}, {"label": 1, "series": [5,5]}]}
//! {"id": 6, "op": "search", "query": [0,1], "haystack": [0,1,0,1], "window": 2, "band": 1}
//! ```
//!
//! Optional request fields: `threshold` (LCS/EdD/HamD match threshold),
//! `band` (Sakoe–Chiba radius for DTW), `deadline_ms` (queue-wait budget;
//! requests still queued when it expires are answered with a `timeout`
//! error instead of being computed).
//!
//! ## Replies
//!
//! ```json
//! {"id": 3, "ok": true, "result": {"value": 1.0}}
//! {"id": 4, "ok": false, "error": {"code": "overloaded", "message": "…"}}
//! ```
//!
//! Error codes: `overloaded` (admission control shed the request),
//! `timeout` (deadline expired in the queue), `bad_request` (malformed or
//! rejected by the distance definition), `shutting_down` (server is
//! draining), `internal`.

use std::fmt;
use std::io::{self, Read, Write};
use std::time::Duration;

use mda_distance::DistanceKind;

use crate::json::{Json, JsonError};

/// Default cap on a frame's payload size (16 MiB).
pub const DEFAULT_MAX_FRAME_BYTES: usize = 16 * 1024 * 1024;

/// Error raised while reading or interpreting a frame.
#[derive(Debug)]
pub enum ProtocolError {
    /// The underlying transport failed (includes truncated frames, which
    /// surface as [`io::ErrorKind::UnexpectedEof`]).
    Io(io::Error),
    /// The frame header announced a payload larger than the negotiated cap.
    FrameTooLarge {
        /// Announced payload length.
        len: usize,
        /// Configured maximum.
        max: usize,
    },
    /// The payload was not valid JSON.
    Json(JsonError),
    /// The payload was valid JSON but not a valid message.
    Schema(String),
}

impl fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProtocolError::Io(e) => write!(f, "transport error: {e}"),
            ProtocolError::FrameTooLarge { len, max } => {
                write!(f, "frame of {len} bytes exceeds the {max}-byte cap")
            }
            ProtocolError::Json(e) => write!(f, "malformed payload: {e}"),
            ProtocolError::Schema(msg) => write!(f, "invalid message: {msg}"),
        }
    }
}

impl std::error::Error for ProtocolError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ProtocolError::Io(e) => Some(e),
            ProtocolError::Json(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for ProtocolError {
    fn from(e: io::Error) -> Self {
        ProtocolError::Io(e)
    }
}

impl From<JsonError> for ProtocolError {
    fn from(e: JsonError) -> Self {
        ProtocolError::Json(e)
    }
}

impl ProtocolError {
    /// `true` when the peer simply closed the connection cleanly before a
    /// frame header (not mid-frame) — the normal end of a session.
    pub fn is_clean_eof(&self) -> bool {
        matches!(self, ProtocolError::Io(e)
        if e.kind() == io::ErrorKind::UnexpectedEof && e.get_ref().is_some_and(|inner| {
            inner.to_string() == CLEAN_EOF
        }))
    }
}

const CLEAN_EOF: &str = "connection closed between frames";

/// Writes one frame (header + payload).
///
/// # Errors
///
/// Any transport error; payloads beyond `u32::MAX` are rejected.
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> io::Result<()> {
    let len = u32::try_from(payload.len())
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidInput, "payload exceeds u32 length"))?;
    w.write_all(&len.to_be_bytes())?;
    w.write_all(payload)?;
    w.flush()
}

/// Reads one frame's payload, enforcing the size cap **before** allocating.
///
/// # Errors
///
/// [`ProtocolError::FrameTooLarge`] for oversized announcements, an
/// `UnexpectedEof` [`ProtocolError::Io`] for truncated frames, and a
/// distinguishable clean-EOF error (see [`ProtocolError::is_clean_eof`])
/// when the stream ends exactly on a frame boundary.
pub fn read_frame(r: &mut impl Read, max: usize) -> Result<Vec<u8>, ProtocolError> {
    let mut header = [0u8; 4];
    // First header byte: distinguish clean EOF from a truncated header.
    let mut first = [0u8; 1];
    loop {
        match r.read(&mut first) {
            Ok(0) => {
                return Err(ProtocolError::Io(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    CLEAN_EOF,
                )))
            }
            Ok(_) => break,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(ProtocolError::Io(e)),
        }
    }
    header[0] = first[0];
    r.read_exact(&mut header[1..])?;
    let len = u32::from_be_bytes(header) as usize;
    if len > max {
        return Err(ProtocolError::FrameTooLarge { len, max });
    }
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload)?;
    Ok(payload)
}

/// Parses the paper's abbreviation (`DTW`, `LCS`, `EdD`, `HauD`, `HamD`,
/// `MD`) into a [`DistanceKind`].
pub fn parse_kind(name: &str) -> Option<DistanceKind> {
    DistanceKind::ALL.into_iter().find(|k| k.abbrev() == name)
}

/// A labelled training series for a kNN request.
#[derive(Debug, Clone, PartialEq)]
pub struct TrainInstance {
    /// Class label.
    pub label: usize,
    /// The series.
    pub series: Vec<f64>,
}

/// One request, without its envelope `id`.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Liveness probe.
    Ping,
    /// Fetch the metrics registry as text.
    Metrics,
    /// One distance evaluation.
    Distance {
        /// Which of the six functions.
        kind: DistanceKind,
        /// First series.
        p: Vec<f64>,
        /// Second series.
        q: Vec<f64>,
        /// Match threshold override (LCS/EdD/HamD).
        threshold: Option<f64>,
        /// Sakoe–Chiba radius (DTW).
        band: Option<usize>,
        /// Queue-wait budget.
        deadline_ms: Option<u64>,
    },
    /// A pairwise batch: one value per pair.
    Batch {
        /// Which of the six functions.
        kind: DistanceKind,
        /// The pairs to evaluate.
        pairs: Vec<(Vec<f64>, Vec<f64>)>,
        /// Match threshold override (LCS/EdD/HamD).
        threshold: Option<f64>,
        /// Sakoe–Chiba radius (DTW).
        band: Option<usize>,
        /// Queue-wait budget.
        deadline_ms: Option<u64>,
    },
    /// k-nearest-neighbour classification of `query` against `train`.
    Knn {
        /// Which of the six functions.
        kind: DistanceKind,
        /// Neighbour count (≥ 1).
        k: usize,
        /// The query series.
        query: Vec<f64>,
        /// Labelled training set.
        train: Vec<TrainInstance>,
        /// Match threshold override (LCS/EdD/HamD).
        threshold: Option<f64>,
        /// Sakoe–Chiba radius (DTW).
        band: Option<usize>,
        /// Queue-wait budget.
        deadline_ms: Option<u64>,
    },
    /// Banded-DTW subsequence search of `query` in `haystack`.
    Search {
        /// The query series.
        query: Vec<f64>,
        /// The long series to scan.
        haystack: Vec<f64>,
        /// Window length (≥ 1).
        window: usize,
        /// Sakoe–Chiba radius.
        band: usize,
        /// Queue-wait budget.
        deadline_ms: Option<u64>,
    },
}

impl Request {
    /// Short operation label, used for metrics.
    pub fn op(&self) -> &'static str {
        match self {
            Request::Ping => "ping",
            Request::Metrics => "metrics",
            Request::Distance { .. } => "distance",
            Request::Batch { .. } => "batch",
            Request::Knn { .. } => "knn",
            Request::Search { .. } => "search",
        }
    }

    /// The request's queue-wait budget, if any.
    pub fn deadline(&self) -> Option<Duration> {
        let ms = match self {
            Request::Distance { deadline_ms, .. }
            | Request::Batch { deadline_ms, .. }
            | Request::Knn { deadline_ms, .. }
            | Request::Search { deadline_ms, .. } => *deadline_ms,
            _ => None,
        };
        ms.map(Duration::from_millis)
    }
}

/// A request plus its envelope `id`.
#[derive(Debug, Clone, PartialEq)]
pub struct Envelope {
    /// Client-chosen id, echoed on the reply.
    pub id: u64,
    /// The request.
    pub req: Request,
}

/// Machine-readable error class on an error reply.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorCode {
    /// Admission control shed the request (queue full).
    Overloaded,
    /// The deadline expired while the request was queued.
    Timeout,
    /// The request was malformed or rejected by the distance definition.
    BadRequest,
    /// The server is draining and no longer accepts work.
    ShuttingDown,
    /// Unexpected server-side failure.
    Internal,
}

impl ErrorCode {
    /// The wire name.
    pub fn as_str(self) -> &'static str {
        match self {
            ErrorCode::Overloaded => "overloaded",
            ErrorCode::Timeout => "timeout",
            ErrorCode::BadRequest => "bad_request",
            ErrorCode::ShuttingDown => "shutting_down",
            ErrorCode::Internal => "internal",
        }
    }

    /// Parses the wire name.
    pub fn parse(s: &str) -> Option<ErrorCode> {
        [
            ErrorCode::Overloaded,
            ErrorCode::Timeout,
            ErrorCode::BadRequest,
            ErrorCode::ShuttingDown,
            ErrorCode::Internal,
        ]
        .into_iter()
        .find(|c| c.as_str() == s)
    }
}

impl fmt::Display for ErrorCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// The body of a reply (success variants mirror the request ops).
#[derive(Debug, Clone, PartialEq)]
pub enum ResponseBody {
    /// Reply to `ping`.
    Pong,
    /// Reply to `metrics`: the rendered registry.
    MetricsText(String),
    /// Reply to `distance`.
    Distance {
        /// The computed value.
        value: f64,
    },
    /// Reply to `batch`.
    Batch {
        /// One value per input pair, in input order.
        values: Vec<f64>,
    },
    /// Reply to `knn`.
    Knn {
        /// Predicted label.
        label: usize,
        /// Score of the deciding neighbour.
        score: f64,
        /// Index of the nearest training instance.
        nearest_index: usize,
    },
    /// Reply to `search`.
    Search {
        /// Start offset of the best window.
        offset: usize,
        /// Its banded DTW distance.
        distance: f64,
    },
    /// Any failure.
    Error {
        /// Machine-readable class.
        code: ErrorCode,
        /// Human-readable description.
        message: String,
    },
}

/// A reply plus the echoed request `id`.
#[derive(Debug, Clone, PartialEq)]
pub struct Reply {
    /// Echo of the request id.
    pub id: u64,
    /// The body.
    pub body: ResponseBody,
}

fn opt_f64(v: &Json, key: &str) -> Result<Option<f64>, ProtocolError> {
    match v.get(key) {
        None | Some(Json::Null) => Ok(None),
        Some(x) => x
            .as_f64()
            .map(Some)
            .ok_or_else(|| ProtocolError::Schema(format!("`{key}` must be a number"))),
    }
}

fn opt_usize(v: &Json, key: &str) -> Result<Option<usize>, ProtocolError> {
    match v.get(key) {
        None | Some(Json::Null) => Ok(None),
        Some(x) => x.as_usize().map(Some).ok_or_else(|| {
            ProtocolError::Schema(format!("`{key}` must be a non-negative integer"))
        }),
    }
}

fn opt_u64(v: &Json, key: &str) -> Result<Option<u64>, ProtocolError> {
    match v.get(key) {
        None | Some(Json::Null) => Ok(None),
        Some(x) => x.as_u64().map(Some).ok_or_else(|| {
            ProtocolError::Schema(format!("`{key}` must be a non-negative integer"))
        }),
    }
}

fn req_series(v: &Json, key: &str) -> Result<Vec<f64>, ProtocolError> {
    v.get(key)
        .and_then(Json::as_f64_vec)
        .ok_or_else(|| ProtocolError::Schema(format!("`{key}` must be an array of numbers")))
}

fn req_usize(v: &Json, key: &str) -> Result<usize, ProtocolError> {
    v.get(key)
        .and_then(Json::as_usize)
        .ok_or_else(|| ProtocolError::Schema(format!("`{key}` must be a non-negative integer")))
}

fn req_kind(v: &Json) -> Result<DistanceKind, ProtocolError> {
    let name = v
        .get("kind")
        .and_then(Json::as_str)
        .ok_or_else(|| ProtocolError::Schema("`kind` must be a string".into()))?;
    parse_kind(name).ok_or_else(|| {
        ProtocolError::Schema(format!(
            "unknown kind `{name}` (expected DTW, LCS, EdD, HauD, HamD or MD)"
        ))
    })
}

/// Decodes a request envelope from a frame payload.
///
/// # Errors
///
/// [`ProtocolError::Json`] for malformed JSON, [`ProtocolError::Schema`]
/// for structurally invalid messages. Never panics, whatever the payload.
pub fn decode_request(payload: &[u8]) -> Result<Envelope, ProtocolError> {
    let v = Json::parse(payload)?;
    let id = v
        .get("id")
        .and_then(Json::as_u64)
        .ok_or_else(|| ProtocolError::Schema("`id` must be a non-negative integer".into()))?;
    let op = v
        .get("op")
        .and_then(Json::as_str)
        .ok_or_else(|| ProtocolError::Schema("`op` must be a string".into()))?;
    let req = match op {
        "ping" => Request::Ping,
        "metrics" => Request::Metrics,
        "distance" => Request::Distance {
            kind: req_kind(&v)?,
            p: req_series(&v, "p")?,
            q: req_series(&v, "q")?,
            threshold: opt_f64(&v, "threshold")?,
            band: opt_usize(&v, "band")?,
            deadline_ms: opt_u64(&v, "deadline_ms")?,
        },
        "batch" => {
            let pairs_json = v
                .get("pairs")
                .and_then(Json::as_array)
                .ok_or_else(|| ProtocolError::Schema("`pairs` must be an array".into()))?;
            let mut pairs = Vec::with_capacity(pairs_json.len());
            for pair in pairs_json {
                let items = pair
                    .as_array()
                    .filter(|a| a.len() == 2)
                    .ok_or_else(|| ProtocolError::Schema("each pair must be `[p, q]`".into()))?;
                let p = items[0]
                    .as_f64_vec()
                    .ok_or_else(|| ProtocolError::Schema("pair series must be numbers".into()))?;
                let q = items[1]
                    .as_f64_vec()
                    .ok_or_else(|| ProtocolError::Schema("pair series must be numbers".into()))?;
                pairs.push((p, q));
            }
            Request::Batch {
                kind: req_kind(&v)?,
                pairs,
                threshold: opt_f64(&v, "threshold")?,
                band: opt_usize(&v, "band")?,
                deadline_ms: opt_u64(&v, "deadline_ms")?,
            }
        }
        "knn" => {
            let train_json = v
                .get("train")
                .and_then(Json::as_array)
                .ok_or_else(|| ProtocolError::Schema("`train` must be an array".into()))?;
            let mut train = Vec::with_capacity(train_json.len());
            for inst in train_json {
                let label = inst.get("label").and_then(Json::as_usize).ok_or_else(|| {
                    ProtocolError::Schema("train `label` must be an integer".into())
                })?;
                let series = inst
                    .get("series")
                    .and_then(Json::as_f64_vec)
                    .ok_or_else(|| {
                        ProtocolError::Schema("train `series` must be numbers".into())
                    })?;
                train.push(TrainInstance { label, series });
            }
            let k = req_usize(&v, "k")?;
            if k == 0 {
                return Err(ProtocolError::Schema("`k` must be at least 1".into()));
            }
            Request::Knn {
                kind: req_kind(&v)?,
                k,
                query: req_series(&v, "query")?,
                train,
                threshold: opt_f64(&v, "threshold")?,
                band: opt_usize(&v, "band")?,
                deadline_ms: opt_u64(&v, "deadline_ms")?,
            }
        }
        "search" => {
            let window = req_usize(&v, "window")?;
            if window == 0 {
                return Err(ProtocolError::Schema("`window` must be at least 1".into()));
            }
            Request::Search {
                query: req_series(&v, "query")?,
                haystack: req_series(&v, "haystack")?,
                window,
                band: opt_usize(&v, "band")?.unwrap_or(0),
                deadline_ms: opt_u64(&v, "deadline_ms")?,
            }
        }
        other => return Err(ProtocolError::Schema(format!("unknown op `{other}`"))),
    };
    Ok(Envelope { id, req })
}

/// Encodes a request envelope to a frame payload.
pub fn encode_request(env: &Envelope) -> Vec<u8> {
    let mut pairs: Vec<(String, Json)> = vec![
        ("id".into(), Json::Num(env.id as f64)),
        ("op".into(), Json::Str(env.req.op().into())),
    ];
    let mut push_opts =
        |threshold: &Option<f64>, band: &Option<usize>, deadline_ms: &Option<u64>| {
            if let Some(t) = threshold {
                pairs.push(("threshold".into(), Json::Num(*t)));
            }
            if let Some(b) = band {
                pairs.push(("band".into(), Json::Num(*b as f64)));
            }
            if let Some(d) = deadline_ms {
                pairs.push(("deadline_ms".into(), Json::Num(*d as f64)));
            }
        };
    match &env.req {
        Request::Ping | Request::Metrics => {}
        Request::Distance {
            kind,
            p,
            q,
            threshold,
            band,
            deadline_ms,
        } => {
            push_opts(threshold, band, deadline_ms);
            pairs.push(("kind".into(), Json::Str(kind.abbrev().into())));
            pairs.push(("p".into(), Json::from_f64s(p)));
            pairs.push(("q".into(), Json::from_f64s(q)));
        }
        Request::Batch {
            kind,
            pairs: ps,
            threshold,
            band,
            deadline_ms,
        } => {
            push_opts(threshold, band, deadline_ms);
            pairs.push(("kind".into(), Json::Str(kind.abbrev().into())));
            pairs.push((
                "pairs".into(),
                Json::Arr(
                    ps.iter()
                        .map(|(p, q)| Json::Arr(vec![Json::from_f64s(p), Json::from_f64s(q)]))
                        .collect(),
                ),
            ));
        }
        Request::Knn {
            kind,
            k,
            query,
            train,
            threshold,
            band,
            deadline_ms,
        } => {
            push_opts(threshold, band, deadline_ms);
            pairs.push(("kind".into(), Json::Str(kind.abbrev().into())));
            pairs.push(("k".into(), Json::Num(*k as f64)));
            pairs.push(("query".into(), Json::from_f64s(query)));
            pairs.push((
                "train".into(),
                Json::Arr(
                    train
                        .iter()
                        .map(|t| {
                            Json::Obj(vec![
                                ("label".into(), Json::Num(t.label as f64)),
                                ("series".into(), Json::from_f64s(&t.series)),
                            ])
                        })
                        .collect(),
                ),
            ));
        }
        Request::Search {
            query,
            haystack,
            window,
            band,
            deadline_ms,
        } => {
            push_opts(&None, &Some(*band), deadline_ms);
            pairs.push(("query".into(), Json::from_f64s(query)));
            pairs.push(("haystack".into(), Json::from_f64s(haystack)));
            pairs.push(("window".into(), Json::Num(*window as f64)));
        }
    }
    Json::Obj(pairs).to_string().into_bytes()
}

/// Encodes a reply to a frame payload.
pub fn encode_reply(reply: &Reply) -> Vec<u8> {
    let mut pairs: Vec<(String, Json)> = vec![("id".into(), Json::Num(reply.id as f64))];
    match &reply.body {
        ResponseBody::Error { code, message } => {
            pairs.push(("ok".into(), Json::Bool(false)));
            pairs.push((
                "error".into(),
                Json::Obj(vec![
                    ("code".into(), Json::Str(code.as_str().into())),
                    ("message".into(), Json::Str(message.clone())),
                ]),
            ));
        }
        body => {
            pairs.push(("ok".into(), Json::Bool(true)));
            let result = match body {
                ResponseBody::Pong => Json::Obj(vec![("pong".into(), Json::Bool(true))]),
                ResponseBody::MetricsText(text) => {
                    Json::Obj(vec![("text".into(), Json::Str(text.clone()))])
                }
                ResponseBody::Distance { value } => {
                    Json::Obj(vec![("value".into(), Json::Num(*value))])
                }
                ResponseBody::Batch { values } => {
                    Json::Obj(vec![("values".into(), Json::from_f64s(values))])
                }
                ResponseBody::Knn {
                    label,
                    score,
                    nearest_index,
                } => Json::Obj(vec![
                    ("label".into(), Json::Num(*label as f64)),
                    ("score".into(), Json::Num(*score)),
                    ("nearest_index".into(), Json::Num(*nearest_index as f64)),
                ]),
                ResponseBody::Search { offset, distance } => Json::Obj(vec![
                    ("offset".into(), Json::Num(*offset as f64)),
                    ("distance".into(), Json::Num(*distance)),
                ]),
                ResponseBody::Error { .. } => unreachable!("handled above"),
            };
            pairs.push(("result".into(), result));
        }
    }
    Json::Obj(pairs).to_string().into_bytes()
}

/// Decodes a reply from a frame payload. The reply shape is inferred from
/// the result keys, so the caller matches on [`ResponseBody`].
///
/// # Errors
///
/// [`ProtocolError::Json`] / [`ProtocolError::Schema`]; never panics.
pub fn decode_reply(payload: &[u8]) -> Result<Reply, ProtocolError> {
    let v = Json::parse(payload)?;
    let id = v
        .get("id")
        .and_then(Json::as_u64)
        .ok_or_else(|| ProtocolError::Schema("reply `id` must be an integer".into()))?;
    let ok = match v.get("ok") {
        Some(Json::Bool(b)) => *b,
        _ => return Err(ProtocolError::Schema("reply `ok` must be a bool".into())),
    };
    if !ok {
        let err = v
            .get("error")
            .ok_or_else(|| ProtocolError::Schema("error reply lacks `error`".into()))?;
        let code = err
            .get("code")
            .and_then(Json::as_str)
            .and_then(ErrorCode::parse)
            .ok_or_else(|| ProtocolError::Schema("unknown error `code`".into()))?;
        let message = err
            .get("message")
            .and_then(Json::as_str)
            .unwrap_or_default()
            .to_string();
        return Ok(Reply {
            id,
            body: ResponseBody::Error { code, message },
        });
    }
    let result = v
        .get("result")
        .ok_or_else(|| ProtocolError::Schema("ok reply lacks `result`".into()))?;
    let body = if result.get("pong").is_some() {
        ResponseBody::Pong
    } else if let Some(text) = result.get("text").and_then(Json::as_str) {
        ResponseBody::MetricsText(text.to_string())
    } else if let Some(value) = result.get("value").and_then(Json::as_f64) {
        ResponseBody::Distance { value }
    } else if let Some(values) = result.get("values").and_then(Json::as_f64_vec) {
        ResponseBody::Batch { values }
    } else if let (Some(label), Some(score), Some(nearest_index)) = (
        result.get("label").and_then(Json::as_usize),
        result.get("score").and_then(Json::as_f64),
        result.get("nearest_index").and_then(Json::as_usize),
    ) {
        ResponseBody::Knn {
            label,
            score,
            nearest_index,
        }
    } else if let (Some(offset), Some(distance)) = (
        result.get("offset").and_then(Json::as_usize),
        result.get("distance").and_then(Json::as_f64),
    ) {
        ResponseBody::Search { offset, distance }
    } else {
        return Err(ProtocolError::Schema("unrecognized result shape".into()));
    };
    Ok(Reply { id, body })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn frame_roundtrip() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello").unwrap();
        let mut cur = Cursor::new(buf);
        assert_eq!(
            read_frame(&mut cur, DEFAULT_MAX_FRAME_BYTES).unwrap(),
            b"hello"
        );
        // A second read hits clean EOF.
        let err = read_frame(&mut cur, DEFAULT_MAX_FRAME_BYTES).unwrap_err();
        assert!(err.is_clean_eof(), "{err}");
    }

    #[test]
    fn oversized_frame_rejected_before_allocation() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&u32::MAX.to_be_bytes());
        let err = read_frame(&mut Cursor::new(buf), 1024).unwrap_err();
        assert!(matches!(err, ProtocolError::FrameTooLarge { .. }), "{err}");
    }

    #[test]
    fn truncated_frame_is_io_error_not_clean_eof() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello").unwrap();
        buf.truncate(buf.len() - 2);
        let err = read_frame(&mut Cursor::new(buf), 1024).unwrap_err();
        assert!(matches!(err, ProtocolError::Io(_)));
        assert!(!err.is_clean_eof());
    }

    #[test]
    fn request_roundtrip_all_ops() {
        let envs = vec![
            Envelope {
                id: 0,
                req: Request::Ping,
            },
            Envelope {
                id: 1,
                req: Request::Metrics,
            },
            Envelope {
                id: 2,
                req: Request::Distance {
                    kind: DistanceKind::Dtw,
                    p: vec![0.0, 1.5, -2.25],
                    q: vec![0.5, 1.0],
                    threshold: None,
                    band: Some(3),
                    deadline_ms: Some(250),
                },
            },
            Envelope {
                id: 3,
                req: Request::Batch {
                    kind: DistanceKind::Manhattan,
                    pairs: vec![(vec![0.0], vec![1.0]), (vec![2.0, 3.0], vec![2.0, 3.5])],
                    threshold: None,
                    band: None,
                    deadline_ms: None,
                },
            },
            Envelope {
                id: 4,
                req: Request::Knn {
                    kind: DistanceKind::Lcs,
                    k: 3,
                    query: vec![1.0, 2.0],
                    train: vec![
                        TrainInstance {
                            label: 0,
                            series: vec![1.0, 2.0],
                        },
                        TrainInstance {
                            label: 7,
                            series: vec![9.0],
                        },
                    ],
                    threshold: Some(0.25),
                    band: None,
                    deadline_ms: None,
                },
            },
            Envelope {
                id: 5,
                req: Request::Search {
                    query: vec![0.0, 1.0],
                    haystack: vec![0.0, 1.0, 0.0, 1.0],
                    window: 2,
                    band: 1,
                    deadline_ms: Some(1_000),
                },
            },
        ];
        for env in envs {
            let decoded = decode_request(&encode_request(&env)).unwrap();
            assert_eq!(decoded, env);
        }
    }

    #[test]
    fn reply_roundtrip_all_shapes() {
        let replies = vec![
            Reply {
                id: 9,
                body: ResponseBody::Pong,
            },
            Reply {
                id: 10,
                body: ResponseBody::MetricsText("a 1\nb 2\n".into()),
            },
            Reply {
                id: 11,
                body: ResponseBody::Distance { value: -0.0 },
            },
            Reply {
                id: 12,
                body: ResponseBody::Batch {
                    values: vec![1.0 / 3.0, 4.5],
                },
            },
            Reply {
                id: 13,
                body: ResponseBody::Knn {
                    label: 2,
                    score: 0.125,
                    nearest_index: 5,
                },
            },
            Reply {
                id: 14,
                body: ResponseBody::Search {
                    offset: 40,
                    distance: 0.0,
                },
            },
            Reply {
                id: 15,
                body: ResponseBody::Error {
                    code: ErrorCode::Overloaded,
                    message: "queue full".into(),
                },
            },
        ];
        for reply in replies {
            let decoded = decode_reply(&encode_reply(&reply)).unwrap();
            assert_eq!(decoded, reply);
        }
    }

    #[test]
    fn schema_violations_error_cleanly() {
        for bad in [
            &br#"{"op":"ping"}"#[..],                                          // no id
            br#"{"id":1}"#,                                                    // no op
            br#"{"id":1,"op":"warp"}"#,                                        // unknown op
            br#"{"id":1,"op":"distance","kind":"XX","p":[],"q":[]}"#,          // bad kind
            br#"{"id":1,"op":"distance","kind":"MD","p":[true],"q":[]}"#,      // bad series
            br#"{"id":1,"op":"knn","kind":"MD","k":0,"query":[],"train":[]}"#, // k = 0
            br#"{"id":1,"op":"search","query":[],"haystack":[],"window":0}"#,  // window = 0
            br#"{"id":1.5,"op":"ping"}"#,                                      // fractional id
        ] {
            assert!(
                decode_request(bad).is_err(),
                "{} should fail",
                String::from_utf8_lossy(bad)
            );
        }
    }

    #[test]
    fn kind_names_match_paper_abbreviations() {
        for kind in DistanceKind::ALL {
            assert_eq!(parse_kind(kind.abbrev()), Some(kind));
        }
        assert_eq!(parse_kind("dtw"), None);
    }
}
