//! Live push-mode streams on the event loop: the stream registry, the
//! consistent-hash shard ring, and the per-push event fan-out.
//!
//! Every open stream owns one [`StreamPipeline`] — the incremental
//! operator DAG from `mda-streaming` — plus its subscriber list. All
//! state lives on the event-loop thread (streams are connection-born and
//! the loop is single-threaded), so pushes mutate without locking.
//!
//! ## Sharding seam
//!
//! Today one event loop serves every stream; the paper's data-center
//! framing calls for many workers. [`ConsistentRing`] is the groundwork:
//! `open_stream` pins each stream id to a stable shard via consistent
//! hashing (64 virtual nodes per worker), the shard is reported on the
//! open reply, and growing the worker count relocates only ~1/(n+1) of
//! the streams. The routing decision is already explicit and tested; a
//! multi-worker deployment only has to honour it.

use std::collections::HashMap;

use mda_streaming::{
    certified_bound, PruneFrameStats, PushResult, StreamConfig, StreamError, StreamPipeline, Value,
};

use crate::protocol::{ErrorCode, MatchRecord, StreamEventBody, StreamEventState};

const FNV_OFFSET: u64 = 0xcbf29ce484222325;
const FNV_PRIME: u64 = 0x100000001b3;

/// FNV-1a over raw bytes — the same digest the replay fingerprint uses,
/// here keying ring positions.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = FNV_OFFSET;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// Virtual nodes per worker: enough that per-worker load variance stays
/// small without making the ring noticeable to build or search.
const VNODES_PER_WORKER: u32 = 64;

/// A consistent-hash ring mapping stream ids to worker shards.
#[derive(Debug, Clone)]
pub struct ConsistentRing {
    /// `(position, worker)` sorted by position.
    points: Vec<(u64, u32)>,
    workers: u32,
}

impl ConsistentRing {
    /// Builds a ring over `workers` shards (clamped to at least 1).
    pub fn new(workers: u32) -> ConsistentRing {
        let workers = workers.max(1);
        let mut points = Vec::with_capacity((workers * VNODES_PER_WORKER) as usize);
        for worker in 0..workers {
            for replica in 0..VNODES_PER_WORKER {
                let mut key = [0u8; 8];
                key[..4].copy_from_slice(&worker.to_le_bytes());
                key[4..].copy_from_slice(&replica.to_le_bytes());
                points.push((fnv1a(&key), worker));
            }
        }
        points.sort_unstable();
        ConsistentRing { points, workers }
    }

    /// The number of shards the ring routes over.
    pub fn workers(&self) -> u32 {
        self.workers
    }

    /// The shard owning `stream_id`: the first ring point at or after the
    /// id's hash, wrapping to the smallest point.
    pub fn route(&self, stream_id: u64) -> u32 {
        let h = fnv1a(&stream_id.to_le_bytes());
        let idx = self.points.partition_point(|&(pos, _)| pos < h);
        self.points[idx % self.points.len()].1
    }
}

/// Why a registry operation failed.
#[derive(Debug)]
pub enum RegistryError {
    /// No open stream has this id (never opened, or already closed).
    UnknownStream(u64),
    /// The stream layer rejected the operation.
    Stream(StreamError),
}

impl std::fmt::Display for RegistryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RegistryError::UnknownStream(id) => write!(f, "no open stream with id {id}"),
            RegistryError::Stream(e) => write!(f, "{e}"),
        }
    }
}

impl RegistryError {
    /// The wire error code this failure is answered with.
    pub fn code(&self) -> ErrorCode {
        match self {
            RegistryError::UnknownStream(_) => ErrorCode::NotFound,
            RegistryError::Stream(StreamError::InvalidParameter(_)) => ErrorCode::InvalidParameter,
            RegistryError::Stream(_) => ErrorCode::BadRequest,
        }
    }
}

/// The open reply's payload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OpenOutcome {
    /// Assigned stream id.
    pub stream_id: u64,
    /// Consistent-hash shard the stream is pinned to.
    pub shard: u32,
    /// Pushes before the first ready frame.
    pub burn_in: u64,
}

/// The push reply's payload plus the events to fan out.
#[derive(Debug)]
pub struct PushOutcome {
    /// Points accepted.
    pub accepted: u64,
    /// Stream epoch after the push.
    pub epoch: u64,
    /// Pushes that evicted an old point (window already full).
    pub evictions: u64,
    /// `(connection token, subscribe request id, event)` per subscriber
    /// per accepted push, in push order.
    pub events: Vec<(u64, u64, StreamEventBody)>,
}

/// The subscribe reply's payload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SubscribeOutcome {
    /// Stream epoch at subscription time.
    pub epoch: u64,
    /// `true` once burn-in has completed.
    pub warm: bool,
}

/// The close reply's payload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CloseOutcome {
    /// Total points the stream accepted.
    pub pushed: u64,
    /// Subscriptions dropped with the stream.
    pub dropped_subscribers: usize,
}

struct StreamEntry {
    pipeline: StreamPipeline,
    burn_in: u64,
    shard: u32,
    /// `(connection token, subscribe request id)`.
    subscribers: Vec<(u64, u64)>,
    /// Cascade outcomes over this stream's warm pushes.
    cascade: PruneFrameStats,
}

/// Every open stream on this event loop.
pub struct StreamRegistry {
    ring: ConsistentRing,
    next_id: u64,
    streams: HashMap<u64, StreamEntry>,
}

impl StreamRegistry {
    /// An empty registry routing over `workers` shards.
    pub fn new(workers: u32) -> StreamRegistry {
        StreamRegistry {
            ring: ConsistentRing::new(workers),
            next_id: 1,
            streams: HashMap::new(),
        }
    }

    /// The shard ring (exposed for routing tests and future workers).
    pub fn ring(&self) -> &ConsistentRing {
        &self.ring
    }

    /// Opens a stream, validating its configuration.
    ///
    /// # Errors
    ///
    /// Typed [`StreamError`] from [`StreamPipeline::new`].
    pub fn open(&mut self, config: StreamConfig) -> Result<OpenOutcome, StreamError> {
        let burn_in = config.window as u64;
        let pipeline = StreamPipeline::new(config)?;
        let stream_id = self.next_id;
        self.next_id += 1;
        let shard = self.ring.route(stream_id);
        self.streams.insert(
            stream_id,
            StreamEntry {
                pipeline,
                burn_in,
                shard,
                subscribers: Vec::new(),
                cascade: PruneFrameStats::default(),
            },
        );
        Ok(OpenOutcome {
            stream_id,
            shard,
            burn_in,
        })
    }

    /// Pushes `points` to a stream, producing one event per subscriber per
    /// accepted push. Non-finite points reject the whole batch **before**
    /// any point is applied, so a failed push never mutates the stream.
    ///
    /// # Errors
    ///
    /// [`RegistryError::UnknownStream`] or a typed stream rejection.
    pub fn push(&mut self, stream_id: u64, points: &[f64]) -> Result<PushOutcome, RegistryError> {
        let entry = self
            .streams
            .get_mut(&stream_id)
            .ok_or(RegistryError::UnknownStream(stream_id))?;
        if let Some(bad) = points.iter().find(|x| !x.is_finite()) {
            return Err(RegistryError::Stream(StreamError::InvalidParameter(
                format!("points must be finite, got {bad}"),
            )));
        }
        let mut outcome = PushOutcome {
            accepted: 0,
            epoch: entry.pipeline.epoch(),
            evictions: 0,
            events: Vec::new(),
        };
        for &x in points {
            let result = entry.pipeline.push(x).map_err(RegistryError::Stream)?;
            outcome.accepted += 1;
            outcome.epoch = result.epoch;
            if result.epoch > entry.burn_in {
                outcome.evictions += 1;
            }
            if let Some(Value::Match(mf)) = result.matcher.value() {
                entry.cascade.record(mf.decision);
            }
            if entry.subscribers.is_empty() {
                continue;
            }
            let event = event_body(stream_id, &result);
            for &(token, sub_id) in &entry.subscribers {
                outcome.events.push((token, sub_id, event.clone()));
            }
        }
        Ok(outcome)
    }

    /// Subscribes `token`'s connection to a stream; events carry `sub_id`.
    ///
    /// # Errors
    ///
    /// [`RegistryError::UnknownStream`].
    pub fn subscribe(
        &mut self,
        stream_id: u64,
        token: u64,
        sub_id: u64,
    ) -> Result<SubscribeOutcome, RegistryError> {
        let entry = self
            .streams
            .get_mut(&stream_id)
            .ok_or(RegistryError::UnknownStream(stream_id))?;
        entry.subscribers.push((token, sub_id));
        let epoch = entry.pipeline.epoch();
        Ok(SubscribeOutcome {
            epoch,
            warm: epoch >= entry.burn_in,
        })
    }

    /// Closes a stream, dropping its state and subscriptions.
    ///
    /// # Errors
    ///
    /// [`RegistryError::UnknownStream`].
    pub fn close(&mut self, stream_id: u64) -> Result<CloseOutcome, RegistryError> {
        let entry = self
            .streams
            .remove(&stream_id)
            .ok_or(RegistryError::UnknownStream(stream_id))?;
        Ok(CloseOutcome {
            pushed: entry.pipeline.epoch(),
            dropped_subscribers: entry.subscribers.len(),
        })
    }

    /// Removes every subscription held by a dead connection; returns how
    /// many were dropped.
    pub fn drop_token(&mut self, token: u64) -> usize {
        let mut dropped = 0;
        for entry in self.streams.values_mut() {
            let before = entry.subscribers.len();
            entry.subscribers.retain(|&(t, _)| t != token);
            dropped += before - entry.subscribers.len();
        }
        dropped
    }

    /// The shard a currently-open stream is pinned to.
    pub fn shard_of(&self, stream_id: u64) -> Option<u32> {
        self.streams.get(&stream_id).map(|e| e.shard)
    }

    /// Cascade outcome counts over a stream's warm pushes.
    pub fn cascade_stats(&self, stream_id: u64) -> Option<PruneFrameStats> {
        self.streams.get(&stream_id).map(|e| e.cascade)
    }

    /// Streams currently open.
    pub fn open_count(&self) -> usize {
        self.streams.len()
    }

    /// Active subscriptions across all streams.
    pub fn subscriber_count(&self) -> usize {
        self.streams.values().map(|e| e.subscribers.len()).sum()
    }
}

/// Builds the wire event for one push result.
fn event_body(stream_id: u64, result: &PushResult) -> StreamEventBody {
    let state = match (
        result.stats.value(),
        result.matcher.value(),
        result.tracker.value(),
    ) {
        (Some(Value::Stats(sf)), Some(Value::Match(mf)), Some(Value::Track(tf))) => {
            StreamEventState::Ready {
                mean: sf.mean,
                std_dev: sf.std_dev,
                decision: decision_name(mf.decision).to_string(),
                bound: certified_bound(mf.decision, mf.threshold),
                threshold: mf.threshold,
                motif: tf.motif.map(|b| MatchRecord {
                    epoch: b.epoch,
                    distance: b.distance,
                }),
                discord: tf.discord.map(|b| MatchRecord {
                    epoch: b.epoch,
                    distance: b.distance,
                }),
            }
        }
        _ => match result.tracker {
            mda_streaming::Output::Warming { seen, burn_in } => {
                StreamEventState::Warming { seen, burn_in }
            }
            // The DAG emits all-or-nothing: a partially ready frame set
            // cannot happen, but degrade to warming rather than panic.
            mda_streaming::Output::Ready(_) => StreamEventState::Warming {
                seen: result.epoch,
                burn_in: result.epoch,
            },
        },
    };
    StreamEventBody {
        stream_id,
        epoch: result.epoch,
        state,
    }
}

fn decision_name(decision: mda_distance::lower_bounds::PruneDecision) -> &'static str {
    use mda_distance::lower_bounds::PruneDecision;
    match decision {
        PruneDecision::PrunedByKim(_) => "pruned_kim",
        PruneDecision::PrunedByKeogh(_) => "pruned_keogh",
        PruneDecision::AbandonedEarly => "abandoned",
        PruneDecision::Computed(_) => "computed",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config(window: usize) -> StreamConfig {
        StreamConfig {
            window,
            band: 1.min(window.saturating_sub(1)),
            query: (0..window).map(|i| (i as f64 * 0.4).sin()).collect(),
            threshold: None,
        }
    }

    #[test]
    fn ring_routing_is_deterministic_and_covers_every_worker() {
        let ring = ConsistentRing::new(4);
        let mut seen = [false; 4];
        for id in 0..10_000u64 {
            let shard = ring.route(id);
            assert_eq!(shard, ring.route(id), "route must be a pure function");
            assert!(shard < 4);
            seen[shard as usize] = true;
        }
        assert!(
            seen.iter().all(|&s| s),
            "some worker owns no keys: {seen:?}"
        );
    }

    #[test]
    fn ring_growth_moves_only_a_minority_of_keys_onto_the_new_worker() {
        let before = ConsistentRing::new(4);
        let after = ConsistentRing::new(5);
        let ids: Vec<u64> = (0..10_000).collect();
        let mut moved = 0usize;
        for &id in &ids {
            let (a, b) = (before.route(id), after.route(id));
            if a != b {
                moved += 1;
                // Consistent hashing's defining property: a key only moves
                // when the NEW worker claims it.
                assert_eq!(b, 4, "stream {id} moved {a}→{b}, not to the new worker");
            }
        }
        // Expected share ≈ 1/5 = 2000; allow generous variance, but far
        // below the ~8000 a mod-N rehash would relocate.
        assert!(
            (500..4_000).contains(&moved),
            "moved {moved} of {} keys",
            ids.len()
        );
    }

    #[test]
    fn ring_clamps_to_one_worker() {
        let ring = ConsistentRing::new(0);
        assert_eq!(ring.workers(), 1);
        assert_eq!(ring.route(123), 0);
    }

    #[test]
    fn open_push_subscribe_close_lifecycle() {
        let mut reg = StreamRegistry::new(4);
        let opened = reg.open(config(4)).unwrap();
        assert_eq!(opened.burn_in, 4);
        assert_eq!(opened.shard, reg.ring().route(opened.stream_id));
        assert_eq!(reg.open_count(), 1);

        let sub = reg.subscribe(opened.stream_id, 7, 99).unwrap();
        assert!(!sub.warm, "no pushes yet");
        assert_eq!(reg.subscriber_count(), 1);

        let out = reg.push(opened.stream_id, &[0.0, 1.0, 2.0]).unwrap();
        assert_eq!((out.accepted, out.epoch, out.evictions), (3, 3, 0));
        assert_eq!(out.events.len(), 3, "one event per push per subscriber");
        assert!(out
            .events
            .iter()
            .all(|(t, s, e)| *t == 7 && *s == 99 && e.stream_id == opened.stream_id));
        assert!(matches!(
            out.events[2].2.state,
            StreamEventState::Warming {
                seen: 3,
                burn_in: 4
            }
        ));

        // Crossing burn-in turns events ready; the fifth push evicts.
        let out = reg.push(opened.stream_id, &[3.0, 4.0]).unwrap();
        assert_eq!((out.epoch, out.evictions), (5, 1));
        assert!(matches!(
            out.events[1].2.state,
            StreamEventState::Ready { .. }
        ));
        assert!(reg.subscribe(opened.stream_id, 8, 100).unwrap().warm);
        assert_eq!(reg.shard_of(opened.stream_id), Some(opened.shard));
        assert!(
            reg.cascade_stats(opened.stream_id).unwrap().total() >= 1,
            "warm pushes must run the cascade"
        );

        let closed = reg.close(opened.stream_id).unwrap();
        assert_eq!(closed.pushed, 5);
        assert_eq!(closed.dropped_subscribers, 2);
        assert_eq!(reg.open_count(), 0);
        assert!(matches!(
            reg.push(opened.stream_id, &[0.0]),
            Err(RegistryError::UnknownStream(_))
        ));
    }

    #[test]
    fn non_finite_batch_rejects_before_mutating() {
        let mut reg = StreamRegistry::new(2);
        let id = reg.open(config(4)).unwrap().stream_id;
        reg.push(id, &[1.0, 2.0]).unwrap();
        let err = reg.push(id, &[3.0, f64::NAN, 4.0]).unwrap_err();
        assert_eq!(err.code(), ErrorCode::InvalidParameter);
        // Nothing from the poisoned batch landed — not even the leading 3.0.
        let out = reg.push(id, &[5.0]).unwrap();
        assert_eq!(out.epoch, 3);
    }

    #[test]
    fn dead_connection_cleanup_drops_its_subscriptions_only() {
        let mut reg = StreamRegistry::new(2);
        let a = reg.open(config(2)).unwrap().stream_id;
        let b = reg.open(config(2)).unwrap().stream_id;
        reg.subscribe(a, 7, 1).unwrap();
        reg.subscribe(b, 7, 2).unwrap();
        reg.subscribe(b, 8, 3).unwrap();
        assert_eq!(reg.drop_token(7), 2);
        assert_eq!(reg.subscriber_count(), 1);
        let out = reg.push(b, &[0.0]).unwrap();
        assert_eq!(out.events.len(), 1);
        assert_eq!(out.events[0].0, 8);
    }

    #[test]
    fn stream_ids_are_never_reused() {
        let mut reg = StreamRegistry::new(2);
        let first = reg.open(config(2)).unwrap().stream_id;
        reg.close(first).unwrap();
        let second = reg.open(config(2)).unwrap().stream_id;
        assert_ne!(first, second);
    }
}
