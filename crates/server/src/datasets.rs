//! Resident dataset store: content-addressed, versioned corpora.
//!
//! A dataset is uploaded once (`upload_dataset`) and then referenced by id or
//! name from kNN / pairwise / subsequence queries, so the wire carries queries
//! instead of corpora. Identity is content-addressed: the dataset id is a
//! 128-bit FNV-1a hash over the dataset *name* and the bitwise contents of
//! every series, which makes re-uploading identical content idempotent (same
//! id, same version) and guarantees that a pinned id can never silently refer
//! to different data.
//!
//! Versioning keeps exactly one *current* version per name. Re-uploading a
//! name with different content bumps the version and retires the previous id;
//! queries pinning a retired id (or an explicit `version` that is no longer
//! current) receive a typed [`ErrorCode::StaleVersion`] reply naming both the
//! pinned and the current version, while ids/names that never existed receive
//! [`ErrorCode::NotFound`]. Series are stored as `Arc<[f64]>`, so resolving a
//! dataset for a query clones reference counts, not samples — the resolved
//! series are bitwise the uploaded ones, which is what keeps the served
//! results on the resident path identical to direct `BatchEngine` calls.

use crate::protocol::{DatasetRef, DatasetSummary, ErrorCode};
use std::collections::HashMap;
use std::sync::{Arc, Mutex};

/// Typed failure when resolving or mutating datasets. Carried to the wire as
/// an in-band error reply (`not_found`, `stale_version`, `overloaded`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ResolveError {
    pub code: ErrorCode,
    pub message: String,
}

impl ResolveError {
    fn not_found(message: impl Into<String>) -> Self {
        ResolveError {
            code: ErrorCode::NotFound,
            message: message.into(),
        }
    }

    fn stale(message: impl Into<String>) -> Self {
        ResolveError {
            code: ErrorCode::StaleVersion,
            message: message.into(),
        }
    }
}

/// A resolved (current-version) dataset, cheap to clone per query.
#[derive(Debug, Clone)]
pub struct ResolvedDataset {
    pub name: String,
    pub dataset_id: String,
    pub version: u64,
    pub labels: Arc<[usize]>,
    pub series: Arc<[Arc<[f64]>]>,
    pub bytes: u64,
}

/// Outcome of an upload: the (possibly pre-existing) identity of the content.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UploadOutcome {
    pub dataset_id: String,
    pub version: u64,
    pub count: usize,
    pub bytes: u64,
}

struct Stored {
    dataset_id: String,
    version: u64,
    labels: Arc<[usize]>,
    series: Arc<[Arc<[f64]>]>,
    bytes: u64,
}

#[derive(Default)]
struct Inner {
    /// Current version per name.
    by_name: HashMap<String, Stored>,
    /// Current dataset id -> name.
    id_index: HashMap<String, String>,
    /// Retired dataset id -> (name, version it identified). Lets a pinned old
    /// id produce a precise `stale_version` instead of a generic `not_found`.
    retired: HashMap<String, (String, u64)>,
    total_bytes: u64,
}

/// Thread-safe resident dataset store with a global byte budget.
pub struct DatasetStore {
    inner: Mutex<Inner>,
    max_bytes: u64,
}

/// 128-bit content address: two independent FNV-1a-64 passes (distinct offset
/// bases) over the same byte stream, rendered as 32 hex chars.
fn content_id(name: &str, labels: &[usize], series: &[Vec<f64>]) -> String {
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h1: u64 = 0xcbf2_9ce4_8422_2325;
    let mut h2: u64 = 0x6c62_272e_07bb_0142; // FNV-1a-128 offset basis, low half
    let mut eat = |byte: u8| {
        h1 = (h1 ^ u64::from(byte)).wrapping_mul(PRIME);
        h2 = (h2 ^ u64::from(byte ^ 0x5a)).wrapping_mul(PRIME);
    };
    for b in name.as_bytes() {
        eat(*b);
    }
    eat(0xff); // name/content separator: "ab" + [] never collides with "a" + [b-ish]
    for (label, s) in labels.iter().zip(series) {
        for b in (*label as u64).to_le_bytes() {
            eat(b);
        }
        for b in (s.len() as u64).to_le_bytes() {
            eat(b);
        }
        for x in s {
            for b in x.to_bits().to_le_bytes() {
                eat(b);
            }
        }
    }
    format!("{h1:016x}{h2:016x}")
}

impl DatasetStore {
    pub fn new(max_bytes: u64) -> Self {
        DatasetStore {
            inner: Mutex::new(Inner::default()),
            max_bytes,
        }
    }

    /// Upload (or re-upload) a dataset. Identical content under the same name
    /// is idempotent; changed content bumps the version and retires the old id.
    pub fn upload(
        &self,
        name: &str,
        labels: Vec<usize>,
        series: Vec<Vec<f64>>,
    ) -> Result<UploadOutcome, ResolveError> {
        debug_assert_eq!(labels.len(), series.len());
        let dataset_id = content_id(name, &labels, &series);
        let bytes: u64 = series.iter().map(|s| s.len() as u64 * 8).sum();
        let count = series.len();
        let mut inner = self.inner.lock().unwrap();
        if let Some(existing) = inner.by_name.get(name) {
            if existing.dataset_id == dataset_id {
                return Ok(UploadOutcome {
                    dataset_id,
                    version: existing.version,
                    count,
                    bytes,
                });
            }
        }
        let replaced_bytes = inner.by_name.get(name).map_or(0, |s| s.bytes);
        let projected = inner.total_bytes - replaced_bytes + bytes;
        if projected > self.max_bytes {
            return Err(ResolveError {
                code: ErrorCode::Overloaded,
                message: format!(
                    "dataset store full: {projected} bytes would exceed budget {}",
                    self.max_bytes
                ),
            });
        }
        let version = inner.by_name.get(name).map_or(1, |s| s.version + 1);
        if let Some(old) = inner.by_name.remove(name) {
            inner.id_index.remove(&old.dataset_id);
            inner
                .retired
                .insert(old.dataset_id, (name.to_string(), old.version));
        }
        inner.total_bytes = projected;
        inner.id_index.insert(dataset_id.clone(), name.to_string());
        inner.by_name.insert(
            name.to_string(),
            Stored {
                dataset_id: dataset_id.clone(),
                version,
                labels: labels.into(),
                series: series
                    .into_iter()
                    .map(Arc::<[f64]>::from)
                    .collect::<Vec<_>>()
                    .into(),
                bytes,
            },
        );
        Ok(UploadOutcome {
            dataset_id,
            version,
            count,
            bytes,
        })
    }

    /// Resolve a reference to the current version, with typed stale/missing
    /// discrimination.
    pub fn resolve(&self, dref: &DatasetRef) -> Result<ResolvedDataset, ResolveError> {
        let inner = self.inner.lock().unwrap();
        let (name, pinned_version) = if let Some(id) = &dref.id {
            match inner.id_index.get(id) {
                Some(name) => (name.clone(), None),
                None => {
                    if let Some((name, old_version)) = inner.retired.get(id) {
                        if let Some(current) = inner.by_name.get(name) {
                            return Err(ResolveError::stale(format!(
                                "dataset id {id} pinned version {old_version} of \"{name}\", superseded by version {}",
                                current.version
                            )));
                        }
                        return Err(ResolveError::not_found(format!(
                            "dataset id {id} (\"{name}\" version {old_version}) was dropped"
                        )));
                    }
                    return Err(ResolveError::not_found(format!("no dataset with id {id}")));
                }
            }
        } else if let Some(name) = &dref.name {
            (name.clone(), dref.version)
        } else {
            return Err(ResolveError::not_found(
                "dataset reference names neither id nor name",
            ));
        };
        let stored = inner
            .by_name
            .get(&name)
            .ok_or_else(|| ResolveError::not_found(format!("no dataset named \"{name}\"")))?;
        if let Some(v) = pinned_version {
            if v != stored.version {
                return Err(ResolveError::stale(format!(
                    "dataset \"{name}\" version {v} is not current (current version {})",
                    stored.version
                )));
            }
        }
        Ok(ResolvedDataset {
            name,
            dataset_id: stored.dataset_id.clone(),
            version: stored.version,
            labels: Arc::clone(&stored.labels),
            series: Arc::clone(&stored.series),
            bytes: stored.bytes,
        })
    }

    /// All current datasets, sorted by name (deterministic listing).
    pub fn list(&self) -> Vec<DatasetSummary> {
        let inner = self.inner.lock().unwrap();
        let mut items: Vec<DatasetSummary> = inner
            .by_name
            .iter()
            .map(|(name, s)| DatasetSummary {
                name: name.clone(),
                dataset_id: s.dataset_id.clone(),
                version: s.version,
                count: s.series.len(),
                bytes: s.bytes,
            })
            .collect();
        items.sort_by(|a, b| a.name.cmp(&b.name));
        items
    }

    /// Drop the dataset a reference points at. Returns the number of datasets
    /// removed (always 1 on success); a missing target is a typed `not_found`.
    pub fn drop_ref(&self, dref: &DatasetRef) -> Result<usize, ResolveError> {
        let mut inner = self.inner.lock().unwrap();
        let name = if let Some(id) = &dref.id {
            inner
                .id_index
                .get(id)
                .cloned()
                .ok_or_else(|| ResolveError::not_found(format!("no dataset with id {id}")))?
        } else if let Some(name) = &dref.name {
            if !inner.by_name.contains_key(name) {
                return Err(ResolveError::not_found(format!(
                    "no dataset named \"{name}\""
                )));
            }
            name.clone()
        } else {
            return Err(ResolveError::not_found(
                "dataset reference names neither id nor name",
            ));
        };
        let old = inner.by_name.remove(&name).expect("checked above");
        inner.id_index.remove(&old.dataset_id);
        inner.retired.insert(old.dataset_id, (name, old.version));
        inner.total_bytes -= old.bytes;
        Ok(1)
    }

    /// (resident dataset count, resident bytes) — for the metrics gauges.
    pub fn stats(&self) -> (usize, u64) {
        let inner = self.inner.lock().unwrap();
        (inner.by_name.len(), inner.total_bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_series() -> (Vec<usize>, Vec<Vec<f64>>) {
        (vec![0, 7], vec![vec![1.0, 2.0, 3.0], vec![-0.5]])
    }

    #[test]
    fn upload_is_content_addressed_and_idempotent() {
        let store = DatasetStore::new(u64::MAX);
        let (labels, series) = two_series();
        let a = store.upload("s", labels.clone(), series.clone()).unwrap();
        let b = store.upload("s", labels, series).unwrap();
        assert_eq!(a, b);
        assert_eq!(a.version, 1);
        assert_eq!(a.count, 2);
        assert_eq!(a.bytes, 4 * 8);
        assert_eq!(store.stats(), (1, 32));
    }

    #[test]
    fn same_content_different_name_gets_different_id() {
        let store = DatasetStore::new(u64::MAX);
        let (labels, series) = two_series();
        let a = store.upload("a", labels.clone(), series.clone()).unwrap();
        let b = store.upload("b", labels, series).unwrap();
        assert_ne!(a.dataset_id, b.dataset_id);
    }

    #[test]
    fn reupload_bumps_version_and_retires_old_id() {
        let store = DatasetStore::new(u64::MAX);
        let (labels, series) = two_series();
        let v1 = store.upload("s", labels, series).unwrap();
        let v2 = store.upload("s", vec![1], vec![vec![9.0]]).unwrap();
        assert_eq!(v2.version, 2);
        assert_ne!(v1.dataset_id, v2.dataset_id);
        // Pinned old id → stale_version naming both versions.
        let err = store
            .resolve(&DatasetRef::by_id(&v1.dataset_id))
            .unwrap_err();
        assert_eq!(err.code, ErrorCode::StaleVersion);
        assert!(err.message.contains("version 1"), "{}", err.message);
        assert!(err.message.contains("version 2"), "{}", err.message);
        // Pinned old version by name → stale_version.
        let err = store
            .resolve(&DatasetRef::by_name_version("s", 1))
            .unwrap_err();
        assert_eq!(err.code, ErrorCode::StaleVersion);
        // Current resolves fine by name, pinned-current version, and new id.
        assert_eq!(store.resolve(&DatasetRef::by_name("s")).unwrap().version, 2);
        assert!(store.resolve(&DatasetRef::by_name_version("s", 2)).is_ok());
        assert!(store.resolve(&DatasetRef::by_id(&v2.dataset_id)).is_ok());
        // Store accounts only the current version.
        assert_eq!(store.stats(), (1, 8));
    }

    #[test]
    fn unknown_targets_are_not_found() {
        let store = DatasetStore::new(u64::MAX);
        for dref in [DatasetRef::by_id("nope"), DatasetRef::by_name("nope")] {
            let err = store.resolve(&dref).unwrap_err();
            assert_eq!(err.code, ErrorCode::NotFound);
            assert_eq!(store.drop_ref(&dref).unwrap_err().code, ErrorCode::NotFound);
        }
    }

    #[test]
    fn resolved_series_are_bitwise_the_uploaded_ones() {
        let store = DatasetStore::new(u64::MAX);
        let series = vec![vec![0.1 + 0.2, -0.0, f64::MIN_POSITIVE], vec![1.0 / 3.0]];
        store.upload("bits", vec![0, 1], series.clone()).unwrap();
        let resolved = store.resolve(&DatasetRef::by_name("bits")).unwrap();
        for (orig, got) in series.iter().zip(resolved.series.iter()) {
            assert_eq!(orig.len(), got.len());
            for (a, b) in orig.iter().zip(got.iter()) {
                assert_eq!(a.to_bits(), b.to_bits());
            }
        }
        assert_eq!(&resolved.labels[..], &[0, 1]);
    }

    #[test]
    fn byte_budget_is_enforced_with_replace_accounting() {
        let store = DatasetStore::new(64); // room for 8 samples total
        store.upload("a", vec![0], vec![vec![0.0; 6]]).unwrap(); // 48 bytes
        let err = store
            .upload("b", vec![0], vec![vec![0.0; 3]]) // +24 → 72 > 64
            .unwrap_err();
        assert_eq!(err.code, ErrorCode::Overloaded);
        // Replacing "a" with different content of size 8 samples is fine:
        // accounting removes the old 48 bytes first.
        store.upload("a", vec![0], vec![vec![1.0; 8]]).unwrap(); // 64 bytes exactly
        assert_eq!(store.stats(), (1, 64));
    }

    #[test]
    fn drop_frees_budget_and_listing_is_sorted() {
        let store = DatasetStore::new(u64::MAX);
        store.upload("zeta", vec![0], vec![vec![1.0]]).unwrap();
        let alpha = store.upload("alpha", vec![0], vec![vec![2.0]]).unwrap();
        let names: Vec<String> = store.list().into_iter().map(|d| d.name).collect();
        assert_eq!(names, vec!["alpha", "zeta"]);
        assert_eq!(
            store
                .drop_ref(&DatasetRef::by_id(&alpha.dataset_id))
                .unwrap(),
            1
        );
        assert_eq!(store.drop_ref(&DatasetRef::by_name("zeta")).unwrap(), 1);
        assert_eq!(store.stats(), (0, 0));
        // Dropped id reports not_found, naming the dropped dataset.
        let err = store
            .resolve(&DatasetRef::by_id(&alpha.dataset_id))
            .unwrap_err();
        assert_eq!(err.code, ErrorCode::NotFound);
        assert!(err.message.contains("dropped"), "{}", err.message);
    }
}
