//! The `mda-server` binary: serve the six distance functions and the
//! mining primitives over TCP, with graceful drain on SIGINT/SIGTERM.
//!
//! ```text
//! mda-server [--addr HOST:PORT] [--workers N] [--chunk-size N]
//!            [--max-queue-items N] [--batch-max-items N]
//!            [--default-deadline-ms MS] [--max-connections N]
//!            [--max-pipeline-depth N] [--write-high-water BYTES]
//!            [--dataset-max-bytes BYTES] [--fleet-watts W]
//! ```

use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;

use mda_server::{Server, ServerConfig};

/// Set from the signal handler; polled by the main loop.
static STOP: AtomicBool = AtomicBool::new(false);

const SIGINT: i32 = 2;
const SIGTERM: i32 = 15;

extern "C" fn on_signal(_signum: i32) {
    STOP.store(true, Ordering::SeqCst);
}

/// Installs a minimal async-signal-safe handler without any crate
/// dependency: `signal(2)` is in libc, which every Rust binary on this
/// platform already links.
fn install_signal_handlers() {
    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }
    // SAFETY: `on_signal` only performs an atomic store, which is
    // async-signal-safe; the handler address outlives the process.
    unsafe {
        signal(SIGINT, on_signal as *const () as usize);
        signal(SIGTERM, on_signal as *const () as usize);
    }
}

fn usage() -> ! {
    eprintln!(
        "usage: mda-server [--addr HOST:PORT] [--workers N] [--chunk-size N]\n\
         \x20                 [--max-queue-items N] [--batch-max-items N]\n\
         \x20                 [--default-deadline-ms MS] [--max-connections N]\n\
         \x20                 [--max-pipeline-depth N] [--write-high-water BYTES]\n\
         \x20                 [--dataset-max-bytes BYTES] [--fleet-watts W]"
    );
    std::process::exit(2);
}

fn parse_args() -> ServerConfig {
    let mut config = ServerConfig {
        addr: "127.0.0.1:7171".into(),
        ..ServerConfig::default()
    };
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut value = |name: &str| {
            args.next().unwrap_or_else(|| {
                eprintln!("missing value for {name}");
                usage();
            })
        };
        match flag.as_str() {
            "--addr" => config.addr = value("--addr"),
            "--workers" => config.workers = Some(parse_num(&value("--workers"), "--workers")),
            "--chunk-size" => {
                config.chunk_size = Some(parse_num(&value("--chunk-size"), "--chunk-size"));
            }
            "--max-queue-items" => {
                config.max_queue_items =
                    parse_num(&value("--max-queue-items"), "--max-queue-items");
            }
            "--batch-max-items" => {
                config.batch_max_items =
                    parse_num(&value("--batch-max-items"), "--batch-max-items");
            }
            "--default-deadline-ms" => {
                let ms: u64 = parse_num(&value("--default-deadline-ms"), "--default-deadline-ms");
                config.default_deadline = Some(Duration::from_millis(ms));
            }
            "--max-connections" => {
                config.max_connections =
                    parse_num(&value("--max-connections"), "--max-connections");
            }
            "--max-pipeline-depth" => {
                config.max_pipeline_depth =
                    parse_num(&value("--max-pipeline-depth"), "--max-pipeline-depth");
            }
            "--write-high-water" => {
                config.write_high_water =
                    parse_num(&value("--write-high-water"), "--write-high-water");
            }
            "--dataset-max-bytes" => {
                config.dataset_max_bytes =
                    parse_num(&value("--dataset-max-bytes"), "--dataset-max-bytes");
            }
            "--fleet-watts" => {
                config.fleet_power_w = parse_num(&value("--fleet-watts"), "--fleet-watts");
            }
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown flag `{other}`");
                usage();
            }
        }
    }
    config
}

fn parse_num<T: std::str::FromStr>(s: &str, flag: &str) -> T {
    s.parse().unwrap_or_else(|_| {
        eprintln!("invalid value `{s}` for {flag}");
        usage();
    })
}

fn main() {
    let config = parse_args();
    install_signal_handlers();
    let server = match Server::start(config) {
        Ok(server) => server,
        Err(e) => {
            eprintln!("mda-server: {e}");
            std::process::exit(1);
        }
    };
    println!("mda-server listening on {}", server.local_addr());
    println!("metrics: GET http://{}/", server.local_addr());

    while !STOP.load(Ordering::SeqCst) {
        std::thread::sleep(Duration::from_millis(50));
    }
    eprintln!("mda-server: signal received, draining…");
    server.shutdown_and_join();
    eprintln!("mda-server: drained, bye");
}
