//! Wire-bytes identity for the deprecated client helpers.
//!
//! The PR that introduced `QueryOptions` kept every pre-routing helper as
//! a deprecated shim delegating to the `query_*` methods. That promise is
//! only real if it holds **on the wire**: for every shim, the frames it
//! emits must be byte-identical to those of the `query_*` call it
//! documents as its replacement — same JSON, same field order, no
//! `accuracy` field materializing out of nowhere.
//!
//! A capture server (a raw `TcpListener`, not `mda-server`) records every
//! request payload verbatim and answers each op with a canned well-formed
//! reply, so both sides of each pair complete a full round-trip.

#![allow(deprecated)]

use std::net::{SocketAddr, TcpListener};
use std::sync::mpsc::{channel, Receiver};
use std::time::Duration;

use mda_distance::DistanceKind;
use mda_server::client::{Client, QueryOptions, QueryOpts};
use mda_server::protocol::{
    decode_request, encode_reply, read_frame, write_frame, Reply, Request, ResponseBody,
    TrainInstance, DEFAULT_MAX_FRAME_BYTES,
};
use mda_server::DatasetRef;

/// Starts a one-shot capture server: accepts connections, records each
/// request's payload bytes on `tx`, and answers with a canned reply of the
/// right shape so the client call returns.
fn capture_server() -> (SocketAddr, Receiver<Vec<u8>>) {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind capture server");
    let addr = listener.local_addr().expect("local addr");
    let (tx, rx) = channel::<Vec<u8>>();
    std::thread::spawn(move || {
        for stream in listener.incoming() {
            let Ok(mut stream) = stream else { break };
            let _ = stream.set_read_timeout(Some(Duration::from_secs(5)));
            while let Ok(payload) = read_frame(&mut stream, DEFAULT_MAX_FRAME_BYTES) {
                let env = decode_request(&payload).expect("capture server got valid request");
                if tx.send(payload).is_err() {
                    return;
                }
                let body = match env.req {
                    Request::Distance { .. } => ResponseBody::Distance { value: 0.0 },
                    Request::Batch { pairs, .. } => ResponseBody::Batch {
                        values: vec![0.0; pairs.len()],
                    },
                    Request::Knn { .. } => ResponseBody::Knn {
                        label: 0,
                        score: 0.0,
                        nearest_index: 0,
                    },
                    Request::Search { .. } => ResponseBody::Search {
                        offset: 0,
                        distance: 0.0,
                    },
                    _ => ResponseBody::Pong,
                };
                let bytes = encode_reply(&Reply::new(env.id, body));
                if write_frame(&mut stream, &bytes).is_err() {
                    break;
                }
            }
        }
    });
    (addr, rx)
}

/// Runs `call` against a fresh client (ids start equal across clients) and
/// returns the exact request payload(s) the capture server saw.
fn frames_of(
    addr: SocketAddr,
    rx: &Receiver<Vec<u8>>,
    call: impl FnOnce(&mut Client),
) -> Vec<Vec<u8>> {
    let mut client = Client::connect(addr).expect("connect capture server");
    call(&mut client);
    let mut frames = Vec::new();
    while let Ok(frame) = rx.recv_timeout(Duration::from_millis(200)) {
        frames.push(frame);
    }
    assert!(!frames.is_empty(), "capture server saw no frames");
    frames
}

fn assert_identical(
    addr: SocketAddr,
    rx: &Receiver<Vec<u8>>,
    name: &str,
    legacy: impl FnOnce(&mut Client),
    replacement: impl FnOnce(&mut Client),
) {
    let old = frames_of(addr, rx, legacy);
    let new = frames_of(addr, rx, replacement);
    assert_eq!(
        old.len(),
        new.len(),
        "{name}: shim and replacement sent different frame counts"
    );
    for (i, (o, n)) in old.iter().zip(&new).enumerate() {
        assert_eq!(
            o,
            n,
            "{name}: frame {i} differs\n legacy: {}\n  query: {}",
            String::from_utf8_lossy(o),
            String::from_utf8_lossy(n)
        );
    }
}

fn series(len: usize, seed: usize) -> Vec<f64> {
    (0..len)
        .map(|i| ((i + 13 * seed) as f64 * 0.37).sin() * 1.9)
        .collect()
}

#[test]
fn every_deprecated_shim_is_wire_identical_to_its_query_replacement() {
    let (addr, rx) = capture_server();
    let p = series(24, 1);
    let q = series(24, 2);
    let pairs = vec![(series(8, 3), series(8, 4)), (series(8, 5), series(8, 6))];
    let train: Vec<TrainInstance> = (0..4)
        .map(|i| TrainInstance {
            label: i % 2,
            series: series(12, 20 + i),
        })
        .collect();
    let legacy_opts = QueryOpts {
        threshold: Some(0.5),
        band: Some(3),
        deadline_ms: Some(250),
    };
    let new_opts = QueryOptions::from(legacy_opts);

    {
        let (p, q) = (p.clone(), q.clone());
        let (p2, q2) = (p.clone(), q.clone());
        assert_identical(
            addr,
            &rx,
            "distance",
            move |c| {
                c.distance(DistanceKind::Dtw, &p, &q).expect("legacy");
            },
            move |c| {
                c.query_distance(DistanceKind::Dtw, &p2, &q2, &QueryOptions::new())
                    .expect("query");
            },
        );
    }
    {
        let (p, q) = (p.clone(), q.clone());
        let (p2, q2) = (p.clone(), q.clone());
        let opts = new_opts.clone();
        assert_identical(
            addr,
            &rx,
            "distance_with",
            move |c| {
                c.distance_with(DistanceKind::Dtw, &p, &q, legacy_opts)
                    .expect("legacy");
            },
            move |c| {
                c.query_distance(DistanceKind::Dtw, &p2, &q2, &opts)
                    .expect("query");
            },
        );
    }
    {
        let (a, b) = (pairs.clone(), pairs.clone());
        assert_identical(
            addr,
            &rx,
            "batch",
            move |c| {
                c.batch(DistanceKind::Manhattan, &a, legacy_opts)
                    .expect("legacy");
            },
            {
                let opts = new_opts.clone();
                move |c| {
                    c.query_batch(DistanceKind::Manhattan, &b, None, &opts)
                        .expect("query");
                }
            },
        );
    }
    {
        let (q1, q2) = (p.clone(), p.clone());
        let opts = new_opts.clone().dataset(DatasetRef::by_name("corpus"));
        assert_identical(
            addr,
            &rx,
            "batch_resident",
            move |c| {
                c.batch_resident(
                    DistanceKind::Manhattan,
                    &q1,
                    DatasetRef::by_name("corpus"),
                    legacy_opts,
                )
                .expect("legacy");
            },
            move |c| {
                c.query_batch(DistanceKind::Manhattan, &[], Some(&q2), &opts)
                    .expect("query");
            },
        );
    }
    {
        let (q1, q2) = (p.clone(), p.clone());
        let (t1, t2) = (train.clone(), train.clone());
        let opts = new_opts.clone();
        assert_identical(
            addr,
            &rx,
            "knn",
            move |c| {
                c.knn(DistanceKind::Dtw, 3, &q1, &t1, legacy_opts)
                    .expect("legacy");
            },
            move |c| {
                c.query_knn(DistanceKind::Dtw, 3, &q2, &t2, &opts)
                    .expect("query");
            },
        );
    }
    {
        let (q1, q2) = (p.clone(), p.clone());
        let opts = new_opts.clone().dataset(DatasetRef::by_id("abc123"));
        assert_identical(
            addr,
            &rx,
            "knn_resident",
            move |c| {
                c.knn_resident(
                    DistanceKind::Dtw,
                    3,
                    &q1,
                    DatasetRef::by_id("abc123"),
                    legacy_opts,
                )
                .expect("legacy");
            },
            move |c| {
                c.query_knn(DistanceKind::Dtw, 3, &q2, &[], &opts)
                    .expect("query");
            },
        );
    }
    {
        let (q1, q2) = (series(8, 7), series(8, 7));
        let (h1, h2) = (p.clone(), p.clone());
        assert_identical(
            addr,
            &rx,
            "search",
            move |c| {
                c.search(&q1, &h1, 8, 2, legacy_opts).expect("legacy");
            },
            {
                let opts = new_opts.clone();
                move |c| {
                    c.query_search(&q2, &h2, 0, 8, 2, &opts).expect("query");
                }
            },
        );
    }
    {
        let (q1, q2) = (series(8, 9), series(8, 9));
        let opts = new_opts
            .clone()
            .dataset(DatasetRef::by_name_version("corpus", 2));
        assert_identical(
            addr,
            &rx,
            "search_resident",
            move |c| {
                c.search_resident(
                    &q1,
                    DatasetRef::by_name_version("corpus", 2),
                    5,
                    8,
                    2,
                    legacy_opts,
                )
                .expect("legacy");
            },
            move |c| {
                c.query_search(&q2, &[], 5, 8, 2, &opts).expect("query");
            },
        );
    }
}

/// Default-option `query_*` requests must not carry an `accuracy` field at
/// all — the bytes must be exactly the pre-routing wire format.
#[test]
fn default_options_leave_no_accuracy_on_the_wire() {
    let (addr, rx) = capture_server();
    let p = series(16, 1);
    let q = series(16, 2);
    let frames = frames_of(addr, &rx, |c| {
        c.query_distance(DistanceKind::Dtw, &p, &q, &QueryOptions::new())
            .expect("query");
    });
    for frame in frames {
        let text = String::from_utf8(frame).expect("utf-8 payload");
        assert!(
            !text.contains("accuracy"),
            "accuracy leaked into a default-option request: {text}"
        );
    }
}
