//! End-to-end tests over loopback: concurrent clients must observe
//! bitwise-identical results to direct library calls, overload must shed
//! with `overloaded` (never panic or deadlock), and shutdown must drain.

use std::io::BufReader;
use std::net::TcpStream;
use std::time::Duration;

use mda_distance::mining::{KnnClassifier, SubsequenceSearch};
use mda_distance::{boxed_distance, BatchEngine, DistanceKind};
use mda_server::protocol::{
    decode_reply, encode_request, read_frame, write_frame, Envelope, ErrorCode, Request,
    ResponseBody, TrainInstance, DEFAULT_MAX_FRAME_BYTES,
};
use mda_server::{Client, ClientError, QueryOpts, Server, ServerConfig};

fn series(len: usize, seed: usize) -> Vec<f64> {
    (0..len)
        .map(|i| ((i + 13 * seed) as f64 * 0.37).sin() * 1.8 + (seed as f64 * 0.71).cos())
        .collect()
}

fn start(config: ServerConfig) -> Server {
    Server::start(config).expect("server start")
}

#[test]
fn concurrent_clients_match_direct_library_calls_bitwise() {
    let server = start(ServerConfig {
        workers: Some(2),
        ..ServerConfig::default()
    });
    let addr = server.local_addr();

    // Direct-library expectations, computed once up front.
    let p = series(48, 1);
    let q = series(48, 2);
    let expected_distance: Vec<(DistanceKind, u64)> = DistanceKind::ALL
        .into_iter()
        .map(|kind| {
            let d = boxed_distance(kind).evaluate(&p, &q).expect("direct call");
            (kind, d.to_bits())
        })
        .collect();

    let train: Vec<TrainInstance> = (0..12)
        .map(|i| TrainInstance {
            label: i % 3,
            series: series(48, 100 + i),
        })
        .collect();
    let mut knn = KnnClassifier::new(boxed_distance(DistanceKind::Dtw), 3);
    for t in &train {
        knn.fit(t.label, t.series.clone());
    }
    let expected_knn = knn.classify(&p).expect("direct kNN");

    let clients = 6;
    std::thread::scope(|scope| {
        for c in 0..clients {
            let (p, q, train) = (&p, &q, &train);
            let expected_distance = &expected_distance;
            let expected_knn = &expected_knn;
            scope.spawn(move || {
                let mut client = Client::connect(addr).expect("connect");
                // Interleave ops differently per client to force coalescing
                // of mixed requests.
                for round in 0..3 {
                    for &(kind, want_bits) in expected_distance.iter().skip(c % 3) {
                        let got = client.distance(kind, p, q).expect("served distance");
                        assert_eq!(
                            got.to_bits(),
                            want_bits,
                            "client {c} round {round}: {kind} diverged from direct call"
                        );
                    }
                    let got = client
                        .knn(DistanceKind::Dtw, 3, p, train, QueryOpts::default())
                        .expect("served kNN");
                    assert_eq!(got.label, expected_knn.label);
                    assert_eq!(got.score.to_bits(), expected_knn.score.to_bits());
                    assert_eq!(got.nearest_index, expected_knn.nearest_index);
                }
            });
        }
    });

    // Every compute request above rode the coalescing queue.
    let m = server.metrics();
    assert!(m.batches.get() > 0, "dispatcher never ran a batch");
    assert_eq!(m.shed.get(), 0, "no request should have been shed");
    server.shutdown_and_join();
}

#[test]
fn served_search_matches_direct_subsequence_search() {
    let server = start(ServerConfig::default());
    let mut client = Client::connect(server.local_addr()).expect("connect");
    let query = series(24, 7);
    let haystack = series(400, 8);
    let (window, band) = (24, 3);
    let (direct, _stats) = SubsequenceSearch::new(window, band)
        .with_engine(BatchEngine::serial())
        .run(&query, &haystack)
        .expect("direct search");
    let served = client
        .search(&query, &haystack, window, band, QueryOpts::default())
        .expect("served search");
    assert_eq!(served.offset, direct.offset);
    assert_eq!(served.distance.to_bits(), direct.distance.to_bits());
    server.shutdown_and_join();
}

#[test]
fn over_capacity_burst_is_shed_with_overloaded_replies() {
    // Tiny queue, one-item batches: the dispatcher drains slowly while a
    // long search holds it busy, so a pipelined burst must overflow.
    let server = start(ServerConfig {
        workers: Some(1),
        max_queue_items: 4,
        batch_max_items: 1,
        ..ServerConfig::default()
    });
    let addr = server.local_addr();

    let stream = TcpStream::connect(addr).expect("connect");
    let mut writer = stream.try_clone().expect("clone");
    let mut reader = BufReader::new(stream);

    // Frame 0: a slow search that occupies the dispatcher.
    let slow = Envelope {
        id: 0,
        req: Request::Search {
            query: series(128, 1),
            haystack: series(6000, 2),
            window: 128,
            band: 16,
            deadline_ms: None,
        },
    };
    write_frame(&mut writer, &encode_request(&slow)).expect("write slow search");

    // Burst: each batch carries 8 work items against a 4-item queue. The
    // first is admitted (empty-queue exception); while it waits behind the
    // slow search the rest must be shed.
    let burst = 10;
    let pairs: Vec<(Vec<f64>, Vec<f64>)> = (0..8)
        .map(|i| (series(64, i), series(64, i + 50)))
        .collect();
    for id in 1..=burst {
        let env = Envelope {
            id,
            req: Request::Batch {
                kind: DistanceKind::Dtw,
                pairs: pairs.clone(),
                threshold: None,
                band: None,
                deadline_ms: None,
            },
        };
        write_frame(&mut writer, &encode_request(&env)).expect("write burst frame");
    }

    let mut ok = 0usize;
    let mut overloaded = 0usize;
    for _ in 0..=burst {
        let payload = read_frame(&mut reader, DEFAULT_MAX_FRAME_BYTES).expect("read reply");
        let reply = decode_reply(&payload).expect("decode reply");
        match reply.body {
            ResponseBody::Batch { .. } | ResponseBody::Search { .. } => ok += 1,
            ResponseBody::Error {
                code: ErrorCode::Overloaded,
                ..
            } => overloaded += 1,
            other => panic!("unexpected reply {other:?}"),
        }
    }
    assert!(overloaded > 0, "an over-capacity burst must shed requests");
    assert!(
        ok >= 2,
        "the slow search and the first burst job must finish"
    );
    assert_eq!(server.metrics().shed.get(), overloaded as u64);
    server.shutdown_and_join();
}

#[test]
fn shutdown_drains_admitted_work_before_closing() {
    let server = start(ServerConfig {
        workers: Some(1),
        ..ServerConfig::default()
    });
    let addr = server.local_addr();

    let stream = TcpStream::connect(addr).expect("connect");
    let mut writer = stream.try_clone().expect("clone");
    let mut reader = BufReader::new(stream);
    let env = Envelope {
        id: 42,
        req: Request::Search {
            query: series(96, 3),
            haystack: series(4000, 4),
            window: 96,
            band: 12,
            deadline_ms: None,
        },
    };
    write_frame(&mut writer, &encode_request(&env)).expect("write search");
    // Let the server accept and enqueue before the drain begins.
    std::thread::sleep(Duration::from_millis(150));
    server.shutdown_and_join();

    // The admitted search was computed and its reply flushed pre-close.
    let payload = read_frame(&mut reader, DEFAULT_MAX_FRAME_BYTES).expect("drained reply");
    let reply = decode_reply(&payload).expect("decode reply");
    assert_eq!(reply.id, 42);
    assert!(
        matches!(reply.body, ResponseBody::Search { .. }),
        "expected the search result, got {:?}",
        reply.body
    );

    // The listener is gone: new connections are refused (or reset).
    assert!(
        TcpStream::connect(addr).is_err() || {
            // Some platforms accept briefly; a ping must then fail.
            Client::connect(addr).and_then(|mut c| c.ping()).is_err()
        },
        "server should no longer serve new connections"
    );
}

#[test]
fn expired_deadline_yields_timeout_not_result() {
    let server = start(ServerConfig {
        workers: Some(1),
        batch_max_items: 1,
        ..ServerConfig::default()
    });
    let addr = server.local_addr();
    let stream = TcpStream::connect(addr).expect("connect");
    let mut writer = stream.try_clone().expect("clone");
    let mut reader = BufReader::new(stream);

    // Occupy the dispatcher, then queue a 1 ms-deadline request behind it.
    let slow = Envelope {
        id: 1,
        req: Request::Search {
            query: series(128, 5),
            haystack: series(6000, 6),
            window: 128,
            band: 16,
            deadline_ms: None,
        },
    };
    let doomed = Envelope {
        id: 2,
        req: Request::Distance {
            kind: DistanceKind::Manhattan,
            p: vec![0.0, 1.0],
            q: vec![0.0, 2.0],
            threshold: None,
            band: None,
            deadline_ms: Some(1),
        },
    };
    write_frame(&mut writer, &encode_request(&slow)).expect("write slow");
    write_frame(&mut writer, &encode_request(&doomed)).expect("write doomed");

    let mut saw_timeout = false;
    for _ in 0..2 {
        let payload = read_frame(&mut reader, DEFAULT_MAX_FRAME_BYTES).expect("read reply");
        let reply = decode_reply(&payload).expect("decode reply");
        if reply.id == 2 {
            match reply.body {
                ResponseBody::Error {
                    code: ErrorCode::Timeout,
                    ..
                } => saw_timeout = true,
                other => panic!("expected timeout, got {other:?}"),
            }
        }
    }
    assert!(saw_timeout, "the deadline-bearing request never replied");
    assert_eq!(server.metrics().timeouts.get(), 1);
    server.shutdown_and_join();
}

#[test]
fn malformed_and_bad_requests_answered_without_closing_healthy_path() {
    let server = start(ServerConfig::default());
    let addr = server.local_addr();

    // JSON garbage inside a well-formed frame: bad_request, connection
    // stays usable.
    let stream = TcpStream::connect(addr).expect("connect");
    let mut writer = stream.try_clone().expect("clone");
    let mut reader = BufReader::new(stream);
    write_frame(&mut writer, b"this is not json").expect("write garbage");
    let payload = read_frame(&mut reader, DEFAULT_MAX_FRAME_BYTES).expect("reply");
    let reply = decode_reply(&payload).expect("decode");
    assert!(matches!(
        reply.body,
        ResponseBody::Error {
            code: ErrorCode::BadRequest,
            ..
        }
    ));
    let ping = Envelope {
        id: 3,
        req: Request::Ping,
    };
    write_frame(&mut writer, &encode_request(&ping)).expect("write ping");
    let payload = read_frame(&mut reader, DEFAULT_MAX_FRAME_BYTES).expect("ping reply");
    assert!(matches!(
        decode_reply(&payload).expect("decode").body,
        ResponseBody::Pong
    ));

    // A semantically bad compute request (length mismatch for MD) errors
    // without poisoning the client.
    let mut client = Client::connect(addr).expect("connect");
    let err = client
        .distance(DistanceKind::Manhattan, &[0.0], &[0.0, 1.0])
        .expect_err("length mismatch must fail");
    assert!(
        matches!(
            &err,
            ClientError::Server {
                code: ErrorCode::BadRequest,
                ..
            }
        ),
        "{err}"
    );
    let d = client
        .distance(DistanceKind::Manhattan, &[0.0, 1.0], &[0.0, 3.0])
        .expect("healthy follow-up");
    assert_eq!(d, 2.0);
    server.shutdown_and_join();
}

#[test]
fn http_scrape_on_the_same_port_returns_metrics_text() {
    use std::io::{Read, Write};
    let server = start(ServerConfig::default());
    let mut client = Client::connect(server.local_addr()).expect("connect");
    client.ping().expect("ping");
    let in_protocol = client.metrics_text().expect("metrics over protocol");
    assert!(in_protocol.contains("mda_requests_total{op=\"ping\"} 1"));

    let mut http = TcpStream::connect(server.local_addr()).expect("http connect");
    http.write_all(b"GET /metrics HTTP/1.1\r\nHost: x\r\n\r\n")
        .expect("http request");
    let mut response = String::new();
    http.read_to_string(&mut response).expect("http response");
    assert!(response.starts_with("HTTP/1.1 200 OK"), "{response}");
    assert!(response.contains("mda_requests_total"), "{response}");
    server.shutdown_and_join();
}
