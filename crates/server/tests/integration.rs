//! End-to-end tests over loopback: concurrent clients must observe
//! bitwise-identical results to direct library calls, overload must shed
//! with `overloaded` (never panic or deadlock), and shutdown must drain.

use std::io::BufReader;
use std::net::TcpStream;
use std::time::Duration;

use mda_distance::mining::{KnnClassifier, SubsequenceSearch};
use mda_distance::{boxed_distance, BatchEngine, DistanceKind};
use mda_server::protocol::{
    decode_reply, encode_request, read_frame, write_frame, Envelope, ErrorCode, Request,
    ResponseBody, TrainInstance, DEFAULT_MAX_FRAME_BYTES,
};
use mda_server::{Client, ClientError, QueryOptions, Server, ServerConfig};

fn series(len: usize, seed: usize) -> Vec<f64> {
    (0..len)
        .map(|i| ((i + 13 * seed) as f64 * 0.37).sin() * 1.8 + (seed as f64 * 0.71).cos())
        .collect()
}

fn start(config: ServerConfig) -> Server {
    Server::start(config).expect("server start")
}

#[test]
fn concurrent_clients_match_direct_library_calls_bitwise() {
    let server = start(ServerConfig {
        workers: Some(2),
        ..ServerConfig::default()
    });
    let addr = server.local_addr();

    // Direct-library expectations, computed once up front.
    let p = series(48, 1);
    let q = series(48, 2);
    let expected_distance: Vec<(DistanceKind, u64)> = DistanceKind::ALL
        .into_iter()
        .map(|kind| {
            let d = boxed_distance(kind).evaluate(&p, &q).expect("direct call");
            (kind, d.to_bits())
        })
        .collect();

    let train: Vec<TrainInstance> = (0..12)
        .map(|i| TrainInstance {
            label: i % 3,
            series: series(48, 100 + i),
        })
        .collect();
    let mut knn = KnnClassifier::new(boxed_distance(DistanceKind::Dtw), 3);
    for t in &train {
        knn.fit(t.label, t.series.clone());
    }
    let expected_knn = knn.classify(&p).expect("direct kNN");

    let clients = 6;
    std::thread::scope(|scope| {
        for c in 0..clients {
            let (p, q, train) = (&p, &q, &train);
            let expected_distance = &expected_distance;
            let expected_knn = &expected_knn;
            scope.spawn(move || {
                let mut client = Client::connect(addr).expect("connect");
                // Interleave ops differently per client to force coalescing
                // of mixed requests.
                for round in 0..3 {
                    for &(kind, want_bits) in expected_distance.iter().skip(c % 3) {
                        let got = client
                            .query_distance(kind, p, q, &QueryOptions::new())
                            .expect("served distance")
                            .value;
                        assert_eq!(
                            got.to_bits(),
                            want_bits,
                            "client {c} round {round}: {kind} diverged from direct call"
                        );
                    }
                    let got = client
                        .query_knn(DistanceKind::Dtw, 3, p, train, &QueryOptions::new())
                        .expect("served kNN")
                        .value;
                    assert_eq!(got.label, expected_knn.label);
                    assert_eq!(got.score.to_bits(), expected_knn.score.to_bits());
                    assert_eq!(got.nearest_index, expected_knn.nearest_index);
                }
            });
        }
    });

    // Every compute request above rode the coalescing queue.
    let m = server.metrics();
    assert!(m.batches.get() > 0, "dispatcher never ran a batch");
    assert_eq!(m.shed.get(), 0, "no request should have been shed");
    server.shutdown_and_join();
}

#[test]
fn served_search_matches_direct_subsequence_search() {
    let server = start(ServerConfig::default());
    let mut client = Client::connect(server.local_addr()).expect("connect");
    let query = series(24, 7);
    let haystack = series(400, 8);
    let (window, band) = (24, 3);
    let (direct, _stats) = SubsequenceSearch::new(window, band)
        .with_engine(BatchEngine::serial())
        .run(&query, &haystack)
        .expect("direct search");
    let served = client
        .query_search(&query, &haystack, 0, window, band, &QueryOptions::new())
        .expect("served search")
        .value;
    assert_eq!(served.offset, direct.offset);
    assert_eq!(served.distance.to_bits(), direct.distance.to_bits());
    server.shutdown_and_join();
}

#[test]
fn over_capacity_burst_is_shed_with_overloaded_replies() {
    // Tiny queue, one-item batches: the dispatcher drains slowly while a
    // long search holds it busy, so a pipelined burst must overflow.
    let server = start(ServerConfig {
        workers: Some(1),
        max_queue_items: 4,
        batch_max_items: 1,
        ..ServerConfig::default()
    });
    let addr = server.local_addr();

    let stream = TcpStream::connect(addr).expect("connect");
    let mut writer = stream.try_clone().expect("clone");
    let mut reader = BufReader::new(stream);

    // Frame 0: a slow search that occupies the dispatcher.
    let slow = Envelope {
        id: 0,
        req: Request::Search {
            query: series(128, 1),
            haystack: series(6000, 2),
            dataset: None,
            series_index: 0,
            window: 128,
            band: 16,
            deadline_ms: None,
            accuracy: None,
        },
    };
    write_frame(&mut writer, &encode_request(&slow)).expect("write slow search");

    // Burst: each batch carries 8 work items against a 4-item queue. The
    // first is admitted (empty-queue exception); while it waits behind the
    // slow search the rest must be shed.
    let burst = 10;
    let pairs: Vec<(Vec<f64>, Vec<f64>)> = (0..8)
        .map(|i| (series(64, i), series(64, i + 50)))
        .collect();
    for id in 1..=burst {
        let env = Envelope {
            id,
            req: Request::Batch {
                kind: DistanceKind::Dtw,
                pairs: pairs.clone(),
                query: None,
                dataset: None,
                threshold: None,
                band: None,
                deadline_ms: None,
                accuracy: None,
            },
        };
        write_frame(&mut writer, &encode_request(&env)).expect("write burst frame");
    }

    let mut ok = 0usize;
    let mut overloaded = 0usize;
    for _ in 0..=burst {
        let payload = read_frame(&mut reader, DEFAULT_MAX_FRAME_BYTES).expect("read reply");
        let reply = decode_reply(&payload).expect("decode reply");
        match reply.body {
            ResponseBody::Batch { .. } | ResponseBody::Search { .. } => ok += 1,
            ResponseBody::Error {
                code: ErrorCode::Overloaded,
                ..
            } => overloaded += 1,
            other => panic!("unexpected reply {other:?}"),
        }
    }
    assert!(overloaded > 0, "an over-capacity burst must shed requests");
    assert!(
        ok >= 2,
        "the slow search and the first burst job must finish"
    );
    assert_eq!(server.metrics().shed.get(), overloaded as u64);
    server.shutdown_and_join();
}

#[test]
fn shutdown_drains_admitted_work_before_closing() {
    let server = start(ServerConfig {
        workers: Some(1),
        ..ServerConfig::default()
    });
    let addr = server.local_addr();

    let stream = TcpStream::connect(addr).expect("connect");
    let mut writer = stream.try_clone().expect("clone");
    let mut reader = BufReader::new(stream);
    let env = Envelope {
        id: 42,
        req: Request::Search {
            query: series(96, 3),
            haystack: series(4000, 4),
            dataset: None,
            series_index: 0,
            window: 96,
            band: 12,
            deadline_ms: None,
            accuracy: None,
        },
    };
    write_frame(&mut writer, &encode_request(&env)).expect("write search");
    // Let the server accept and enqueue before the drain begins.
    std::thread::sleep(Duration::from_millis(150));
    server.shutdown_and_join();

    // The admitted search was computed and its reply flushed pre-close.
    let payload = read_frame(&mut reader, DEFAULT_MAX_FRAME_BYTES).expect("drained reply");
    let reply = decode_reply(&payload).expect("decode reply");
    assert_eq!(reply.id, 42);
    assert!(
        matches!(reply.body, ResponseBody::Search { .. }),
        "expected the search result, got {:?}",
        reply.body
    );

    // The listener is gone: new connections are refused (or reset).
    assert!(
        TcpStream::connect(addr).is_err() || {
            // Some platforms accept briefly; a ping must then fail.
            Client::connect(addr).and_then(|mut c| c.ping()).is_err()
        },
        "server should no longer serve new connections"
    );
}

#[test]
fn expired_deadline_yields_timeout_not_result() {
    let server = start(ServerConfig {
        workers: Some(1),
        batch_max_items: 1,
        ..ServerConfig::default()
    });
    let addr = server.local_addr();
    let stream = TcpStream::connect(addr).expect("connect");
    let mut writer = stream.try_clone().expect("clone");
    let mut reader = BufReader::new(stream);

    // Occupy the dispatcher, then queue a 1 ms-deadline request behind it.
    let slow = Envelope {
        id: 1,
        req: Request::Search {
            query: series(128, 5),
            haystack: series(6000, 6),
            dataset: None,
            series_index: 0,
            window: 128,
            band: 16,
            deadline_ms: None,
            accuracy: None,
        },
    };
    let doomed = Envelope {
        id: 2,
        req: Request::Distance {
            kind: DistanceKind::Manhattan,
            p: vec![0.0, 1.0],
            q: vec![0.0, 2.0],
            threshold: None,
            band: None,
            deadline_ms: Some(1),
            accuracy: None,
        },
    };
    write_frame(&mut writer, &encode_request(&slow)).expect("write slow");
    write_frame(&mut writer, &encode_request(&doomed)).expect("write doomed");

    let mut saw_timeout = false;
    for _ in 0..2 {
        let payload = read_frame(&mut reader, DEFAULT_MAX_FRAME_BYTES).expect("read reply");
        let reply = decode_reply(&payload).expect("decode reply");
        if reply.id == 2 {
            match reply.body {
                ResponseBody::Error {
                    code: ErrorCode::Timeout,
                    ..
                } => saw_timeout = true,
                other => panic!("expected timeout, got {other:?}"),
            }
        }
    }
    assert!(saw_timeout, "the deadline-bearing request never replied");
    assert_eq!(server.metrics().timeouts.get(), 1);
    server.shutdown_and_join();
}

#[test]
fn malformed_and_bad_requests_answered_without_closing_healthy_path() {
    let server = start(ServerConfig::default());
    let addr = server.local_addr();

    // JSON garbage inside a well-formed frame: bad_request, connection
    // stays usable.
    let stream = TcpStream::connect(addr).expect("connect");
    let mut writer = stream.try_clone().expect("clone");
    let mut reader = BufReader::new(stream);
    write_frame(&mut writer, b"this is not json").expect("write garbage");
    let payload = read_frame(&mut reader, DEFAULT_MAX_FRAME_BYTES).expect("reply");
    let reply = decode_reply(&payload).expect("decode");
    assert!(matches!(
        reply.body,
        ResponseBody::Error {
            code: ErrorCode::BadRequest,
            ..
        }
    ));
    let ping = Envelope {
        id: 3,
        req: Request::Ping,
    };
    write_frame(&mut writer, &encode_request(&ping)).expect("write ping");
    let payload = read_frame(&mut reader, DEFAULT_MAX_FRAME_BYTES).expect("ping reply");
    assert!(matches!(
        decode_reply(&payload).expect("decode").body,
        ResponseBody::Pong
    ));

    // A semantically bad compute request (length mismatch for MD) errors
    // without poisoning the client.
    let mut client = Client::connect(addr).expect("connect");
    let err = client
        .query_distance(
            DistanceKind::Manhattan,
            &[0.0],
            &[0.0, 1.0],
            &QueryOptions::new(),
        )
        .expect_err("length mismatch must fail");
    assert!(
        matches!(
            &err,
            ClientError::Server {
                code: ErrorCode::BadRequest,
                ..
            }
        ),
        "{err}"
    );
    let d = client
        .query_distance(
            DistanceKind::Manhattan,
            &[0.0, 1.0],
            &[0.0, 3.0],
            &QueryOptions::new(),
        )
        .expect("healthy follow-up")
        .value;
    assert_eq!(d, 2.0);
    server.shutdown_and_join();
}

#[test]
fn partial_frames_across_many_reads_are_assembled() {
    use std::io::Write;
    let server = start(ServerConfig::default());
    let stream = TcpStream::connect(server.local_addr()).expect("connect");
    stream.set_nodelay(true).expect("nodelay");
    let mut writer = stream.try_clone().expect("clone");
    let mut reader = BufReader::new(stream);

    // One ping frame trickled in 1–3 byte slices, flushed between slices,
    // so the event loop sees the frame across many read() calls.
    let env = Envelope {
        id: 9,
        req: Request::Ping,
    };
    let payload = encode_request(&env);
    let mut framed = (payload.len() as u32).to_be_bytes().to_vec();
    framed.extend_from_slice(&payload);
    for chunk in framed.chunks(3) {
        writer.write_all(chunk).expect("write slice");
        writer.flush().expect("flush slice");
        std::thread::sleep(Duration::from_millis(2));
    }
    let payload = read_frame(&mut reader, DEFAULT_MAX_FRAME_BYTES).expect("reply");
    let reply = decode_reply(&payload).expect("decode");
    assert_eq!(reply.id, 9);
    assert!(matches!(reply.body, ResponseBody::Pong));
    server.shutdown_and_join();
}

#[test]
fn pipelined_send_many_matches_sequential_calls_bitwise() {
    let server = start(ServerConfig::default());
    let addr = server.local_addr();
    let p = series(32, 11);
    let q = series(32, 12);

    // Sequential request/reply baseline on one connection...
    let mut seq = Client::connect(addr).expect("connect");
    let baseline: Vec<f64> = DistanceKind::ALL
        .into_iter()
        .map(|kind| {
            seq.query_distance(kind, &p, &q, &QueryOptions::new())
                .expect("sequential")
                .value
        })
        .collect();

    // ...must be bitwise-reproduced by a pipelined burst on one connection.
    let mut pipelined = Client::connect(addr).expect("connect");
    let reqs: Vec<Request> = DistanceKind::ALL
        .into_iter()
        .map(|kind| Request::Distance {
            kind,
            p: p.clone(),
            q: q.clone(),
            threshold: None,
            band: None,
            deadline_ms: None,
            accuracy: None,
        })
        .collect();
    let replies = pipelined.send_many(reqs).expect("pipelined burst");
    assert_eq!(replies.len(), baseline.len());
    for (reply, want) in replies.iter().zip(&baseline) {
        let ResponseBody::Distance { value } = reply else {
            panic!("expected a distance reply, got {reply:?}");
        };
        assert_eq!(value.to_bits(), want.to_bits());
    }
    // The burst actually pipelined: more than one request was in flight on
    // the connection at once.
    assert!(
        server
            .metrics()
            .pipeline_depth_max
            .load(std::sync::atomic::Ordering::Relaxed)
            > 1,
        "send_many never had two requests in flight"
    );
    server.shutdown_and_join();
}

#[test]
fn write_backpressure_on_slow_reader_keeps_other_connections_live() {
    let server = start(ServerConfig {
        write_high_water: 64 * 1024,
        // Each query decomposes into 40k work items; don't shed them.
        max_queue_items: 200_000,
        ..ServerConfig::default()
    });
    let addr = server.local_addr();

    // A resident dataset whose batch reply (~one f64 per series) is far
    // larger than the write high-water mark.
    let mut uploader = Client::connect(addr).expect("connect");
    let entries: Vec<mda_server::DatasetEntry> = (0..40_000)
        .map(|i| mda_server::DatasetEntry {
            label: 0,
            series: vec![i as f64 * 0.125],
        })
        .collect();
    let (dataset_id, _v) = uploader.upload_dataset("wide", &entries).expect("upload");

    // Slow reader: issue several large-reply queries, read nothing yet.
    let slow = TcpStream::connect(addr).expect("connect slow");
    let mut slow_writer = slow.try_clone().expect("clone");
    let mut slow_reader = BufReader::new(slow);
    let burst = 4u64;
    for id in 1..=burst {
        let env = Envelope {
            id,
            req: Request::Batch {
                kind: DistanceKind::Manhattan,
                pairs: Vec::new(),
                query: Some(vec![0.0]),
                dataset: Some(mda_server::DatasetRef::by_id(&dataset_id)),
                threshold: None,
                band: None,
                deadline_ms: None,
                accuracy: None,
            },
        };
        write_frame(&mut slow_writer, &encode_request(&env)).expect("write query");
    }
    // Give the replies time to pile into the slow connection's buffers.
    std::thread::sleep(Duration::from_millis(300));

    // A second connection must be completely unaffected meanwhile.
    let mut live = Client::connect(addr).expect("connect live");
    for _ in 0..20 {
        live.ping().expect("ping while peer backpressured");
        let d = live
            .query_distance(
                DistanceKind::Manhattan,
                &[0.0, 1.0],
                &[0.0, 3.0],
                &QueryOptions::new(),
            )
            .expect("distance while peer backpressured")
            .value;
        assert_eq!(d, 2.0);
    }

    // The slow reader finally drains: every reply arrives, in full.
    // Pipelined replies are id-tagged and may complete out of submission
    // order, so collect the ids rather than assuming FIFO.
    let mut seen: Vec<u64> = Vec::new();
    for _ in 1..=burst {
        let payload = read_frame(&mut slow_reader, DEFAULT_MAX_FRAME_BYTES).expect("slow reply");
        let reply = decode_reply(&payload).expect("decode slow reply");
        let ResponseBody::Batch { values } = reply.body else {
            panic!("expected batch reply, got {:?}", reply.body);
        };
        assert_eq!(values.len(), 40_000);
        seen.push(reply.id);
    }
    seen.sort_unstable();
    assert_eq!(seen, (1..=burst).collect::<Vec<u64>>());
    server.shutdown_and_join();
}

#[test]
fn abrupt_mid_frame_disconnect_leaves_server_healthy() {
    use std::io::Write;
    let server = start(ServerConfig::default());
    let addr = server.local_addr();

    {
        // Announce a 256-byte frame, send 10 bytes, vanish.
        let mut doomed = TcpStream::connect(addr).expect("connect");
        doomed
            .write_all(&256u32.to_be_bytes())
            .expect("write header");
        doomed.write_all(b"0123456789").expect("write partial");
        doomed.flush().expect("flush");
        std::thread::sleep(Duration::from_millis(50));
        // Dropped here: RST/EOF mid-frame.
    }
    std::thread::sleep(Duration::from_millis(100));

    let mut client = Client::connect(addr).expect("connect after disconnect");
    client
        .ping()
        .expect("server survived the mid-frame disconnect");
    assert_eq!(
        server.metrics().open_connections.get(),
        1,
        "the dead connection must be reaped"
    );
    server.shutdown_and_join();
}

#[test]
fn resident_dataset_queries_are_bitwise_identical_to_inline() {
    let server = start(ServerConfig::default());
    let mut client = Client::connect(server.local_addr()).expect("connect");

    let train: Vec<TrainInstance> = (0..10)
        .map(|i| TrainInstance {
            label: i % 4,
            series: series(48, 300 + i),
        })
        .collect();
    let entries: Vec<mda_server::DatasetEntry> = train
        .iter()
        .map(|t| mda_server::DatasetEntry {
            label: t.label,
            series: t.series.clone(),
        })
        .collect();
    let (dataset_id, version) = client.upload_dataset("corpus", &entries).expect("upload");
    assert_eq!(version, 1);

    // Idempotent re-upload: same id, same version.
    let (again, v2) = client.upload_dataset("corpus", &entries).expect("reupload");
    assert_eq!((again.as_str(), v2), (dataset_id.as_str(), 1));

    let q = series(48, 999);
    let opts = QueryOptions::new();

    // kNN: resident vs inline, all outcome fields bitwise equal.
    let inline = client
        .query_knn(DistanceKind::Dtw, 3, &q, &train, &opts)
        .expect("inline knn")
        .value;
    let resident = client
        .query_knn(
            DistanceKind::Dtw,
            3,
            &q,
            &[],
            &opts
                .clone()
                .dataset(mda_server::DatasetRef::by_id(&dataset_id)),
        )
        .expect("resident knn")
        .value;
    assert_eq!(resident.label, inline.label);
    assert_eq!(resident.score.to_bits(), inline.score.to_bits());
    assert_eq!(resident.nearest_index, inline.nearest_index);

    // Pairwise batch: query vs every series.
    let pairs: Vec<(Vec<f64>, Vec<f64>)> = train
        .iter()
        .map(|t| (q.clone(), t.series.clone()))
        .collect();
    let inline_values = client
        .query_batch(DistanceKind::Manhattan, &pairs, None, &opts)
        .expect("inline batch")
        .value;
    let resident_values = client
        .query_batch(
            DistanceKind::Manhattan,
            &[],
            Some(&q),
            &opts
                .clone()
                .dataset(mda_server::DatasetRef::by_name("corpus")),
        )
        .expect("resident batch")
        .value;
    assert_eq!(inline_values.len(), resident_values.len());
    for (a, b) in inline_values.iter().zip(&resident_values) {
        assert_eq!(a.to_bits(), b.to_bits());
    }

    // Subsequence search against one resident series.
    let sq = series(12, 1234);
    let inline_search = client
        .query_search(&sq, &train[4].series, 0, 12, 2, &opts)
        .expect("inline search")
        .value;
    let resident_search = client
        .query_search(
            &sq,
            &[],
            4,
            12,
            2,
            &opts
                .clone()
                .dataset(mda_server::DatasetRef::by_name_version("corpus", 1)),
        )
        .expect("resident search")
        .value;
    assert_eq!(resident_search.offset, inline_search.offset);
    assert_eq!(
        resident_search.distance.to_bits(),
        inline_search.distance.to_bits()
    );

    // Listing reflects the store; dropping frees it.
    let listed = client.list_datasets().expect("list");
    assert_eq!(listed.len(), 1);
    assert_eq!(listed[0].name, "corpus");
    assert_eq!(listed[0].dataset_id, dataset_id);
    assert_eq!(listed[0].count, 10);
    assert_eq!(
        client
            .drop_dataset(mda_server::DatasetRef::by_id(&dataset_id))
            .expect("drop"),
        1
    );
    assert!(client.list_datasets().expect("list empty").is_empty());
    server.shutdown_and_join();
}

#[test]
fn dataset_not_found_and_stale_version_are_typed_in_band_errors() {
    let server = start(ServerConfig::default());
    let mut client = Client::connect(server.local_addr()).expect("connect");
    let q = series(16, 5);
    let opts = QueryOptions::new();
    let with_dataset =
        |opts: &QueryOptions, dref: mda_server::DatasetRef| opts.clone().dataset(dref);

    // Unknown id → not_found, connection survives.
    let err = client
        .query_knn(
            DistanceKind::Dtw,
            1,
            &q,
            &[],
            &with_dataset(&opts, mda_server::DatasetRef::by_id("no-such-dataset")),
        )
        .expect_err("unknown dataset must fail");
    assert!(
        matches!(
            &err,
            ClientError::Server {
                code: ErrorCode::NotFound,
                ..
            }
        ),
        "{err}"
    );
    client.ping().expect("connection survives not_found");

    // Upload v1, pin its id, re-upload different content → pinned id is
    // stale_version naming both versions.
    let v1_entries = vec![mda_server::DatasetEntry {
        label: 0,
        series: series(16, 1),
    }];
    let (v1_id, _) = client.upload_dataset("evolving", &v1_entries).expect("v1");
    let v2_entries = vec![mda_server::DatasetEntry {
        label: 0,
        series: series(16, 2),
    }];
    let (v2_id, v2) = client.upload_dataset("evolving", &v2_entries).expect("v2");
    assert_eq!(v2, 2);
    assert_ne!(v1_id, v2_id);
    let err = client
        .query_knn(
            DistanceKind::Dtw,
            1,
            &q,
            &[],
            &with_dataset(&opts, mda_server::DatasetRef::by_id(&v1_id)),
        )
        .expect_err("pinned stale id must fail");
    match &err {
        ClientError::Server {
            code: ErrorCode::StaleVersion,
            message,
        } => {
            assert!(message.contains("version 1"), "{message}");
            assert!(message.contains("version 2"), "{message}");
        }
        other => panic!("expected stale_version, got {other}"),
    }
    // Pinning an outdated version by name fails the same way; the current
    // version still serves.
    let err = client
        .query_knn(
            DistanceKind::Dtw,
            1,
            &q,
            &[],
            &with_dataset(
                &opts,
                mda_server::DatasetRef::by_name_version("evolving", 1),
            ),
        )
        .expect_err("stale pinned version must fail");
    assert!(
        matches!(
            &err,
            ClientError::Server {
                code: ErrorCode::StaleVersion,
                ..
            }
        ),
        "{err}"
    );
    client
        .query_knn(
            DistanceKind::Dtw,
            1,
            &q,
            &[],
            &with_dataset(&opts, mda_server::DatasetRef::by_id(&v2_id)),
        )
        .expect("current version serves");
    assert!(server.metrics().dataset_misses.get() >= 3);
    assert!(server.metrics().dataset_hits.get() >= 1);
    server.shutdown_and_join();
}

#[test]
fn many_concurrent_connections_smoke() {
    let server = start(ServerConfig::default());
    let addr = server.local_addr();
    let conns = 128;
    std::thread::scope(|scope| {
        for c in 0..conns {
            scope.spawn(move || {
                let mut client = Client::connect(addr).expect("connect");
                client.ping().expect("ping");
                let d = client
                    .query_distance(
                        DistanceKind::Manhattan,
                        &[c as f64, 1.0],
                        &[c as f64, 3.0],
                        &QueryOptions::new(),
                    )
                    .expect("distance")
                    .value;
                assert_eq!(d, 2.0);
            });
        }
    });
    assert_eq!(server.metrics().connections.get(), conns as u64);
    server.shutdown_and_join();
}

#[test]
fn connection_cap_rejects_excess_accepts() {
    let server = start(ServerConfig {
        max_connections: 2,
        ..ServerConfig::default()
    });
    let addr = server.local_addr();
    let mut a = Client::connect(addr).expect("first");
    let mut b = Client::connect(addr).expect("second");
    a.ping().expect("first serves");
    b.ping().expect("second serves");
    // The third connection is accepted by the kernel but closed by the
    // loop; any call on it must fail.
    let refused = Client::connect(addr).and_then(|mut c| c.ping());
    assert!(refused.is_err(), "over-cap connection should be closed");
    assert!(server.metrics().connections_rejected.get() >= 1);
    // Capacity frees when a connection closes.
    drop(a);
    std::thread::sleep(Duration::from_millis(100));
    let mut c = Client::connect(addr).expect("reconnect after close");
    c.ping().expect("freed slot serves");
    server.shutdown_and_join();
}

#[test]
fn http_scrape_on_the_same_port_returns_metrics_text() {
    use std::io::{Read, Write};
    let server = start(ServerConfig::default());
    let mut client = Client::connect(server.local_addr()).expect("connect");
    client.ping().expect("ping");
    let in_protocol = client.metrics_text().expect("metrics over protocol");
    assert!(in_protocol.contains("mda_requests_total{op=\"ping\"} 1"));

    let mut http = TcpStream::connect(server.local_addr()).expect("http connect");
    http.write_all(b"GET /metrics HTTP/1.1\r\nHost: x\r\n\r\n")
        .expect("http request");
    let mut response = String::new();
    http.read_to_string(&mut response).expect("http response");
    assert!(response.starts_with("HTTP/1.1 200 OK"), "{response}");
    assert!(response.contains("mda_requests_total"), "{response}");
    server.shutdown_and_join();
}

#[test]
fn live_subscriptions_deliver_gap_free_differential_events() {
    use mda_distance::znorm;
    use mda_server::StreamEventState;

    let server = start(ServerConfig::default());
    let addr = server.local_addr();
    let mut pusher = Client::connect(addr).expect("pusher connect");
    let mut subscriber = Client::connect(addr).expect("subscriber connect");

    let window = 4usize;
    let query: Vec<f64> = (0..window).map(|i| (i as f64 * 0.7).sin()).collect();
    let opened = pusher
        .open_stream(window, 1, &query, None)
        .expect("open stream");
    assert_eq!(opened.burn_in, window as u64);

    let sub = subscriber.subscribe(opened.stream_id).expect("subscribe");
    assert!(!sub.warm, "stream is cold before any push");
    assert_eq!(sub.epoch, 0);

    let points: Vec<f64> = (0..10).map(|i| (i as f64 * 0.31).cos() * 3.0).collect();
    let ack = pusher
        .push_points(opened.stream_id, &points)
        .expect("push batch");
    assert_eq!((ack.accepted, ack.epoch), (10, 10));

    // One event per push, in push order, with contiguous epochs — the gap
    // detector a consumer would run. Warming until the window fills, then
    // ready frames whose statistics are **bitwise** the batch z-norm of
    // the exact window the stream slid through.
    let mut last_epoch = sub.epoch;
    for i in 0..10 {
        let event = subscriber.next_event().expect("subscription event");
        assert_eq!(event.stream_id, opened.stream_id);
        assert_eq!(event.epoch, last_epoch + 1, "epoch gap at event {i}");
        last_epoch = event.epoch;
        let epoch = event.epoch as usize;
        match event.state {
            StreamEventState::Warming { seen, burn_in } => {
                assert!(epoch < window, "warming after burn-in at epoch {epoch}");
                assert_eq!(seen, event.epoch);
                assert_eq!(burn_in, window as u64);
            }
            StreamEventState::Ready {
                mean,
                std_dev,
                decision,
                bound,
                ..
            } => {
                assert!(epoch >= window, "ready before burn-in at epoch {epoch}");
                let win = &points[epoch - window..epoch];
                assert_eq!(mean.to_bits(), znorm::mean(win).to_bits());
                assert_eq!(std_dev.to_bits(), znorm::std_dev(win).to_bits());
                assert!(
                    ["computed", "pruned_kim", "pruned_keogh", "abandoned"]
                        .contains(&decision.as_str()),
                    "unknown cascade decision {decision:?}"
                );
                assert!(bound.is_finite(), "certified bound must be finite");
            }
        }
    }

    // A subscriber that pushes: the acknowledgement always precedes the
    // events that push caused, so push-then-next_event cannot deadlock.
    let sub2 = subscriber
        .subscribe(opened.stream_id)
        .expect("second subscription");
    assert!(sub2.warm, "stream is warm after ten pushes");
    assert_eq!(sub2.epoch, 10);
    let ack = subscriber
        .push_points(opened.stream_id, &[1.25])
        .expect("self-push");
    assert_eq!(ack.epoch, 11);
    for sub_no in 0..2 {
        let event = subscriber.next_event().expect("own event");
        assert_eq!(event.epoch, 11, "subscription {sub_no}");
    }

    let text = pusher.metrics_text().expect("metrics");
    assert!(text.contains("mda_streams_open 1"), "{text}");
    assert!(text.contains("mda_stream_points_total 11"), "{text}");
    assert!(text.contains("mda_stream_subscriptions 2"), "{text}");

    assert_eq!(
        pusher.close_stream(opened.stream_id).expect("close"),
        11,
        "lifetime push count"
    );
    server.shutdown_and_join();
}
