//! Property tests for the wire protocol: whatever bytes arrive — garbage,
//! truncation, oversized announcements — the codec must return a typed
//! error or a faithful value, and must never panic.

use std::io::Cursor;

use proptest::prelude::*;

use mda_distance::DistanceKind;
use mda_server::json::Json;
use mda_server::protocol::{
    decode_reply, decode_request, encode_reply, encode_request, read_frame, write_frame, Envelope,
    ProtocolError, Reply, Request, ResponseBody, TrainInstance, DEFAULT_MAX_FRAME_BYTES,
};
use mda_server::Sla;

/// Any finite `f64`, including negative zero, subnormals and extreme
/// exponents: generated from raw bit patterns so the whole representable
/// space is covered, with non-finite patterns remapped.
fn finite_f64() -> impl Strategy<Value = f64> {
    (0u64..=u64::MAX).prop_map(|bits| {
        let v = f64::from_bits(bits);
        if v.is_finite() {
            v
        } else {
            // Keep the mantissa entropy, drop the non-finite exponent.
            f64::from_bits(bits & 0x800F_FFFF_FFFF_FFFF)
        }
    })
}

fn series() -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(finite_f64(), 0..12)
}

fn kind() -> impl Strategy<Value = DistanceKind> {
    (0usize..DistanceKind::ALL.len()).prop_map(|i| DistanceKind::ALL[i])
}

fn accuracy() -> impl Strategy<Value = Option<Sla>> {
    // The vendored proptest slice has no `prop_oneof`; pick the variant
    // from a numeric selector instead.
    (0u8..3, 0.0f64..1e9).prop_map(|(which, eps)| match which {
        0 => None,
        1 => Some(Sla::Exact),
        _ => Some(Sla::tolerance(eps).expect("finite non-negative")),
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn distance_request_roundtrips_bitwise(
        id in 0u64..1u64 << 53,
        kind in kind(),
        p in series(),
        q in series(),
        band in 0usize..64,
        deadline in 0u64..100_000,
        accuracy in accuracy(),
    ) {
        let env = Envelope {
            id,
            req: Request::Distance {
                kind,
                p: p.clone(),
                q: q.clone(),
                threshold: None,
                band: Some(band),
                deadline_ms: Some(deadline),
                accuracy,
            },
        };
        let decoded = decode_request(&encode_request(&env)).expect("self-encoded request");
        prop_assert_eq!(decoded.id, id);
        let Request::Distance { p: dp, q: dq, kind: dk, accuracy: da, .. } = decoded.req else {
            panic!("decoded to a different op");
        };
        prop_assert_eq!(dk, kind);
        prop_assert_eq!(da, accuracy);
        // Bitwise: the JSON codec must not perturb any finite f64.
        let bits = |v: &[f64]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
        prop_assert_eq!(bits(&dp), bits(&p));
        prop_assert_eq!(bits(&dq), bits(&q));
    }

    #[test]
    fn knn_request_roundtrips(
        k in 1usize..9,
        kind in kind(),
        query in series(),
        labels in prop::collection::vec(0usize..16, 0..6),
        train_series in series(),
    ) {
        let train: Vec<TrainInstance> = labels
            .iter()
            .map(|&label| TrainInstance { label, series: train_series.clone() })
            .collect();
        let env = Envelope {
            id: 7,
            req: Request::Knn {
                kind,
                k,
                query,
                train,
                dataset: None,
                threshold: Some(0.25),
                band: None,
                deadline_ms: None,
                accuracy: Some(Sla::Exact),
            },
        };
        let decoded = decode_request(&encode_request(&env)).expect("self-encoded request");
        prop_assert_eq!(decoded, env);
    }

    #[test]
    fn reply_roundtrips_bitwise(values in series()) {
        let reply = Reply::new(3, ResponseBody::Batch { values: values.clone() });
        let decoded = decode_reply(&encode_reply(&reply)).expect("self-encoded reply");
        let ResponseBody::Batch { values: got } = decoded.body else {
            panic!("decoded to a different shape");
        };
        let bits = |v: &[f64]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
        prop_assert_eq!(bits(&got), bits(&values));
    }

    #[test]
    fn garbage_bytes_never_panic_the_decoders(bytes in prop::collection::vec(0u8..=255, 0..256)) {
        // Any of these may legitimately fail — none may panic.
        let _ = Json::parse(&bytes);
        let _ = decode_request(&bytes);
        let _ = decode_reply(&bytes);
        let _ = read_frame(&mut Cursor::new(bytes), 1024);
    }

    #[test]
    fn ascii_garbage_never_panics_the_decoders(bytes in prop::collection::vec(32u8..127, 0..200)) {
        // Printable garbage exercises deeper parser states than raw bytes
        // (digits, braces, quotes reach the number/string machinery).
        let _ = Json::parse(&bytes);
        let _ = decode_request(&bytes);
    }

    #[test]
    fn truncated_frames_error_cleanly(
        payload in prop::collection::vec(0u8..=255, 1..64),
        cut_fraction in 0.0f64..1.0,
    ) {
        let mut framed = Vec::new();
        write_frame(&mut framed, &payload).expect("in-memory write");
        let cut = (framed.len() as f64 * cut_fraction) as usize;
        let err = read_frame(&mut Cursor::new(&framed[..cut]), DEFAULT_MAX_FRAME_BYTES)
            .expect_err("truncated frame must not decode");
        match err {
            // Cut inside the header or payload: a transport error.
            ProtocolError::Io(_) => {}
            other => panic!("unexpected error class: {other}"),
        }
        // Only a cut at offset 0 is a clean between-frames EOF.
        prop_assert_eq!(err.is_clean_eof(), cut == 0);
    }

    #[test]
    fn oversized_announcements_rejected_before_allocation(
        announced in 1025u32..u32::MAX,
        tail in prop::collection::vec(0u8..=255, 0..16),
    ) {
        let mut framed = announced.to_be_bytes().to_vec();
        framed.extend_from_slice(&tail);
        // Cap far below the announcement: must reject without trying to
        // allocate or read the announced length.
        let err = read_frame(&mut Cursor::new(framed), 1024).expect_err("must reject");
        let rejected_with_sizes = matches!(err, ProtocolError::FrameTooLarge { len, max: 1024 }
            if len == announced as usize);
        prop_assert!(rejected_with_sizes, "{}", err);
    }

    #[test]
    fn json_numbers_roundtrip_bitwise(x in finite_f64()) {
        let text = Json::Num(x).to_string();
        let parsed = Json::parse(text.as_bytes()).expect("rendered number");
        let Json::Num(y) = parsed else { panic!("expected a number") };
        prop_assert_eq!(y.to_bits(), x.to_bits(), "{}", text);
    }
}
