//! Fuzz-regression corpus replay.
//!
//! The malformed/truncated/oversized inputs that the PR-3 property tests
//! explored randomly are checked in here as fixed fixtures under
//! `tests/corpus/`, so every past failure shape is replayed deterministically
//! on every run — no generator schedule or seed involved.
//!
//! Two layers are exercised:
//!
//! * **codec**: each fixture is fed to `read_frame`/`decode_request`
//!   directly and must produce exactly the expected typed outcome — never a
//!   panic, never a silent success for a malformed input;
//! * **live server**: each fixture's raw bytes are thrown at a running
//!   server socket; whatever happens on that connection, the server must
//!   keep answering fresh connections.

use std::io::{Cursor, Read, Write};
use std::net::TcpStream;
use std::time::Duration;

use mda_server::client::Client;
use mda_server::protocol::{
    decode_request, read_frame, write_frame, ProtocolError, DEFAULT_MAX_FRAME_BYTES,
};
use mda_server::{Server, ServerConfig};

/// Expected codec outcome for one corpus entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Expect {
    /// `read_frame` reports the announced payload exceeds the cap.
    FrameTooLarge,
    /// `read_frame` hits an unexpected EOF mid-header or mid-payload.
    TruncatedIo,
    /// `read_frame` reports a clean end-of-stream between frames.
    CleanEof,
    /// The frame layer yields a payload that `decode_request` rejects.
    DecodeError,
    /// The payload is structurally sound but a field's *value* is outside
    /// its domain (negative or non-finite SLA tolerance, unknown accuracy
    /// name): rejected as `ProtocolError::InvalidParameter`, which the live
    /// server answers with a typed `invalid_parameter` reply.
    InvalidParameter,
    /// The payload decodes; the request is handled (possibly to an
    /// in-band error or a degenerate value) without crashing anything.
    DecodeOk,
}

/// A frame-level fixture: raw bytes as they would arrive on the socket.
const FRAME_CORPUS: &[(&str, &[u8], Expect)] = &[
    (
        "frame_truncated_header",
        include_bytes!("corpus/frame_truncated_header.bin"),
        Expect::TruncatedIo,
    ),
    (
        "frame_truncated_payload",
        include_bytes!("corpus/frame_truncated_payload.bin"),
        Expect::TruncatedIo,
    ),
    (
        "frame_oversized",
        include_bytes!("corpus/frame_oversized.bin"),
        Expect::FrameTooLarge,
    ),
    (
        "frame_empty",
        include_bytes!("corpus/frame_empty.bin"),
        Expect::CleanEof,
    ),
    (
        "frame_zero_length",
        include_bytes!("corpus/frame_zero_length.bin"),
        Expect::DecodeError,
    ),
];

/// A payload-level fixture: bytes inside a well-formed frame.
const PAYLOAD_CORPUS: &[(&str, &[u8], Expect)] = &[
    (
        "payload_invalid_utf8",
        include_bytes!("corpus/payload_invalid_utf8.bin"),
        Expect::DecodeError,
    ),
    (
        "payload_not_json",
        include_bytes!("corpus/payload_not_json.json"),
        Expect::DecodeError,
    ),
    (
        "payload_missing_id",
        include_bytes!("corpus/payload_missing_id.json"),
        Expect::DecodeError,
    ),
    (
        "payload_missing_op",
        include_bytes!("corpus/payload_missing_op.json"),
        Expect::DecodeError,
    ),
    (
        "payload_unknown_op",
        include_bytes!("corpus/payload_unknown_op.json"),
        Expect::DecodeError,
    ),
    (
        "payload_bad_kind",
        include_bytes!("corpus/payload_bad_kind.json"),
        Expect::DecodeError,
    ),
    (
        "payload_bool_series",
        include_bytes!("corpus/payload_bool_series.json"),
        Expect::DecodeError,
    ),
    (
        "payload_knn_k_zero",
        include_bytes!("corpus/payload_knn_k_zero.json"),
        Expect::DecodeError,
    ),
    (
        "payload_search_window_zero",
        include_bytes!("corpus/payload_search_window_zero.json"),
        Expect::DecodeError,
    ),
    (
        "payload_fractional_id",
        include_bytes!("corpus/payload_fractional_id.json"),
        Expect::DecodeError,
    ),
    (
        "payload_deep_nesting",
        include_bytes!("corpus/payload_deep_nesting.json"),
        Expect::DecodeError,
    ),
    (
        "payload_upload_dataset_empty_name",
        include_bytes!("corpus/payload_upload_dataset_empty_name.json"),
        Expect::DecodeError,
    ),
    (
        "payload_upload_dataset_bad_entries",
        include_bytes!("corpus/payload_upload_dataset_bad_entries.json"),
        Expect::DecodeError,
    ),
    (
        "payload_knn_train_and_dataset",
        include_bytes!("corpus/payload_knn_train_and_dataset.json"),
        Expect::DecodeError,
    ),
    (
        "payload_search_dataset_version_no_name",
        include_bytes!("corpus/payload_search_dataset_version_no_name.json"),
        Expect::DecodeError,
    ),
    // Accuracy-SLA domain violations: structurally valid JSON whose ε is
    // outside the SLA's domain (or whose name is unknown) must be refused
    // as `invalid_parameter`, never silently clamped or treated as exact.
    (
        "payload_accuracy_negative_tolerance",
        include_bytes!("corpus/payload_accuracy_negative_tolerance.json"),
        Expect::InvalidParameter,
    ),
    (
        "payload_accuracy_infinite_tolerance",
        include_bytes!("corpus/payload_accuracy_infinite_tolerance.json"),
        Expect::InvalidParameter,
    ),
    (
        "payload_accuracy_unknown_name",
        include_bytes!("corpus/payload_accuracy_unknown_name.json"),
        Expect::InvalidParameter,
    ),
    // Structural accuracy breakage stays a schema error, not a domain one.
    (
        "payload_accuracy_bool",
        include_bytes!("corpus/payload_accuracy_bool.json"),
        Expect::DecodeError,
    ),
    (
        "payload_accuracy_object_missing_tolerance",
        include_bytes!("corpus/payload_accuracy_object_missing_tolerance.json"),
        Expect::DecodeError,
    ),
    // Decodes fine — the id simply names no resident dataset. The live
    // server answers a typed `not_found` in-band and keeps the connection.
    (
        "payload_knn_dataset_missing",
        include_bytes!("corpus/payload_knn_dataset_missing.json"),
        Expect::DecodeOk,
    ),
    // `1e999` overflows to `inf`, which the codec accepts as a number; the
    // engine then computes an infinite distance and the reply encodes it as
    // JSON null. Ugly, but typed and crash-free end to end — pinned here so
    // any change in that behavior is a conscious one.
    (
        "payload_huge_exponent",
        include_bytes!("corpus/payload_huge_exponent.json"),
        Expect::DecodeOk,
    ),
    // Push-mode stream verbs. Structural breakage is a schema error …
    (
        "payload_push_points_missing_stream",
        include_bytes!("corpus/payload_push_points_missing_stream.json"),
        Expect::DecodeError,
    ),
    (
        "payload_push_points_bool_points",
        include_bytes!("corpus/payload_push_points_bool_points.json"),
        Expect::DecodeError,
    ),
    (
        "payload_open_stream_window_zero",
        include_bytes!("corpus/payload_open_stream_window_zero.json"),
        Expect::DecodeError,
    ),
    // … a threshold outside its domain is a typed in-band
    // `invalid_parameter` …
    (
        "payload_open_stream_negative_threshold",
        include_bytes!("corpus/payload_open_stream_negative_threshold.json"),
        Expect::InvalidParameter,
    ),
    // … and well-formed verbs naming a stream that does not exist decode
    // fine; the live server answers a typed `not_found` and keeps the
    // connection (pinned in `stream_misuse_answers_typed_in_band`).
    (
        "payload_push_points_unknown_stream",
        include_bytes!("corpus/payload_push_points_unknown_stream.json"),
        Expect::DecodeOk,
    ),
    (
        "payload_subscribe_unknown_stream",
        include_bytes!("corpus/payload_subscribe_unknown_stream.json"),
        Expect::DecodeOk,
    ),
];

/// Runs one frame-level fixture through `read_frame` (+ `decode_request`
/// when a payload comes out) and classifies the outcome.
fn classify_frame(bytes: &[u8]) -> Expect {
    let mut cursor = Cursor::new(bytes);
    match read_frame(&mut cursor, DEFAULT_MAX_FRAME_BYTES) {
        Ok(payload) => classify_payload(&payload),
        Err(e) if e.is_clean_eof() => Expect::CleanEof,
        Err(ProtocolError::FrameTooLarge { .. }) => Expect::FrameTooLarge,
        Err(ProtocolError::Io(_)) => Expect::TruncatedIo,
        Err(_) => Expect::DecodeError,
    }
}

fn classify_payload(payload: &[u8]) -> Expect {
    match decode_request(payload) {
        Ok(_) => Expect::DecodeOk,
        Err(ProtocolError::Json(_) | ProtocolError::Schema(_)) => Expect::DecodeError,
        Err(ProtocolError::InvalidParameter(_)) => Expect::InvalidParameter,
        Err(e) => panic!("payload decode must fail as Json/Schema/InvalidParameter, got {e:?}"),
    }
}

#[test]
fn frame_corpus_replays_to_expected_typed_outcomes() {
    for (name, bytes, expect) in FRAME_CORPUS {
        let got = classify_frame(bytes);
        assert_eq!(got, *expect, "fixture {name}");
    }
}

#[test]
fn payload_corpus_replays_to_expected_typed_outcomes() {
    for (name, bytes, expect) in PAYLOAD_CORPUS {
        let got = classify_payload(bytes);
        assert_eq!(got, *expect, "fixture {name}");
    }
}

/// Every fixture, thrown raw at a live server: the connection may die, but
/// the server must answer a fresh ping afterwards — a malformed client can
/// never take the service down.
#[test]
fn live_server_survives_entire_corpus() {
    let server = Server::start(ServerConfig::default()).expect("server start");
    let addr = server.local_addr();

    let attack = |name: &str, raw: &[u8]| {
        let mut stream = TcpStream::connect(addr).expect("connect");
        stream
            .set_read_timeout(Some(Duration::from_millis(500)))
            .unwrap();
        // The server may close the socket mid-write; that is a valid
        // defensive response, not a test failure.
        let _ = stream.write_all(raw);
        let _ = stream.flush();
        let _ = stream.shutdown(std::net::Shutdown::Write);
        let mut sink = Vec::new();
        let _ = stream.read_to_end(&mut sink);
        drop(stream);

        let mut probe = Client::connect(addr).expect("fresh connection");
        probe.ping().unwrap_or_else(|e| {
            panic!("server unresponsive after fixture {name}: {e}");
        });
    };

    for (name, bytes, _) in FRAME_CORPUS {
        attack(name, bytes);
    }
    for (name, bytes, _) in PAYLOAD_CORPUS {
        let mut framed = Vec::new();
        write_frame(&mut framed, bytes).expect("frame fixture payload");
        attack(name, &framed);
    }

    server.shutdown_and_join();
}

/// Domain-violating accuracy payloads must come back as an **in-band**
/// typed `invalid_parameter` reply — the connection stays open and usable,
/// unlike structural garbage which may drop it.
#[test]
fn invalid_accuracy_payloads_answer_typed_invalid_parameter() {
    use mda_server::protocol::decode_reply;
    use mda_server::{ErrorCode, ResponseBody};

    let server = Server::start(ServerConfig::default()).expect("server start");
    let addr = server.local_addr();

    for (name, bytes, expect) in PAYLOAD_CORPUS {
        if *expect != Expect::InvalidParameter {
            continue;
        }
        let mut stream = TcpStream::connect(addr).expect("connect");
        let mut framed = Vec::new();
        write_frame(&mut framed, bytes).expect("frame fixture payload");
        stream.write_all(&framed).expect("send fixture");
        stream.flush().expect("flush fixture");
        let reply_bytes =
            read_frame(&mut stream, DEFAULT_MAX_FRAME_BYTES).expect("in-band reply frame");
        let reply = decode_reply(&reply_bytes).expect("typed reply");
        match reply.body {
            ResponseBody::Error { code, .. } => {
                assert_eq!(code, ErrorCode::InvalidParameter, "fixture {name}");
            }
            other => panic!("fixture {name}: expected in-band error, got {other:?}"),
        }
        // Same connection, healthy follow-up: the refusal was per-request.
        let probe = br#"{"id":2,"op":"ping"}"#;
        let mut framed = Vec::new();
        write_frame(&mut framed, probe).expect("frame ping");
        stream.write_all(&framed).expect("send ping");
        stream.flush().expect("flush ping");
        let pong = read_frame(&mut stream, DEFAULT_MAX_FRAME_BYTES).expect("pong frame");
        let pong = decode_reply(&pong).expect("pong reply");
        assert!(
            matches!(pong.body, ResponseBody::Pong),
            "fixture {name}: connection unusable after invalid_parameter"
        );
    }

    server.shutdown_and_join();
}

/// Stream-verb misuse on a live server: every failure is a typed in-band
/// reply and the connection keeps serving — pushing to an unknown or
/// already-closed stream answers `not_found`, subscribing before burn-in
/// succeeds with `warm: false`, and a non-finite push answers
/// `invalid_parameter` without mutating the stream.
#[test]
fn stream_misuse_answers_typed_in_band() {
    use mda_server::{ErrorCode, ResponseBody};

    let server = Server::start(ServerConfig::default()).expect("server start");
    let mut client = Client::connect(server.local_addr()).expect("connect");

    // Unknown stream: typed not_found, connection survives.
    match client.push_points(424_242, &[1.0]) {
        Err(mda_server::ClientError::Server { code, .. }) => {
            assert_eq!(code, ErrorCode::NotFound);
        }
        other => panic!("push to unknown stream: expected not_found, got {other:?}"),
    }
    match client.subscribe(31_337) {
        Err(mda_server::ClientError::Server { code, .. }) => {
            assert_eq!(code, ErrorCode::NotFound);
        }
        other => panic!("subscribe to unknown stream: expected not_found, got {other:?}"),
    }
    client.ping().expect("connection must survive not_found");

    // Subscribe before burn-in: a valid, cold subscription.
    let opened = client
        .open_stream(8, 1, &[0.0, 1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0], None)
        .expect("open stream");
    assert_eq!(opened.burn_in, 8);
    let sub = client.subscribe(opened.stream_id).expect("cold subscribe");
    assert!(!sub.warm, "no points pushed yet");
    assert_eq!(sub.epoch, 0);

    // Malformed push (JSON cannot carry NaN; a `null` point is the wire
    // equivalent): typed in-band schema error on a raw second connection,
    // which keeps serving — and the stream's epoch is untouched.
    client.push_points(opened.stream_id, &[1.0, 2.0]).unwrap();
    {
        use mda_server::protocol::decode_reply;
        let mut raw = TcpStream::connect(server.local_addr()).expect("raw connect");
        let payload = format!(
            r#"{{"id":5,"op":"push_points","stream_id":{},"points":[3.0,null]}}"#,
            opened.stream_id
        );
        let mut framed = Vec::new();
        write_frame(&mut framed, payload.as_bytes()).expect("frame payload");
        raw.write_all(&framed).expect("send malformed push");
        raw.flush().expect("flush");
        let reply_bytes = read_frame(&mut raw, DEFAULT_MAX_FRAME_BYTES).expect("in-band reply");
        let reply = decode_reply(&reply_bytes).expect("typed reply");
        assert!(
            matches!(reply.body, ResponseBody::Error { .. }),
            "malformed push must answer an in-band error, got {:?}",
            reply.body
        );
        let mut framed = Vec::new();
        write_frame(&mut framed, br#"{"id":6,"op":"ping"}"#).expect("frame ping");
        raw.write_all(&framed).expect("send ping");
        raw.flush().expect("flush ping");
        let pong = read_frame(&mut raw, DEFAULT_MAX_FRAME_BYTES).expect("pong frame");
        let pong = decode_reply(&pong).expect("pong reply");
        assert!(
            matches!(pong.body, ResponseBody::Pong),
            "connection unusable after malformed push"
        );
    }
    let pushed = client.push_points(opened.stream_id, &[4.0]).expect("push");
    assert_eq!(pushed.epoch, 3, "rejected batch must not advance the epoch");

    // Closed stream: subsequent verbs answer not_found; connection lives.
    let lifetime = client.close_stream(opened.stream_id).expect("close");
    assert_eq!(lifetime, 3);
    match client.push_points(opened.stream_id, &[5.0]) {
        Err(mda_server::ClientError::Server { code, .. }) => {
            assert_eq!(code, ErrorCode::NotFound);
        }
        other => panic!("push to closed stream: expected not_found, got {other:?}"),
    }
    match client.close_stream(opened.stream_id) {
        Err(mda_server::ClientError::Server { code, .. }) => {
            assert_eq!(code, ErrorCode::NotFound);
        }
        other => panic!("double close: expected not_found, got {other:?}"),
    }
    client
        .ping()
        .expect("connection must survive the whole gauntlet");

    server.shutdown_and_join();
}
