//! The 6T2M aCAM cell: an interval `[lo, hi]` stored as two memristor
//! conductances, compared against an analog input on both edges at once.
//!
//! ## Margin calibration
//!
//! Process variation (±25 % absolute, <1 % matched — see
//! [`mda_memristor::ProcessVariation`]) makes the *realized* window edges
//! wander around their programmed targets, which would narrow the sensing
//! margin and — fatally for a pruning filter — could reject an input the
//! ideal window accepts. The programming compiler therefore targets
//! *widened* edges: each cell carries a non-negative **guard band** at
//! least as large as its worst-case edge wander, so the realized window
//! always contains the ideal one. Faulty cells go further: a stuck-at or
//! drifted memristor is detected by the post-programming verify read and
//! its lane's match-line pull-down is disabled, so the cell degrades to
//! **always-match**. Both mechanisms only ever *widen* acceptance —
//! false-accept-only degradation, never a false reject.

use mda_memristor::{CellFault, ProcessVariation};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A closed acceptance interval `[lo, hi]` in value units.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Interval {
    /// Lower acceptance edge.
    pub lo: f64,
    /// Upper acceptance edge.
    pub hi: f64,
}

impl Interval {
    /// An interval with `lo <= hi`.
    ///
    /// # Panics
    ///
    /// Panics if the edges are non-finite or inverted.
    pub fn new(lo: f64, hi: f64) -> Interval {
        assert!(
            lo.is_finite() && hi.is_finite() && lo <= hi,
            "interval edges must be finite and ordered: [{lo}, {hi}]"
        );
        Interval { lo, hi }
    }

    /// How far `x` falls outside the interval (`0.0` inside it).
    ///
    /// This is, term for term, the per-element summand of
    /// `mda_distance::lower_bounds::lb_keogh_envelope` — the same branch
    /// structure and the same floating-point subtractions — so a word of
    /// envelope-programmed cells reports exactly the LB_Keogh terms the
    /// digital cascade computes. The bitwise-identity guarantee of the
    /// aCAM pre-filter rests on this equality.
    pub fn exceedance(&self, x: f64) -> f64 {
        if x > self.hi {
            x - self.hi
        } else if x < self.lo {
            self.lo - x
        } else {
            0.0
        }
    }
}

/// How a cell's guard band is calibrated at programming time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MarginPolicy {
    /// Deterministic widening applied to every healthy cell, value units.
    /// Negative values are clamped to zero — the compiler never narrows.
    pub base_margin: f64,
    /// Process-variation model driving the per-cell wander compensation;
    /// `None` models a fully tuned array (guard = `base_margin` exactly).
    pub variation: Option<ProcessVariation>,
    /// Seed for the per-cell variation draws, so a programmed array is
    /// reproducible.
    pub seed: u64,
}

impl MarginPolicy {
    /// A fully tuned array: the closed-loop program-and-verify step has
    /// shrunk every cell's residual below resolution, so windows are
    /// ideal and the match plane equals the digital comparator's.
    pub fn ideal() -> MarginPolicy {
        MarginPolicy {
            base_margin: 0.0,
            variation: None,
            seed: 0,
        }
    }

    /// Paper-default variation (±25 % absolute, 1 % matched) with no
    /// extra deterministic margin.
    pub fn paper_defaults(seed: u64) -> MarginPolicy {
        MarginPolicy {
            base_margin: 0.0,
            variation: Some(ProcessVariation::paper_defaults()),
            seed,
        }
    }

    /// The realized guard band for the cell at `index` whose largest edge
    /// magnitude is `edge_scale`. Always `>= 0`: variation wander is
    /// compensated by widening, never by narrowing.
    pub fn realized_guard(&self, index: u64, edge_scale: f64) -> f64 {
        let mut guard = self.base_margin.max(0.0);
        if let Some(v) = self.variation {
            let mut rng = StdRng::seed_from_u64(
                self.seed
                    ^ index
                        .wrapping_mul(0x9e37_79b9_7f4a_7c15)
                        .wrapping_add(index),
            );
            // The two edge devices are a matched pair; the verify read
            // measures their as-programmed wander and the compiler widens
            // the window by at least that much (plus the matched residue
            // even a perfect common-mode cancellation leaves behind).
            let (a, b) = v.sample_pair(1.0, 1.0, &mut rng);
            let wander = (a - 1.0).abs().max((b - 1.0).abs()) + v.matched_tolerance;
            guard += wander * edge_scale.abs().max(1.0);
        }
        guard
    }
}

/// One programmed 6T2M cell: its ideal window, the realized guard band,
/// and an optional injected fault.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AcamCell {
    ideal: Interval,
    guard: f64,
    fault: Option<CellFault>,
}

impl AcamCell {
    /// Programs a cell to the ideal window under a margin policy. A
    /// faulted cell (stuck-at rail, drift, dead programming) fails the
    /// post-programming verify read and is degraded to always-match.
    pub fn program(
        ideal: Interval,
        index: u64,
        policy: &MarginPolicy,
        fault: Option<CellFault>,
    ) -> AcamCell {
        let edge_scale = ideal.lo.abs().max(ideal.hi.abs());
        AcamCell {
            ideal,
            guard: policy.realized_guard(index, edge_scale),
            fault,
        }
    }

    /// The ideal (pre-guard) window.
    pub fn ideal(&self) -> Interval {
        self.ideal
    }

    /// The realized widening beyond the ideal window, value units.
    pub fn guard(&self) -> f64 {
        self.guard
    }

    /// The injected fault, if any.
    pub fn fault(&self) -> Option<CellFault> {
        self.fault
    }

    /// Whether this cell's match-line pull-down is disabled (always-match).
    pub fn is_transparent(&self) -> bool {
        self.fault.is_some()
    }

    /// How far `x` falls outside the *ideal* window (`0.0` for a
    /// transparent cell — it certifies nothing).
    pub fn exceedance(&self, x: f64) -> f64 {
        if self.is_transparent() {
            0.0
        } else {
            self.ideal.exceedance(x)
        }
    }

    /// The cell's match verdict at sensing margin `delta >= 0`: accept
    /// unless the input exceeds the ideal window by more than
    /// `delta + guard`. A rejection therefore certifies
    /// `exceedance(x) > delta` (the guard only ever widens), which is the
    /// admissibility invariant every caller relies on.
    pub fn accepts(&self, x: f64, delta: f64) -> bool {
        if self.is_transparent() {
            return true;
        }
        debug_assert!(delta >= 0.0, "sensing margin must be non-negative");
        self.ideal.exceedance(x) <= delta + self.guard
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mda_distance::lower_bounds::{envelope, lb_keogh_envelope};

    #[test]
    fn exceedance_mirrors_the_lb_keogh_summand_bitwise() {
        let q: Vec<f64> = (0..16).map(|i| (i as f64 * 0.7).sin() * 2.0).collect();
        let p: Vec<f64> = (0..16)
            .map(|i| (i as f64 * 0.9 + 0.3).cos() * 2.5)
            .collect();
        let (upper, lower) = envelope(&q, 2).unwrap();
        let by_cells: f64 = p
            .iter()
            .zip(upper.iter().zip(&lower))
            .map(|(&x, (&u, &l))| Interval::new(l, u).exceedance(x))
            .sum();
        let by_kernel = lb_keogh_envelope(&p, &upper, &lower);
        assert_eq!(by_cells.to_bits(), by_kernel.to_bits());
    }

    #[test]
    fn ideal_policy_has_zero_guard() {
        let cell = AcamCell::program(Interval::new(-1.0, 1.0), 7, &MarginPolicy::ideal(), None);
        assert_eq!(cell.guard(), 0.0);
        assert!(cell.accepts(1.0, 0.0));
        assert!(!cell.accepts(1.0 + 1e-12, 0.0));
    }

    #[test]
    fn variation_guard_is_always_non_negative_and_reproducible() {
        let policy = MarginPolicy::paper_defaults(42);
        for index in 0..256 {
            let g = policy.realized_guard(index, 2.5);
            assert!(g >= 0.0, "guard {g} at {index}");
            assert_eq!(g, policy.realized_guard(index, 2.5), "reproducible");
        }
    }

    #[test]
    fn guard_only_widens_acceptance() {
        let ideal = Interval::new(0.0, 1.0);
        let tuned = AcamCell::program(ideal, 3, &MarginPolicy::ideal(), None);
        let varied = AcamCell::program(ideal, 3, &MarginPolicy::paper_defaults(9), None);
        for x in [-2.0, -0.5, 0.0, 0.5, 1.0, 1.3, 3.0] {
            for delta in [0.0, 0.25, 2.0] {
                if tuned.accepts(x, delta) {
                    assert!(varied.accepts(x, delta), "x={x} delta={delta}");
                }
            }
        }
    }

    #[test]
    fn every_fault_degrades_to_always_match() {
        for fault in [
            CellFault::StuckAtHrs,
            CellFault::StuckAtLrs,
            CellFault::Drift(1.4),
            CellFault::DeadProgramming,
        ] {
            let cell = AcamCell::program(
                Interval::new(0.0, 0.1),
                0,
                &MarginPolicy::ideal(),
                Some(fault),
            );
            assert!(cell.is_transparent());
            assert!(cell.accepts(1e9, 0.0), "{fault:?}");
            assert_eq!(cell.exceedance(1e9), 0.0);
        }
    }

    #[test]
    #[should_panic(expected = "interval edges")]
    fn inverted_interval_panics() {
        let _ = Interval::new(1.0, 0.0);
    }
}
