//! # mda-acam
//!
//! A behavioural analog content-addressable memory (aCAM) array model —
//! the one-shot matching idiom of Li et al., "Analog content addressable
//! memories with memristors" — threaded through the repo's distance stack
//! as a *stage-0 candidate filter* and a direct one-shot backend for the
//! thresholded distance kinds.
//!
//! Where the DAC'17 accelerator answers every query by iterating a DP
//! recurrence over a memristor crossbar, an aCAM cell (6T2M: six
//! transistors, two memristors) stores an **interval** `[lo, hi]` and
//! compares an analog input against both edges at once; a word of cells
//! shares one match line that stays high only if *every* cell accepts —
//! a whole-word match in a single precharge/sense cycle.
//!
//! The modules map that idiom onto the existing exact kernels:
//!
//! * [`cell`] — interval cells with variation-aware margin calibration
//!   (guard bands only ever *widen* the acceptance window) and
//!   [`mda_memristor::CellFault`] degradation to always-match;
//! * [`array`] — words of cells with match-line AND semantics and
//!   mismatch-count readout;
//! * [`encoder`] — programs a query's Lemire envelope
//!   ([`mda_distance::lower_bounds::envelope`]) into interval cells, so a
//!   match-line miss at sensing margin δ certifies `LB_Keogh > δ`;
//! * [`filter`] — the [`mda_distance::mining::CandidateFilter`]
//!   implementation wired into subsequence search and kNN, with an
//!   admissibility proof sketch for why filtered runs stay
//!   bitwise-identical to the unfiltered cascade;
//! * [`one_shot`] — one-shot evaluation of the thresholded kinds (HamD,
//!   thresholded EdD/LCS) from the aCAM match plane, bitwise-identical to
//!   the digital kernels on tuned (ideal-margin) arrays and
//!   false-accept-only under faults.

pub mod array;
pub mod cell;
pub mod encoder;
pub mod filter;
pub mod one_shot;

pub use array::AcamWord;
pub use cell::{AcamCell, Interval, MarginPolicy};
pub use encoder::envelope_intervals;
pub use filter::{AcamPrefilter, FaultPlan};
pub use one_shot::OneShotMatcher;
