//! A word of aCAM cells sharing one match line.
//!
//! The match line is precharged high and discharged by any cell whose
//! input falls outside its window by more than the sensing margin — a
//! logical AND across the word, evaluated in one cycle regardless of word
//! length. Two readouts are modelled: the binary match-line verdict
//! ([`AcamWord::matches`]) and the mismatch *count* ([`AcamWord::
//! reject_count`]), the thresholded-Hamming readout an ADC on the match
//! line's discharge rate provides.

use mda_memristor::CellFault;

use crate::cell::{AcamCell, Interval, MarginPolicy};

/// One programmed word: a row of interval cells on a shared match line.
#[derive(Debug, Clone, PartialEq)]
pub struct AcamWord {
    cells: Vec<AcamCell>,
}

impl AcamWord {
    /// Programs a healthy word to the given ideal windows.
    pub fn program(intervals: &[Interval], policy: &MarginPolicy) -> AcamWord {
        let faults = vec![None; intervals.len()];
        AcamWord::program_with_faults(intervals, policy, &faults)
    }

    /// Programs a word with one optional fault per cell.
    ///
    /// # Panics
    ///
    /// Panics if `faults` and `intervals` disagree in length.
    pub fn program_with_faults(
        intervals: &[Interval],
        policy: &MarginPolicy,
        faults: &[Option<CellFault>],
    ) -> AcamWord {
        assert_eq!(
            intervals.len(),
            faults.len(),
            "one fault slot per programmed cell"
        );
        AcamWord {
            cells: intervals
                .iter()
                .zip(faults)
                .enumerate()
                .map(|(i, (&ideal, &fault))| AcamCell::program(ideal, i as u64, policy, fault))
                .collect(),
        }
    }

    /// Word length in cells.
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// `true` for a zero-cell word (matches everything vacuously).
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// The programmed cells.
    pub fn cells(&self) -> &[AcamCell] {
        &self.cells
    }

    /// The match-line verdict: AND over every cell's acceptance at
    /// sensing margin `delta`.
    ///
    /// # Panics
    ///
    /// Panics if `input` and the word disagree in length — a word can only
    /// ever be presented its own wordline width.
    pub fn matches(&self, input: &[f64], delta: f64) -> bool {
        self.first_reject(input, delta).is_none()
    }

    /// The index of the first rejecting cell (the certified-prune witness),
    /// or `None` on a match-line hit.
    ///
    /// # Panics
    ///
    /// Same as [`AcamWord::matches`].
    pub fn first_reject(&self, input: &[f64], delta: f64) -> Option<usize> {
        assert_eq!(input.len(), self.cells.len(), "input must fill the word");
        self.cells
            .iter()
            .zip(input)
            .position(|(cell, &x)| !cell.accepts(x, delta))
    }

    /// How many cells reject at sensing margin `delta` — the match-line
    /// discharge-rate readout behind one-shot thresholded Hamming.
    ///
    /// # Panics
    ///
    /// Same as [`AcamWord::matches`].
    pub fn reject_count(&self, input: &[f64], delta: f64) -> usize {
        assert_eq!(input.len(), self.cells.len(), "input must fill the word");
        self.cells
            .iter()
            .zip(input)
            .filter(|(cell, &x)| !cell.accepts(x, delta))
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn intervals() -> Vec<Interval> {
        vec![
            Interval::new(-0.5, 0.5),
            Interval::new(0.0, 1.0),
            Interval::new(2.0, 2.0),
        ]
    }

    #[test]
    fn match_line_is_an_and_across_cells() {
        let word = AcamWord::program(&intervals(), &MarginPolicy::ideal());
        assert!(word.matches(&[0.0, 0.5, 2.0], 0.0));
        assert!(!word.matches(&[0.0, 0.5, 2.1], 0.0));
        assert_eq!(word.first_reject(&[0.0, 0.5, 2.1], 0.0), Some(2));
        // The same input passes once the sensing margin absorbs it.
        assert!(word.matches(&[0.0, 0.5, 2.1], 0.2));
    }

    #[test]
    fn reject_count_counts_every_miss() {
        let word = AcamWord::program(&intervals(), &MarginPolicy::ideal());
        assert_eq!(word.reject_count(&[9.0, -9.0, 2.0], 0.0), 2);
        assert_eq!(word.reject_count(&[0.0, 0.5, 2.0], 0.0), 0);
    }

    #[test]
    fn faulted_cells_never_reject() {
        let faults = vec![None, Some(CellFault::StuckAtHrs), None];
        let word = AcamWord::program_with_faults(&intervals(), &MarginPolicy::ideal(), &faults);
        // Cell 1 would reject -9.0; transparent, it cannot.
        assert_eq!(word.reject_count(&[0.0, -9.0, 2.0], 0.0), 0);
        assert!(word.matches(&[0.0, -9.0, 2.0], 0.0));
    }

    #[test]
    #[should_panic(expected = "fill the word")]
    fn wrong_width_input_panics() {
        let word = AcamWord::program(&intervals(), &MarginPolicy::ideal());
        let _ = word.matches(&[0.0], 0.0);
    }
}
