//! Envelope encoder: compiles a query into a programmable word of
//! interval cells.
//!
//! The Lemire envelope of a query `q` at band radius `r` gives, per
//! position `i`, the running max/min of `q` over `[i-r, i+r]`. A
//! candidate `c` with `LB_Keogh(c, q) = 0` sits inside the envelope at
//! every position — exactly the condition a word of `[lower_i, upper_i]`
//! cells tests in one match-line cycle. At sensing margin δ, a match-line
//! *miss* certifies some per-cell exceedance is `> δ`, hence
//! `LB_Keogh(c, q) > δ ≥` any DTW distance bound of interest — a
//! certified prune.

use mda_distance::lower_bounds::envelope;
use mda_distance::DistanceError;

use crate::cell::Interval;

/// The per-position acceptance windows for `query` at band radius
/// `radius` (clamped to the query length, matching the envelope kernel).
///
/// # Errors
///
/// Propagates [`DistanceError`] from the envelope kernel (empty or
/// non-finite query).
pub fn envelope_intervals(query: &[f64], radius: usize) -> Result<Vec<Interval>, DistanceError> {
    let (upper, lower) = envelope(query, radius)?;
    Ok(lower
        .into_iter()
        .zip(upper)
        .map(|(lo, hi)| Interval::new(lo, hi))
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::array::AcamWord;
    use crate::cell::MarginPolicy;
    use mda_distance::lower_bounds::lb_keogh_envelope;

    #[test]
    fn cells_bracket_the_query_itself() {
        let q: Vec<f64> = (0..32).map(|i| (i as f64 * 0.31).sin()).collect();
        let cells = envelope_intervals(&q, 4).unwrap();
        assert_eq!(cells.len(), q.len());
        let word = AcamWord::program(&cells, &MarginPolicy::ideal());
        // The query is inside its own envelope: a match at zero margin.
        assert!(word.matches(&q, 0.0));
    }

    #[test]
    fn a_miss_certifies_positive_lb_keogh() {
        let q: Vec<f64> = (0..24).map(|i| (i as f64 * 0.5).cos()).collect();
        let c: Vec<f64> = (0..24).map(|i| (i as f64 * 0.5).cos() + 3.0).collect();
        let cells = envelope_intervals(&q, 2).unwrap();
        let word = AcamWord::program(&cells, &MarginPolicy::ideal());
        let delta = 1.5;
        assert!(!word.matches(&c, delta));
        let (upper, lower) = envelope(&q, 2).unwrap();
        assert!(lb_keogh_envelope(&c, &upper, &lower) > delta);
    }

    #[test]
    fn empty_query_is_rejected() {
        assert!(envelope_intervals(&[], 1).is_err());
    }
}
