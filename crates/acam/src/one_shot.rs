//! One-shot evaluation of the thresholded distance kinds from the aCAM
//! match plane.
//!
//! The thresholded kinds (HamD, and EdD/LCS with threshold matching) never
//! consume the *magnitude* of an element difference — only the boolean
//! `|p_i - q_j| <= threshold`. That boolean is exactly what an aCAM cell
//! programmed to the window `[q_j - t, q_j + t]` answers in one sense
//! cycle: HamD reads the mismatch count straight off one match line
//! ([`crate::array::AcamWord::reject_count`]), and EdD/LCS run their DP
//! recurrence over the pre-sensed match plane, with every comparator
//! already resolved in analog.
//!
//! On a tuned array ([`MarginPolicy::ideal`]) the plane equals the digital
//! comparator's bit for bit, so all three evaluators return values
//! **bitwise-identical** to `mda_distance`'s kernels. Variation guards and
//! cell faults can only flip plane bits from *mismatch* to *match* —
//! widening — which moves HamD and EdD down and LCS up, monotonically:
//! false-accept-only degradation, never the other direction.

use std::collections::BTreeMap;

use mda_distance::{DistanceError, DistanceKind};
use mda_memristor::CellFault;

use crate::cell::MarginPolicy;

/// One-shot matcher for the thresholded kinds, parameterised like the
/// digital kernels (`threshold`, unit step 1, uniform weights).
#[derive(Debug, Clone, PartialEq)]
pub struct OneShotMatcher {
    threshold: f64,
    policy: MarginPolicy,
    faults: BTreeMap<(usize, usize), CellFault>,
}

impl OneShotMatcher {
    /// A matcher over a tuned (ideal-margin, fault-free) array.
    ///
    /// # Panics
    ///
    /// Panics if `threshold` is negative or non-finite — the same contract
    /// as the digital constructors (`Hamming::new` etc.), because the
    /// threshold is a physical voltage `Vthre` on the accelerator.
    pub fn new(threshold: f64) -> OneShotMatcher {
        assert!(
            threshold.is_finite() && threshold >= 0.0,
            "threshold must be finite and non-negative"
        );
        OneShotMatcher {
            threshold,
            policy: MarginPolicy::ideal(),
            faults: BTreeMap::new(),
        }
    }

    /// Replaces the margin policy the match plane is sensed under.
    #[must_use]
    pub fn with_policy(mut self, policy: MarginPolicy) -> OneShotMatcher {
        self.policy = policy;
        self
    }

    /// Injects a fault into the plane cell at `(i, j)` (always-match).
    #[must_use]
    pub fn with_fault(mut self, i: usize, j: usize, fault: CellFault) -> OneShotMatcher {
        self.faults.insert((i, j), fault);
        self
    }

    /// The configured match threshold.
    pub fn threshold(&self) -> f64 {
        self.threshold
    }

    /// The match-plane bit at `(i, j)` for elements `a = p[i]`, `b = q[j]`.
    ///
    /// A faulted cell reads as *match* (its pull-down is disabled); a
    /// healthy cell widens its `[b - t, b + t]` window by the realized
    /// guard band, which is exactly `0.0` under the ideal policy — making
    /// the comparison `|a - b| <= t`, bitwise the digital comparator.
    fn cell_matches(&self, i: usize, j: usize, a: f64, b: f64) -> bool {
        if self.faults.contains_key(&(i, j)) {
            return true;
        }
        let index = ((i as u64) << 32) | j as u64;
        let guard = self.policy.realized_guard(index, b.abs() + self.threshold);
        (a - b).abs() <= self.threshold + guard
    }

    /// One-shot thresholded Hamming distance: the mismatch count read off
    /// a single match line.
    ///
    /// # Errors
    ///
    /// Mirrors `Hamming::distance`: [`DistanceError::LengthMismatch`] for
    /// unequal lengths, then [`DistanceError::EmptySequence`].
    pub fn hamming(&self, p: &[f64], q: &[f64]) -> Result<f64, DistanceError> {
        if p.len() != q.len() {
            return Err(DistanceError::LengthMismatch {
                left: p.len(),
                right: q.len(),
            });
        }
        if p.is_empty() {
            return Err(DistanceError::EmptySequence);
        }
        let contributions: Vec<f64> = p
            .iter()
            .zip(q)
            .enumerate()
            .map(|(j, (&a, &b))| {
                if self.cell_matches(0, j, a, b) {
                    0.0
                } else {
                    1.0
                }
            })
            .collect();
        Ok(contributions.iter().sum())
    }

    /// One-shot thresholded edit distance: the Levenshtein recurrence over
    /// the pre-sensed match plane (row-major, the digital reference order).
    ///
    /// # Errors
    ///
    /// Mirrors `EditDistance::distance`: [`DistanceError::EmptySequence`]
    /// for empty inputs.
    pub fn edit(&self, p: &[f64], q: &[f64]) -> Result<f64, DistanceError> {
        if p.is_empty() || q.is_empty() {
            return Err(DistanceError::EmptySequence);
        }
        let n = q.len();
        let mut prev: Vec<f64> = (0..=n).map(|j| j as f64).collect();
        let mut curr = vec![0.0; n + 1];
        for (i, &a) in p.iter().enumerate() {
            curr[0] = (i + 1) as f64;
            for (j, &b) in q.iter().enumerate() {
                let del = prev[j + 1] + 1.0;
                let ins = curr[j] + 1.0;
                let diag = if self.cell_matches(i, j, a, b) {
                    prev[j]
                } else {
                    prev[j] + 1.0
                };
                curr[j + 1] = del.min(ins).min(diag);
            }
            std::mem::swap(&mut prev, &mut curr);
        }
        Ok(prev[n])
    }

    /// One-shot thresholded LCS similarity over the pre-sensed match plane.
    ///
    /// # Errors
    ///
    /// Mirrors `Lcs::similarity`: [`DistanceError::EmptySequence`] for
    /// empty inputs.
    pub fn lcs(&self, p: &[f64], q: &[f64]) -> Result<f64, DistanceError> {
        if p.is_empty() || q.is_empty() {
            return Err(DistanceError::EmptySequence);
        }
        let n = q.len();
        let mut prev = vec![0.0f64; n + 1];
        let mut curr = vec![0.0f64; n + 1];
        for (i, &a) in p.iter().enumerate() {
            curr[0] = 0.0;
            for (j, &b) in q.iter().enumerate() {
                curr[j + 1] = if self.cell_matches(i, j, a, b) {
                    prev[j] + 1.0
                } else {
                    // The reference evaluates left.max(up) in this order.
                    curr[j].max(prev[j + 1])
                };
            }
            std::mem::swap(&mut prev, &mut curr);
        }
        Ok(prev[n])
    }

    /// Dispatches to the one-shot evaluator for `kind`.
    ///
    /// # Errors
    ///
    /// [`DistanceError::InvalidParameter`] for the non-thresholded kinds,
    /// plus the per-kind validation errors above.
    pub fn evaluate(&self, kind: DistanceKind, p: &[f64], q: &[f64]) -> Result<f64, DistanceError> {
        match kind {
            DistanceKind::Hamming => self.hamming(p, q),
            DistanceKind::Edit => self.edit(p, q),
            DistanceKind::Lcs => self.lcs(p, q),
            _ => Err(DistanceError::InvalidParameter {
                name: "kind",
                reason: format!("{kind} has no one-shot aCAM evaluation"),
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mda_distance::{Distance, EditDistance, Hamming, Lcs};

    fn series(n: usize, phase: f64) -> Vec<f64> {
        (0..n)
            .map(|i| (i as f64 * 0.37 + phase).sin() * 1.5)
            .collect()
    }

    #[test]
    fn tuned_array_is_bitwise_identical_to_digital_kernels() {
        let t = 0.1;
        let m = OneShotMatcher::new(t);
        for (np, nq) in [(1, 1), (5, 5), (9, 4), (4, 9), (17, 17)] {
            let p = series(np, 0.0);
            let q = series(nq, 0.8);
            if np == nq {
                let dig = Hamming::new(t).evaluate(&p, &q).unwrap();
                assert_eq!(m.hamming(&p, &q).unwrap().to_bits(), dig.to_bits());
            }
            let dig = EditDistance::new(t).evaluate(&p, &q).unwrap();
            assert_eq!(m.edit(&p, &q).unwrap().to_bits(), dig.to_bits());
            let dig = Lcs::new(t).evaluate(&p, &q).unwrap();
            assert_eq!(m.lcs(&p, &q).unwrap().to_bits(), dig.to_bits());
        }
    }

    #[test]
    fn validation_mirrors_digital_order() {
        let m = OneShotMatcher::new(0.1);
        assert_eq!(
            m.hamming(&[0.0], &[0.0, 1.0]).unwrap_err(),
            DistanceError::LengthMismatch { left: 1, right: 2 }
        );
        assert_eq!(
            m.hamming(&[], &[]).unwrap_err(),
            DistanceError::EmptySequence
        );
        assert_eq!(
            m.edit(&[], &[1.0]).unwrap_err(),
            DistanceError::EmptySequence
        );
        assert_eq!(
            m.lcs(&[1.0], &[]).unwrap_err(),
            DistanceError::EmptySequence
        );
    }

    #[test]
    fn faults_only_move_results_toward_match() {
        let p = series(8, 0.0);
        let q = series(8, 1.1);
        let tuned = OneShotMatcher::new(0.1);
        for i in 0..8 {
            for j in 0..8 {
                let faulty = tuned.clone().with_fault(i, j, CellFault::StuckAtLrs);
                assert!(faulty.hamming(&p, &q).unwrap() <= tuned.hamming(&p, &q).unwrap());
                assert!(faulty.edit(&p, &q).unwrap() <= tuned.edit(&p, &q).unwrap());
                assert!(faulty.lcs(&p, &q).unwrap() >= tuned.lcs(&p, &q).unwrap());
            }
        }
        // A HamD fault on the sensed row actually flips a bit.
        let all_far = OneShotMatcher::new(0.1);
        assert_eq!(all_far.hamming(&[0.0, 0.0], &[9.0, 9.0]).unwrap(), 2.0);
        let one_dead = all_far.with_fault(0, 1, CellFault::DeadProgramming);
        assert_eq!(one_dead.hamming(&[0.0, 0.0], &[9.0, 9.0]).unwrap(), 1.0);
    }

    #[test]
    fn variation_guards_only_move_results_toward_match() {
        let p = series(12, 0.0);
        let q = series(12, 0.9);
        let tuned = OneShotMatcher::new(0.1);
        for seed in 0..16 {
            let varied = OneShotMatcher::new(0.1).with_policy(MarginPolicy::paper_defaults(seed));
            assert!(varied.hamming(&p, &q).unwrap() <= tuned.hamming(&p, &q).unwrap());
            assert!(varied.edit(&p, &q).unwrap() <= tuned.edit(&p, &q).unwrap());
            assert!(varied.lcs(&p, &q).unwrap() >= tuned.lcs(&p, &q).unwrap());
        }
    }

    #[test]
    fn evaluate_dispatches_and_rejects_unsupported_kinds() {
        let m = OneShotMatcher::new(0.1);
        let p = series(6, 0.0);
        assert_eq!(m.evaluate(DistanceKind::Hamming, &p, &p).unwrap(), 0.0);
        assert_eq!(m.evaluate(DistanceKind::Lcs, &p, &p).unwrap(), 6.0);
        for kind in [
            DistanceKind::Dtw,
            DistanceKind::Hausdorff,
            DistanceKind::Manhattan,
        ] {
            assert!(m.evaluate(kind, &p, &p).is_err(), "{kind}");
        }
    }

    #[test]
    #[should_panic(expected = "threshold")]
    fn negative_threshold_panics() {
        let _ = OneShotMatcher::new(-0.5);
    }
}
