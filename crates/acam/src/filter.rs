//! The aCAM candidate pre-filter: one match-line cycle per window, wired
//! into subsequence search and kNN via
//! [`mda_distance::mining::CandidateFilter`].
//!
//! ## Why filtered runs are bitwise-identical
//!
//! A programmed word holds the query's envelope; cell `i` reports the
//! exceedance `e_i` of the window's `i`-th sample — term for term the same
//! floating-point expression as the `lb_keogh_envelope` summand (see
//! [`crate::cell::Interval::exceedance`]). The word *rejects* only when
//! some `e_i > δ + g_i` with guard `g_i ≥ 0`, i.e. only when `e_i > δ`.
//! For non-negative terms, a floating-point partial sum is `≥` every one
//! of its terms, so `LB_Keogh = Σ e_i ≥ e_i > δ`. In search, δ is the
//! fixed scout threshold `best_ub ≥` every chunk-local threshold the
//! cascade ever holds — so each rejected window is one the cascade's
//! LB_Keogh layer (or LB_Kim before it) would have discarded anyway, and
//! discarded windows never update the cascade's running best. Skipping
//! them therefore changes no state any surviving window observes: the
//! match, its distance, and every tie-break come out bitwise-identical.
//!
//! Variation widens guards ([`MarginPolicy`]) and faults make cells
//! transparent — both push the word toward *accepting*, so a degraded
//! array only filters less, never incorrectly.

use mda_distance::mining::{CandidateFilter, CandidatePredicate};
use mda_distance::DistanceKind;
use mda_memristor::CellFault;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::array::AcamWord;
use crate::cell::MarginPolicy;
use crate::encoder::envelope_intervals;

/// Which fault pattern to inject into programmed words.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultPlan {
    /// Every cell healthy.
    Healthy,
    /// Each cell independently faulted with probability `rate`, drawn
    /// reproducibly from `seed`; the fault mode cycles through all four
    /// [`CellFault`] variants.
    Seeded {
        /// RNG seed for the per-cell draws.
        seed: u64,
        /// Per-cell fault probability in `[0, 1]`.
        rate: f64,
    },
}

impl FaultPlan {
    /// One optional fault per cell of a `word_len`-cell word.
    pub fn faults_for(&self, word_len: usize) -> Vec<Option<CellFault>> {
        match *self {
            FaultPlan::Healthy => vec![None; word_len],
            FaultPlan::Seeded { seed, rate } => {
                let mut rng = StdRng::seed_from_u64(seed);
                (0..word_len)
                    .map(|_| {
                        if rng.gen_bool(rate.clamp(0.0, 1.0)) {
                            Some(match rng.gen_range(0..4u32) {
                                0 => CellFault::StuckAtHrs,
                                1 => CellFault::StuckAtLrs,
                                2 => CellFault::Drift(1.0 + rng.gen::<f64>()),
                                _ => CellFault::DeadProgramming,
                            })
                        } else {
                            None
                        }
                    })
                    .collect()
            }
        }
    }
}

/// An aCAM array used as a stage-0 candidate filter.
#[derive(Debug, Clone, PartialEq)]
pub struct AcamPrefilter {
    policy: MarginPolicy,
    fault_plan: FaultPlan,
}

impl AcamPrefilter {
    /// A filter programmed under `policy`, with healthy cells.
    pub fn new(policy: MarginPolicy) -> AcamPrefilter {
        AcamPrefilter {
            policy,
            fault_plan: FaultPlan::Healthy,
        }
    }

    /// A fully tuned, healthy array — the sharpest filter.
    pub fn tuned() -> AcamPrefilter {
        AcamPrefilter::new(MarginPolicy::ideal())
    }

    /// Replaces the fault plan.
    #[must_use]
    pub fn with_fault_plan(mut self, plan: FaultPlan) -> AcamPrefilter {
        self.fault_plan = plan;
        self
    }

    /// The margin policy words are programmed under.
    pub fn policy(&self) -> &MarginPolicy {
        &self.policy
    }
}

struct ProgrammedWord {
    word: AcamWord,
    delta: f64,
}

impl CandidatePredicate for ProgrammedWord {
    fn admit(&self, candidate: &[f64]) -> bool {
        // A candidate that doesn't fill the word can't be sensed — admit
        // it and let the exact pipeline handle (or reject) it.
        if candidate.len() != self.word.len() {
            return true;
        }
        self.word.matches(candidate, self.delta)
    }
}

impl CandidateFilter for AcamPrefilter {
    fn program(
        &self,
        kind: DistanceKind,
        query: &[f64],
        band_radius: usize,
        prune_threshold: f64,
    ) -> Option<Box<dyn CandidatePredicate>> {
        if !prune_threshold.is_finite() || prune_threshold < 0.0 {
            return None;
        }
        // DTW admits the envelope bound at the caller's band radius;
        // Manhattan is the radius-0 special case (the envelope degenerates
        // to the query itself and LB_Keogh *is* the Manhattan distance).
        // The remaining kinds have no envelope bound — stay out of the way.
        let radius = match kind {
            DistanceKind::Dtw => band_radius,
            DistanceKind::Manhattan => 0,
            _ => return None,
        };
        let intervals = envelope_intervals(query, radius).ok()?;
        let faults = self.fault_plan.faults_for(intervals.len());
        let word = AcamWord::program_with_faults(&intervals, &self.policy, &faults);
        Some(Box::new(ProgrammedWord {
            word,
            delta: prune_threshold,
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unsupported_kinds_and_bad_thresholds_yield_none() {
        let f = AcamPrefilter::tuned();
        let q = [0.0, 1.0, 0.5];
        for kind in [
            DistanceKind::Lcs,
            DistanceKind::Edit,
            DistanceKind::Hausdorff,
            DistanceKind::Hamming,
        ] {
            assert!(f.program(kind, &q, 1, 1.0).is_none(), "{kind}");
        }
        assert!(f.program(DistanceKind::Dtw, &q, 1, f64::NAN).is_none());
        assert!(f.program(DistanceKind::Dtw, &q, 1, -1.0).is_none());
        assert!(f.program(DistanceKind::Dtw, &[], 1, 1.0).is_none());
    }

    #[test]
    fn manhattan_rejection_is_exact() {
        let f = AcamPrefilter::tuned();
        let q = [0.0, 1.0, 2.0];
        let pred = f.program(DistanceKind::Manhattan, &q, 999, 1.0).unwrap();
        // MD([0,1,2],[0,1,2]) = 0 <= 1 -> admit.
        assert!(pred.admit(&[0.0, 1.0, 2.0]));
        // A single sample 1.5 beyond its window certifies MD > 1.
        assert!(!pred.admit(&[0.0, 1.0, 3.5]));
        // Wrong-width candidates are always admitted.
        assert!(pred.admit(&[0.0, 1.0]));
    }

    #[test]
    fn faults_only_ever_admit_more() {
        let q: Vec<f64> = (0..32).map(|i| (i as f64 * 0.4).sin()).collect();
        let healthy = AcamPrefilter::tuned();
        let faulty =
            AcamPrefilter::tuned().with_fault_plan(FaultPlan::Seeded { seed: 7, rate: 0.5 });
        let ph = healthy.program(DistanceKind::Dtw, &q, 3, 0.5).unwrap();
        let pf = faulty.program(DistanceKind::Dtw, &q, 3, 0.5).unwrap();
        for shift in 0..16 {
            let cand: Vec<f64> = (0..32)
                .map(|i| ((i + shift) as f64 * 0.45).sin() + shift as f64 * 0.1)
                .collect();
            if ph.admit(&cand) {
                assert!(pf.admit(&cand), "shift {shift}");
            }
        }
    }

    #[test]
    fn seeded_fault_plan_is_reproducible_and_rate_bounded() {
        let plan = FaultPlan::Seeded {
            seed: 11,
            rate: 0.25,
        };
        let a = plan.faults_for(512);
        assert_eq!(a, plan.faults_for(512));
        let hits = a.iter().filter(|f| f.is_some()).count();
        assert!(hits > 0 && hits < 512, "hits {hits}");
        assert!(FaultPlan::Healthy.faults_for(8).iter().all(|f| f.is_none()));
    }
}
