//! The match plane's admissibility contract, as properties:
//!
//! * a **cell** rejection certifies the input exceeds the *ideal* window
//!   by more than the sensing margin, whatever guard the policy realized
//!   and only ever from a healthy cell;
//! * a **pre-filter** miss certifies the candidate's exact distance
//!   (banded DTW at the programmed radius, or Manhattan) is strictly
//!   above the programmed threshold — proven by recomputing the exact
//!   kernel for every rejected candidate, under tuned, variation-widened
//!   and fault-seeded arrays alike;
//! * **degradation is one-directional**: variation guards and cell faults
//!   only ever widen acceptance (filter) and only ever move one-shot
//!   values toward *match* (HamD/EdD down, LCS up), with the tuned plane
//!   pinned bitwise to the digital kernels so the direction is measured
//!   against ground truth, not against another approximation.

use proptest::prelude::*;

use mda_acam::{AcamCell, AcamPrefilter, FaultPlan, Interval, MarginPolicy, OneShotMatcher};
use mda_distance::dtw::Band;
use mda_distance::mining::CandidateFilter;
use mda_distance::{Distance, DistanceKind, Dtw, EditDistance, Hamming, Lcs, Manhattan};
use mda_memristor::CellFault;

const FAULTS: [CellFault; 4] = [
    CellFault::StuckAtHrs,
    CellFault::StuckAtLrs,
    CellFault::Drift(1.4),
    CellFault::DeadProgramming,
];

/// The three array conditions every property sweeps.
fn filters() -> [AcamPrefilter; 3] {
    [
        AcamPrefilter::tuned(),
        AcamPrefilter::new(MarginPolicy::paper_defaults(17)),
        AcamPrefilter::tuned().with_fault_plan(FaultPlan::Seeded { seed: 5, rate: 0.2 }),
    ]
}

/// Equal-length (query, candidate) pairs.
fn pairs() -> impl Strategy<Value = Vec<(f64, f64)>> {
    prop::collection::vec((-3.0f64..3.0, -3.0f64..3.0), 2..24)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn cell_rejection_certifies_ideal_exceedance(
        lo in -4.0f64..4.0,
        width in 0.0f64..3.0,
        x in -8.0f64..8.0,
        delta in 0.0f64..2.0,
        seed in 0u64..64,
        policy_kind in 0usize..3,
        faulted in 0usize..2,
    ) {
        let ideal = Interval::new(lo, lo + width);
        let policy = match policy_kind {
            0 => MarginPolicy::ideal(),
            1 => MarginPolicy::paper_defaults(seed),
            _ => MarginPolicy { base_margin: 0.3, variation: None, seed },
        };
        let fault = if faulted == 1 {
            Some(FAULTS[(seed % 4) as usize])
        } else {
            None
        };
        let cell = AcamCell::program(ideal, seed, &policy, fault);
        if !cell.accepts(x, delta) {
            // Only a healthy cell may reject, and only past the margin on
            // its IDEAL window — the realized guard can't have narrowed it.
            prop_assert!(fault.is_none(), "a transparent cell rejected");
            prop_assert!(ideal.exceedance(x) > delta);
        }
        if fault.is_some() {
            prop_assert!(cell.accepts(x, delta), "faulted cells always match");
        }
    }

    #[test]
    fn prefilter_miss_certifies_banded_dtw_above_threshold(
        pair in pairs(),
        radius in 0usize..8,
        threshold in 0.0f64..8.0,
    ) {
        let (query, candidate): (Vec<f64>, Vec<f64>) = pair.into_iter().unzip();
        let dtw = Dtw::new().with_band(Band::SakoeChiba(radius));
        for filter in filters() {
            let Some(pred) = filter.program(DistanceKind::Dtw, &query, radius, threshold)
            else { continue };
            if !pred.admit(&candidate) {
                // The rejection claims LB_Keogh > threshold; the banded DTW
                // at the SAME radius dominates that bound, so the exact
                // kernel must sit strictly above too — a false reject here
                // would silently corrupt every pruned search.
                let exact = dtw.evaluate(&query, &candidate).expect("equal lengths");
                prop_assert!(
                    exact > threshold,
                    "false reject: DTW {exact} <= {threshold} (radius {radius})"
                );
            }
        }
    }

    #[test]
    fn prefilter_miss_certifies_manhattan_above_threshold(
        pair in pairs(),
        threshold in 0.0f64..8.0,
    ) {
        let (query, candidate): (Vec<f64>, Vec<f64>) = pair.into_iter().unzip();
        for filter in filters() {
            let Some(pred) = filter.program(DistanceKind::Manhattan, &query, 0, threshold)
            else { continue };
            if !pred.admit(&candidate) {
                let exact = Manhattan::new().evaluate(&query, &candidate).expect("equal lengths");
                prop_assert!(exact > threshold, "false reject: MD {exact} <= {threshold}");
            }
        }
    }

    #[test]
    fn degraded_arrays_only_widen_acceptance(
        pair in pairs(),
        radius in 0usize..6,
        threshold in 0.0f64..4.0,
    ) {
        let (query, candidate): (Vec<f64>, Vec<f64>) = pair.into_iter().unzip();
        let [tuned, varied, faulty] = filters();
        let t = tuned.program(DistanceKind::Dtw, &query, radius, threshold).unwrap();
        let v = varied.program(DistanceKind::Dtw, &query, radius, threshold).unwrap();
        let f = faulty.program(DistanceKind::Dtw, &query, radius, threshold).unwrap();
        if t.admit(&candidate) {
            prop_assert!(v.admit(&candidate), "variation narrowed a window");
            prop_assert!(f.admit(&candidate), "a fault narrowed a window");
        }
    }

    #[test]
    fn one_shot_tuned_is_bitwise_exact_and_degradation_is_false_accept_only(
        pair in pairs(),
        threshold in 0.0f64..2.0,
        seed in 0u64..64,
        i in 0usize..24,
        j in 0usize..24,
    ) {
        let (p, q): (Vec<f64>, Vec<f64>) = pair.into_iter().unzip();
        let tuned = OneShotMatcher::new(threshold);
        let varied = OneShotMatcher::new(threshold)
            .with_policy(MarginPolicy::paper_defaults(seed));
        let faulty = tuned
            .clone()
            .with_fault(i % p.len(), j % q.len(), FAULTS[(seed % 4) as usize]);

        // Pin the tuned plane to the exact digital kernels bitwise, so the
        // degradation direction below is measured against ground truth.
        let ham = Hamming::new(threshold).evaluate(&p, &q).expect("equal lengths");
        let edd = EditDistance::new(threshold).evaluate(&p, &q).expect("non-empty");
        let lcs = Lcs::new(threshold).evaluate(&p, &q).expect("non-empty");
        prop_assert_eq!(tuned.hamming(&p, &q).unwrap().to_bits(), ham.to_bits());
        prop_assert_eq!(tuned.edit(&p, &q).unwrap().to_bits(), edd.to_bits());
        prop_assert_eq!(tuned.lcs(&p, &q).unwrap().to_bits(), lcs.to_bits());

        // Widening may only move values toward MATCH: distances down,
        // similarity up — never a false reject in any evaluator.
        for degraded in [&varied, &faulty] {
            prop_assert!(degraded.hamming(&p, &q).unwrap() <= ham);
            prop_assert!(degraded.edit(&p, &q).unwrap() <= edd);
            prop_assert!(degraded.lcs(&p, &q).unwrap() >= lcs);
        }
    }
}
