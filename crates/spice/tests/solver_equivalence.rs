//! Golden equivalence: the structure-caching solver core must reproduce the
//! frozen pre-optimization path (`mda_spice::legacy`) to tight tolerance on
//! representative netlists — same traces, same convergence behaviour.
//!
//! Dense netlists (n ≤ 150 unknowns) use the same pivot rule and arithmetic
//! order as the legacy dense solver, so they are compared at ≤ 1e-12.
//! Sparse netlists are compared at the same bound on well-conditioned
//! circuits; the legacy sparse path's hash-map row storage makes its
//! last-bit rounding order-dependent, which is exactly why the bound is a
//! tolerance and not exact equality.

use mda_spice::{legacy, Netlist, SpiceError, TransientSpec, Waveform};

const TOL: f64 = 1.0e-12;

/// Asserts two transient runs match sample-for-sample on every node voltage
/// and branch current, with |Δ| ≤ TOL · max(1, |reference|).
fn assert_runs_match(reference: &mda_spice::TransientResult, new: &mda_spice::TransientResult) {
    assert_eq!(reference.times(), new.times(), "time axes differ");
    assert_eq!(reference.node_count(), new.node_count());
    let check = |what: &str, a: &[f64], b: &[f64]| {
        assert_eq!(a.len(), b.len(), "{what}: lengths differ");
        for (i, (&r, &n)) in a.iter().zip(b).enumerate() {
            let bound = TOL * r.abs().max(1.0);
            assert!(
                (r - n).abs() <= bound,
                "{what}[{i}]: legacy {r:.17e} vs new {n:.17e} (|Δ| = {:.3e} > {bound:.3e})",
                (r - n).abs()
            );
        }
    };
    check("voltage", reference.voltages_flat(), new.voltages_flat());
    check("current", reference.currents_flat(), new.currents_flat());
}

fn run_both(net: &Netlist, spec: &TransientSpec) -> Result<(), SpiceError> {
    let reference = legacy::run_transient(net, spec)?;
    let new = net.transient(spec)?;
    assert_runs_match(&reference, &new);
    Ok(())
}

/// RC ladder with a nonlinear element thrown in — the everyday dense case.
fn rc_diode_net() -> (Netlist, TransientSpec) {
    let mut net = Netlist::new();
    let inp = net.node("in");
    net.voltage_source(inp, Netlist::GROUND, Waveform::step(0.8));
    let mut prev = inp;
    for s in 0..4 {
        let n = net.node(&format!("s{s}"));
        net.resistor(prev, n, 2.0e3);
        net.capacitor(n, Netlist::GROUND, 0.5e-9);
        prev = n;
    }
    let hold = net.node("hold");
    net.diode(prev, hold);
    net.capacitor(hold, Netlist::GROUND, 0.1e-9);
    (net, TransientSpec::new(4.0e-6, 4.0e-9))
}

#[test]
fn dense_rc_diode_transient_matches_legacy() {
    let (net, spec) = rc_diode_net();
    run_both(&net, &spec).unwrap();
}

#[test]
fn trapezoidal_integration_matches_legacy() {
    let (net, spec) = rc_diode_net();
    run_both(&net, &spec.trapezoidal()).unwrap();
}

#[test]
fn start_from_dc_matches_legacy() {
    let (net, spec) = rc_diode_net();
    run_both(&net, &spec.from_dc()).unwrap();
}

#[test]
fn diode_max_chain_matches_legacy() {
    // The paper's maximum-selection primitive, chained: each stage's diode
    // pair forwards the larger of its input and the previous stage output.
    let mut net = Netlist::new();
    let mut stage_out = Netlist::GROUND;
    for s in 0..12 {
        let src = net.node(&format!("src{s}"));
        let out = net.node(&format!("out{s}"));
        let level = 0.1 + 0.05 * s as f64;
        net.voltage_source(src, Netlist::GROUND, Waveform::step_at(level, 1.0e-9));
        net.diode(src, out);
        if s > 0 {
            net.diode(stage_out, out);
        }
        net.resistor(out, Netlist::GROUND, 100.0e3);
        net.capacitor(out, Netlist::GROUND, 10.0e-15);
        stage_out = out;
    }
    run_both(&net, &TransientSpec::new(40.0e-9, 20.0e-12)).unwrap();
}

#[test]
fn dc_operating_point_matches_legacy() {
    let (net, _) = rc_diode_net();
    let reference = legacy::solve_dc(&net).unwrap();
    let new = net.dc().unwrap();
    assert_eq!(reference.len(), new.len());
    for (i, (&r, &n)) in reference.iter().zip(&new).enumerate() {
        assert!(
            (r - n).abs() <= TOL * r.abs().max(1.0),
            "node {i}: legacy {r:.17e} vs new {n:.17e}"
        );
    }
}

/// A memristor grid large enough to force the sparse backend
/// (> 150 unknowns), with grounded parasitic capacitance at every node —
/// well-conditioned on purpose (1 kΩ–100 kΩ spread, no near-singular
/// stamps) so both paths agree to the last-bit-rounding level.
fn memristor_grid(rows: usize, cols: usize) -> (Netlist, TransientSpec) {
    let mut net = Netlist::new();
    let mut nodes = Vec::with_capacity(rows * cols);
    for r in 0..rows {
        for c in 0..cols {
            nodes.push(net.node(&format!("n{r}_{c}")));
        }
    }
    let at = |r: usize, c: usize| nodes[r * cols + c];
    // Drive the left edge, load the right edge.
    for r in 0..rows {
        let drv = net.node(&format!("drv{r}"));
        net.voltage_source(drv, Netlist::GROUND, Waveform::step(0.2 + 0.01 * r as f64));
        net.resistor(drv, at(r, 0), 1.0e3);
        net.resistor(at(r, cols - 1), Netlist::GROUND, 10.0e3);
    }
    // Grid of memristors with a deterministic resistance spread.
    for r in 0..rows {
        for c in 0..cols {
            let ohms = 1.0e3 + 99.0e3 * ((r * 31 + c * 17) % 97) as f64 / 96.0;
            if c + 1 < cols {
                net.memristor(at(r, c), at(r, c + 1), ohms);
            }
            if r + 1 < rows {
                net.memristor(at(r, c), at(r + 1, c), ohms + 500.0);
            }
            net.capacitor(at(r, c), Netlist::GROUND, 20.0e-15);
        }
    }
    (net, TransientSpec::new(2.0e-9, 20.0e-12))
}

#[test]
fn sparse_grid_transient_matches_legacy() {
    // 14 × 14 grid + 14 drivers = 210 node unknowns -> sparse backend.
    let (net, spec) = memristor_grid(14, 14);
    run_both(&net, &spec).unwrap();
}

#[test]
fn sparse_grid_dc_matches_legacy() {
    let (net, _) = memristor_grid(14, 14);
    let reference = legacy::solve_dc(&net).unwrap();
    let new = net.dc().unwrap();
    for (i, (&r, &n)) in reference.iter().zip(&new).enumerate() {
        assert!(
            (r - n).abs() <= TOL * r.abs().max(1.0),
            "node {i}: legacy {r:.17e} vs new {n:.17e}"
        );
    }
}

#[test]
fn stats_reflect_the_work_done() {
    let (net, spec) = memristor_grid(14, 14);
    let res = net.transient(&spec).unwrap();
    let stats = res.stats();
    assert_eq!(stats.solve_points as usize, res.len() - 1);
    assert!(stats.newton_iterations >= stats.solve_points);
    // Linear grid at a fixed step: one full (pivot-searching)
    // factorization, everything after is a reuse of identical values.
    assert_eq!(stats.full_factorizations, 1);
    assert_eq!(stats.refactorizations, 0);
    assert_eq!(stats.residual_fallbacks, 0);
    assert!(stats.factor_reuses > 0);
    assert!(
        stats.factor_nnz >= stats.base_nnz,
        "fill-in can't shrink nnz"
    );
    assert!(
        stats.n_unknowns > 150,
        "meant to exercise the sparse backend"
    );
}
