//! Property-based tests of the MNA simulator against closed-form circuit
//! theory.

use proptest::prelude::*;

use mda_spice::{Netlist, TransientSpec, Waveform};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn voltage_divider_matches_formula(
        r1 in 100.0f64..1.0e6,
        r2 in 100.0f64..1.0e6,
        v in -2.0f64..2.0,
    ) {
        let mut net = Netlist::new();
        let top = net.node("top");
        let mid = net.node("mid");
        net.voltage_source(top, Netlist::GROUND, Waveform::Dc(v));
        net.resistor(top, mid, r1);
        net.resistor(mid, Netlist::GROUND, r2);
        let sol = net.dc().expect("solvable divider");
        let expected = v * r2 / (r1 + r2);
        prop_assert!((sol[mid.index()] - expected).abs() < 1e-9);
    }

    #[test]
    fn resistor_ladder_superposition(
        r in 1.0e3f64..1.0e5,
        v1 in -1.0f64..1.0,
        v2 in -1.0f64..1.0,
    ) {
        // Node driven by two sources through equal resistors plus a load:
        // solution must be linear in each source (superposition).
        let solve = |a: f64, b: f64| -> f64 {
            let mut net = Netlist::new();
            let na = net.node("a");
            let nb = net.node("b");
            let mid = net.node("mid");
            net.voltage_source(na, Netlist::GROUND, Waveform::Dc(a));
            net.voltage_source(nb, Netlist::GROUND, Waveform::Dc(b));
            net.resistor(na, mid, r);
            net.resistor(nb, mid, r);
            net.resistor(mid, Netlist::GROUND, r);
            net.dc().expect("solvable")[mid.index()]
        };
        let both = solve(v1, v2);
        let only1 = solve(v1, 0.0);
        let only2 = solve(0.0, v2);
        prop_assert!((both - (only1 + only2)).abs() < 1e-9);
    }

    #[test]
    fn rc_transient_tracks_analytic_solution(
        r_kohm in 0.5f64..20.0,
        c_pf in 10.0f64..500.0,
        v in 0.1f64..1.0,
    ) {
        let r = r_kohm * 1.0e3;
        let c = c_pf * 1.0e-12;
        let tau = r * c;
        let mut net = Netlist::new();
        let inp = net.node("in");
        let out = net.node("out");
        net.voltage_source(inp, Netlist::GROUND, Waveform::step(v));
        net.resistor(inp, out, r);
        net.capacitor(out, Netlist::GROUND, c);
        let res = net
            .transient(&TransientSpec::new(3.0 * tau, tau / 200.0))
            .expect("solvable RC");
        let tr = res.voltage(out);
        // Compare at one tau (skip the first few samples near the edge).
        let got = tr.at_time(tau);
        let expected = v * (1.0 - (-1.0f64).exp());
        prop_assert!(
            (got - expected).abs() < 0.02 * v,
            "v(tau) = {} vs {}",
            got,
            expected
        );
    }

    #[test]
    fn diode_max_selects_larger_source(
        a in 0.05f64..0.45,
        b in 0.05f64..0.45,
    ) {
        prop_assume!((a - b).abs() > 0.02);
        let mut net = Netlist::new();
        let na = net.node("a");
        let nb = net.node("b");
        let out = net.node("out");
        net.voltage_source(na, Netlist::GROUND, Waveform::Dc(a));
        net.voltage_source(nb, Netlist::GROUND, Waveform::Dc(b));
        net.diode(na, out);
        net.diode(nb, out);
        net.resistor(out, Netlist::GROUND, 100.0e3);
        let sol = net.dc().expect("solvable");
        let expected = a.max(b);
        prop_assert!(
            (sol[out.index()] - expected).abs() < 6.0e-3,
            "max({a}, {b}) read {}",
            sol[out.index()]
        );
    }

    #[test]
    fn dense_and_sparse_backends_agree_on_grids(size in 2usize..7) {
        // A resistor grid is solved dense below the sparse threshold; build
        // a big enough replica by padding with disconnected-but-grounded
        // nodes is unnecessary — instead verify grid solutions against
        // conservation of current (KCL at internal nodes).
        let mut net = Netlist::new();
        let mut nodes = Vec::new();
        for i in 0..size * size {
            nodes.push(net.node(&format!("n{i}")));
        }
        // Grid resistors.
        for row in 0..size {
            for col in 0..size {
                let idx = row * size + col;
                if col + 1 < size {
                    net.resistor(nodes[idx], nodes[idx + 1], 1.0e3);
                }
                if row + 1 < size {
                    net.resistor(nodes[idx], nodes[idx + size], 1.0e3);
                }
            }
        }
        net.voltage_source(nodes[0], Netlist::GROUND, Waveform::Dc(1.0));
        net.resistor(nodes[size * size - 1], Netlist::GROUND, 1.0e3);
        let sol = net.dc().expect("solvable grid");
        // KCL at an interior node: currents into the node sum to zero.
        if size >= 3 {
            let r = 1.0e3;
            let idx = size + 1; // node (1,1)
            let v = sol[nodes[idx].index()];
            let neighbours = [idx - 1, idx + 1, idx - size, idx + size];
            let net_current: f64 = neighbours
                .iter()
                .map(|&nb| (sol[nodes[nb].index()] - v) / r)
                .sum();
            prop_assert!(net_current.abs() < 1e-9, "KCL residual {net_current}");
        }
    }
}
