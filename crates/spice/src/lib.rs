//! # mda-spice
//!
//! A from-scratch analog circuit simulator purpose-built for validating the
//! DAC'17 memristor distance accelerator at device level — the role HSPICE
//! plays in the paper's Section 4.
//!
//! The simulator implements:
//!
//! * **Modified nodal analysis** ([`mna`]) over a [`netlist::Netlist`] of
//!   resistors, memristors, capacitors, independent voltage sources,
//!   smoothed ideal diodes (threshold 0 V, per the paper's Table 1),
//!   transmission gates, and behavioural op-amps with finite open-loop gain
//!   and a single-pole gain–bandwidth model (Table 1: gain 1e4, GBW 50 GHz);
//! * **Newton–Raphson** iteration for the nonlinear devices;
//! * **DC operating point** ([`dc`]) and **backward-Euler transient**
//!   ([`transient`]) analysis;
//! * **waveform measurements** ([`waveform`]), in particular the paper's
//!   convergence-time definition: the time at which the output settles
//!   within 0.1 % of its final value;
//! * dense and sparse LU solvers ([`solver`], [`sparse`]) behind an
//!   allocation-free, structure-caching core: element stamps are compiled
//!   once into a CSR *stamp plan*, the LU pivot order and fill-in are
//!   computed once and numerically refactored in place across Newton
//!   iterations and timesteps, and [`stats::SolveStats`] reports what the
//!   solver actually did (the frozen pre-plan path survives in [`legacy`]
//!   as a golden reference).
//!
//! ## Example: RC step response
//!
//! ```
//! use mda_spice::{Netlist, Waveform, TransientSpec};
//!
//! # fn main() -> Result<(), mda_spice::SpiceError> {
//! let mut net = Netlist::new();
//! let inp = net.node("in");
//! let out = net.node("out");
//! net.voltage_source(inp, Netlist::GROUND, Waveform::step(1.0));
//! net.resistor(inp, out, 1.0e3);
//! net.capacitor(out, Netlist::GROUND, 1.0e-9); // tau = 1 us
//! let result = net.transient(&TransientSpec::new(10.0e-6, 5.0e-9))?;
//! let v_end = result.voltage(out).last();
//! assert!((v_end - 1.0).abs() < 1e-3);
//! # Ok(())
//! # }
//! ```

pub mod ac;
pub mod complex;
pub mod dc;
pub mod elements;
pub mod error;
pub mod export;
pub mod legacy;
mod lu;
pub mod mna;
pub mod netlist;
pub mod solver;
pub mod sparse;
mod stamp;
pub mod stats;
pub mod transient;
pub mod waveform;

pub use ac::{log_sweep, run_ac, AcResult};
pub use complex::Complex;
pub use dc::{dc_sweep, solve_dc_full, DcResult};
pub use elements::{DiodeModel, OpampModel, SwitchState};
pub use error::SpiceError;
pub use export::to_spice_deck;
pub use netlist::{Netlist, NodeId};
pub use stats::SolveStats;
pub use transient::{Integration, TransientResult, TransientSpec};
pub use waveform::{Trace, Waveform};
