//! Netlist construction.

use crate::dc::solve_dc;
use crate::elements::{DiodeModel, Element, OpampModel, SwitchState};
use crate::error::SpiceError;
use crate::transient::{run_transient, TransientResult, TransientSpec};
use crate::waveform::Waveform;

/// Identifier of a circuit node. `NodeId::GROUND` is the reference node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub(crate) usize);

impl NodeId {
    /// The ground (reference) node.
    pub const GROUND: NodeId = NodeId(0);

    /// The raw index (0 = ground).
    pub fn index(self) -> usize {
        self.0
    }

    /// `true` if this is the reference node.
    pub fn is_ground(self) -> bool {
        self.0 == 0
    }
}

impl std::fmt::Display for NodeId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.is_ground() {
            f.write_str("gnd")
        } else {
            write!(f, "n{}", self.0)
        }
    }
}

/// Handle to an element, for later reconfiguration (switch state, source
/// waveform, memristor resistance) and result lookup.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ElementId(pub(crate) usize);

impl ElementId {
    /// The raw element index within its netlist.
    pub fn index(self) -> usize {
        self.0
    }
}

/// A circuit under construction.
///
/// Nodes are created with [`Netlist::node`]; elements through the builder
/// methods. Analyses are run with [`Netlist::dc`] and [`Netlist::transient`].
///
/// See the [crate-level example](crate) for a complete RC circuit.
#[derive(Debug, Clone, Default)]
pub struct Netlist {
    node_names: Vec<String>,
    elements: Vec<Element>,
}

impl Netlist {
    /// The ground node (alias of [`NodeId::GROUND`]).
    pub const GROUND: NodeId = NodeId::GROUND;

    /// An empty netlist.
    pub fn new() -> Self {
        Netlist {
            node_names: vec!["gnd".to_string()],
            elements: Vec::new(),
        }
    }

    /// Creates a new node with a diagnostic name.
    pub fn node(&mut self, name: &str) -> NodeId {
        self.node_names.push(name.to_string());
        NodeId(self.node_names.len() - 1)
    }

    /// Number of nodes including ground.
    pub fn node_count(&self) -> usize {
        self.node_names.len()
    }

    /// Number of elements.
    pub fn element_count(&self) -> usize {
        self.elements.len()
    }

    /// The diagnostic name of a node.
    pub fn node_name(&self, id: NodeId) -> &str {
        &self.node_names[id.0]
    }

    /// All elements, for assembly and export.
    pub(crate) fn elements(&self) -> &[Element] {
        &self.elements
    }

    fn check_node(&self, id: NodeId) -> Result<(), SpiceError> {
        if id.0 < self.node_names.len() {
            Ok(())
        } else {
            Err(SpiceError::UnknownNode { id: id.0 })
        }
    }

    fn push(&mut self, e: Element) -> ElementId {
        self.elements.push(e);
        ElementId(self.elements.len() - 1)
    }

    /// Adds a resistor.
    ///
    /// # Panics
    ///
    /// Panics if `ohms` is not positive/finite or a node is unknown.
    pub fn resistor(&mut self, a: NodeId, b: NodeId, ohms: f64) -> ElementId {
        assert!(
            ohms.is_finite() && ohms > 0.0,
            "resistance must be positive"
        );
        self.check_node(a).expect("node a");
        self.check_node(b).expect("node b");
        self.push(Element::Resistor { a, b, ohms })
    }

    /// Adds a memristor programmed to `ohms` (quasi-static during analysis).
    ///
    /// # Panics
    ///
    /// Panics if `ohms` is not positive/finite or a node is unknown.
    pub fn memristor(&mut self, a: NodeId, b: NodeId, ohms: f64) -> ElementId {
        assert!(
            ohms.is_finite() && ohms > 0.0,
            "resistance must be positive"
        );
        self.check_node(a).expect("node a");
        self.check_node(b).expect("node b");
        self.push(Element::Memristor { a, b, ohms })
    }

    /// Adds a capacitor.
    ///
    /// # Panics
    ///
    /// Panics if `farads` is not positive/finite or a node is unknown.
    pub fn capacitor(&mut self, a: NodeId, b: NodeId, farads: f64) -> ElementId {
        assert!(
            farads.is_finite() && farads > 0.0,
            "capacitance must be positive"
        );
        self.check_node(a).expect("node a");
        self.check_node(b).expect("node b");
        self.push(Element::Capacitor { a, b, farads })
    }

    /// Adds an independent voltage source from `p` to `n`.
    ///
    /// # Panics
    ///
    /// Panics if a node is unknown.
    pub fn voltage_source(&mut self, p: NodeId, n: NodeId, waveform: Waveform) -> ElementId {
        self.check_node(p).expect("node p");
        self.check_node(n).expect("node n");
        self.push(Element::VoltageSource { p, n, waveform })
    }

    /// Adds a smoothed ideal diode (default model: 0 V threshold).
    ///
    /// # Panics
    ///
    /// Panics if a node is unknown.
    pub fn diode(&mut self, anode: NodeId, cathode: NodeId) -> ElementId {
        self.diode_with(anode, cathode, DiodeModel::default())
    }

    /// Adds a diode with an explicit model.
    ///
    /// # Panics
    ///
    /// Panics if a node is unknown.
    pub fn diode_with(&mut self, anode: NodeId, cathode: NodeId, model: DiodeModel) -> ElementId {
        self.check_node(anode).expect("anode");
        self.check_node(cathode).expect("cathode");
        self.push(Element::Diode {
            anode,
            cathode,
            model,
        })
    }

    /// Adds a transmission gate in the given state (1 Ω closed / 1 GΩ open).
    ///
    /// # Panics
    ///
    /// Panics if a node is unknown.
    pub fn switch(&mut self, a: NodeId, b: NodeId, state: SwitchState) -> ElementId {
        self.check_node(a).expect("node a");
        self.check_node(b).expect("node b");
        self.push(Element::Switch {
            a,
            b,
            state,
            ron: 1.0,
            roff: 1.0e9,
        })
    }

    /// Adds a voltage-controlled transmission gate that conducts when the
    /// control node is above (`active_high`) or below (`!active_high`)
    /// `threshold`. The control characteristic has a 10 mV transition width
    /// so a rail-to-rail comparator output switches it cleanly.
    ///
    /// # Panics
    ///
    /// Panics if a node is unknown.
    pub fn vc_switch(
        &mut self,
        a: NodeId,
        b: NodeId,
        ctrl: NodeId,
        threshold: f64,
        active_high: bool,
    ) -> ElementId {
        self.check_node(a).expect("node a");
        self.check_node(b).expect("node b");
        self.check_node(ctrl).expect("ctrl");
        self.push(Element::VcSwitch {
            a,
            b,
            ctrl,
            threshold,
            active_high,
            ron: 1.0,
            roff: 1.0e9,
            vs: 10.0e-3,
        })
    }

    /// Adds a behavioural op-amp.
    ///
    /// # Panics
    ///
    /// Panics if a node is unknown.
    pub fn opamp(&mut self, inp: NodeId, inn: NodeId, out: NodeId, model: OpampModel) -> ElementId {
        self.check_node(inp).expect("inp");
        self.check_node(inn).expect("inn");
        self.check_node(out).expect("out");
        self.push(Element::Opamp {
            inp,
            inn,
            out,
            model,
        })
    }

    /// Adds a unity-gain buffer (op-amp with output fed back to the
    /// inverting input) from `input` to a new output node, which is
    /// returned.
    pub fn buffer(&mut self, input: NodeId, model: OpampModel) -> NodeId {
        let out = self.node("buf_out");
        self.opamp(input, out, out, model);
        out
    }

    /// Reconfigures a switch.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not refer to a switch.
    pub fn set_switch(&mut self, id: ElementId, new_state: SwitchState) {
        match &mut self.elements[id.0] {
            Element::Switch { state, .. } => *state = new_state,
            other => panic!("element {id:?} is not a switch: {other:?}"),
        }
    }

    /// Reprograms a memristor's resistance.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not refer to a memristor or `ohms` is invalid.
    pub fn set_memristor(&mut self, id: ElementId, new_ohms: f64) {
        assert!(
            new_ohms.is_finite() && new_ohms > 0.0,
            "resistance must be positive"
        );
        match &mut self.elements[id.0] {
            Element::Memristor { ohms, .. } => *ohms = new_ohms,
            other => panic!("element {id:?} is not a memristor: {other:?}"),
        }
    }

    /// Replaces a voltage source's waveform.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not refer to a voltage source.
    pub fn set_source(&mut self, id: ElementId, new_waveform: Waveform) {
        match &mut self.elements[id.0] {
            Element::VoltageSource { waveform, .. } => *waveform = new_waveform,
            other => panic!("element {id:?} is not a voltage source: {other:?}"),
        }
    }

    /// Adds the paper's 20 fF parasitic capacitance (Table 1) from every
    /// non-ground node to ground. Call once after the circuit is complete.
    pub fn add_parasitic_capacitance(&mut self, farads: f64) {
        for i in 1..self.node_names.len() {
            self.push(Element::Capacitor {
                a: NodeId(i),
                b: NodeId::GROUND,
                farads,
            });
        }
    }

    /// Computes the DC operating point. Returns one voltage per node
    /// (index 0 = ground = 0 V).
    ///
    /// # Errors
    ///
    /// Returns [`SpiceError::SingularMatrix`] for ill-formed circuits or
    /// [`SpiceError::NewtonDiverged`] if the nonlinear solve fails.
    pub fn dc(&self) -> Result<Vec<f64>, SpiceError> {
        solve_dc(self)
    }

    /// Runs a backward-Euler transient analysis.
    ///
    /// # Errors
    ///
    /// Returns [`SpiceError::InvalidAnalysis`] for a bad spec, or the same
    /// errors as [`Netlist::dc`] during stepping.
    pub fn transient(&self, spec: &TransientSpec) -> Result<TransientResult, SpiceError> {
        run_transient(self, spec)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_creation_and_names() {
        let mut net = Netlist::new();
        let a = net.node("a");
        let b = net.node("b");
        assert_eq!(a, NodeId(1));
        assert_eq!(b, NodeId(2));
        assert_eq!(net.node_name(a), "a");
        assert_eq!(net.node_count(), 3);
        assert!(NodeId::GROUND.is_ground());
        assert!(!a.is_ground());
    }

    #[test]
    fn display_names() {
        assert_eq!(NodeId::GROUND.to_string(), "gnd");
        assert_eq!(NodeId(4).to_string(), "n4");
    }

    #[test]
    fn element_builders_count() {
        let mut net = Netlist::new();
        let a = net.node("a");
        net.resistor(a, Netlist::GROUND, 1.0e3);
        net.capacitor(a, Netlist::GROUND, 1.0e-12);
        net.diode(a, Netlist::GROUND);
        assert_eq!(net.element_count(), 3);
    }

    #[test]
    fn reconfiguration() {
        let mut net = Netlist::new();
        let a = net.node("a");
        let sw = net.switch(a, Netlist::GROUND, SwitchState::Open);
        net.set_switch(sw, SwitchState::Closed);
        let m = net.memristor(a, Netlist::GROUND, 1.0e3);
        net.set_memristor(m, 50.0e3);
        let v = net.voltage_source(a, Netlist::GROUND, Waveform::Dc(1.0));
        net.set_source(v, Waveform::Dc(0.5));
    }

    #[test]
    #[should_panic(expected = "resistance must be positive")]
    fn zero_resistance_rejected() {
        let mut net = Netlist::new();
        let a = net.node("a");
        net.resistor(a, Netlist::GROUND, 0.0);
    }

    #[test]
    fn parasitics_attach_to_every_node() {
        let mut net = Netlist::new();
        let a = net.node("a");
        let b = net.node("b");
        net.resistor(a, b, 1.0);
        let before = net.element_count();
        net.add_parasitic_capacitance(20.0e-15);
        assert_eq!(net.element_count(), before + 2);
    }
}
