//! DC operating-point analysis.

use crate::error::SpiceError;
use crate::mna::{MnaSystem, StepContext};
use crate::netlist::Netlist;
use crate::stats::SolveStats;

/// A DC operating point plus the solver counters that produced it.
#[derive(Debug, Clone)]
pub struct DcResult {
    /// One voltage per node, index 0 (ground) included as 0 V.
    pub voltages: Vec<f64>,
    /// Solver observability counters for the solve.
    pub stats: SolveStats,
}

/// Computes the DC operating point of a netlist. Capacitors are treated as
/// open circuits; op-amps settle to their static transfer value. Returns
/// one voltage per node, index 0 (ground) included as 0 V.
///
/// # Errors
///
/// Returns [`SpiceError::SingularMatrix`] for ill-formed circuits (floating
/// nodes) or [`SpiceError::NewtonDiverged`] for pathological nonlinear
/// configurations.
pub fn solve_dc(netlist: &Netlist) -> Result<Vec<f64>, SpiceError> {
    Ok(solve_dc_full(netlist)?.voltages)
}

/// [`solve_dc`] with [`SolveStats`] attached.
///
/// # Errors
///
/// Same failure modes as [`solve_dc`].
pub fn solve_dc_full(netlist: &Netlist) -> Result<DcResult, SpiceError> {
    let mut sys = MnaSystem::new(netlist);
    let mut x = vec![0.0; sys.layout.n_unknowns];
    sys.solve_point(netlist, &mut x, 0.0, StepContext::Dc)?;
    let mut voltages = vec![0.0; netlist.node_count()];
    voltages[1..].copy_from_slice(&x[..netlist.node_count() - 1]);
    Ok(DcResult {
        voltages,
        stats: sys.stats,
    })
}

/// Sweeps one voltage source across `values`, solving the DC operating
/// point at each step — the classic `.dc` transfer-curve analysis.
/// Returns one node-voltage vector per sweep value.
///
/// The whole sweep shares one solver workspace: the netlist structure never
/// changes between points, so the stamp plan and LU structure are built
/// once and only refactored (or reused outright) per value.
///
/// # Errors
///
/// Returns [`SpiceError::InvalidAnalysis`] if `source` is not a voltage
/// source, or propagates operating-point failures.
pub fn dc_sweep(
    netlist: &Netlist,
    source: crate::netlist::ElementId,
    values: &[f64],
) -> Result<Vec<Vec<f64>>, SpiceError> {
    match netlist_element(netlist, source) {
        Some(crate::elements::Element::VoltageSource { .. }) => {}
        _ => {
            return Err(SpiceError::InvalidAnalysis {
                reason: "dc sweep target must be a voltage source".into(),
            });
        }
    }
    let mut results = Vec::with_capacity(values.len());
    let mut net = netlist.clone();
    let mut sys = MnaSystem::new(&net);
    let node_count = net.node_count();
    for &v in values {
        net.set_source(source, crate::waveform::Waveform::Dc(v));
        let mut x = vec![0.0; sys.layout.n_unknowns];
        sys.solve_point(&net, &mut x, 0.0, StepContext::Dc)?;
        let mut voltages = vec![0.0; node_count];
        voltages[1..].copy_from_slice(&x[..node_count - 1]);
        results.push(voltages);
    }
    Ok(results)
}

fn netlist_element(
    netlist: &Netlist,
    id: crate::netlist::ElementId,
) -> Option<&crate::elements::Element> {
    netlist.elements().get(id.index())
}

#[cfg(test)]
mod tests {
    use super::dc_sweep;
    use crate::elements::{OpampModel, SwitchState};
    use crate::netlist::Netlist;
    use crate::waveform::Waveform;

    #[test]
    fn voltage_divider() {
        let mut net = Netlist::new();
        let top = net.node("top");
        let mid = net.node("mid");
        net.voltage_source(top, Netlist::GROUND, Waveform::Dc(1.0));
        net.resistor(top, mid, 1.0e3);
        net.resistor(mid, Netlist::GROUND, 3.0e3);
        let v = net.dc().unwrap();
        assert!((v[top.index()] - 1.0).abs() < 1e-9);
        assert!((v[mid.index()] - 0.75).abs() < 1e-9);
    }

    #[test]
    fn diode_forward_passes_reverse_blocks() {
        // Source -> diode -> load resistor to ground.
        let mut net = Netlist::new();
        let src = net.node("src");
        let out = net.node("out");
        net.voltage_source(src, Netlist::GROUND, Waveform::Dc(0.5));
        net.diode(src, out);
        net.resistor(out, Netlist::GROUND, 10.0e3);
        let v = net.dc().unwrap();
        // Near-ideal diode: out ~ src minus a few-mV junction drop.
        assert!(
            (v[out.index()] - 0.5).abs() < 5e-3,
            "v_out = {}",
            v[out.index()]
        );

        // Reversed diode: output stays near zero.
        let mut net = Netlist::new();
        let src = net.node("src");
        let out = net.node("out");
        net.voltage_source(src, Netlist::GROUND, Waveform::Dc(0.5));
        net.diode(out, src);
        net.resistor(out, Netlist::GROUND, 10.0e3);
        let v = net.dc().unwrap();
        assert!(v[out.index()].abs() < 1e-3, "v_out = {}", v[out.index()]);
    }

    #[test]
    fn diode_max_selector() {
        // Two sources feed one output through diodes: the larger wins.
        // This is the paper's "diodes are perfect for maximum value
        // calculation" primitive.
        let mut net = Netlist::new();
        let a = net.node("a");
        let b = net.node("b");
        let out = net.node("out");
        net.voltage_source(a, Netlist::GROUND, Waveform::Dc(0.30));
        net.voltage_source(b, Netlist::GROUND, Waveform::Dc(0.45));
        net.diode(a, out);
        net.diode(b, out);
        net.resistor(out, Netlist::GROUND, 100.0e3);
        let v = net.dc().unwrap();
        assert!(
            (v[out.index()] - 0.45).abs() < 5e-3,
            "max selector output {}",
            v[out.index()]
        );
        // Crucially, the output must sit closer to the larger input.
        assert!(v[out.index()] > 0.40);
    }

    #[test]
    fn unity_buffer_follows_input() {
        let mut net = Netlist::new();
        let inp = net.node("in");
        net.voltage_source(inp, Netlist::GROUND, Waveform::Dc(0.37));
        let out = net.buffer(inp, OpampModel::table1());
        let v = net.dc().unwrap();
        assert!((v[out.index()] - 0.37).abs() < 1e-3);
    }

    #[test]
    fn inverting_amplifier_gain() {
        // Classic inverting amp: gain = -Rf/Rin = -2.
        let mut net = Netlist::new();
        let inp = net.node("in");
        let vminus = net.node("vminus");
        let out = net.node("out");
        net.voltage_source(inp, Netlist::GROUND, Waveform::Dc(0.1));
        net.resistor(inp, vminus, 10.0e3);
        net.resistor(vminus, out, 20.0e3);
        net.opamp(Netlist::GROUND, vminus, out, OpampModel::table1());
        let v = net.dc().unwrap();
        assert!(
            (v[out.index()] + 0.2).abs() < 2e-3,
            "inverting amp output {}",
            v[out.index()]
        );
    }

    #[test]
    fn difference_amplifier_subtracts() {
        // Unity-gain difference amp: out = v1 - v2 with four equal
        // resistors — the paper's "analog subtractor" primitive.
        let mut net = Netlist::new();
        let v1 = net.node("v1");
        let v2 = net.node("v2");
        let vp = net.node("vp");
        let vm = net.node("vm");
        let out = net.node("out");
        net.voltage_source(v1, Netlist::GROUND, Waveform::Dc(0.50));
        net.voltage_source(v2, Netlist::GROUND, Waveform::Dc(0.18));
        let r = 100.0e3;
        net.memristor(v1, vp, r);
        net.memristor(vp, Netlist::GROUND, r);
        net.memristor(v2, vm, r);
        net.memristor(vm, out, r);
        net.opamp(vp, vm, out, OpampModel::table1());
        let v = net.dc().unwrap();
        assert!(
            (v[out.index()] - 0.32).abs() < 2e-3,
            "subtractor output {}",
            v[out.index()]
        );
    }

    #[test]
    fn switch_states() {
        let mut net = Netlist::new();
        let a = net.node("a");
        let b = net.node("b");
        net.voltage_source(a, Netlist::GROUND, Waveform::Dc(1.0));
        let sw = net.switch(a, b, SwitchState::Closed);
        net.resistor(b, Netlist::GROUND, 1.0e6);
        let v = net.dc().unwrap();
        assert!((v[b.index()] - 1.0).abs() < 1e-4);
        let mut net2 = net.clone();
        net2.set_switch(sw, SwitchState::Open);
        let v = net2.dc().unwrap();
        assert!(v[b.index()].abs() < 1e-2);
    }

    #[test]
    fn floating_node_is_singular() {
        let mut net = Netlist::new();
        let a = net.node("a");
        let b = net.node("b");
        net.resistor(a, b, 1.0e3); // no path to ground
        assert!(net.dc().is_err());
    }

    #[test]
    fn dc_sweep_traces_divider_transfer() {
        let mut net = Netlist::new();
        let top = net.node("top");
        let mid = net.node("mid");
        let src = net.voltage_source(top, Netlist::GROUND, Waveform::Dc(0.0));
        net.resistor(top, mid, 1.0e3);
        net.resistor(mid, Netlist::GROUND, 1.0e3);
        let values = [-1.0, -0.5, 0.0, 0.5, 1.0];
        let sweep = dc_sweep(&net, src, &values).unwrap();
        for (v, sol) in values.iter().zip(&sweep) {
            assert!((sol[mid.index()] - v / 2.0).abs() < 1e-9);
        }
    }

    #[test]
    fn dc_sweep_rejects_non_source() {
        let mut net = Netlist::new();
        let a = net.node("a");
        let r = net.resistor(a, Netlist::GROUND, 1.0);
        assert!(dc_sweep(&net, r, &[0.0]).is_err());
    }

    #[test]
    fn comparator_driven_mux_selects_path() {
        // The LCS/EdD selecting-module pattern: a comparator decides which
        // of two analog values reaches the output through a pair of TGs.
        let mut net = Netlist::new();
        let plus = net.node("plus");
        let minus = net.node("minus");
        let cmp_out = net.node("cmp_out");
        let path_a = net.node("path_a");
        let path_b = net.node("path_b");
        let out = net.node("out");
        net.voltage_source(plus, Netlist::GROUND, Waveform::Dc(0.4));
        net.voltage_source(minus, Netlist::GROUND, Waveform::Dc(0.2));
        net.opamp(plus, minus, cmp_out, OpampModel::comparator(1.0));
        net.resistor(cmp_out, Netlist::GROUND, 1.0e6);
        net.voltage_source(path_a, Netlist::GROUND, Waveform::Dc(0.11));
        net.voltage_source(path_b, Netlist::GROUND, Waveform::Dc(0.77));
        net.vc_switch(path_a, out, cmp_out, 0.5, true);
        net.vc_switch(path_b, out, cmp_out, 0.5, false);
        net.resistor(out, Netlist::GROUND, 1.0e6);
        // plus > minus -> comparator high -> path A selected.
        let v = net.dc().unwrap();
        assert!(
            (v[out.index()] - 0.11).abs() < 2e-3,
            "mux out {}",
            v[out.index()]
        );
    }

    #[test]
    fn comparator_outputs_logic_levels() {
        let mut net = Netlist::new();
        let plus = net.node("plus");
        let minus = net.node("minus");
        let out = net.node("out");
        net.voltage_source(plus, Netlist::GROUND, Waveform::Dc(0.30));
        net.voltage_source(minus, Netlist::GROUND, Waveform::Dc(0.25));
        net.opamp(plus, minus, out, OpampModel::comparator(1.0));
        net.resistor(out, Netlist::GROUND, 1.0e6);
        let v = net.dc().unwrap();
        assert!(v[out.index()] > 0.99, "comparator high {}", v[out.index()]);
    }
}
