//! Simulator error type.

use std::error::Error;
use std::fmt;

/// Error returned by circuit construction or analysis.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum SpiceError {
    /// The MNA matrix was singular — typically a floating node or a loop of
    /// ideal voltage sources.
    SingularMatrix {
        /// Index of the pivot where elimination broke down.
        pivot: usize,
    },
    /// Newton–Raphson failed to converge within the iteration cap.
    NewtonDiverged {
        /// Analysis time at which the failure occurred, s (0 for DC).
        time: f64,
        /// Iterations performed.
        iterations: usize,
        /// Residual norm at the last iteration.
        residual: f64,
    },
    /// An invalid element value (non-positive resistance, NaN, …).
    InvalidElement {
        /// What was wrong.
        reason: String,
    },
    /// A node id that does not belong to this netlist.
    UnknownNode {
        /// The offending id.
        id: usize,
    },
    /// An invalid analysis specification (zero step, negative stop time, …).
    InvalidAnalysis {
        /// What was wrong.
        reason: String,
    },
}

impl fmt::Display for SpiceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpiceError::SingularMatrix { pivot } => {
                write!(f, "singular MNA matrix at pivot {pivot} (floating node or source loop?)")
            }
            SpiceError::NewtonDiverged {
                time,
                iterations,
                residual,
            } => write!(
                f,
                "newton iteration diverged at t = {time:.3e} s after {iterations} iterations (residual {residual:.3e})"
            ),
            SpiceError::InvalidElement { reason } => write!(f, "invalid element: {reason}"),
            SpiceError::UnknownNode { id } => write!(f, "unknown node id {id}"),
            SpiceError::InvalidAnalysis { reason } => write!(f, "invalid analysis: {reason}"),
        }
    }
}

impl Error for SpiceError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = SpiceError::SingularMatrix { pivot: 3 };
        assert!(e.to_string().contains("pivot 3"));
        let e = SpiceError::NewtonDiverged {
            time: 1.0e-9,
            iterations: 50,
            residual: 0.5,
        };
        assert!(e.to_string().contains("50 iterations"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_traits<T: Send + Sync + std::error::Error>() {}
        assert_traits::<SpiceError>();
    }
}
