//! AC small-signal analysis.
//!
//! Linearizes the circuit around its DC operating point, then solves the
//! complex MNA system at each requested frequency with a unit AC stimulus
//! on one designated source (all other independent sources are AC-shorted).
//! Used to verify the closed-loop bandwidth of the PE op-amp stages against
//! the Table 1 gain–bandwidth product.

use crate::complex::Complex;
use crate::elements::Element;
use crate::error::SpiceError;
use crate::mna::MnaLayout;
use crate::netlist::{ElementId, Netlist, NodeId};

/// Result of an AC sweep: complex node voltages per frequency point.
#[derive(Debug, Clone)]
pub struct AcResult {
    frequencies: Vec<f64>,
    /// `voltages[f][node_index]`, ground included as 0.
    voltages: Vec<Vec<Complex>>,
}

impl AcResult {
    /// The swept frequencies, Hz.
    pub fn frequencies(&self) -> &[f64] {
        &self.frequencies
    }

    /// Complex transfer value of `node` at sweep point `i`.
    pub fn voltage_at(&self, node: NodeId, i: usize) -> Complex {
        self.voltages[i][node.index()]
    }

    /// Magnitude response of a node across the sweep.
    pub fn magnitude(&self, node: NodeId) -> Vec<f64> {
        self.voltages
            .iter()
            .map(|v| v[node.index()].abs())
            .collect()
    }

    /// The −3 dB bandwidth of a node's response: the first frequency where
    /// the magnitude falls below `1/√2` of its value at the lowest
    /// frequency. `None` if it never rolls off within the sweep.
    pub fn bandwidth_3db(&self, node: NodeId) -> Option<f64> {
        let mags = self.magnitude(node);
        let dc = *mags.first()?;
        let threshold = dc / 2.0_f64.sqrt();
        for (i, &m) in mags.iter().enumerate() {
            if m < threshold {
                return Some(self.frequencies[i]);
            }
        }
        None
    }
}

/// Dense complex LU solve (partial pivoting). AC sweeps run on the small
/// linearized PE circuits, so dense is fine.
fn solve_complex(
    mut a: Vec<Vec<Complex>>,
    mut b: Vec<Complex>,
) -> Result<Vec<Complex>, SpiceError> {
    let n = b.len();
    for k in 0..n {
        // Pivot.
        let (piv, mag) = (k..n)
            .map(|r| (r, a[r][k].abs()))
            .max_by(|x, y| x.1.partial_cmp(&y.1).expect("finite"))
            .expect("non-empty");
        if mag < 1.0e-300 {
            return Err(SpiceError::SingularMatrix { pivot: k });
        }
        a.swap(k, piv);
        b.swap(k, piv);
        let pivot = a[k][k];
        for r in (k + 1)..n {
            let factor = a[r][k] / pivot;
            if factor.abs() == 0.0 {
                continue;
            }
            let (rows_k, rows_r) = a.split_at_mut(r);
            for (rc, &kc) in rows_r[0][k..].iter_mut().zip(&rows_k[k][k..]) {
                let sub = factor * kc;
                *rc = *rc - sub;
            }
            let sb = factor * b[k];
            b[r] = b[r] - sb;
        }
    }
    let mut x = vec![Complex::ZERO; n];
    for k in (0..n).rev() {
        let mut sum = b[k];
        for c in (k + 1)..n {
            let s = a[k][c] * x[c];
            sum = sum - s;
        }
        x[k] = sum / a[k][k];
    }
    Ok(x)
}

/// Runs an AC sweep with a unit stimulus on `stimulus` (which must be a
/// voltage source).
///
/// # Errors
///
/// Returns [`SpiceError::InvalidAnalysis`] if `stimulus` is not a voltage
/// source or no frequencies are given, [`SpiceError::NewtonDiverged`] /
/// [`SpiceError::SingularMatrix`] from the operating-point solve.
pub fn run_ac(
    netlist: &Netlist,
    stimulus: ElementId,
    frequencies: &[f64],
) -> Result<AcResult, SpiceError> {
    if frequencies.is_empty() {
        return Err(SpiceError::InvalidAnalysis {
            reason: "ac sweep needs at least one frequency".into(),
        });
    }
    match netlist.elements().get(stimulus.index()) {
        Some(Element::VoltageSource { .. }) => {}
        _ => {
            return Err(SpiceError::InvalidAnalysis {
                reason: "ac stimulus must be a voltage source".into(),
            });
        }
    }
    // DC operating point for linearization.
    let op = crate::dc::solve_dc(netlist)?;
    let layout = MnaLayout::build(netlist);
    let n = layout.n_unknowns;

    let node_v = |id: NodeId| op[id.index()];

    let mut voltages = Vec::with_capacity(frequencies.len());
    for &f in frequencies {
        let omega = 2.0 * std::f64::consts::PI * f;
        let mut a = vec![vec![Complex::ZERO; n]; n];
        let mut z = vec![Complex::ZERO; n];

        let idx = |id: NodeId| -> Option<usize> {
            if id.is_ground() {
                None
            } else {
                Some(id.index() - 1)
            }
        };
        let stamp_g = |a: &mut Vec<Vec<Complex>>, na: NodeId, nb: NodeId, g: Complex| {
            if let Some(i) = idx(na) {
                a[i][i] += g;
                if let Some(j) = idx(nb) {
                    a[i][j] += -g;
                }
            }
            if let Some(j) = idx(nb) {
                a[j][j] += g;
                if let Some(i) = idx(na) {
                    a[j][i] += -g;
                }
            }
        };

        for (ei, e) in netlist.elements().iter().enumerate() {
            match e {
                Element::Resistor { a: na, b: nb, ohms }
                | Element::Memristor { a: na, b: nb, ohms } => {
                    stamp_g(&mut a, *na, *nb, Complex::real(1.0 / ohms));
                }
                Element::Switch {
                    a: na,
                    b: nb,
                    state,
                    ron,
                    roff,
                } => {
                    let r = match state {
                        crate::elements::SwitchState::Closed => *ron,
                        crate::elements::SwitchState::Open => *roff,
                    };
                    stamp_g(&mut a, *na, *nb, Complex::real(1.0 / r));
                }
                Element::VcSwitch {
                    a: na,
                    b: nb,
                    ctrl,
                    threshold,
                    active_high,
                    ron,
                    roff,
                    vs,
                } => {
                    // Conductance frozen at the operating point.
                    let (g, _) = crate::elements::vc_switch_conductance(
                        node_v(*ctrl),
                        *threshold,
                        *active_high,
                        *ron,
                        *roff,
                        *vs,
                    );
                    stamp_g(&mut a, *na, *nb, Complex::real(g));
                }
                Element::Capacitor {
                    a: na,
                    b: nb,
                    farads,
                } => {
                    stamp_g(&mut a, *na, *nb, Complex::imag(omega * farads));
                }
                Element::Diode {
                    anode,
                    cathode,
                    model,
                } => {
                    let v = node_v(*anode) - node_v(*cathode);
                    let (_, gd) = model.current_and_derivative(v);
                    stamp_g(&mut a, *anode, *cathode, Complex::real(gd));
                }
                Element::VoltageSource { p, n: nn, .. } => {
                    let k = layout_branch(&layout, ei);
                    if let Some(i) = idx(*p) {
                        a[i][k] += Complex::ONE;
                        a[k][i] += Complex::ONE;
                    }
                    if let Some(j) = idx(*nn) {
                        a[j][k] += -Complex::ONE;
                        a[k][j] += -Complex::ONE;
                    }
                    z[k] = if ei == stimulus.index() {
                        Complex::ONE
                    } else {
                        Complex::ZERO
                    };
                }
                Element::Opamp {
                    inp,
                    inn,
                    out,
                    model,
                } => {
                    let k = layout_branch(&layout, ei);
                    if let Some(o) = idx(*out) {
                        a[o][k] += Complex::ONE;
                    }
                    // Small-signal: vout·(1 + jωτ) − dsat·(vp − vn) = 0,
                    // with dsat evaluated at the operating point.
                    let vd = node_v(*inp) - node_v(*inn);
                    let (_, dsat) = model.target_and_derivative(vd);
                    let tau = model.pole_tau();
                    if let Some(o) = idx(*out) {
                        a[k][o] += Complex::new(1.0, omega * tau);
                    }
                    if let Some(i) = idx(*inp) {
                        a[k][i] += Complex::real(-dsat);
                    }
                    if let Some(j) = idx(*inn) {
                        a[k][j] += Complex::real(dsat);
                    }
                }
            }
        }
        let x = solve_complex(a, z)?;
        let mut snapshot = vec![Complex::ZERO; netlist.node_count()];
        snapshot[1..].copy_from_slice(&x[..netlist.node_count() - 1]);
        voltages.push(snapshot);
    }
    Ok(AcResult {
        frequencies: frequencies.to_vec(),
        voltages,
    })
}

fn layout_branch(layout: &MnaLayout, element_index: usize) -> usize {
    let rebased = layout.branch_indices()[element_index];
    debug_assert_ne!(rebased, usize::MAX);
    layout.node_unknowns_public() + rebased
}

/// A logarithmic frequency grid from `start` to `stop` (inclusive-ish) with
/// `points_per_decade` samples per decade.
///
/// # Panics
///
/// Panics if the range or density is degenerate.
pub fn log_sweep(start: f64, stop: f64, points_per_decade: usize) -> Vec<f64> {
    assert!(start > 0.0 && stop > start, "need 0 < start < stop");
    assert!(points_per_decade > 0, "need at least one point per decade");
    let decades = (stop / start).log10();
    let n = (decades * points_per_decade as f64).ceil() as usize + 1;
    (0..n)
        .map(|i| start * 10.0_f64.powf(i as f64 / points_per_decade as f64))
        .filter(|&f| f <= stop * 1.0001)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::elements::OpampModel;
    use crate::waveform::Waveform;

    #[test]
    fn rc_lowpass_corner_frequency() {
        // R = 1 kΩ, C = 1 nF -> f_c = 1/(2πRC) ≈ 159 kHz.
        let mut net = Netlist::new();
        let inp = net.node("in");
        let out = net.node("out");
        let src = net.voltage_source(inp, Netlist::GROUND, Waveform::Dc(0.0));
        net.resistor(inp, out, 1.0e3);
        net.capacitor(out, Netlist::GROUND, 1.0e-9);
        let sweep = log_sweep(1.0e3, 100.0e6, 20);
        let ac = run_ac(&net, src, &sweep).unwrap();
        let bw = ac.bandwidth_3db(out).expect("rolls off");
        let expected = 1.0 / (2.0 * std::f64::consts::PI * 1.0e3 * 1.0e-9);
        assert!(
            (bw - expected).abs() / expected < 0.15,
            "bandwidth {bw:.3e} vs {expected:.3e}"
        );
        // DC gain is unity, and the response is monotone decreasing.
        let mags = ac.magnitude(out);
        assert!((mags[0] - 1.0).abs() < 1e-3);
        for w in mags.windows(2) {
            assert!(w[1] <= w[0] + 1e-12);
        }
    }

    #[test]
    fn open_loop_opamp_rolls_off_at_its_pole() {
        // Open-loop: vout(1 + jωτ) = A0·vin, so the −3 dB corner sits at
        // 1/(2πτ) (the behavioural pole, = GBW per OpampModel::pole_tau) and
        // the DC gain is A0.
        let mut net = Netlist::new();
        let inp = net.node("in");
        let src = net.voltage_source(inp, Netlist::GROUND, Waveform::Dc(0.0));
        let out = net.node("out");
        // Tiny gain so the DC operating point stays in the linear region.
        let model = OpampModel {
            gain: 10.0,
            gbw: 50.0e9,
            vmin: -1.0,
            vmax: 1.0,
            input_offset: 0.0,
        };
        net.opamp(inp, Netlist::GROUND, out, model);
        net.resistor(out, Netlist::GROUND, 1.0e6);
        let sweep = log_sweep(1.0e9, 10.0e12, 20);
        let ac = run_ac(&net, src, &sweep).unwrap();
        // DC gain ~ A0.
        assert!((ac.magnitude(out)[0] - 10.0).abs() < 0.2);
        let bw = ac.bandwidth_3db(out).expect("rolls off");
        let expected = 50.0e9;
        assert!(
            (bw - expected).abs() / expected < 0.25,
            "open-loop corner {bw:.3e} vs {expected:.3e}"
        );
    }

    #[test]
    fn phase_at_corner_is_minus_45_degrees() {
        let mut net = Netlist::new();
        let inp = net.node("in");
        let out = net.node("out");
        let src = net.voltage_source(inp, Netlist::GROUND, Waveform::Dc(0.0));
        net.resistor(inp, out, 1.0e3);
        net.capacitor(out, Netlist::GROUND, 1.0e-9);
        let fc = 1.0 / (2.0 * std::f64::consts::PI * 1.0e-6);
        let ac = run_ac(&net, src, &[fc]).unwrap();
        let phase = ac.voltage_at(out, 0).arg().to_degrees();
        assert!((phase + 45.0).abs() < 2.0, "phase {phase}");
    }

    #[test]
    fn invalid_stimulus_rejected() {
        let mut net = Netlist::new();
        let a = net.node("a");
        let r = net.resistor(a, Netlist::GROUND, 1.0);
        assert!(matches!(
            run_ac(&net, r, &[1.0e3]),
            Err(SpiceError::InvalidAnalysis { .. })
        ));
    }

    #[test]
    fn log_sweep_spacing() {
        let s = log_sweep(1.0e3, 1.0e6, 10);
        assert!((s[0] - 1.0e3).abs() < 1e-9);
        assert!(s.len() >= 30);
        // Constant ratio between consecutive points.
        let ratio = s[1] / s[0];
        for w in s.windows(2) {
            assert!((w[1] / w[0] - ratio).abs() < 1e-9);
        }
    }
}
