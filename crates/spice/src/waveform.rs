//! Source waveforms and recorded traces.

use std::sync::Arc;

/// A time-dependent source value.
#[derive(Debug, Clone, PartialEq)]
pub enum Waveform {
    /// Constant value.
    Dc(f64),
    /// 0 until `delay`, then `level` (with a linear `rise` to avoid
    /// discontinuities that stall Newton).
    Step {
        /// Final level, V.
        level: f64,
        /// Time at which the edge starts, s.
        delay: f64,
        /// Rise time of the edge, s.
        rise: f64,
    },
    /// Piecewise-linear waveform given as `(time, value)` breakpoints
    /// (sorted by time; constant extrapolation outside the range).
    Pwl(Vec<(f64, f64)>),
    /// Periodic pulse train.
    Pulse {
        /// Level before/between pulses, V.
        low: f64,
        /// Pulse level, V.
        high: f64,
        /// Delay before the first pulse, s.
        delay: f64,
        /// Pulse width (at `high`), s.
        width: f64,
        /// Period, s.
        period: f64,
        /// Rise/fall time, s.
        edge: f64,
    },
}

impl Waveform {
    /// A step from 0 to `level` at t = 0 with a 10 ps edge — the "rising
    /// edge of the input" from which the paper measures convergence time.
    pub fn step(level: f64) -> Self {
        Waveform::Step {
            level,
            delay: 0.0,
            rise: 10.0e-12,
        }
    }

    /// A delayed step.
    pub fn step_at(level: f64, delay: f64) -> Self {
        Waveform::Step {
            level,
            delay,
            rise: 10.0e-12,
        }
    }

    /// The value at time `t`.
    pub fn value(&self, t: f64) -> f64 {
        match self {
            Waveform::Dc(v) => *v,
            Waveform::Step { level, delay, rise } => {
                if t <= *delay {
                    0.0
                } else if t >= delay + rise {
                    *level
                } else {
                    level * (t - delay) / rise
                }
            }
            Waveform::Pwl(points) => {
                if points.is_empty() {
                    return 0.0;
                }
                if t <= points[0].0 {
                    return points[0].1;
                }
                for w in points.windows(2) {
                    let (t0, v0) = w[0];
                    let (t1, v1) = w[1];
                    if t <= t1 {
                        if t1 - t0 <= 0.0 {
                            return v1;
                        }
                        return v0 + (v1 - v0) * (t - t0) / (t1 - t0);
                    }
                }
                points.last().expect("non-empty").1
            }
            Waveform::Pulse {
                low,
                high,
                delay,
                width,
                period,
                edge,
            } => {
                if t < *delay {
                    return *low;
                }
                let phase = (t - delay) % period;
                if phase < *edge {
                    low + (high - low) * phase / edge
                } else if phase < edge + width {
                    *high
                } else if phase < edge + width + edge {
                    high - (high - low) * (phase - edge - width) / edge
                } else {
                    *low
                }
            }
        }
    }
}

/// A sampled waveform: one value per transient timestep.
///
/// The time axis is reference-counted so that the many traces probed out of
/// one transient run all share a single buffer instead of each cloning it.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Trace {
    times: Arc<[f64]>,
    values: Vec<f64>,
}

impl Trace {
    /// Creates a trace from parallel time/value vectors.
    ///
    /// # Panics
    ///
    /// Panics if the vectors have different lengths.
    pub fn new(times: impl Into<Arc<[f64]>>, values: Vec<f64>) -> Self {
        let times = times.into();
        assert_eq!(times.len(), values.len(), "times and values must align");
        Trace { times, values }
    }

    /// Creates a trace sharing an existing time axis (no copy).
    ///
    /// # Panics
    ///
    /// Panics if the vectors have different lengths.
    pub fn shared(times: Arc<[f64]>, values: Vec<f64>) -> Self {
        assert_eq!(times.len(), values.len(), "times and values must align");
        Trace { times, values }
    }

    /// The shared time axis (for building sibling traces without copies).
    pub fn times_shared(&self) -> Arc<[f64]> {
        Arc::clone(&self.times)
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.times.len()
    }

    /// `true` if the trace holds no samples.
    pub fn is_empty(&self) -> bool {
        self.times.is_empty()
    }

    /// Sample times, s.
    pub fn times(&self) -> &[f64] {
        &self.times
    }

    /// Sample values.
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// The last sample value.
    ///
    /// # Panics
    ///
    /// Panics if the trace is empty.
    pub fn last(&self) -> f64 {
        *self.values.last().expect("trace is not empty")
    }

    /// Value by nearest-sample lookup at time `t`.
    ///
    /// Times outside the recorded range **clamp** to the first/last sample
    /// rather than extrapolating: a trace that converged (and stopped
    /// recording) earlier than its siblings reads as its steady-state value
    /// at any later `t`. Early determination relies on this when comparing
    /// traces of different lengths at the slowest candidate's timescale.
    ///
    /// # Panics
    ///
    /// Panics if the trace is empty.
    pub fn at_time(&self, t: f64) -> f64 {
        assert!(!self.is_empty(), "at_time on an empty trace");
        let idx = match self
            .times
            .binary_search_by(|probe| probe.partial_cmp(&t).expect("finite times"))
        {
            Ok(i) => i,
            Err(i) => i.min(self.times.len() - 1),
        };
        self.values[idx]
    }

    /// The paper's convergence-time measurement: the first time after which
    /// the trace stays within `fraction` (e.g. `0.001` for 0.1 %) of its
    /// final value. Returns `None` for an empty trace or one that never
    /// settles (final value itself always trivially satisfies the bound, so
    /// `None` only occurs for empty traces).
    ///
    /// For final values very close to zero an absolute floor of
    /// `fraction × 1 mV` is used instead of the relative band.
    pub fn convergence_time(&self, fraction: f64) -> Option<f64> {
        if self.is_empty() {
            return None;
        }
        let v_final = self.last();
        let band = (v_final.abs() * fraction).max(fraction * 1.0e-3);
        // Walk backwards to the last sample OUTSIDE the band.
        let mut converged_from = 0usize;
        for i in (0..self.len()).rev() {
            if (self.values[i] - v_final).abs() > band {
                converged_from = i + 1;
                break;
            }
        }
        self.times
            .get(converged_from)
            .copied()
            .or_else(|| self.times.last().copied())
    }

    /// Relative error of the final value against `expected`. For an
    /// `expected` of exactly zero, returns the absolute error instead.
    ///
    /// # Panics
    ///
    /// Panics if the trace is empty.
    pub fn relative_error(&self, expected: f64) -> f64 {
        let v = self.last();
        if expected == 0.0 {
            v.abs()
        } else {
            ((v - expected) / expected).abs()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dc_is_constant() {
        let w = Waveform::Dc(0.7);
        assert_eq!(w.value(0.0), 0.7);
        assert_eq!(w.value(1.0), 0.7);
    }

    #[test]
    fn step_edges() {
        let w = Waveform::step_at(2.0, 1.0e-9);
        assert_eq!(w.value(0.0), 0.0);
        assert_eq!(w.value(1.0e-9), 0.0);
        assert_eq!(w.value(2.0e-9), 2.0);
        // Mid-edge is between the rails.
        let mid = w.value(1.0e-9 + 5.0e-12);
        assert!(mid > 0.0 && mid < 2.0);
    }

    #[test]
    fn pwl_interpolates() {
        let w = Waveform::Pwl(vec![(0.0, 0.0), (1.0, 2.0), (2.0, 2.0)]);
        assert_eq!(w.value(-1.0), 0.0);
        assert_eq!(w.value(0.5), 1.0);
        assert_eq!(w.value(1.5), 2.0);
        assert_eq!(w.value(5.0), 2.0);
    }

    #[test]
    fn pulse_cycles() {
        let w = Waveform::Pulse {
            low: 0.0,
            high: 1.0,
            delay: 0.0,
            width: 4.0e-9,
            period: 10.0e-9,
            edge: 1.0e-9,
        };
        assert_eq!(w.value(2.0e-9), 1.0); // inside first pulse
        assert_eq!(w.value(8.0e-9), 0.0); // between pulses
        assert_eq!(w.value(12.0e-9), 1.0); // second pulse
    }

    #[test]
    fn trace_convergence_time_of_exponential() {
        // v(t) = 1 - exp(-t/tau): crosses 0.1 % of final at t = tau*ln(1000).
        let tau = 1.0e-6;
        let times: Vec<f64> = (0..20_000).map(|i| i as f64 * 1.0e-9).collect();
        let values: Vec<f64> = times.iter().map(|t| 1.0 - (-t / tau).exp()).collect();
        let tr = Trace::new(times, values);
        let tc = tr.convergence_time(0.001).expect("non-empty");
        let expected = tau * 1000.0_f64.ln();
        assert!(
            (tc - expected).abs() < 0.05 * expected,
            "convergence {tc:.3e} vs expected {expected:.3e}"
        );
    }

    #[test]
    fn trace_already_settled_converges_at_start() {
        let tr = Trace::new(vec![0.0, 1.0, 2.0], vec![5.0, 5.0, 5.0]);
        assert_eq!(tr.convergence_time(0.001), Some(0.0));
    }

    #[test]
    fn relative_error() {
        let tr = Trace::new(vec![0.0], vec![1.02]);
        assert!((tr.relative_error(1.0) - 0.02).abs() < 1e-12);
        let tr = Trace::new(vec![0.0], vec![0.003]);
        assert_eq!(tr.relative_error(0.0), 0.003);
    }

    #[test]
    fn at_time_nearest_lookup() {
        let tr = Trace::new(vec![0.0, 1.0, 2.0], vec![10.0, 20.0, 30.0]);
        assert_eq!(tr.at_time(1.0), 20.0);
        assert_eq!(tr.at_time(0.4), 20.0); // binary_search Err(1) -> index 1
        assert_eq!(tr.at_time(9.0), 30.0);
    }

    #[test]
    fn at_time_clamps_rather_than_extrapolates() {
        // A short, already-converged trace whose final slope is steeply
        // negative: linear extrapolation past the end would keep falling,
        // but out-of-range reads must clamp to the recorded endpoints.
        let tr = Trace::new(vec![0.0, 1.0], vec![5.0, 1.5]);
        assert_eq!(tr.at_time(4.0), 1.5, "read past the end clamps to last");
        assert_eq!(
            tr.at_time(-1.0),
            5.0,
            "read before the start clamps to first"
        );
    }

    #[test]
    #[should_panic(expected = "at_time on an empty trace")]
    fn at_time_on_empty_trace_panics_cleanly() {
        Trace::new(vec![], vec![]).at_time(0.0);
    }
}
