//! Sparse linear solver for array-level netlists.
//!
//! MNA matrices of PE arrays are extremely sparse (each node touches a
//! handful of elements). This module implements Gaussian elimination over a
//! row-compressed hash layout with partial pivoting restricted to a
//! Markowitz-style candidate set — simple, dependency-free, and orders of
//! magnitude faster than dense LU once the system exceeds a few hundred
//! unknowns.

use std::collections::HashMap;

use crate::error::SpiceError;

/// A sparse square matrix assembled by triplet addition.
#[derive(Debug, Clone, Default)]
pub struct SparseMatrix {
    n: usize,
    rows: Vec<HashMap<usize, f64>>,
}

impl SparseMatrix {
    /// An `n x n` zero matrix.
    pub fn zeros(n: usize) -> Self {
        SparseMatrix {
            n,
            rows: vec![HashMap::new(); n],
        }
    }

    /// The dimension.
    pub fn dim(&self) -> usize {
        self.n
    }

    /// Number of stored non-zeros.
    pub fn nnz(&self) -> usize {
        self.rows.iter().map(HashMap::len).sum()
    }

    /// Clears all entries, keeping allocations.
    pub fn clear(&mut self) {
        for row in &mut self.rows {
            row.clear();
        }
    }

    /// Adds `v` to entry `(r, c)`.
    #[inline]
    pub fn add(&mut self, r: usize, c: usize, v: f64) {
        debug_assert!(r < self.n && c < self.n);
        *self.rows[r].entry(c).or_insert(0.0) += v;
    }

    /// Entry `(r, c)` (zero if unset).
    pub fn at(&self, r: usize, c: usize) -> f64 {
        self.rows[r].get(&c).copied().unwrap_or(0.0)
    }

    /// Multiplies `A·x`.
    pub fn mul_vec(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.n);
        self.rows
            .iter()
            .map(|row| row.iter().map(|(&c, &v)| v * x[c]).sum())
            .collect()
    }

    /// Solves `A·x = b`, consuming the matrix.
    ///
    /// # Errors
    ///
    /// Returns [`SpiceError::SingularMatrix`] if elimination breaks down.
    pub fn solve(mut self, b: &[f64]) -> Result<Vec<f64>, SpiceError> {
        assert_eq!(b.len(), self.n, "rhs length must match dimension");
        let n = self.n;
        let mut rhs = b.to_vec();
        // row_of[k] = original row index eliminated at step k.
        let mut active: Vec<usize> = (0..n).collect();

        for k in 0..n {
            // Pivot: among active rows, pick the one whose |A[r][k]| is
            // largest (partial pivoting on the k-th column).
            let mut best: Option<(usize, f64)> = None;
            for (pos, &r) in active.iter().enumerate().skip(k) {
                if let Some(&v) = self.rows[r].get(&k) {
                    let a = v.abs();
                    if best.is_none_or(|(_, bv)| a > bv) {
                        best = Some((pos, a));
                    }
                }
            }
            let (pos, mag) = best.ok_or(SpiceError::SingularMatrix { pivot: k })?;
            if mag < 1.0e-300 {
                return Err(SpiceError::SingularMatrix { pivot: k });
            }
            active.swap(k, pos);
            let prow = active[k];
            let pivot = self.rows[prow][&k];

            // Eliminate column k from the remaining active rows.
            let pivot_row: Vec<(usize, f64)> = self.rows[prow]
                .iter()
                .filter(|(&c, _)| c > k)
                .map(|(&c, &v)| (c, v))
                .collect();
            let pivot_rhs = rhs[prow];
            for &r in active.iter().skip(k + 1) {
                let Some(&a_rk) = self.rows[r].get(&k) else {
                    continue;
                };
                let factor = a_rk / pivot;
                self.rows[r].remove(&k);
                for &(c, v) in &pivot_row {
                    let e = self.rows[r].entry(c).or_insert(0.0);
                    *e -= factor * v;
                    if e.abs() < 1.0e-300 {
                        self.rows[r].remove(&c);
                    }
                }
                rhs[r] -= factor * pivot_rhs;
            }
        }

        // Back substitution.
        let mut x = vec![0.0; n];
        for k in (0..n).rev() {
            let r = active[k];
            let mut sum = rhs[r];
            for (&c, &v) in &self.rows[r] {
                if c > k {
                    sum -= v * x[c];
                }
            }
            x[k] = sum / self.rows[r][&k];
        }
        Ok(x)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn solves_small_system() {
        let mut m = SparseMatrix::zeros(2);
        m.add(0, 0, 2.0);
        m.add(0, 1, 1.0);
        m.add(1, 0, 1.0);
        m.add(1, 1, 3.0);
        let x = m.solve(&[5.0, 10.0]).unwrap();
        assert!((x[0] - 1.0).abs() < 1e-12);
        assert!((x[1] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn duplicate_adds_accumulate() {
        let mut m = SparseMatrix::zeros(1);
        m.add(0, 0, 1.0);
        m.add(0, 0, 2.0);
        assert_eq!(m.at(0, 0), 3.0);
        let x = m.solve(&[6.0]).unwrap();
        assert_eq!(x[0], 2.0);
    }

    #[test]
    fn pivoting_on_zero_diagonal() {
        let mut m = SparseMatrix::zeros(2);
        m.add(0, 1, 1.0);
        m.add(1, 0, 1.0);
        let x = m.solve(&[2.0, 3.0]).unwrap();
        assert_eq!(x, vec![3.0, 2.0]);
    }

    #[test]
    fn singular_detected() {
        let mut m = SparseMatrix::zeros(2);
        m.add(0, 0, 1.0);
        // Row 1 empty -> singular.
        assert!(matches!(
            m.solve(&[1.0, 1.0]),
            Err(SpiceError::SingularMatrix { .. })
        ));
    }

    #[test]
    fn matches_dense_on_random_sparse_system() {
        use crate::solver::DenseMatrix;
        let n = 60;
        let mut seed = 99u64;
        let mut rand = || {
            seed = seed
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((seed >> 33) as f64 / (1u64 << 31) as f64) - 1.0
        };
        let mut sp = SparseMatrix::zeros(n);
        let mut de = DenseMatrix::zeros(n);
        for r in 0..n {
            // ~5 off-diagonal entries per row.
            for _ in 0..5 {
                let c = ((rand().abs() * n as f64) as usize).min(n - 1);
                let v = rand();
                sp.add(r, c, v);
                de.add(r, c, v);
            }
            sp.add(r, r, 8.0);
            de.add(r, r, 8.0);
        }
        let b: Vec<f64> = (0..n).map(|_| rand()).collect();
        let xs = sp.solve(&b).unwrap();
        let xd = de.solve(&b).unwrap();
        for i in 0..n {
            assert!((xs[i] - xd[i]).abs() < 1e-9, "mismatch at {i}");
        }
    }

    #[test]
    fn mul_vec_roundtrip() {
        let n = 30;
        let mut m = SparseMatrix::zeros(n);
        for i in 0..n {
            m.add(i, i, 2.0);
            if i + 1 < n {
                m.add(i, i + 1, -1.0);
                m.add(i + 1, i, -1.0);
            }
        }
        let b: Vec<f64> = (0..n).map(|i| (i as f64 * 0.37).sin()).collect();
        let a = m.clone();
        let x = m.solve(&b).unwrap();
        let bx = a.mul_vec(&x);
        for i in 0..n {
            assert!((bx[i] - b[i]).abs() < 1e-9);
        }
    }

    #[test]
    fn nnz_and_clear() {
        let mut m = SparseMatrix::zeros(3);
        m.add(0, 0, 1.0);
        m.add(1, 2, 1.0);
        assert_eq!(m.nnz(), 2);
        m.clear();
        assert_eq!(m.nnz(), 0);
    }
}
