//! Sparse linear solver for array-level netlists.
//!
//! MNA matrices of PE arrays are extremely sparse (each node touches a
//! handful of elements). [`SparseMatrix`] is a triplet-assembly convenience
//! type whose borrow-based [`SparseMatrix::solve`] compresses the hash rows
//! into CSR once and delegates to the reusable [`crate::lu`] workspace
//! (threshold pivoting with a Markowitz-style sparsest-row tie-break). The
//! hot analysis path in [`crate::mna`] skips this type entirely and
//! assembles straight into CSR through a stamp plan.

use std::collections::HashMap;

use crate::error::SpiceError;
use crate::lu::SparseLu;

/// A sparse square matrix assembled by triplet addition.
#[derive(Debug, Clone, Default)]
pub struct SparseMatrix {
    n: usize,
    rows: Vec<HashMap<usize, f64>>,
}

impl SparseMatrix {
    /// An `n x n` zero matrix.
    pub fn zeros(n: usize) -> Self {
        SparseMatrix {
            n,
            rows: vec![HashMap::new(); n],
        }
    }

    /// The dimension.
    pub fn dim(&self) -> usize {
        self.n
    }

    /// Number of stored non-zeros.
    pub fn nnz(&self) -> usize {
        self.rows.iter().map(HashMap::len).sum()
    }

    /// Clears all entries, keeping allocations.
    pub fn clear(&mut self) {
        for row in &mut self.rows {
            row.clear();
        }
    }

    /// Adds `v` to entry `(r, c)`.
    #[inline]
    pub fn add(&mut self, r: usize, c: usize, v: f64) {
        debug_assert!(r < self.n && c < self.n);
        *self.rows[r].entry(c).or_insert(0.0) += v;
    }

    /// Entry `(r, c)` (zero if unset).
    pub fn at(&self, r: usize, c: usize) -> f64 {
        self.rows[r].get(&c).copied().unwrap_or(0.0)
    }

    /// Multiplies `A·x`.
    pub fn mul_vec(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.n);
        self.rows
            .iter()
            .map(|row| row.iter().map(|(&c, &v)| v * x[c]).sum())
            .collect()
    }

    /// Solves `A·x = b`. The matrix is only borrowed — callers that reuse
    /// it afterwards no longer need a defensive clone.
    ///
    /// # Errors
    ///
    /// Returns [`SpiceError::SingularMatrix`] if elimination breaks down.
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>, SpiceError> {
        assert_eq!(b.len(), self.n, "rhs length must match dimension");
        // Compress the hash rows into CSR with sorted columns.
        let mut row_ptr = Vec::with_capacity(self.n + 1);
        let mut col_idx = Vec::with_capacity(self.nnz());
        let mut values = Vec::with_capacity(self.nnz());
        let mut entries: Vec<(usize, f64)> = Vec::new();
        row_ptr.push(0);
        for row in &self.rows {
            entries.clear();
            entries.extend(row.iter().map(|(&c, &v)| (c, v)));
            entries.sort_unstable_by_key(|e| e.0);
            for &(c, v) in &entries {
                col_idx.push(c as u32);
                values.push(v);
            }
            row_ptr.push(col_idx.len());
        }
        let mut lu = SparseLu::new(self.n);
        lu.factor(&row_ptr, &col_idx, &values)?;
        let mut x = b.to_vec();
        let mut y = vec![0.0; self.n];
        lu.solve_in_place(&mut x, &mut y);
        Ok(x)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn solves_small_system() {
        let mut m = SparseMatrix::zeros(2);
        m.add(0, 0, 2.0);
        m.add(0, 1, 1.0);
        m.add(1, 0, 1.0);
        m.add(1, 1, 3.0);
        let x = m.solve(&[5.0, 10.0]).unwrap();
        assert!((x[0] - 1.0).abs() < 1e-12);
        assert!((x[1] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn duplicate_adds_accumulate() {
        let mut m = SparseMatrix::zeros(1);
        m.add(0, 0, 1.0);
        m.add(0, 0, 2.0);
        assert_eq!(m.at(0, 0), 3.0);
        let x = m.solve(&[6.0]).unwrap();
        assert_eq!(x[0], 2.0);
    }

    #[test]
    fn pivoting_on_zero_diagonal() {
        let mut m = SparseMatrix::zeros(2);
        m.add(0, 1, 1.0);
        m.add(1, 0, 1.0);
        let x = m.solve(&[2.0, 3.0]).unwrap();
        assert_eq!(x, vec![3.0, 2.0]);
    }

    #[test]
    fn singular_detected() {
        let mut m = SparseMatrix::zeros(2);
        m.add(0, 0, 1.0);
        // Row 1 empty -> singular.
        assert!(matches!(
            m.solve(&[1.0, 1.0]),
            Err(SpiceError::SingularMatrix { .. })
        ));
    }

    #[test]
    fn matches_dense_on_random_sparse_system() {
        use crate::solver::DenseMatrix;
        let n = 60;
        let mut seed = 99u64;
        let mut rand = || {
            seed = seed
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((seed >> 33) as f64 / (1u64 << 31) as f64) - 1.0
        };
        let mut sp = SparseMatrix::zeros(n);
        let mut de = DenseMatrix::zeros(n);
        for r in 0..n {
            // ~5 off-diagonal entries per row.
            for _ in 0..5 {
                let c = ((rand().abs() * n as f64) as usize).min(n - 1);
                let v = rand();
                sp.add(r, c, v);
                de.add(r, c, v);
            }
            sp.add(r, r, 8.0);
            de.add(r, r, 8.0);
        }
        let b: Vec<f64> = (0..n).map(|_| rand()).collect();
        let xs = sp.solve(&b).unwrap();
        let xd = de.solve(&b).unwrap();
        for i in 0..n {
            assert!((xs[i] - xd[i]).abs() < 1e-9, "mismatch at {i}");
        }
    }

    #[test]
    fn mul_vec_roundtrip() {
        // The borrow-based solve leaves the matrix usable — no clone.
        let n = 30;
        let mut m = SparseMatrix::zeros(n);
        for i in 0..n {
            m.add(i, i, 2.0);
            if i + 1 < n {
                m.add(i, i + 1, -1.0);
                m.add(i + 1, i, -1.0);
            }
        }
        let b: Vec<f64> = (0..n).map(|i| (i as f64 * 0.37).sin()).collect();
        let x = m.solve(&b).unwrap();
        let bx = m.mul_vec(&x);
        for i in 0..n {
            assert!((bx[i] - b[i]).abs() < 1e-9);
        }
    }

    #[test]
    fn nnz_and_clear() {
        let mut m = SparseMatrix::zeros(3);
        m.add(0, 0, 1.0);
        m.add(1, 2, 1.0);
        assert_eq!(m.nnz(), 2);
        m.clear();
        assert_eq!(m.nnz(), 0);
    }
}
