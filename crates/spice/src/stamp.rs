//! Stamp plans: symbolic MNA assembly done once per netlist.
//!
//! The sparsity pattern of an MNA matrix is fixed by the netlist topology —
//! only the *values* change across Newton iterations and timesteps. A
//! [`StampPlan`] walks the element list once at build time, records every
//! matrix coordinate each element touches, freezes the union into a CSR
//! pattern and maps each element stamp to slot indices in the CSR value
//! array. Per-iteration assembly is then `values.fill(0.0)` plus indexed
//! adds: no hashing, no coordinate lookups, no per-iteration matrix
//! allocation.
//!
//! The pattern is a value-independent superset: capacitor slots exist even
//! in DC (where they stamp nothing) so one plan serves both analyses and a
//! frozen LU structure built from it stays valid for every value regime.

use crate::elements::Element;
use crate::mna::{MnaLayout, StepContext};
use crate::netlist::{Netlist, NodeId};

/// Sentinel for "no slot" (a terminal is grounded).
const NONE: u32 = u32::MAX;

/// A frozen CSR sparsity pattern plus per-element stamp slot maps.
#[derive(Debug, Clone)]
pub(crate) struct StampPlan {
    /// CSR row pointers over the unknowns (length `n_unknowns + 1`).
    pub(crate) row_ptr: Vec<usize>,
    /// CSR column indices, sorted within each row.
    pub(crate) col_idx: Vec<u32>,
    /// Per element: up to six slot indices into the CSR value array.
    ///
    /// Conventions (unused trailing entries are `NONE`):
    /// - conductance-like (resistor, memristor, switch, capacitor, diode):
    ///   `[aa, ab, bb, ba]`
    /// - voltage source with branch k: `[pk, kp, nk, kn]`
    /// - op-amp with branch k: `[ok, ko, kp, kn]`
    /// - vc-switch: `[aa, ab, bb, ba, ac, bc]` (ctrl column entries last)
    slots: Vec<[u32; 6]>,
}

impl StampPlan {
    /// One symbolic assembly pass over the netlist.
    pub(crate) fn build(netlist: &Netlist, layout: &MnaLayout) -> Self {
        let mut pairs: Vec<(u32, u32)> = Vec::new();
        let cond_pairs = |pairs: &mut Vec<(u32, u32)>, na: NodeId, nb: NodeId| {
            let i = layout.node(na);
            let j = layout.node(nb);
            if let Some(i) = i {
                pairs.push((i as u32, i as u32));
                if let Some(j) = j {
                    pairs.push((i as u32, j as u32));
                }
            }
            if let Some(j) = j {
                pairs.push((j as u32, j as u32));
                if let Some(i) = i {
                    pairs.push((j as u32, i as u32));
                }
            }
        };

        for (ei, e) in netlist.elements().iter().enumerate() {
            match e {
                Element::Resistor { a, b, .. }
                | Element::Memristor { a, b, .. }
                | Element::Switch { a, b, .. }
                | Element::Capacitor { a, b, .. } => cond_pairs(&mut pairs, *a, *b),
                Element::Diode { anode, cathode, .. } => cond_pairs(&mut pairs, *anode, *cathode),
                Element::VoltageSource { p, n, .. } => {
                    let k = layout.branch_of_element(ei) as u32;
                    if let Some(i) = layout.node(*p) {
                        pairs.push((i as u32, k));
                        pairs.push((k, i as u32));
                    }
                    if let Some(j) = layout.node(*n) {
                        pairs.push((j as u32, k));
                        pairs.push((k, j as u32));
                    }
                }
                Element::VcSwitch {
                    a: na, b: nb, ctrl, ..
                } => {
                    cond_pairs(&mut pairs, *na, *nb);
                    if let Some(c) = layout.node(*ctrl) {
                        if let Some(i) = layout.node(*na) {
                            pairs.push((i as u32, c as u32));
                        }
                        if let Some(j) = layout.node(*nb) {
                            pairs.push((j as u32, c as u32));
                        }
                    }
                }
                Element::Opamp { inp, inn, out, .. } => {
                    let k = layout.branch_of_element(ei) as u32;
                    if let Some(o) = layout.node(*out) {
                        pairs.push((o as u32, k));
                        pairs.push((k, o as u32));
                    }
                    if let Some(i) = layout.node(*inp) {
                        pairs.push((k, i as u32));
                    }
                    if let Some(j) = layout.node(*inn) {
                        pairs.push((k, j as u32));
                    }
                }
            }
        }

        // Freeze the coordinate union into CSR.
        pairs.sort_unstable();
        pairs.dedup();
        let n = layout.n_unknowns;
        let mut row_ptr = vec![0usize; n + 1];
        for &(r, _) in &pairs {
            row_ptr[r as usize + 1] += 1;
        }
        for r in 0..n {
            row_ptr[r + 1] += row_ptr[r];
        }
        let col_idx: Vec<u32> = pairs.iter().map(|&(_, c)| c).collect();

        let slot_of = |r: Option<usize>, c: Option<usize>| -> u32 {
            match (r, c) {
                (Some(r), Some(c)) => {
                    let base = row_ptr[r];
                    let off = col_idx[base..row_ptr[r + 1]]
                        .binary_search(&(c as u32))
                        .expect("coordinate recorded in symbolic pass");
                    (base + off) as u32
                }
                _ => NONE,
            }
        };
        let cond_slots = |na: NodeId, nb: NodeId| -> [u32; 6] {
            let i = layout.node(na);
            let j = layout.node(nb);
            [
                slot_of(i, i),
                slot_of(i, j),
                slot_of(j, j),
                slot_of(j, i),
                NONE,
                NONE,
            ]
        };

        let slots = netlist
            .elements()
            .iter()
            .enumerate()
            .map(|(ei, e)| match e {
                Element::Resistor { a, b, .. }
                | Element::Memristor { a, b, .. }
                | Element::Switch { a, b, .. }
                | Element::Capacitor { a, b, .. } => cond_slots(*a, *b),
                Element::Diode { anode, cathode, .. } => cond_slots(*anode, *cathode),
                Element::VoltageSource { p, n, .. } => {
                    let k = Some(layout.branch_of_element(ei));
                    let i = layout.node(*p);
                    let j = layout.node(*n);
                    [
                        slot_of(i, k),
                        slot_of(k, i),
                        slot_of(j, k),
                        slot_of(k, j),
                        NONE,
                        NONE,
                    ]
                }
                Element::VcSwitch {
                    a: na, b: nb, ctrl, ..
                } => {
                    let mut s = cond_slots(*na, *nb);
                    let c = layout.node(*ctrl);
                    s[4] = slot_of(layout.node(*na), c);
                    s[5] = slot_of(layout.node(*nb), c);
                    s
                }
                Element::Opamp { inp, inn, out, .. } => {
                    let k = Some(layout.branch_of_element(ei));
                    let o = layout.node(*out);
                    [
                        slot_of(o, k),
                        slot_of(k, o),
                        slot_of(k, layout.node(*inp)),
                        slot_of(k, layout.node(*inn)),
                        NONE,
                        NONE,
                    ]
                }
            })
            .collect();

        StampPlan {
            row_ptr,
            col_idx,
            slots,
        }
    }

    /// Structural non-zeros of the assembled matrix.
    pub(crate) fn nnz(&self) -> usize {
        self.col_idx.len()
    }

    /// Numeric assembly for the iterate `x` at time `t`: zero `values`/`z`
    /// then stamp every element through its precomputed slots. Element
    /// iteration order (and hence per-slot accumulation order) matches the
    /// original coordinate-based assembly, keeping results bit-identical.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn assemble(
        &self,
        netlist: &Netlist,
        layout: &MnaLayout,
        x: &[f64],
        t: f64,
        ctx: StepContext<'_>,
        values: &mut [f64],
        z: &mut [f64],
    ) {
        debug_assert_eq!(values.len(), self.col_idx.len());
        debug_assert_eq!(z.len(), layout.n_unknowns);
        values.fill(0.0);
        z.fill(0.0);

        #[inline]
        fn add(values: &mut [f64], slot: u32, v: f64) {
            if slot != NONE {
                values[slot as usize] += v;
            }
        }
        // Conductance stamp through slots [aa, ab, bb, ba].
        #[inline]
        fn stamp_cond(values: &mut [f64], s: &[u32; 6], g: f64) {
            add(values, s[0], g);
            add(values, s[1], -g);
            add(values, s[2], g);
            add(values, s[3], -g);
        }

        for (ei, e) in netlist.elements().iter().enumerate() {
            let s = &self.slots[ei];
            match e {
                Element::Resistor { ohms, .. } | Element::Memristor { ohms, .. } => {
                    stamp_cond(values, s, 1.0 / ohms);
                }
                Element::Switch {
                    state, ron, roff, ..
                } => {
                    let r = match state {
                        crate::elements::SwitchState::Closed => *ron,
                        crate::elements::SwitchState::Open => *roff,
                    };
                    stamp_cond(values, s, 1.0 / r);
                }
                Element::Capacitor {
                    a: na,
                    b: nb,
                    farads,
                } => {
                    if let StepContext::Transient {
                        h,
                        prev,
                        cap_currents,
                    } = ctx
                    {
                        let v_prev = layout.voltage(prev, *na) - layout.voltage(prev, *nb);
                        let (g, ieq) = match cap_currents {
                            // Trapezoidal companion:
                            // i_n = (2C/h)·(v_n − v_prev) − i_prev.
                            Some(ic) => {
                                let g = 2.0 * farads / h;
                                (g, g * v_prev + ic[ei])
                            }
                            // BE companion: i = (C/h)·v − (C/h)·v_prev.
                            None => {
                                let g = farads / h;
                                (g, g * v_prev)
                            }
                        };
                        stamp_cond(values, s, g);
                        if let Some(i) = layout.node(*na) {
                            z[i] += ieq;
                        }
                        if let Some(j) = layout.node(*nb) {
                            z[j] -= ieq;
                        }
                    }
                    // DC: capacitor is open — slots stay zero.
                }
                Element::VoltageSource { waveform, .. } => {
                    let k = layout.branch_of_element(ei);
                    add(values, s[0], 1.0);
                    add(values, s[1], 1.0);
                    add(values, s[2], -1.0);
                    add(values, s[3], -1.0);
                    z[k] = waveform.value(t);
                }
                Element::Diode {
                    anode,
                    cathode,
                    model,
                } => {
                    let v = layout.voltage(x, *anode) - layout.voltage(x, *cathode);
                    let (i0, gd) = model.current_and_derivative(v);
                    // Companion: i = gd·v + (i0 - gd·v0).
                    stamp_cond(values, s, gd);
                    let ieq = i0 - gd * v;
                    if let Some(i) = layout.node(*anode) {
                        z[i] -= ieq;
                    }
                    if let Some(j) = layout.node(*cathode) {
                        z[j] += ieq;
                    }
                }
                Element::VcSwitch {
                    a: na,
                    b: nb,
                    ctrl,
                    threshold,
                    active_high,
                    ron,
                    roff,
                    vs,
                } => {
                    let vc = layout.voltage(x, *ctrl);
                    let vab = layout.voltage(x, *na) - layout.voltage(x, *nb);
                    let (g, dg) = crate::elements::vc_switch_conductance(
                        vc,
                        *threshold,
                        *active_high,
                        *ron,
                        *roff,
                        *vs,
                    );
                    // i = g(vc)·(va − vb); linearize in va, vb AND vc.
                    stamp_cond(values, s, g);
                    let kc = vab * dg;
                    add(values, s[4], kc);
                    add(values, s[5], -kc);
                    // Companion current: i0 - g·vab0 - kc·vc0 = -kc·vc0.
                    let ieq = -kc * vc;
                    if let Some(i) = layout.node(*na) {
                        z[i] -= ieq;
                    }
                    if let Some(j) = layout.node(*nb) {
                        z[j] += ieq;
                    }
                }
                Element::Opamp {
                    inp,
                    inn,
                    out,
                    model,
                } => {
                    let k = layout.branch_of_element(ei);
                    // Current injection at the output node.
                    add(values, s[0], 1.0);
                    let vd = layout.voltage(x, *inp) - layout.voltage(x, *inn);
                    let (sat0, dsat) = model.target_and_derivative(vd);
                    match ctx {
                        StepContext::Dc => {
                            // vout = sat(A0·vd), linearized:
                            // vout - dsat·(vp - vn) = sat0 - dsat·vd0.
                            add(values, s[1], 1.0);
                            add(values, s[2], -dsat);
                            add(values, s[3], dsat);
                            z[k] = sat0 - dsat * vd;
                        }
                        StepContext::Transient { h, prev, .. } => {
                            // τ·dvout/dt = sat(A0·vd) - vout, BE:
                            // vout·(1 + h/τ) - (h/τ)·sat = vout_prev.
                            let tau = model.pole_tau();
                            let alpha = h / tau;
                            let vout_prev = layout.voltage(prev, *out);
                            add(values, s[1], 1.0 + alpha);
                            add(values, s[2], -alpha * dsat);
                            add(values, s[3], alpha * dsat);
                            z[k] = vout_prev + alpha * (sat0 - dsat * vd);
                        }
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::waveform::Waveform;

    #[test]
    fn plan_matches_coordinate_assembly_on_divider() {
        // Voltage divider: compare the planned CSR assembly with a direct
        // dense stamp.
        let mut net = Netlist::new();
        let top = net.node("top");
        let mid = net.node("mid");
        net.voltage_source(top, Netlist::GROUND, Waveform::Dc(1.0));
        net.resistor(top, mid, 1.0e3);
        net.resistor(mid, Netlist::GROUND, 3.0e3);
        let layout = MnaLayout::build(&net);
        let plan = StampPlan::build(&net, &layout);
        let n = layout.n_unknowns;
        let mut values = vec![0.0; plan.nnz()];
        let mut z = vec![0.0; n];
        let x = vec![0.0; n];
        plan.assemble(&net, &layout, &x, 0.0, StepContext::Dc, &mut values, &mut z);

        // Expected dense matrix.
        let g1 = 1.0 / 1.0e3;
        let g2 = 1.0 / 3.0e3;
        // Unknowns: v(top)=0, v(mid)=1, i(src)=2.
        let mut dense = vec![vec![0.0; n]; n];
        dense[0][0] = g1;
        dense[0][1] = -g1;
        dense[1][0] = -g1;
        dense[1][1] = g1 + g2;
        dense[0][2] = 1.0;
        dense[2][0] = 1.0;
        let mut from_plan = vec![vec![0.0; n]; n];
        for (r, row) in from_plan.iter_mut().enumerate() {
            for s in plan.row_ptr[r]..plan.row_ptr[r + 1] {
                row[plan.col_idx[s] as usize] = values[s];
            }
        }
        assert_eq!(from_plan, dense);
        assert_eq!(z, vec![0.0, 0.0, 1.0]);
    }

    #[test]
    fn capacitor_slots_exist_in_dc_pattern() {
        let mut net = Netlist::new();
        let a = net.node("a");
        net.voltage_source(a, Netlist::GROUND, Waveform::Dc(1.0));
        net.resistor(a, Netlist::GROUND, 1.0e3);
        let b = net.node("b");
        net.resistor(a, b, 1.0e3);
        net.capacitor(b, Netlist::GROUND, 1.0e-9);
        let layout = MnaLayout::build(&net);
        let plan = StampPlan::build(&net, &layout);
        // The (b, b) diagonal entry must be in the pattern even though DC
        // stamps nothing there besides the resistor; the capacitor's own
        // ground-referenced stamp also lands on it.
        let bi = layout.node(b).unwrap();
        let row = &plan.col_idx[plan.row_ptr[bi]..plan.row_ptr[bi + 1]];
        assert!(row.binary_search(&(bi as u32)).is_ok());
    }

    #[test]
    fn slots_are_deduplicated_csr() {
        // Two parallel resistors share all four slots.
        let mut net = Netlist::new();
        let a = net.node("a");
        net.voltage_source(a, Netlist::GROUND, Waveform::Dc(1.0));
        net.resistor(a, Netlist::GROUND, 1.0e3);
        net.resistor(a, Netlist::GROUND, 2.0e3);
        let layout = MnaLayout::build(&net);
        let plan = StampPlan::build(&net, &layout);
        let n = layout.n_unknowns;
        let mut values = vec![0.0; plan.nnz()];
        let mut z = vec![0.0; n];
        plan.assemble(
            &net,
            &layout,
            &vec![0.0; n],
            0.0,
            StepContext::Dc,
            &mut values,
            &mut z,
        );
        let ai = layout.node(a).unwrap();
        let base = plan.row_ptr[ai];
        let off = plan.col_idx[base..plan.row_ptr[ai + 1]]
            .binary_search(&(ai as u32))
            .unwrap();
        assert!((values[base + off] - (1.0 / 1.0e3 + 1.0 / 2.0e3)).abs() < 1e-15);
    }
}
