//! Export a [`Netlist`] as a standard SPICE deck.
//!
//! The behavioural elements map onto stock SPICE devices: memristors become
//! resistors at their programmed value, op-amps become single-pole
//! voltage-controlled source subcircuits, transmission gates become
//! voltage-controlled switches. The deck lets users cross-check this
//! crate's results against ngspice/HSPICE — the tool the paper itself used.

use std::fmt::Write as _;

use crate::elements::Element;
use crate::netlist::{Netlist, NodeId};
use crate::waveform::Waveform;

fn node_name(id: NodeId) -> String {
    if id.is_ground() {
        "0".to_string()
    } else {
        format!("n{}", id.index())
    }
}

fn waveform_spec(w: &Waveform) -> String {
    match w {
        Waveform::Dc(v) => format!("DC {v}"),
        Waveform::Step { level, delay, rise } => {
            format!("PWL(0 0 {delay} 0 {} {level})", delay + rise)
        }
        Waveform::Pwl(points) => {
            let mut s = String::from("PWL(");
            for (t, v) in points {
                let _ = write!(s, "{t} {v} ");
            }
            s.trim_end().to_string() + ")"
        }
        Waveform::Pulse {
            low,
            high,
            delay,
            width,
            period,
            edge,
        } => format!("PULSE({low} {high} {delay} {edge} {edge} {width} {period})"),
    }
}

/// Renders the netlist as a SPICE deck with a `.tran`-ready structure.
///
/// Op-amps are emitted as `E`-source subcircuit instances (single-pole
/// behavioural model); diodes use a `.model` card with the crate's
/// saturation current and emission scaling; voltage-controlled switches use
/// `.model SW` cards.
pub fn to_spice_deck(netlist: &Netlist, title: &str) -> String {
    let mut deck = String::new();
    let _ = writeln!(deck, "* {title}");
    let _ = writeln!(deck, "* exported by mda-spice");

    let mut models: Vec<String> = Vec::new();
    let mut subckt_needed = false;
    let mut counters = std::collections::HashMap::<&str, usize>::new();
    let mut next = |prefix: &'static str| -> usize {
        let c = counters.entry(prefix).or_insert(0);
        *c += 1;
        *c
    };

    for e in netlist.elements() {
        match e {
            Element::Resistor { a, b, ohms } => {
                let k = next("R");
                let _ = writeln!(deck, "R{k} {} {} {ohms}", node_name(*a), node_name(*b));
            }
            Element::Memristor { a, b, ohms } => {
                let k = next("RM");
                let _ = writeln!(
                    deck,
                    "RM{k} {} {} {ohms} ; memristor (programmed)",
                    node_name(*a),
                    node_name(*b)
                );
            }
            Element::Capacitor { a, b, farads } => {
                let k = next("C");
                let _ = writeln!(deck, "C{k} {} {} {farads}", node_name(*a), node_name(*b));
            }
            Element::VoltageSource { p, n, waveform } => {
                let k = next("V");
                let _ = writeln!(
                    deck,
                    "V{k} {} {} {}",
                    node_name(*p),
                    node_name(*n),
                    waveform_spec(waveform)
                );
            }
            Element::Diode {
                anode,
                cathode,
                model,
            } => {
                let k = next("D");
                let mname = format!("DMOD{}", models.len() + 1);
                let card = format!(
                    ".model {mname} D(IS={} N={})",
                    model.is_sat,
                    model.vt / 25.852e-3
                );
                if !models.contains(&card) {
                    models.push(card.clone());
                }
                let _ = writeln!(
                    deck,
                    "D{k} {} {} {mname}",
                    node_name(*anode),
                    node_name(*cathode)
                );
            }
            Element::Switch {
                a,
                b,
                state,
                ron,
                roff,
            } => {
                let k = next("RS");
                let r = match state {
                    crate::elements::SwitchState::Closed => ron,
                    crate::elements::SwitchState::Open => roff,
                };
                let _ = writeln!(
                    deck,
                    "RS{k} {} {} {r} ; static TG ({state:?})",
                    node_name(*a),
                    node_name(*b)
                );
            }
            Element::VcSwitch {
                a,
                b,
                ctrl,
                threshold,
                active_high,
                ron,
                roff,
                ..
            } => {
                let k = next("S");
                let mname = format!("SWMOD{k}");
                models.push(format!(
                    ".model {mname} SW(VT={threshold} RON={ron} ROFF={roff})"
                ));
                let (cp, cn) = if *active_high {
                    (node_name(*ctrl), "0".to_string())
                } else {
                    ("0".to_string(), node_name(*ctrl))
                };
                let _ = writeln!(
                    deck,
                    "S{k} {} {} {cp} {cn} {mname}",
                    node_name(*a),
                    node_name(*b)
                );
            }
            Element::Opamp {
                inp,
                inn,
                out,
                model,
            } => {
                subckt_needed = true;
                let k = next("X");
                let _ = writeln!(
                    deck,
                    "XOP{k} {} {} {} opamp_1pole PARAMS: A0={} FP={}",
                    node_name(*inp),
                    node_name(*inn),
                    node_name(*out),
                    model.gain,
                    1.0 / (2.0 * std::f64::consts::PI * model.pole_tau()),
                );
            }
        }
    }

    for m in &models {
        let _ = writeln!(deck, "{m}");
    }
    if subckt_needed {
        let _ = writeln!(
            deck,
            "\n.subckt opamp_1pole inp inn out PARAMS: A0=1e4 FP=50e9\n\
             Ein mid 0 VALUE={{A0*(V(inp)-V(inn))}}\n\
             Rp mid pole 1k\n\
             Cp pole 0 {{1/(6.283185307*FP*1k)}}\n\
             Eout out 0 pole 0 1\n\
             .ends opamp_1pole"
        );
    }
    let _ = writeln!(deck, "\n.end");
    deck
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::elements::{OpampModel, SwitchState};

    fn demo_netlist() -> Netlist {
        let mut net = Netlist::new();
        let a = net.node("a");
        let b = net.node("b");
        net.voltage_source(a, Netlist::GROUND, Waveform::step(1.0));
        net.resistor(a, b, 1.0e3);
        net.memristor(b, Netlist::GROUND, 50.0e3);
        net.capacitor(b, Netlist::GROUND, 20.0e-15);
        net.diode(a, b);
        net.switch(a, b, SwitchState::Open);
        let c = net.node("ctrl");
        net.vc_switch(a, b, c, 0.5, true);
        net.opamp(a, b, c, OpampModel::table1());
        net
    }

    #[test]
    fn deck_contains_every_element_class() {
        let deck = to_spice_deck(&demo_netlist(), "demo");
        assert!(deck.starts_with("* demo"));
        for needle in ["V1 ", "R1 ", "RM1 ", "C1 ", "D1 ", "RS1 ", "S1 ", "XOP1 "] {
            assert!(deck.contains(needle), "missing {needle} in deck:\n{deck}");
        }
        assert!(deck.contains(".model DMOD1 D(IS="));
        assert!(deck.contains(".model SWMOD1 SW(VT=0.5"));
        assert!(deck.contains(".subckt opamp_1pole"));
        assert!(deck.trim_end().ends_with(".end"));
    }

    #[test]
    fn ground_is_node_zero() {
        let deck = to_spice_deck(&demo_netlist(), "demo");
        assert!(deck.contains(" 0 "), "ground must be node 0");
        assert!(!deck.contains("n0 "), "node 0 must not be named n0");
    }

    #[test]
    fn waveform_specs() {
        assert_eq!(waveform_spec(&Waveform::Dc(0.5)), "DC 0.5");
        let s = waveform_spec(&Waveform::step(1.0));
        assert!(s.starts_with("PWL(0 0 0 0 "), "{s}");
        let s = waveform_spec(&Waveform::Pwl(vec![(0.0, 0.0), (1e-9, 1.0)]));
        assert!(s.contains("0 0") && s.contains("0.000000001 1"), "{s}");
    }

    #[test]
    fn pe_circuit_exports_cleanly() {
        // A realistic deck: the full MD row circuit.
        use crate::waveform::Waveform as W;
        let mut net = Netlist::new();
        let inp = net.node("in");
        net.voltage_source(inp, Netlist::GROUND, W::Dc(0.02));
        let out = net.buffer(inp, OpampModel::table1());
        net.memristor(out, Netlist::GROUND, 100.0e3);
        let deck = to_spice_deck(&net, "buffer");
        assert!(deck.matches("XOP").count() >= 1);
        assert!(deck.lines().count() > 8);
    }
}
