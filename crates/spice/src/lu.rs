//! Reusable sparse LU factorization with a symbolic/numeric split.
//!
//! The MNA matrix of a netlist has a sparsity pattern fixed for the whole
//! analysis, while its *values* change every Newton iteration. [`SparseLu`]
//! exploits that: the first [`SparseLu::factor`] runs a full pivot search
//! (threshold pivoting with a Markowitz-style sparsest-row tie-break) and
//! records the complete elimination structure — pivot order, fill-in
//! pattern, per-column update lists and a scatter map from the assembled
//! CSR slots into the factor storage. Subsequent [`SparseLu::refactor`]
//! calls replay that structure numerically: no hashing, no allocation, no
//! pivot search — just a `fill(0.0)`, an indexed scatter and a sorted
//! merge-walk per elimination step.
//!
//! When the circuit leaves the value regime the pivots were chosen for
//! (e.g. a diode switching on), a replayed factorization can go unstable.
//! The caller guards this with a cheap row-wise residual check and falls
//! back to a full re-pivot (see `mna::MnaSystem`); `refactor` itself only
//! rejects outright pivot collapse (`|u_kk| < 1e-300` or non-finite).

use crate::error::SpiceError;

/// Pivot stability threshold for the full factorization: a candidate row is
/// eligible if its column entry is at least `TAU` times the largest
/// candidate magnitude. Among eligible rows the sparsest wins (Markowitz).
const TAU: f64 = 0.5;

/// Absolute pivot collapse floor (matches the dense solver).
const PIVOT_FLOOR: f64 = 1.0e-300;

/// A reusable sparse LU workspace over a fixed sparsity pattern.
#[derive(Debug, Clone, Default)]
pub(crate) struct SparseLu {
    n: usize,
    /// `perm[k]` = original row eliminated at step k.
    perm: Vec<u32>,
    /// Inverse of `perm`: elimination step of each original row.
    pos_of_row: Vec<u32>,
    /// Factor storage in CSR over *original* row indices, columns sorted.
    /// Row `perm[k]`: columns `< k` hold L factors, column `k` the pivot,
    /// columns `> k` the U row.
    lu_ptr: Vec<usize>,
    lu_col: Vec<u32>,
    lu_val: Vec<f64>,
    /// Slot of the pivot entry `(perm[k], k)` per step.
    diag_slot: Vec<usize>,
    /// Per column k: the `(row, slot-of-(row,k))` pairs of rows eliminated
    /// *after* step k, flattened (`col_ptr` delimits columns).
    col_ptr: Vec<usize>,
    col_rows: Vec<(u32, u32)>,
    /// Base CSR slot -> factor slot.
    scatter: Vec<u32>,
    frozen: bool,
    /// Scratch: pivot-row tail copy used during full factorization.
    tail_scratch: Vec<(u32, f64)>,
}

impl SparseLu {
    pub(crate) fn new(n: usize) -> Self {
        SparseLu {
            n,
            pos_of_row: vec![0; n],
            ..SparseLu::default()
        }
    }

    /// `true` once a structure has been cached by [`SparseLu::factor`].
    pub(crate) fn is_frozen(&self) -> bool {
        self.frozen
    }

    /// Non-zeros of the cached factors (fill-in included).
    pub(crate) fn factor_nnz(&self) -> usize {
        self.lu_val.len()
    }

    /// Full factorization: pivot search, symbolic fill-in discovery and
    /// numeric elimination in one pass over the pattern `(row_ptr,
    /// col_idx)` with entry values `values`. Caches the structure for
    /// [`SparseLu::refactor`].
    ///
    /// # Errors
    ///
    /// Returns [`SpiceError::SingularMatrix`] when no usable pivot exists
    /// in some column.
    // Pivot checks are written as negated comparisons so a NaN pivot (from
    // a diverging Newton state) also counts as unusable.
    #[allow(clippy::neg_cmp_op_on_partial_ord)]
    pub(crate) fn factor(
        &mut self,
        row_ptr: &[usize],
        col_idx: &[u32],
        values: &[f64],
    ) -> Result<(), SpiceError> {
        let n = self.n;
        debug_assert_eq!(row_ptr.len(), n + 1);

        // Dynamic working rows, sorted by column; fill entries are inserted
        // as elimination proceeds (structural zeros are kept so the frozen
        // pattern is value-independent).
        let mut rows: Vec<Vec<(u32, f64)>> = (0..n)
            .map(|r| {
                col_idx[row_ptr[r]..row_ptr[r + 1]]
                    .iter()
                    .zip(&values[row_ptr[r]..row_ptr[r + 1]])
                    .map(|(&c, &v)| (c, v))
                    .collect()
            })
            .collect();
        // Rows containing each column (grows with fill).
        let mut col_rows: Vec<Vec<u32>> = vec![Vec::new(); n];
        for (r, row) in rows.iter().enumerate() {
            for &(c, _) in row {
                col_rows[c as usize].push(r as u32);
            }
        }

        let mut perm: Vec<u32> = Vec::with_capacity(n);
        let mut pos_of_row: Vec<u32> = vec![u32::MAX; n];
        let value_at = |row: &[(u32, f64)], c: u32| -> f64 {
            let i = row
                .binary_search_by_key(&c, |e| e.0)
                .expect("structural entry present");
            row[i].1
        };

        for k in 0..n {
            let kc = k as u32;
            // Pass 1: the largest candidate magnitude in column k.
            let mut vmax = 0.0f64;
            for &r in &col_rows[k] {
                if pos_of_row[r as usize] != u32::MAX {
                    continue;
                }
                let v = value_at(&rows[r as usize], kc).abs();
                if v > vmax {
                    vmax = v;
                }
            }
            if !(vmax >= PIVOT_FLOOR) {
                return Err(SpiceError::SingularMatrix { pivot: k });
            }
            // Pass 2: among rows within TAU of vmax, the sparsest row wins;
            // ties break toward the smallest row index (determinism).
            let mut best: Option<(u32, usize)> = None;
            for &r in &col_rows[k] {
                if pos_of_row[r as usize] != u32::MAX {
                    continue;
                }
                let row = &rows[r as usize];
                if value_at(row, kc).abs() < TAU * vmax {
                    continue;
                }
                let len = row.len();
                let better = match best {
                    None => true,
                    Some((br, blen)) => len < blen || (len == blen && r < br),
                };
                if better {
                    best = Some((r, len));
                }
            }
            let (prow, _) = best.expect("vmax > 0 implies a candidate");
            perm.push(prow);
            pos_of_row[prow as usize] = k as u32;
            let pivot = value_at(&rows[prow as usize], kc);

            // Copy the pivot-row tail (columns > k) so we can mutate the
            // target rows.
            self.tail_scratch.clear();
            {
                let prow_data = &rows[prow as usize];
                let start = prow_data
                    .binary_search_by_key(&kc, |e| e.0)
                    .expect("pivot present")
                    + 1;
                self.tail_scratch.extend_from_slice(&prow_data[start..]);
            }

            // Eliminate column k from every remaining candidate row. Fill
            // entries are always materialized — even when the factor is
            // exactly zero — so the frozen structure is a superset for any
            // value assignment on the same pattern.
            for ci in 0..col_rows[k].len() {
                let r = col_rows[k][ci];
                if pos_of_row[r as usize] != u32::MAX {
                    continue;
                }
                let row = &mut rows[r as usize];
                let idx = row
                    .binary_search_by_key(&kc, |e| e.0)
                    .expect("candidate entry present");
                let f = row[idx].1 / pivot;
                row[idx].1 = f;
                for ti in 0..self.tail_scratch.len() {
                    let (c, pv) = self.tail_scratch[ti];
                    let row = &mut rows[r as usize];
                    match row.binary_search_by_key(&c, |e| e.0) {
                        Ok(j) => row[j].1 -= f * pv,
                        Err(j) => {
                            row.insert(j, (c, -f * pv));
                            col_rows[c as usize].push(r);
                        }
                    }
                }
            }
        }

        // Freeze the structure into flat CSR storage.
        self.perm = perm;
        self.pos_of_row = pos_of_row;
        let lu_nnz: usize = rows.iter().map(Vec::len).sum();
        self.lu_ptr.clear();
        self.lu_ptr.reserve(n + 1);
        self.lu_col.clear();
        self.lu_col.reserve(lu_nnz);
        self.lu_val.clear();
        self.lu_val.reserve(lu_nnz);
        self.lu_ptr.push(0);
        for row in &rows {
            for &(c, v) in row {
                self.lu_col.push(c);
                self.lu_val.push(v);
            }
            self.lu_ptr.push(self.lu_col.len());
        }
        // Pivot slots.
        self.diag_slot.clear();
        self.diag_slot.reserve(n);
        for k in 0..n {
            let r = self.perm[k] as usize;
            let base = self.lu_ptr[r];
            let row_cols = &self.lu_col[base..self.lu_ptr[r + 1]];
            let off = row_cols
                .binary_search(&(k as u32))
                .expect("pivot entry frozen");
            self.diag_slot.push(base + off);
        }
        // Column update lists: entries (r, k) of rows eliminated after
        // step k, in ascending row order (deterministic replay).
        let mut counts = vec![0usize; n];
        for (r, &step) in self.pos_of_row.iter().enumerate() {
            let base = self.lu_ptr[r];
            for &c in &self.lu_col[base..self.lu_ptr[r + 1]] {
                if step > c {
                    counts[c as usize] += 1;
                }
            }
        }
        self.col_ptr.clear();
        self.col_ptr.reserve(n + 1);
        self.col_ptr.push(0);
        let mut running = 0usize;
        for &count in &counts {
            running += count;
            self.col_ptr.push(running);
        }
        self.col_rows.clear();
        self.col_rows.resize(self.col_ptr[n], (0, 0));
        let mut next = self.col_ptr[..n].to_vec();
        for (r, &step) in self.pos_of_row.iter().enumerate() {
            let base = self.lu_ptr[r];
            for (off, &c) in self.lu_col[base..self.lu_ptr[r + 1]].iter().enumerate() {
                if step > c {
                    let dst = next[c as usize];
                    self.col_rows[dst] = (r as u32, (base + off) as u32);
                    next[c as usize] += 1;
                }
            }
        }
        // Scatter map: base slot -> factor slot.
        self.scatter.clear();
        self.scatter.reserve(col_idx.len());
        for r in 0..n {
            let fbase = self.lu_ptr[r];
            let fcols = &self.lu_col[fbase..self.lu_ptr[r + 1]];
            for &c in &col_idx[row_ptr[r]..row_ptr[r + 1]] {
                let off = fcols.binary_search(&c).expect("base entry frozen");
                self.scatter.push((fbase + off) as u32);
            }
        }
        self.frozen = true;
        Ok(())
    }

    /// Numeric refactorization on the cached structure: scatter `values`
    /// into the factor storage and replay the recorded elimination with the
    /// frozen pivot order. Returns `false` on pivot collapse (caller should
    /// fall back to [`SparseLu::factor`]).
    ///
    /// Allocation-free.
    // As in `factor`, negated pivot comparisons keep NaN on the bail-out
    // path.
    #[allow(clippy::neg_cmp_op_on_partial_ord)]
    pub(crate) fn refactor(&mut self, values: &[f64]) -> bool {
        debug_assert!(self.frozen, "refactor before factor");
        debug_assert_eq!(values.len(), self.scatter.len());
        self.lu_val.fill(0.0);
        for (i, &s) in self.scatter.iter().enumerate() {
            self.lu_val[s as usize] = values[i];
        }
        let n = self.n;
        for k in 0..n {
            let dk = self.diag_slot[k];
            let pivot = self.lu_val[dk];
            if !(pivot.abs() >= PIVOT_FLOOR) {
                return false;
            }
            let prow = self.perm[k] as usize;
            let tail = dk + 1..self.lu_ptr[prow + 1];
            for &(r, slot_rk) in &self.col_rows[self.col_ptr[k]..self.col_ptr[k + 1]] {
                let slot_rk = slot_rk as usize;
                let f = self.lu_val[slot_rk] / pivot;
                self.lu_val[slot_rk] = f;
                if f == 0.0 {
                    continue;
                }
                // Sorted merge-walk: the target row's tail is a structural
                // superset of the pivot row's tail.
                let mut j = slot_rk + 1;
                let row_end = self.lu_ptr[r as usize + 1];
                for i in tail.clone() {
                    let c = self.lu_col[i];
                    while j < row_end && self.lu_col[j] < c {
                        j += 1;
                    }
                    debug_assert!(j < row_end && self.lu_col[j] == c, "fill superset");
                    self.lu_val[j] -= f * self.lu_val[i];
                    j += 1;
                }
            }
        }
        true
    }

    /// Solves `L·U·x = rhs` in place using the cached factors; `y` is an
    /// n-sized scratch buffer. On return `rhs` holds `x`. Allocation-free.
    pub(crate) fn solve_in_place(&self, rhs: &mut [f64], y: &mut [f64]) {
        debug_assert!(self.frozen);
        let n = self.n;
        debug_assert_eq!(rhs.len(), n);
        debug_assert_eq!(y.len(), n);
        // Forward: L has unit diagonal; factors live at columns < k of row
        // perm[k].
        for k in 0..n {
            let r = self.perm[k] as usize;
            let mut sum = rhs[r];
            for s in self.lu_ptr[r]..self.diag_slot[k] {
                sum -= self.lu_val[s] * y[self.lu_col[s] as usize];
            }
            y[k] = sum;
        }
        // Backward: U row k lives at columns > k of row perm[k].
        for k in (0..n).rev() {
            let r = self.perm[k] as usize;
            let dk = self.diag_slot[k];
            let mut sum = y[k];
            for s in dk + 1..self.lu_ptr[r + 1] {
                sum -= self.lu_val[s] * rhs[self.lu_col[s] as usize];
            }
            rhs[k] = sum / self.lu_val[dk];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Builds a CSR pattern + values from dense row data.
    fn csr(rows: &[Vec<(u32, f64)>]) -> (Vec<usize>, Vec<u32>, Vec<f64>) {
        let mut ptr = vec![0usize];
        let mut col = Vec::new();
        let mut val = Vec::new();
        for row in rows {
            let mut sorted = row.clone();
            sorted.sort_by_key(|e| e.0);
            for (c, v) in sorted {
                col.push(c);
                val.push(v);
            }
            ptr.push(col.len());
        }
        (ptr, col, val)
    }

    #[allow(clippy::needless_range_loop)]
    fn solve_dense_ref(a: &[Vec<f64>], b: &[f64]) -> Vec<f64> {
        // Naive Gaussian elimination with partial pivoting.
        let n = b.len();
        let mut m: Vec<Vec<f64>> = a.to_vec();
        let mut x = b.to_vec();
        let mut order: Vec<usize> = (0..n).collect();
        for k in 0..n {
            let piv = (k..n)
                .max_by(|&i, &j| {
                    m[order[i]][k]
                        .abs()
                        .partial_cmp(&m[order[j]][k].abs())
                        .unwrap()
                })
                .unwrap();
            order.swap(k, piv);
            let pr = order[k];
            for &r in &order[k + 1..] {
                let f = m[r][k] / m[pr][k];
                for c in k..n {
                    m[r][c] -= f * m[pr][c];
                }
                x[r] -= f * x[pr];
            }
        }
        let mut sol = vec![0.0; n];
        for k in (0..n).rev() {
            let r = order[k];
            let mut s = x[r];
            for c in k + 1..n {
                s -= m[r][c] * sol[c];
            }
            sol[k] = s / m[r][k];
        }
        sol
    }

    fn rand_stream(seed: u64) -> impl FnMut() -> f64 {
        let mut s = seed;
        move || {
            s = s
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((s >> 33) as f64 / (1u64 << 31) as f64) - 1.0
        }
    }

    fn random_system(n: usize, seed: u64) -> (Vec<Vec<(u32, f64)>>, Vec<f64>) {
        let mut rand = rand_stream(seed);
        let mut rows: Vec<Vec<(u32, f64)>> = Vec::with_capacity(n);
        for r in 0..n {
            let mut row: Vec<(u32, f64)> = Vec::new();
            for _ in 0..4 {
                let c = ((rand().abs() * n as f64) as usize).min(n - 1) as u32;
                if row.iter().all(|e| e.0 != c) {
                    row.push((c, rand()));
                }
            }
            if let Some(e) = row.iter_mut().find(|e| e.0 == r as u32) {
                e.1 += 6.0;
            } else {
                row.push((r as u32, 6.0 + rand()));
            }
            rows.push(row);
        }
        let b: Vec<f64> = (0..n).map(|_| rand()).collect();
        (rows, b)
    }

    fn to_dense(n: usize, rows: &[Vec<(u32, f64)>]) -> Vec<Vec<f64>> {
        let mut d = vec![vec![0.0; n]; n];
        for (r, row) in rows.iter().enumerate() {
            for &(c, v) in row {
                d[r][c as usize] += v;
            }
        }
        d
    }

    #[test]
    fn factor_solves_random_sparse_system() {
        let n = 50;
        let (rows, b) = random_system(n, 7);
        let (ptr, col, val) = csr(&rows);
        let mut lu = SparseLu::new(n);
        lu.factor(&ptr, &col, &val).unwrap();
        let mut x = b.clone();
        let mut y = vec![0.0; n];
        lu.solve_in_place(&mut x, &mut y);
        let reference = solve_dense_ref(&to_dense(n, &rows), &b);
        for i in 0..n {
            assert!((x[i] - reference[i]).abs() < 1e-9, "mismatch at {i}");
        }
    }

    #[test]
    fn refactor_matches_cold_factor_on_new_values() {
        let n = 40;
        let (rows, b) = random_system(n, 13);
        let (ptr, col, val) = csr(&rows);
        let mut lu = SparseLu::new(n);
        lu.factor(&ptr, &col, &val).unwrap();

        // Retune: same structure, new values.
        let mut rand = rand_stream(99);
        let val2: Vec<f64> = val.iter().map(|v| v * (1.0 + 0.3 * rand())).collect();
        assert!(lu.refactor(&val2));
        let mut x_refactor = b.clone();
        let mut y = vec![0.0; n];
        lu.solve_in_place(&mut x_refactor, &mut y);

        let mut cold = SparseLu::new(n);
        cold.factor(&ptr, &col, &val2).unwrap();
        let mut x_cold = b.clone();
        cold.solve_in_place(&mut x_cold, &mut y);

        for i in 0..n {
            assert!(
                (x_refactor[i] - x_cold[i]).abs() < 1e-10,
                "refactor vs cold at {i}: {} vs {}",
                x_refactor[i],
                x_cold[i]
            );
        }
    }

    #[test]
    fn refactor_reports_pivot_collapse() {
        let (ptr, col, val) = csr(&[vec![(0, 1.0), (1, 0.5)], vec![(0, 0.5), (1, 2.0)]]);
        let mut lu = SparseLu::new(2);
        lu.factor(&ptr, &col, &val).unwrap();
        // Zeroing everything collapses the first pivot.
        assert!(!lu.refactor(&[0.0, 0.0, 0.0, 0.0]));
    }

    #[test]
    fn singular_column_detected() {
        // Column 1 has no entries at all.
        let (ptr, col, val) = csr(&[vec![(0, 1.0)], vec![(0, 2.0)]]);
        let mut lu = SparseLu::new(2);
        assert!(matches!(
            lu.factor(&ptr, &col, &val),
            Err(SpiceError::SingularMatrix { .. })
        ));
    }

    #[test]
    fn zero_diagonal_handled_by_row_pivoting() {
        // [0 1; 1 0] x = [2, 3] -> x = [3, 2].
        let (ptr, col, val) = csr(&[vec![(1, 1.0)], vec![(0, 1.0)]]);
        let mut lu = SparseLu::new(2);
        lu.factor(&ptr, &col, &val).unwrap();
        let mut x = vec![2.0, 3.0];
        let mut y = vec![0.0; 2];
        lu.solve_in_place(&mut x, &mut y);
        assert_eq!(x, vec![3.0, 2.0]);
    }

    #[test]
    fn structural_zeros_survive_refactor() {
        // An entry that is zero at factor time must still carry value on
        // refactor (capacitor slots are zero in DC, non-zero in transient).
        let (ptr, col, val) = csr(&[vec![(0, 1.0), (1, 0.0)], vec![(0, 0.0), (1, 1.0)]]);
        let mut lu = SparseLu::new(2);
        lu.factor(&ptr, &col, &val).unwrap();
        assert!(lu.refactor(&[2.0, 1.0, 1.0, 2.0]));
        let mut x = vec![5.0, 4.0];
        let mut y = vec![0.0; 2];
        lu.solve_in_place(&mut x, &mut y);
        // [2 1; 1 2] x = [5; 4] -> x = [2; 1].
        assert!((x[0] - 2.0).abs() < 1e-12);
        assert!((x[1] - 1.0).abs() < 1e-12);
    }
}
