//! Minimal complex arithmetic for AC analysis (no external dependency).

use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub};

/// A complex number with `f64` parts.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Complex {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl Complex {
    /// Zero.
    pub const ZERO: Complex = Complex { re: 0.0, im: 0.0 };
    /// One.
    pub const ONE: Complex = Complex { re: 1.0, im: 0.0 };

    /// A complex number from rectangular parts.
    pub fn new(re: f64, im: f64) -> Self {
        Complex { re, im }
    }

    /// A purely real number.
    pub fn real(re: f64) -> Self {
        Complex { re, im: 0.0 }
    }

    /// A purely imaginary number.
    pub fn imag(im: f64) -> Self {
        Complex { re: 0.0, im }
    }

    /// Magnitude `|z|`.
    pub fn abs(self) -> f64 {
        self.re.hypot(self.im)
    }

    /// Phase angle, radians.
    pub fn arg(self) -> f64 {
        self.im.atan2(self.re)
    }

    /// Complex conjugate.
    pub fn conj(self) -> Self {
        Complex {
            re: self.re,
            im: -self.im,
        }
    }

    /// Magnitude in decibels (`20·log10 |z|`).
    pub fn db(self) -> f64 {
        20.0 * self.abs().log10()
    }
}

impl Add for Complex {
    type Output = Complex;
    fn add(self, rhs: Complex) -> Complex {
        Complex::new(self.re + rhs.re, self.im + rhs.im)
    }
}

impl AddAssign for Complex {
    fn add_assign(&mut self, rhs: Complex) {
        self.re += rhs.re;
        self.im += rhs.im;
    }
}

impl Sub for Complex {
    type Output = Complex;
    fn sub(self, rhs: Complex) -> Complex {
        Complex::new(self.re - rhs.re, self.im - rhs.im)
    }
}

impl Mul for Complex {
    type Output = Complex;
    fn mul(self, rhs: Complex) -> Complex {
        Complex::new(
            self.re * rhs.re - self.im * rhs.im,
            self.re * rhs.im + self.im * rhs.re,
        )
    }
}

impl Div for Complex {
    type Output = Complex;
    fn div(self, rhs: Complex) -> Complex {
        let d = rhs.re * rhs.re + rhs.im * rhs.im;
        Complex::new(
            (self.re * rhs.re + self.im * rhs.im) / d,
            (self.im * rhs.re - self.re * rhs.im) / d,
        )
    }
}

impl Neg for Complex {
    type Output = Complex;
    fn neg(self) -> Complex {
        Complex::new(-self.re, -self.im)
    }
}

impl From<f64> for Complex {
    fn from(re: f64) -> Self {
        Complex::real(re)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_identities() {
        let a = Complex::new(3.0, 4.0);
        let b = Complex::new(-1.0, 2.0);
        assert_eq!(a + b, Complex::new(2.0, 6.0));
        assert_eq!(a - b, Complex::new(4.0, 2.0));
        assert_eq!(a * Complex::ONE, a);
        let q = a / b;
        let back = q * b;
        assert!((back - a).abs() < 1e-12);
    }

    #[test]
    fn magnitude_and_phase() {
        let z = Complex::new(3.0, 4.0);
        assert!((z.abs() - 5.0).abs() < 1e-12);
        assert!((Complex::imag(1.0).arg() - std::f64::consts::FRAC_PI_2).abs() < 1e-12);
        assert!((Complex::real(10.0).db() - 20.0).abs() < 1e-12);
    }

    #[test]
    fn conjugate_multiplication_is_square_magnitude() {
        let z = Complex::new(2.0, -7.0);
        let m = z * z.conj();
        assert!((m.re - z.abs() * z.abs()).abs() < 1e-9);
        assert!(m.im.abs() < 1e-12);
    }
}
