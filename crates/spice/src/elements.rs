//! Circuit element definitions and their nonlinear device equations.

use crate::netlist::NodeId;
use crate::waveform::Waveform;

/// Near-ideal exponential diode model.
///
/// The paper's Table 1 specifies ideal diodes ("Threshold voltage of diodes
/// (V): 0"). We use a Shockley junction `i = Is·(exp(v/vt) − 1)` with a very
/// small thermal scale `vt` so the knee sits at a few millivolts — an order
/// of magnitude below the accelerator's 20 mV voltage resolution — and a
/// linear continuation beyond `x = v/vt = 30` to keep Newton's Jacobian
/// finite. The tiny forward drop (~2–4 mV at the µA currents the memristor
/// networks draw) is the physical source of the per-stage "zero drift" the
/// paper observes in its DTW/EdD error analysis.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DiodeModel {
    /// Saturation (reverse leakage) current, A.
    pub is_sat: f64,
    /// Exponential voltage scale, V.
    pub vt: f64,
    /// Minimum parallel conductance for numerical robustness, S.
    pub gmin: f64,
}

impl Default for DiodeModel {
    fn default() -> Self {
        DiodeModel {
            is_sat: 10.0e-9,
            vt: 0.4e-3,
            gmin: 1.0e-12,
        }
    }
}

impl DiodeModel {
    /// Exponent beyond which the exponential is continued linearly.
    const X_MAX: f64 = 30.0;

    /// Diode current and its derivative at forward voltage `v`.
    pub fn current_and_derivative(&self, v: f64) -> (f64, f64) {
        let x = v / self.vt;
        let (i, di) = if x <= Self::X_MAX {
            let e = x.max(-200.0).exp();
            (self.is_sat * (e - 1.0), self.is_sat * e / self.vt)
        } else {
            // Linear continuation: value and slope match at X_MAX.
            let e = Self::X_MAX.exp();
            (
                self.is_sat * (e * (1.0 + (x - Self::X_MAX)) - 1.0),
                self.is_sat * e / self.vt,
            )
        };
        (i + self.gmin * v, di + self.gmin)
    }

    /// The forward voltage drop at current `i` (inverse of the exponential
    /// branch) — useful for error budgets.
    pub fn forward_drop(&self, i: f64) -> f64 {
        if i <= 0.0 {
            return 0.0;
        }
        self.vt * (i / self.is_sat + 1.0).ln()
    }
}

/// Behavioural op-amp: finite open-loop gain, single-pole gain–bandwidth
/// dynamics, and soft output saturation.
///
/// The paper's Table 1 values are provided by [`OpampModel::table1`]: open
/// loop gain 1e4 and a 50 GHz gain–bandwidth product. The open-loop pole is
/// `f_p = GBW / A0`, i.e. a time constant `τ = A0 / (2π·GBW)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OpampModel {
    /// Open-loop DC gain (V/V).
    pub gain: f64,
    /// Gain–bandwidth product, Hz.
    pub gbw: f64,
    /// Negative output rail, V.
    pub vmin: f64,
    /// Positive output rail, V.
    pub vmax: f64,
    /// Input offset voltage, V — the physical source of the "zero drift"
    /// the paper blames for the larger DTW/EdD errors. Referred to the
    /// non-inverting input; 0 for an ideal device.
    pub input_offset: f64,
}

impl OpampModel {
    /// The paper's Table 1 op-amp: gain 1e4, GBW 50 GHz, rails ±Vcc = ±1 V,
    /// no input offset.
    pub fn table1() -> Self {
        OpampModel {
            gain: 1.0e4,
            gbw: 50.0e9,
            vmin: -1.0,
            vmax: 1.0,
            input_offset: 0.0,
        }
    }

    /// A comparator: very high gain, rails `[0, vcc]` so the output is a
    /// logic level.
    pub fn comparator(vcc: f64) -> Self {
        OpampModel {
            gain: 1.0e5,
            gbw: 50.0e9,
            vmin: 0.0,
            vmax: vcc,
            input_offset: 0.0,
        }
    }

    /// The same device with an input offset voltage (zero drift).
    #[must_use]
    pub fn with_input_offset(mut self, volts: f64) -> Self {
        self.input_offset = volts;
        self
    }

    /// Dynamic time constant `τ = 1 / (2π·GBW)`, s.
    ///
    /// The behavioural output stage tracks its saturated target at the
    /// gain–bandwidth speed. This intentionally over-estimates the
    /// closed-loop bandwidth of a single-pole amplifier so the circuit's
    /// settling is dominated by the memristor/parasitic RC paths — which is
    /// exactly the regime the paper analyses ("the convergence time is
    /// determined by the output voltage and the amount of capacitance in the
    /// current propagation path").
    pub fn pole_tau(&self) -> f64 {
        1.0 / (2.0 * std::f64::consts::PI * self.gbw)
    }

    /// Soft-saturated target output and its derivative w.r.t. the
    /// differential input: `sat(A0·vd)` using a tanh rail model.
    pub fn target_and_derivative(&self, vd: f64) -> (f64, f64) {
        let vd = vd + self.input_offset;
        let mid = (self.vmax + self.vmin) / 2.0;
        let amp = (self.vmax - self.vmin) / 2.0;
        let x = (self.gain * vd - mid) / amp;
        let t = x.clamp(-60.0, 60.0).tanh();
        let target = mid + amp * t;
        let derivative = self.gain * (1.0 - t * t);
        (target, derivative)
    }
}

/// State of a transmission gate (analog switch).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SwitchState {
    /// Conducting (low `ron`).
    Closed,
    /// Isolating (high `roff`).
    Open,
}

/// A circuit element. Constructed through the [`crate::Netlist`] builder
/// methods rather than directly.
#[derive(Debug, Clone, PartialEq)]
pub enum Element {
    /// Linear resistor.
    Resistor {
        /// First terminal.
        a: NodeId,
        /// Second terminal.
        b: NodeId,
        /// Resistance, Ω.
        ohms: f64,
    },
    /// Memristor treated quasi-statically during analysis: its resistance is
    /// fixed at the value it was programmed to (Section 4.2 of the paper
    /// argues compute-time state drift is negligible; `mda-memristor` has
    /// the dynamic model used for programming).
    Memristor {
        /// First terminal.
        a: NodeId,
        /// Second terminal.
        b: NodeId,
        /// Programmed resistance, Ω.
        ohms: f64,
    },
    /// Linear capacitor.
    Capacitor {
        /// First terminal.
        a: NodeId,
        /// Second terminal.
        b: NodeId,
        /// Capacitance, F.
        farads: f64,
    },
    /// Independent voltage source (one extra MNA unknown: branch current).
    VoltageSource {
        /// Positive terminal.
        p: NodeId,
        /// Negative terminal.
        n: NodeId,
        /// Source waveform.
        waveform: Waveform,
    },
    /// Smoothed ideal diode.
    Diode {
        /// Anode.
        anode: NodeId,
        /// Cathode.
        cathode: NodeId,
        /// Device model.
        model: DiodeModel,
    },
    /// Transmission gate (configured statically per distance function).
    Switch {
        /// First terminal.
        a: NodeId,
        /// Second terminal.
        b: NodeId,
        /// Present state.
        state: SwitchState,
        /// Closed resistance, Ω.
        ron: f64,
        /// Open resistance, Ω.
        roff: f64,
    },
    /// Behavioural op-amp (one extra MNA unknown: output branch current).
    Opamp {
        /// Non-inverting input.
        inp: NodeId,
        /// Inverting input.
        inn: NodeId,
        /// Output.
        out: NodeId,
        /// Device model.
        model: OpampModel,
    },
    /// Voltage-controlled transmission gate: conducts when the control node
    /// is above `threshold`. This is the comparator-driven TG inside the
    /// LCS/EdD/HamD PEs (Fig. 2 of the paper).
    VcSwitch {
        /// First terminal.
        a: NodeId,
        /// Second terminal.
        b: NodeId,
        /// Gate control node.
        ctrl: NodeId,
        /// Control threshold, V.
        threshold: f64,
        /// `true` if the switch closes when `v(ctrl) > threshold`
        /// (an inverted gate closes below the threshold).
        active_high: bool,
        /// Closed resistance, Ω.
        ron: f64,
        /// Open resistance, Ω.
        roff: f64,
        /// Smooth transition width of the control characteristic, V.
        vs: f64,
    },
}

/// Conductance of a [`Element::VcSwitch`] as a function of its control
/// voltage, and the derivative dg/dvc.
pub(crate) fn vc_switch_conductance(
    v_ctrl: f64,
    threshold: f64,
    active_high: bool,
    ron: f64,
    roff: f64,
    vs: f64,
) -> (f64, f64) {
    let gon = 1.0 / ron;
    let goff = 1.0 / roff;
    let sign = if active_high { 1.0 } else { -1.0 };
    let x = (sign * (v_ctrl - threshold) / vs).clamp(-60.0, 60.0);
    let s = 1.0 / (1.0 + (-x).exp());
    let g = goff + (gon - goff) * s;
    let dg = (gon - goff) * s * (1.0 - s) * sign / vs;
    (g, dg)
}

impl Element {
    /// Whether this element adds a branch-current unknown to the MNA system.
    pub fn has_branch_current(&self) -> bool {
        matches!(self, Element::VoltageSource { .. } | Element::Opamp { .. })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn diode_blocks_reverse_conducts_forward() {
        let d = DiodeModel::default();
        let (i_fwd, _) = d.current_and_derivative(0.1);
        let (i_rev, _) = d.current_and_derivative(-0.1);
        assert!(i_fwd > 0.05, "forward current {i_fwd}");
        assert!(i_rev.abs() < 1e-6, "reverse leak {i_rev}");
    }

    #[test]
    fn diode_zero_bias_is_truly_off() {
        // The regression that motivated the exponential model: at v = 0 the
        // small-signal conductance must be tiny, or reverse-connected diodes
        // leak through.
        let d = DiodeModel::default();
        let (i0, g0) = d.current_and_derivative(0.0);
        assert_eq!(i0, 0.0);
        assert!(g0 < 1.0e-4, "zero-bias conductance {g0}");
    }

    #[test]
    fn diode_knee_below_voltage_resolution() {
        // The drop at the µA-level currents the memristor networks draw must
        // sit well below the 20 mV voltage resolution.
        let d = DiodeModel::default();
        let drop = d.forward_drop(5.0e-6);
        assert!(drop < 5.0e-3, "forward drop {drop}");
        // Reverse current at -2 mV is bounded by the saturation current.
        let (i_rev, _) = d.current_and_derivative(-2.0e-3);
        assert!(i_rev.abs() <= d.is_sat * 1.01);
    }

    #[test]
    fn diode_linear_continuation_is_smooth() {
        let d = DiodeModel::default();
        let x = DiodeModel::X_MAX;
        let below = d.current_and_derivative(d.vt * (x - 1e-9));
        let above = d.current_and_derivative(d.vt * (x + 1e-9));
        assert!((below.0 - above.0).abs() / above.0 < 1e-6);
        assert!((below.1 - above.1).abs() / above.1 < 1e-6);
    }

    #[test]
    fn diode_derivative_positive_everywhere() {
        let d = DiodeModel::default();
        for v in [-1.0, -0.01, -1e-4, 0.0, 1e-4, 0.01, 1.0] {
            let (_, di) = d.current_and_derivative(v);
            assert!(di > 0.0, "derivative at {v} is {di}");
        }
    }

    #[test]
    fn opamp_table1_pole() {
        let m = OpampModel::table1();
        // tau = 1 / (2*pi*50e9) ~ 3.18 ps.
        assert!((m.pole_tau() - 3.18e-12).abs() < 0.05e-12);
    }

    #[test]
    fn opamp_target_linear_region_and_rails() {
        let m = OpampModel::table1();
        // Small input: gain ~ 1e4.
        let (t, d) = m.target_and_derivative(10.0e-6);
        assert!((t - 0.1).abs() < 0.01, "target {t}");
        assert!(d > 0.9e4);
        // Large input saturates near the rail with ~zero gain.
        let (t, d) = m.target_and_derivative(1.0);
        assert!((t - 1.0).abs() < 1e-3);
        assert!(d < 1.0);
    }

    #[test]
    fn input_offset_shifts_transfer() {
        // A unity-follower with 1 mV offset settles 1 mV high.
        let m = OpampModel::table1().with_input_offset(1.0e-3);
        let (t_offset, _) = m.target_and_derivative(0.0);
        let (t_ideal, _) = OpampModel::table1().target_and_derivative(1.0e-3);
        assert!((t_offset - t_ideal).abs() < 1e-12);
    }

    #[test]
    fn comparator_rails_are_logic_levels() {
        let c = OpampModel::comparator(1.0);
        let (hi, _) = c.target_and_derivative(0.01);
        let (lo, _) = c.target_and_derivative(-0.01);
        assert!((hi - 1.0).abs() < 1e-6);
        assert!(lo.abs() < 1e-6);
    }

    #[test]
    fn vc_switch_conductance_states() {
        // Active-high gate: on above threshold, off below.
        let (g_on, _) = vc_switch_conductance(0.9, 0.5, true, 1.0, 1.0e9, 10.0e-3);
        let (g_off, _) = vc_switch_conductance(0.1, 0.5, true, 1.0, 1.0e9, 10.0e-3);
        assert!(g_on > 0.99);
        assert!(g_off < 1.0e-6);
        // Active-low gate inverts.
        let (g, _) = vc_switch_conductance(0.1, 0.5, false, 1.0, 1.0e9, 10.0e-3);
        assert!(g > 0.99);
    }

    #[test]
    fn vc_switch_derivative_sign() {
        // Rising control voltage increases an active-high gate's conductance.
        let (_, dg) = vc_switch_conductance(0.5, 0.5, true, 1.0, 1.0e9, 10.0e-3);
        assert!(dg > 0.0);
        let (_, dg) = vc_switch_conductance(0.5, 0.5, false, 1.0, 1.0e9, 10.0e-3);
        assert!(dg < 0.0);
    }

    #[test]
    fn branch_current_elements() {
        let vs = Element::VoltageSource {
            p: NodeId::GROUND,
            n: NodeId::GROUND,
            waveform: Waveform::Dc(0.0),
        };
        assert!(vs.has_branch_current());
        let r = Element::Resistor {
            a: NodeId::GROUND,
            b: NodeId::GROUND,
            ohms: 1.0,
        };
        assert!(!r.has_branch_current());
    }
}
