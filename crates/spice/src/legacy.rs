//! Frozen pre-optimization reference solver path.
//!
//! This module preserves, verbatim, the original per-iteration assembly and
//! consuming LU solvers that predate the structure-caching core in
//! [`crate::mna`]: a fresh matrix is allocated and a full pivoted
//! factorization performed on every Newton iteration of every timestep.
//! It exists solely as a golden baseline — the equivalence test suite and
//! the `spice_solver` bench compare the optimized core against it — and
//! must not be changed when the hot path evolves.

use std::collections::HashMap;

use crate::elements::Element;
use crate::error::SpiceError;
use crate::mna::{MnaLayout, StepContext};
use crate::netlist::{Netlist, NodeId};
use crate::transient::{Integration, TransientResult, TransientSpec};

/// The original dense row-major matrix with a consuming pivoted solve.
struct LegacyDense {
    n: usize,
    data: Vec<f64>,
}

impl LegacyDense {
    fn zeros(n: usize) -> Self {
        LegacyDense {
            n,
            data: vec![0.0; n * n],
        }
    }

    #[inline]
    fn add(&mut self, r: usize, c: usize, v: f64) {
        self.data[r * self.n + c] += v;
    }

    #[inline]
    fn at(&self, r: usize, c: usize) -> f64 {
        self.data[r * self.n + c]
    }

    fn solve(mut self, b: &[f64]) -> Result<Vec<f64>, SpiceError> {
        let n = self.n;
        let mut x = b.to_vec();
        let mut perm: Vec<usize> = (0..n).collect();

        for k in 0..n {
            // Partial pivot.
            let mut max_row = k;
            let mut max_val = self.at(perm[k], k).abs();
            for (r, &pr) in perm.iter().enumerate().skip(k + 1) {
                let v = self.at(pr, k).abs();
                if v > max_val {
                    max_val = v;
                    max_row = r;
                }
            }
            if max_val < 1.0e-300 {
                return Err(SpiceError::SingularMatrix { pivot: k });
            }
            perm.swap(k, max_row);
            let pk = perm[k];
            let pivot = self.at(pk, k);
            for &pr in perm.iter().skip(k + 1) {
                let factor = self.at(pr, k) / pivot;
                if factor == 0.0 {
                    continue;
                }
                self.data[pr * n + k] = factor;
                for c in (k + 1)..n {
                    let sub = factor * self.at(pk, c);
                    self.data[pr * n + c] -= sub;
                }
            }
        }

        // Forward substitution (L has unit diagonal, factors stored below).
        let mut y = vec![0.0; n];
        for k in 0..n {
            let mut sum = x[perm[k]];
            for (c, &yc) in y.iter().enumerate().take(k) {
                sum -= self.at(perm[k], c) * yc;
            }
            y[k] = sum;
        }
        // Back substitution.
        for k in (0..n).rev() {
            let mut sum = y[k];
            for (c, &xc) in x.iter().enumerate().take(n).skip(k + 1) {
                sum -= self.at(perm[k], c) * xc;
            }
            x[k] = sum / self.at(perm[k], k);
        }
        Ok(x)
    }
}

/// The original hash-row sparse matrix with a consuming pivoted solve.
struct LegacySparse {
    n: usize,
    rows: Vec<HashMap<usize, f64>>,
}

impl LegacySparse {
    fn zeros(n: usize) -> Self {
        LegacySparse {
            n,
            rows: vec![HashMap::new(); n],
        }
    }

    #[inline]
    fn add(&mut self, r: usize, c: usize, v: f64) {
        *self.rows[r].entry(c).or_insert(0.0) += v;
    }

    fn solve(mut self, b: &[f64]) -> Result<Vec<f64>, SpiceError> {
        let n = self.n;
        let mut rhs = b.to_vec();
        // row_of[k] = original row index eliminated at step k.
        let mut active: Vec<usize> = (0..n).collect();

        for k in 0..n {
            // Pivot: among active rows, pick the one whose |A[r][k]| is
            // largest (partial pivoting on the k-th column).
            let mut best: Option<(usize, f64)> = None;
            for (pos, &r) in active.iter().enumerate().skip(k) {
                if let Some(&v) = self.rows[r].get(&k) {
                    let a = v.abs();
                    if best.is_none_or(|(_, bv)| a > bv) {
                        best = Some((pos, a));
                    }
                }
            }
            let (pos, mag) = best.ok_or(SpiceError::SingularMatrix { pivot: k })?;
            if mag < 1.0e-300 {
                return Err(SpiceError::SingularMatrix { pivot: k });
            }
            active.swap(k, pos);
            let prow = active[k];
            let pivot = self.rows[prow][&k];

            // Eliminate column k from the remaining active rows.
            let pivot_row: Vec<(usize, f64)> = self.rows[prow]
                .iter()
                .filter(|(&c, _)| c > k)
                .map(|(&c, &v)| (c, v))
                .collect();
            let pivot_rhs = rhs[prow];
            for &r in active.iter().skip(k + 1) {
                let Some(&a_rk) = self.rows[r].get(&k) else {
                    continue;
                };
                let factor = a_rk / pivot;
                self.rows[r].remove(&k);
                for &(c, v) in &pivot_row {
                    let e = self.rows[r].entry(c).or_insert(0.0);
                    *e -= factor * v;
                    if e.abs() < 1.0e-300 {
                        self.rows[r].remove(&c);
                    }
                }
                rhs[r] -= factor * pivot_rhs;
            }
        }

        // Back substitution.
        let mut x = vec![0.0; n];
        for k in (0..n).rev() {
            let r = active[k];
            let mut sum = rhs[r];
            for (&c, &v) in &self.rows[r] {
                if c > k {
                    sum -= v * x[c];
                }
            }
            x[k] = sum / self.rows[r][&k];
        }
        Ok(x)
    }
}

/// The original per-iteration backend abstraction.
trait LinearBackend {
    fn add(&mut self, r: usize, c: usize, v: f64);
    fn solve_system(self, b: &[f64]) -> Result<Vec<f64>, SpiceError>;
}

impl LinearBackend for LegacyDense {
    fn add(&mut self, r: usize, c: usize, v: f64) {
        LegacyDense::add(self, r, c, v);
    }
    fn solve_system(self, b: &[f64]) -> Result<Vec<f64>, SpiceError> {
        self.solve(b)
    }
}

impl LinearBackend for LegacySparse {
    fn add(&mut self, r: usize, c: usize, v: f64) {
        LegacySparse::add(self, r, c, v);
    }
    fn solve_system(self, b: &[f64]) -> Result<Vec<f64>, SpiceError> {
        self.solve(b)
    }
}

const SPARSE_THRESHOLD: usize = 150;
const MAX_NEWTON: usize = 200;
const DAMP_LIMIT: f64 = 0.3;
const TOL_ABS: f64 = 1.0e-9;

/// Stamps every element for the given iterate `x` and context, then solves
/// the linearized system once.
fn assemble_and_solve<B: LinearBackend>(
    mut a: B,
    netlist: &Netlist,
    layout: &MnaLayout,
    x: &[f64],
    t: f64,
    ctx: StepContext<'_>,
) -> Result<Vec<f64>, SpiceError> {
    let mut z = vec![0.0; layout.n_unknowns];

    let stamp_conductance = |a: &mut B, na: NodeId, nb: NodeId, g: f64| {
        if let Some(i) = layout.node(na) {
            a.add(i, i, g);
            if let Some(j) = layout.node(nb) {
                a.add(i, j, -g);
            }
        }
        if let Some(j) = layout.node(nb) {
            a.add(j, j, g);
            if let Some(i) = layout.node(na) {
                a.add(j, i, -g);
            }
        }
    };

    for (ei, e) in netlist.elements().iter().enumerate() {
        match e {
            Element::Resistor { a: na, b: nb, ohms }
            | Element::Memristor { a: na, b: nb, ohms } => {
                stamp_conductance(&mut a, *na, *nb, 1.0 / ohms);
            }
            Element::Switch {
                a: na,
                b: nb,
                state,
                ron,
                roff,
            } => {
                let r = match state {
                    crate::elements::SwitchState::Closed => *ron,
                    crate::elements::SwitchState::Open => *roff,
                };
                stamp_conductance(&mut a, *na, *nb, 1.0 / r);
            }
            Element::Capacitor {
                a: na,
                b: nb,
                farads,
            } => {
                if let StepContext::Transient {
                    h,
                    prev,
                    cap_currents,
                } = ctx
                {
                    let v_prev = layout.voltage(prev, *na) - layout.voltage(prev, *nb);
                    let (g, ieq) = match cap_currents {
                        Some(ic) => {
                            let g = 2.0 * farads / h;
                            (g, g * v_prev + ic[ei])
                        }
                        None => {
                            let g = farads / h;
                            (g, g * v_prev)
                        }
                    };
                    stamp_conductance(&mut a, *na, *nb, g);
                    if let Some(i) = layout.node(*na) {
                        z[i] += ieq;
                    }
                    if let Some(j) = layout.node(*nb) {
                        z[j] -= ieq;
                    }
                }
                // DC: capacitor is open — no stamp.
            }
            Element::VoltageSource { p, n, waveform } => {
                let k = layout.branch_of_element(ei);
                if let Some(i) = layout.node(*p) {
                    a.add(i, k, 1.0);
                    a.add(k, i, 1.0);
                }
                if let Some(j) = layout.node(*n) {
                    a.add(j, k, -1.0);
                    a.add(k, j, -1.0);
                }
                z[k] = waveform.value(t);
            }
            Element::Diode {
                anode,
                cathode,
                model,
            } => {
                let v = layout.voltage(x, *anode) - layout.voltage(x, *cathode);
                let (i0, gd) = model.current_and_derivative(v);
                stamp_conductance(&mut a, *anode, *cathode, gd);
                let ieq = i0 - gd * v;
                if let Some(i) = layout.node(*anode) {
                    z[i] -= ieq;
                }
                if let Some(j) = layout.node(*cathode) {
                    z[j] += ieq;
                }
            }
            Element::VcSwitch {
                a: na,
                b: nb,
                ctrl,
                threshold,
                active_high,
                ron,
                roff,
                vs,
            } => {
                let vc = layout.voltage(x, *ctrl);
                let vab = layout.voltage(x, *na) - layout.voltage(x, *nb);
                let (g, dg) = crate::elements::vc_switch_conductance(
                    vc,
                    *threshold,
                    *active_high,
                    *ron,
                    *roff,
                    *vs,
                );
                stamp_conductance(&mut a, *na, *nb, g);
                let kc = vab * dg;
                if let Some(c) = layout.node(*ctrl) {
                    if let Some(i) = layout.node(*na) {
                        a.add(i, c, kc);
                    }
                    if let Some(j) = layout.node(*nb) {
                        a.add(j, c, -kc);
                    }
                }
                let ieq = -kc * vc;
                if let Some(i) = layout.node(*na) {
                    z[i] -= ieq;
                }
                if let Some(j) = layout.node(*nb) {
                    z[j] += ieq;
                }
            }
            Element::Opamp {
                inp,
                inn,
                out,
                model,
            } => {
                let k = layout.branch_of_element(ei);
                if let Some(o) = layout.node(*out) {
                    a.add(o, k, 1.0);
                }
                let vd = layout.voltage(x, *inp) - layout.voltage(x, *inn);
                let (sat0, dsat) = model.target_and_derivative(vd);
                match ctx {
                    StepContext::Dc => {
                        if let Some(o) = layout.node(*out) {
                            a.add(k, o, 1.0);
                        }
                        if let Some(i) = layout.node(*inp) {
                            a.add(k, i, -dsat);
                        }
                        if let Some(j) = layout.node(*inn) {
                            a.add(k, j, dsat);
                        }
                        z[k] = sat0 - dsat * vd;
                    }
                    StepContext::Transient { h, prev, .. } => {
                        let tau = model.pole_tau();
                        let alpha = h / tau;
                        let vout_prev = layout.voltage(prev, *out);
                        if let Some(o) = layout.node(*out) {
                            a.add(k, o, 1.0 + alpha);
                        }
                        if let Some(i) = layout.node(*inp) {
                            a.add(k, i, -alpha * dsat);
                        }
                        if let Some(j) = layout.node(*inn) {
                            a.add(k, j, alpha * dsat);
                        }
                        z[k] = vout_prev + alpha * (sat0 - dsat * vd);
                    }
                }
            }
        }
    }
    a.solve_system(&z)
}

/// The original Newton–Raphson loop: a fresh matrix and a full pivoted
/// factorization per iteration.
fn solve_point(
    netlist: &Netlist,
    layout: &MnaLayout,
    initial: &[f64],
    t: f64,
    ctx: StepContext<'_>,
) -> Result<Vec<f64>, SpiceError> {
    let n = layout.n_unknowns;
    let mut x = initial.to_vec();
    let mut last_delta = f64::INFINITY;

    for iteration in 1..=MAX_NEWTON {
        let x_new = if n > SPARSE_THRESHOLD {
            assemble_and_solve(LegacySparse::zeros(n), netlist, layout, &x, t, ctx)?
        } else {
            assemble_and_solve(LegacyDense::zeros(n), netlist, layout, &x, t, ctx)?
        };
        let mut delta: f64 = 0.0;
        for i in 0..n {
            let mut dx = x_new[i] - x[i];
            if i < layout.node_unknowns() {
                dx = dx.clamp(-DAMP_LIMIT, DAMP_LIMIT);
                delta = delta.max(dx.abs());
            }
            x[i] += dx;
        }
        last_delta = delta;
        if delta < TOL_ABS {
            return Ok(x);
        }
        if !delta.is_finite() {
            return Err(SpiceError::NewtonDiverged {
                time: t,
                iterations: iteration,
                residual: delta,
            });
        }
    }
    Err(SpiceError::NewtonDiverged {
        time: t,
        iterations: MAX_NEWTON,
        residual: last_delta,
    })
}

/// The original DC operating-point analysis.
///
/// # Errors
///
/// Propagates solver failures exactly as the pre-optimization code did.
pub fn solve_dc(netlist: &Netlist) -> Result<Vec<f64>, SpiceError> {
    let layout = MnaLayout::build(netlist);
    let initial = vec![0.0; layout.n_unknowns];
    let x = solve_point(netlist, &layout, &initial, 0.0, StepContext::Dc)?;
    let mut voltages = vec![0.0; netlist.node_count()];
    voltages[1..].copy_from_slice(&x[..netlist.node_count() - 1]);
    Ok(voltages)
}

fn layout_voltage(x: &[f64], id: NodeId) -> f64 {
    if id.is_ground() {
        0.0
    } else {
        x[id.index() - 1]
    }
}

/// The original fixed-step transient driver, repackaged into the current
/// [`TransientResult`] so traces compare index-for-index with the
/// optimized core.
///
/// # Errors
///
/// Returns [`SpiceError::InvalidAnalysis`] for a degenerate spec, or
/// propagates solver errors from individual steps.
pub fn run_transient(
    netlist: &Netlist,
    spec: &TransientSpec,
) -> Result<TransientResult, SpiceError> {
    if spec.step <= 0.0 || spec.stop <= 0.0 || spec.step > spec.stop {
        return Err(SpiceError::InvalidAnalysis {
            reason: format!("bad transient spec: stop {} step {}", spec.stop, spec.step),
        });
    }
    let layout = MnaLayout::build(netlist);
    let mut x = if spec.start_from_dc {
        let dc = solve_dc(netlist)?;
        let mut x0 = vec![0.0; layout.n_unknowns];
        for (node, v) in dc.iter().enumerate().skip(1) {
            x0[node - 1] = *v;
        }
        x0
    } else {
        vec![0.0; layout.n_unknowns]
    };

    let steps = (spec.stop / spec.step).round() as usize;
    let node_count = netlist.node_count();
    let n_currents = layout.n_unknowns - (node_count - 1);
    let mut times = Vec::with_capacity(steps + 1);
    let mut voltages = Vec::with_capacity((steps + 1) * node_count);
    let mut currents = Vec::with_capacity((steps + 1) * n_currents);

    let record = |x: &[f64], voltages: &mut Vec<f64>, currents: &mut Vec<f64>| {
        voltages.push(0.0); // ground
        voltages.extend_from_slice(&x[..node_count - 1]);
        currents.extend_from_slice(&x[node_count - 1..]);
    };

    times.push(0.0);
    record(&x, &mut voltages, &mut currents);

    let mut prev = x.clone();
    let trapezoidal = spec.integration == Integration::Trapezoidal;
    let mut cap_i = vec![0.0f64; netlist.element_count()];
    for s in 1..=steps {
        let t = s as f64 * spec.step;
        let use_trap = trapezoidal && s > 1;
        let ctx = StepContext::Transient {
            h: spec.step,
            prev: &prev,
            cap_currents: use_trap.then_some(&cap_i[..]),
        };
        x = solve_point(netlist, &layout, &x, t, ctx)?;
        if trapezoidal {
            for (ei, e) in netlist.elements().iter().enumerate() {
                if let Element::Capacitor { a, b, farads } = e {
                    let v_new = layout_voltage(&x, *a) - layout_voltage(&x, *b);
                    let v_old = layout_voltage(&prev, *a) - layout_voltage(&prev, *b);
                    cap_i[ei] = if use_trap {
                        2.0 * farads / spec.step * (v_new - v_old) - cap_i[ei]
                    } else {
                        farads / spec.step * (v_new - v_old)
                    };
                }
            }
        }
        times.push(t);
        record(&x, &mut voltages, &mut currents);
        prev.copy_from_slice(&x);
    }

    Ok(TransientResult::from_parts(
        times,
        node_count,
        n_currents,
        voltages,
        currents,
        layout.branch_indices(),
        crate::stats::SolveStats::default(),
    ))
}
