//! Backward-Euler transient analysis.

use std::sync::Arc;

use crate::error::SpiceError;
use crate::mna::{MnaSystem, StepContext};
use crate::netlist::{ElementId, Netlist, NodeId};
use crate::stats::SolveStats;
use crate::waveform::Trace;

/// Numerical integration method for the transient.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Integration {
    /// Backward Euler: L-stable, first order, slightly lossy (numerical
    /// damping). The default.
    #[default]
    BackwardEuler,
    /// Trapezoidal rule: A-stable, second order — more accurate on the same
    /// step, with the classic risk of step-to-step ringing on
    /// discontinuities.
    Trapezoidal,
}

/// Specification of a transient run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TransientSpec {
    /// Stop time, s.
    pub stop: f64,
    /// Fixed step size, s.
    pub step: f64,
    /// Start from the DC operating point (`true`, default) or from all-zero
    /// initial conditions (`false` — the paper measures from "the rising
    /// edge of the input", i.e. a cold start).
    pub start_from_dc: bool,
    /// Capacitor integration method (op-amp poles always use backward
    /// Euler; their dynamics are far faster than the RC nets of interest).
    pub integration: Integration,
}

impl TransientSpec {
    /// A run from 0 to `stop` with fixed `step`, starting from zero initial
    /// conditions.
    ///
    /// # Panics
    ///
    /// Panics if `stop` or `step` are not positive.
    pub fn new(stop: f64, step: f64) -> Self {
        assert!(stop > 0.0 && stop.is_finite(), "stop must be positive");
        assert!(step > 0.0 && step.is_finite(), "step must be positive");
        TransientSpec {
            stop,
            step,
            start_from_dc: false,
            integration: Integration::BackwardEuler,
        }
    }

    /// Starts the run from the DC operating point instead of zero state.
    #[must_use]
    pub fn from_dc(mut self) -> Self {
        self.start_from_dc = true;
        self
    }

    /// Selects trapezoidal capacitor integration.
    #[must_use]
    pub fn trapezoidal(mut self) -> Self {
        self.integration = Integration::Trapezoidal;
        self
    }
}

/// Result of a transient run: all node voltages (and source/op-amp branch
/// currents) at every timestep.
///
/// Samples are stored in flat row-major buffers (`step`-major) and the time
/// axis is reference-counted, so probing traces allocates only the probed
/// values — never another copy of the time axis or a per-step `Vec`.
#[derive(Debug, Clone)]
pub struct TransientResult {
    times: Arc<[f64]>,
    /// Nodes per step, including ground at index 0: entry
    /// `step * n_nodes + node` of `voltages`.
    n_nodes: usize,
    voltages: Vec<f64>,
    /// Branch currents per step: entry `step * n_currents + k` of
    /// `currents`.
    n_currents: usize,
    currents: Vec<f64>,
    /// Branch-current index per element (usize::MAX if none).
    branch_of_element: Vec<usize>,
    /// Solver observability counters for the whole run.
    stats: SolveStats,
}

impl TransientResult {
    pub(crate) fn from_parts(
        times: Vec<f64>,
        n_nodes: usize,
        n_currents: usize,
        voltages: Vec<f64>,
        currents: Vec<f64>,
        branch_of_element: Vec<usize>,
        stats: SolveStats,
    ) -> Self {
        debug_assert_eq!(voltages.len(), times.len() * n_nodes);
        debug_assert_eq!(currents.len(), times.len() * n_currents);
        TransientResult {
            times: times.into(),
            n_nodes,
            voltages,
            n_currents,
            currents,
            branch_of_element,
            stats,
        }
    }

    /// Sample times.
    pub fn times(&self) -> &[f64] {
        &self.times
    }

    /// Number of timesteps recorded.
    pub fn len(&self) -> usize {
        self.times.len()
    }

    /// `true` if no steps were recorded.
    pub fn is_empty(&self) -> bool {
        self.times.is_empty()
    }

    /// Solver counters and per-phase timings for the run.
    pub fn stats(&self) -> &SolveStats {
        &self.stats
    }

    /// Nodes per recorded snapshot (ground included at index 0).
    pub fn node_count(&self) -> usize {
        self.n_nodes
    }

    /// The whole voltage record as one step-major slice: entry
    /// `step * node_count() + node`. Useful for whole-run comparisons
    /// (golden tests, benches) without per-node probing.
    pub fn voltages_flat(&self) -> &[f64] {
        &self.voltages
    }

    /// The whole branch-current record as one step-major slice.
    pub fn currents_flat(&self) -> &[f64] {
        &self.currents
    }

    /// The trace of one node's voltage over time (time axis shared, not
    /// copied).
    pub fn voltage(&self, node: NodeId) -> Trace {
        let values = self
            .voltages
            .chunks_exact(self.n_nodes)
            .map(|snapshot| snapshot[node.index()])
            .collect();
        Trace::shared(Arc::clone(&self.times), values)
    }

    /// Voltage of `node` at step `i`.
    pub fn voltage_at(&self, node: NodeId, i: usize) -> f64 {
        self.voltages[i * self.n_nodes + node.index()]
    }

    /// The branch-current trace of a voltage source or op-amp output
    /// (positive into the `p`/output terminal per MNA convention).
    ///
    /// Returns `None` if the element carries no branch current (resistors,
    /// capacitors, diodes, switches).
    pub fn branch_current(&self, element: ElementId) -> Option<Trace> {
        let k = *self.branch_of_element.get(element.index())?;
        if k == usize::MAX {
            return None;
        }
        let values = self
            .currents
            .chunks_exact(self.n_currents)
            .map(|snapshot| snapshot[k])
            .collect();
        Some(Trace::shared(Arc::clone(&self.times), values))
    }

    /// Energy delivered by a voltage source over the run, J: the trapezoidal
    /// integral of `v(t)·(−i(t))` where `i` is the MNA branch current
    /// (which flows *into* the positive terminal, so a sourcing supply has
    /// negative `i`).
    ///
    /// Returns `None` for elements without a branch current.
    pub fn source_energy(&self, element: ElementId, p: NodeId, n: NodeId) -> Option<f64> {
        let current = self.branch_current(element)?;
        let mut energy = 0.0;
        for i in 1..self.times.len() {
            let dt = self.times[i] - self.times[i - 1];
            let power = |step: usize| {
                let base = step * self.n_nodes;
                let v = self.voltages[base + p.index()] - self.voltages[base + n.index()];
                -v * current.values()[step]
            };
            energy += 0.5 * (power(i) + power(i - 1)) * dt;
        }
        Some(energy)
    }
}

fn layout_voltage(x: &[f64], id: NodeId) -> f64 {
    if id.is_ground() {
        0.0
    } else {
        x[id.index() - 1]
    }
}

/// Runs a fixed-step backward-Euler transient analysis through the
/// structure-caching solver core: one stamp plan and one LU workspace serve
/// every Newton iteration of every timestep.
///
/// # Errors
///
/// Returns [`SpiceError::InvalidAnalysis`] for a degenerate spec, or
/// propagates solver errors from individual steps.
pub fn run_transient(
    netlist: &Netlist,
    spec: &TransientSpec,
) -> Result<TransientResult, SpiceError> {
    if spec.step <= 0.0 || spec.stop <= 0.0 || spec.step > spec.stop {
        return Err(SpiceError::InvalidAnalysis {
            reason: format!("bad transient spec: stop {} step {}", spec.stop, spec.step),
        });
    }
    let mut sys = MnaSystem::new(netlist);
    let n = sys.layout.n_unknowns;
    let node_count = netlist.node_count();
    let mut x = vec![0.0; n];
    if spec.start_from_dc {
        // Solve the operating point with the same workspace, then zero the
        // branch currents (they re-converge in the first step) — matching
        // the cold-start convention of the original driver.
        sys.solve_point(netlist, &mut x, 0.0, StepContext::Dc)?;
        x[node_count - 1..].fill(0.0);
    }

    let steps = (spec.stop / spec.step).round() as usize;
    let n_currents = n - (node_count - 1);
    let mut times = Vec::with_capacity(steps + 1);
    let mut voltages = Vec::with_capacity((steps + 1) * node_count);
    let mut currents = Vec::with_capacity((steps + 1) * n_currents);

    let record = |x: &[f64], voltages: &mut Vec<f64>, currents: &mut Vec<f64>| {
        voltages.push(0.0); // ground
        voltages.extend_from_slice(&x[..node_count - 1]);
        currents.extend_from_slice(&x[node_count - 1..]);
    };

    times.push(0.0);
    record(&x, &mut voltages, &mut currents);

    let mut prev = x.clone();
    // Per-element capacitor branch currents (trapezoidal state).
    let trapezoidal = spec.integration == Integration::Trapezoidal;
    let mut cap_i = vec![0.0f64; netlist.element_count()];
    for s in 1..=steps {
        let t = s as f64 * spec.step;
        // Trapezoidal runs start with one backward-Euler step so the source
        // discontinuity at t = 0 doesn't excite the method's ringing mode.
        let use_trap = trapezoidal && s > 1;
        let ctx = StepContext::Transient {
            h: spec.step,
            prev: &prev,
            cap_currents: use_trap.then_some(&cap_i[..]),
        };
        sys.solve_point(netlist, &mut x, t, ctx)?;
        if trapezoidal {
            for (ei, e) in netlist.elements().iter().enumerate() {
                if let crate::elements::Element::Capacitor { a, b, farads } = e {
                    let v_new = layout_voltage(&x, *a) - layout_voltage(&x, *b);
                    let v_old = layout_voltage(&prev, *a) - layout_voltage(&prev, *b);
                    cap_i[ei] = if use_trap {
                        // i_n = (2C/h)·(v_n − v_prev) − i_prev.
                        2.0 * farads / spec.step * (v_new - v_old) - cap_i[ei]
                    } else {
                        // BE bootstrap: i_n = (C/h)·(v_n − v_prev).
                        farads / spec.step * (v_new - v_old)
                    };
                }
            }
        }
        times.push(t);
        record(&x, &mut voltages, &mut currents);
        prev.copy_from_slice(&x);
    }

    Ok(TransientResult::from_parts(
        times,
        node_count,
        n_currents,
        voltages,
        currents,
        sys.layout.branch_indices(),
        sys.stats,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::elements::OpampModel;
    use crate::waveform::Waveform;

    #[test]
    fn rc_step_response_matches_analytic() {
        // R = 1 kΩ, C = 1 nF -> tau = 1 µs; v(t) = 1 - exp(-t/tau).
        let mut net = Netlist::new();
        let inp = net.node("in");
        let out = net.node("out");
        net.voltage_source(inp, Netlist::GROUND, Waveform::step(1.0));
        net.resistor(inp, out, 1.0e3);
        net.capacitor(out, Netlist::GROUND, 1.0e-9);
        let res = net.transient(&TransientSpec::new(5.0e-6, 2.0e-9)).unwrap();
        let tr = res.voltage(out);
        for (i, &t) in tr.times().iter().enumerate() {
            if t < 20.0e-9 {
                continue; // skip the source edge
            }
            let expected = 1.0 - (-(t) / 1.0e-6).exp();
            let got = tr.values()[i];
            assert!(
                (got - expected).abs() < 0.01,
                "t = {t:.2e}: got {got}, expected {expected}"
            );
        }
    }

    #[test]
    fn rc_convergence_time_is_ln1000_tau() {
        let mut net = Netlist::new();
        let inp = net.node("in");
        let out = net.node("out");
        net.voltage_source(inp, Netlist::GROUND, Waveform::step(1.0));
        net.resistor(inp, out, 1.0e3);
        net.capacitor(out, Netlist::GROUND, 1.0e-9);
        let res = net.transient(&TransientSpec::new(15.0e-6, 5.0e-9)).unwrap();
        let tc = res.voltage(out).convergence_time(0.001).unwrap();
        let expected = 1.0e-6 * 1000.0_f64.ln(); // 6.9 µs
        assert!(
            (tc - expected).abs() / expected < 0.05,
            "convergence {tc:.3e} vs {expected:.3e}"
        );
    }

    #[test]
    fn two_stage_rc_slower_than_one() {
        // Convergence time must grow with the RC chain length — the physics
        // behind the paper's "convergence time linear in sequence length".
        let build_chain = |stages: usize| {
            let mut net = Netlist::new();
            let inp = net.node("in");
            net.voltage_source(inp, Netlist::GROUND, Waveform::step(1.0));
            let mut prev = inp;
            let mut last = inp;
            for s in 0..stages {
                let n = net.node(&format!("s{s}"));
                net.resistor(prev, n, 1.0e3);
                net.capacitor(n, Netlist::GROUND, 0.2e-9);
                prev = n;
                last = n;
            }
            (net, last)
        };
        let (net1, out1) = build_chain(1);
        let (net3, out3) = build_chain(3);
        let t1 = net1
            .transient(&TransientSpec::new(10.0e-6, 5.0e-9))
            .unwrap()
            .voltage(out1)
            .convergence_time(0.001)
            .unwrap();
        let t3 = net3
            .transient(&TransientSpec::new(10.0e-6, 5.0e-9))
            .unwrap()
            .voltage(out3)
            .convergence_time(0.001)
            .unwrap();
        assert!(t3 > t1 * 1.5, "1-stage {t1:.2e}, 3-stage {t3:.2e}");
    }

    #[test]
    fn opamp_buffer_settles_to_input() {
        let mut net = Netlist::new();
        let inp = net.node("in");
        net.voltage_source(inp, Netlist::GROUND, Waveform::step(0.4));
        let out = net.buffer(inp, OpampModel::table1());
        net.capacitor(out, Netlist::GROUND, 20.0e-15);
        let res = net.transient(&TransientSpec::new(2.0e-9, 1.0e-12)).unwrap();
        let tr = res.voltage(out);
        assert!(
            (tr.last() - 0.4).abs() < 2e-3,
            "buffer settles to {}",
            tr.last()
        );
        // And it takes nonzero time to get there.
        let tc = tr.convergence_time(0.001).unwrap();
        assert!(tc > 1.0e-12);
    }

    #[test]
    fn diode_peak_detector_holds_maximum() {
        // Source pulses to 0.5 V then returns to 0; the diode charges the
        // hold capacitor and blocks the discharge.
        let mut net = Netlist::new();
        let src = net.node("src");
        let hold = net.node("hold");
        net.voltage_source(
            src,
            Netlist::GROUND,
            Waveform::Pwl(vec![
                (0.0, 0.0),
                (1.0e-9, 0.5),
                (5.0e-9, 0.5),
                (6.0e-9, 0.0),
            ]),
        );
        net.diode(src, hold);
        net.capacitor(hold, Netlist::GROUND, 1.0e-12);
        let res = net
            .transient(&TransientSpec::new(20.0e-9, 10.0e-12))
            .unwrap();
        let tr = res.voltage(hold);
        assert!(
            (tr.last() - 0.5).abs() < 0.02,
            "peak detector held {}",
            tr.last()
        );
    }

    #[test]
    fn trapezoidal_is_more_accurate_than_backward_euler() {
        // RC step response at a coarse step: trapezoidal's second-order
        // accuracy must beat backward Euler's at the same step size.
        let build = || {
            let mut net = Netlist::new();
            let inp = net.node("in");
            let out = net.node("out");
            net.voltage_source(inp, Netlist::GROUND, Waveform::step(1.0));
            net.resistor(inp, out, 1.0e3);
            net.capacitor(out, Netlist::GROUND, 1.0e-9); // tau = 1 us
            (net, out)
        };
        let coarse = 0.1e-6; // tau / 10
        let error_at_tau = |res: &TransientResult, out: NodeId| {
            let got = res.voltage(out).at_time(1.0e-6);
            let expected = 1.0 - (-1.0f64).exp();
            (got - expected).abs()
        };
        let (net, out) = build();
        let be = net.transient(&TransientSpec::new(3.0e-6, coarse)).unwrap();
        let (net, out2) = build();
        let trap = net
            .transient(&TransientSpec::new(3.0e-6, coarse).trapezoidal())
            .unwrap();
        let e_be = error_at_tau(&be, out);
        let e_trap = error_at_tau(&trap, out2);
        assert!(
            e_trap < e_be / 3.0,
            "trapezoidal {e_trap:.2e} should beat backward Euler {e_be:.2e}"
        );
    }

    #[test]
    fn both_integrators_agree_at_fine_steps() {
        let build = || {
            let mut net = Netlist::new();
            let inp = net.node("in");
            let out = net.node("out");
            net.voltage_source(inp, Netlist::GROUND, Waveform::step(0.5));
            net.resistor(inp, out, 2.0e3);
            net.capacitor(out, Netlist::GROUND, 0.5e-9);
            (net, out)
        };
        let (net, out) = build();
        let be = net.transient(&TransientSpec::new(5.0e-6, 2.0e-9)).unwrap();
        let (net, out2) = build();
        let trap = net
            .transient(&TransientSpec::new(5.0e-6, 2.0e-9).trapezoidal())
            .unwrap();
        for &t in &[0.5e-6, 1.0e-6, 3.0e-6] {
            let a = be.voltage(out).at_time(t);
            let b = trap.voltage(out2).at_time(t);
            assert!((a - b).abs() < 2e-3, "t {t:.1e}: BE {a} vs trap {b}");
        }
    }

    #[test]
    fn branch_current_of_resistive_load_follows_ohms_law() {
        let mut net = Netlist::new();
        let inp = net.node("in");
        let src = net.voltage_source(inp, Netlist::GROUND, Waveform::Dc(1.0));
        let r = net.resistor(inp, Netlist::GROUND, 1.0e3);
        let res = net.transient(&TransientSpec::new(10.0e-9, 1.0e-9)).unwrap();
        // MNA branch current flows into the + terminal: the source supplies
        // 1 mA, so its branch current is -1 mA.
        let i = res.branch_current(src).expect("source has branch current");
        assert!((i.last() + 1.0e-3).abs() < 1e-9, "i = {}", i.last());
        // Resistors carry no branch-current unknown.
        assert!(res.branch_current(r).is_none());
    }

    #[test]
    fn source_energy_matches_dissipation() {
        // DC source into a resistor for 100 ns: E = V^2/R * t = 0.1 nJ.
        let mut net = Netlist::new();
        let inp = net.node("in");
        let src = net.voltage_source(inp, Netlist::GROUND, Waveform::Dc(1.0));
        net.resistor(inp, Netlist::GROUND, 1.0e3);
        let res = net
            .transient(&TransientSpec::new(100.0e-9, 1.0e-9))
            .unwrap();
        let e = res
            .source_energy(src, inp, Netlist::GROUND)
            .expect("source energy");
        let expected = 1.0 / 1.0e3 * 100.0e-9;
        assert!(
            (e - expected).abs() / expected < 0.02,
            "energy {e:.3e} vs {expected:.3e}"
        );
    }

    #[test]
    fn rc_charge_energy_split() {
        // Charging a capacitor through a resistor: the source delivers
        // C*V^2, half stored, half dissipated. Run ~12 tau.
        let mut net = Netlist::new();
        let inp = net.node("in");
        let out = net.node("out");
        let src = net.voltage_source(inp, Netlist::GROUND, Waveform::step(1.0));
        net.resistor(inp, out, 1.0e3);
        net.capacitor(out, Netlist::GROUND, 1.0e-12); // tau = 1 ns
        let res = net
            .transient(&TransientSpec::new(12.0e-9, 5.0e-12))
            .unwrap();
        let e = res
            .source_energy(src, inp, Netlist::GROUND)
            .expect("source energy");
        let expected = 1.0e-12; // C*V^2
        assert!(
            (e - expected).abs() / expected < 0.05,
            "energy {e:.3e} vs {expected:.3e}"
        );
    }

    #[test]
    fn invalid_spec_rejected() {
        let mut net = Netlist::new();
        let a = net.node("a");
        net.resistor(a, Netlist::GROUND, 1.0);
        net.voltage_source(a, Netlist::GROUND, Waveform::Dc(1.0));
        assert!(net
            .transient(&TransientSpec {
                stop: 1.0e-9,
                step: 2.0e-9,
                start_from_dc: false,
                integration: Integration::BackwardEuler,
            })
            .is_err());
    }

    #[test]
    fn start_from_dc_skips_startup_transient() {
        let mut net = Netlist::new();
        let inp = net.node("in");
        let out = net.node("out");
        net.voltage_source(inp, Netlist::GROUND, Waveform::Dc(1.0));
        net.resistor(inp, out, 1.0e3);
        net.capacitor(out, Netlist::GROUND, 1.0e-9);
        let res = net
            .transient(&TransientSpec::new(1.0e-6, 10.0e-9).from_dc())
            .unwrap();
        // Already settled at t = 0.
        assert!((res.voltage_at(out, 0) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn stats_cover_every_timestep() {
        let mut net = Netlist::new();
        let inp = net.node("in");
        let out = net.node("out");
        net.voltage_source(inp, Netlist::GROUND, Waveform::step(1.0));
        net.resistor(inp, out, 1.0e3);
        net.capacitor(out, Netlist::GROUND, 1.0e-9);
        let res = net.transient(&TransientSpec::new(1.0e-6, 10.0e-9)).unwrap();
        let stats = res.stats();
        assert_eq!(stats.solve_points, 100);
        assert!(stats.newton_iterations >= stats.solve_points);
        // Linear RC at a fixed step: the transient matrix is identical at
        // every timestep, so factor work collapses to a single full
        // factorization plus reuses.
        assert_eq!(stats.full_factorizations, 1);
        assert!(stats.factor_reuses > 0);
        assert_eq!(stats.n_unknowns, 3);
        assert!(stats.base_nnz > 0);
    }
}
