//! Dense linear solver: LU factorization with partial pivoting.
//!
//! MNA matrices for single-PE circuits are small (tens of unknowns), where a
//! dense solve beats sparse bookkeeping. Larger array-level netlists use
//! [`crate::sparse`] / [`crate::lu`].
//!
//! The workhorse is [`DenseLu`], a preallocated workspace reused across
//! Newton iterations and timesteps: factors, permutation and substitution
//! scratch live in place, rows are swapped physically during pivoting so
//! the elimination inner loop runs over contiguous memory with no
//! permutation indirection, and the right-hand side is solved in place (no
//! `b.to_vec()`).

use crate::error::SpiceError;

/// A dense row-major square matrix (assembly/test convenience type).
#[derive(Debug, Clone, PartialEq)]
pub struct DenseMatrix {
    n: usize,
    data: Vec<f64>,
}

impl DenseMatrix {
    /// An `n x n` zero matrix.
    pub fn zeros(n: usize) -> Self {
        DenseMatrix {
            n,
            data: vec![0.0; n * n],
        }
    }

    /// The dimension.
    pub fn dim(&self) -> usize {
        self.n
    }

    /// Resets all entries to zero (for re-stamping without reallocation).
    pub fn clear(&mut self) {
        self.data.fill(0.0);
    }

    /// Adds `v` to entry `(r, c)`.
    #[inline]
    pub fn add(&mut self, r: usize, c: usize, v: f64) {
        debug_assert!(r < self.n && c < self.n);
        self.data[r * self.n + c] += v;
    }

    /// Entry `(r, c)`.
    #[inline]
    pub fn at(&self, r: usize, c: usize) -> f64 {
        self.data[r * self.n + c]
    }

    /// Solves `A·x = b` through a fresh [`DenseLu`] workspace. The matrix
    /// is only borrowed — no defensive copies needed by callers that reuse
    /// it afterwards.
    ///
    /// # Errors
    ///
    /// Returns [`SpiceError::SingularMatrix`] if a pivot collapses below
    /// `1e-300`.
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>, SpiceError> {
        assert_eq!(b.len(), self.n, "rhs length must match dimension");
        let mut lu = DenseLu::new(self.n);
        lu.factor_from_slice(&self.data)?;
        let mut x = b.to_vec();
        let mut y = vec![0.0; self.n];
        lu.solve_in_place(&mut x, &mut y);
        Ok(x)
    }
}

/// A reusable dense LU workspace: preallocated factor storage and pivot
/// bookkeeping, refilled and refactored in place every solve.
#[derive(Debug, Clone)]
pub(crate) struct DenseLu {
    n: usize,
    /// Row-major factor storage; rows are *physically* permuted during
    /// pivoting so elimination and substitution never indirect through a
    /// permutation in their inner loops.
    factors: Vec<f64>,
    /// `where_from[k]` = original row now stored at physical row k.
    where_from: Vec<u32>,
}

impl DenseLu {
    pub(crate) fn new(n: usize) -> Self {
        DenseLu {
            n,
            factors: vec![0.0; n * n],
            where_from: (0..n as u32).collect(),
        }
    }

    /// Zeroes the factor storage and scatters `values` at the positions
    /// `dense_pos` (precomputed `r·n + c` per CSR slot), then factors.
    ///
    /// # Errors
    ///
    /// Returns [`SpiceError::SingularMatrix`] on pivot collapse.
    pub(crate) fn factor_scattered(
        &mut self,
        dense_pos: &[u32],
        values: &[f64],
    ) -> Result<(), SpiceError> {
        self.factors.fill(0.0);
        for (i, &p) in dense_pos.iter().enumerate() {
            self.factors[p as usize] = values[i];
        }
        self.factor_inner()
    }

    /// Copies a full row-major matrix into the workspace and factors it.
    ///
    /// # Errors
    ///
    /// Returns [`SpiceError::SingularMatrix`] on pivot collapse.
    pub(crate) fn factor_from_slice(&mut self, data: &[f64]) -> Result<(), SpiceError> {
        debug_assert_eq!(data.len(), self.n * self.n);
        self.factors.copy_from_slice(data);
        self.factor_inner()
    }

    /// In-place LU with partial pivoting over the already-loaded storage.
    fn factor_inner(&mut self) -> Result<(), SpiceError> {
        let n = self.n;
        for (k, w) in self.where_from.iter_mut().enumerate() {
            *w = k as u32;
        }
        for k in 0..n {
            // Partial pivot: first strictly-larger magnitude wins (same
            // tie-break as the original consuming solver).
            let mut max_row = k;
            let mut max_val = self.factors[k * n + k].abs();
            for r in (k + 1)..n {
                let v = self.factors[r * n + k].abs();
                if v > max_val {
                    max_val = v;
                    max_row = r;
                }
            }
            if max_val < 1.0e-300 {
                return Err(SpiceError::SingularMatrix { pivot: k });
            }
            if max_row != k {
                let (a, b) = self.factors.split_at_mut(max_row * n);
                a[k * n..k * n + n].swap_with_slice(&mut b[..n]);
                self.where_from.swap(k, max_row);
            }
            let pivot = self.factors[k * n + k];
            let (pivot_rows, rest) = self.factors.split_at_mut((k + 1) * n);
            let pivot_row = &pivot_rows[k * n..];
            for chunk in rest.chunks_exact_mut(n) {
                let factor = chunk[k] / pivot;
                if factor == 0.0 {
                    continue;
                }
                chunk[k] = factor;
                for c in (k + 1)..n {
                    chunk[c] -= factor * pivot_row[c];
                }
            }
        }
        Ok(())
    }

    /// Solves with the cached factors: on return `rhs` holds `x`; `y` is an
    /// n-sized scratch buffer. Allocation-free.
    pub(crate) fn solve_in_place(&self, rhs: &mut [f64], y: &mut [f64]) {
        let n = self.n;
        debug_assert_eq!(rhs.len(), n);
        debug_assert_eq!(y.len(), n);
        // Forward substitution (unit-diagonal L below the diagonal).
        for k in 0..n {
            let row = &self.factors[k * n..k * n + k];
            let mut sum = rhs[self.where_from[k] as usize];
            for (c, &l) in row.iter().enumerate() {
                sum -= l * y[c];
            }
            y[k] = sum;
        }
        // Back substitution.
        for k in (0..n).rev() {
            let row = &self.factors[k * n..(k + 1) * n];
            let mut sum = y[k];
            for c in (k + 1)..n {
                sum -= row[c] * rhs[c];
            }
            rhs[k] = sum / row[k];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn solves_identity() {
        let mut m = DenseMatrix::zeros(3);
        for i in 0..3 {
            m.add(i, i, 1.0);
        }
        let x = m.solve(&[1.0, 2.0, 3.0]).unwrap();
        assert_eq!(x, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn solves_general_system() {
        // [2 1; 1 3] x = [5; 10] -> x = [1; 3].
        let mut m = DenseMatrix::zeros(2);
        m.add(0, 0, 2.0);
        m.add(0, 1, 1.0);
        m.add(1, 0, 1.0);
        m.add(1, 1, 3.0);
        let x = m.solve(&[5.0, 10.0]).unwrap();
        assert!((x[0] - 1.0).abs() < 1e-12);
        assert!((x[1] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn pivoting_handles_zero_diagonal() {
        // [0 1; 1 0] x = [2; 3] -> x = [3; 2].
        let mut m = DenseMatrix::zeros(2);
        m.add(0, 1, 1.0);
        m.add(1, 0, 1.0);
        let x = m.solve(&[2.0, 3.0]).unwrap();
        assert!((x[0] - 3.0).abs() < 1e-12);
        assert!((x[1] - 2.0).abs() < 1e-12);
    }

    #[test]
    fn singular_matrix_detected() {
        let mut m = DenseMatrix::zeros(2);
        m.add(0, 0, 1.0);
        m.add(0, 1, 2.0);
        m.add(1, 0, 2.0);
        m.add(1, 1, 4.0);
        assert!(matches!(
            m.solve(&[1.0, 2.0]),
            Err(SpiceError::SingularMatrix { .. })
        ));
    }

    #[test]
    fn wide_dynamic_range() {
        // Conductance stamps span ~1e-5 .. 10 in the accelerator circuits;
        // the solver must stay accurate across that spread.
        let mut m = DenseMatrix::zeros(2);
        m.add(0, 0, 1.0e-5);
        m.add(1, 1, 10.0);
        let x = m.solve(&[1.0e-5, 10.0]).unwrap();
        assert!((x[0] - 1.0).abs() < 1e-9);
        assert!((x[1] - 1.0).abs() < 1e-9);
    }

    #[test]
    fn random_roundtrip() {
        // Deterministic pseudo-random matrix; verify A*x = b residual. The
        // borrow-based solve leaves the matrix intact — no defensive clone.
        let n = 20;
        let mut seed = 12345u64;
        let mut rand = || {
            seed = seed
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((seed >> 33) as f64 / (1u64 << 31) as f64) - 1.0
        };
        let mut m = DenseMatrix::zeros(n);
        for r in 0..n {
            for c in 0..n {
                m.add(r, c, rand());
            }
            m.add(r, r, 5.0); // diagonal dominance
        }
        let b: Vec<f64> = (0..n).map(|_| rand()).collect();
        let x = m.solve(&b).unwrap();
        for (r, &br) in b.iter().enumerate() {
            let mut sum = 0.0;
            for (c, &xc) in x.iter().enumerate() {
                sum += m.at(r, c) * xc;
            }
            assert!((sum - br).abs() < 1e-9, "row {r} residual");
        }
    }

    #[test]
    fn workspace_reuse_is_stable() {
        // Factor the same workspace twice with different matrices; the
        // second use must not see stale state.
        let mut lu = DenseLu::new(2);
        lu.factor_from_slice(&[0.0, 1.0, 1.0, 0.0]).unwrap();
        let mut x = vec![2.0, 3.0];
        let mut y = vec![0.0; 2];
        lu.solve_in_place(&mut x, &mut y);
        assert_eq!(x, vec![3.0, 2.0]);
        lu.factor_from_slice(&[2.0, 0.0, 0.0, 4.0]).unwrap();
        let mut x = vec![2.0, 4.0];
        lu.solve_in_place(&mut x, &mut y);
        assert_eq!(x, vec![1.0, 1.0]);
    }
}
