//! Dense linear solver: LU factorization with partial pivoting.
//!
//! MNA matrices for single-PE circuits are small (tens of unknowns), where a
//! dense solve beats sparse bookkeeping. Larger array-level netlists use
//! [`crate::sparse`].

use crate::error::SpiceError;

/// A dense row-major square matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct DenseMatrix {
    n: usize,
    data: Vec<f64>,
}

impl DenseMatrix {
    /// An `n x n` zero matrix.
    pub fn zeros(n: usize) -> Self {
        DenseMatrix {
            n,
            data: vec![0.0; n * n],
        }
    }

    /// The dimension.
    pub fn dim(&self) -> usize {
        self.n
    }

    /// Resets all entries to zero (for re-stamping without reallocation).
    pub fn clear(&mut self) {
        self.data.fill(0.0);
    }

    /// Adds `v` to entry `(r, c)`.
    #[inline]
    pub fn add(&mut self, r: usize, c: usize, v: f64) {
        debug_assert!(r < self.n && c < self.n);
        self.data[r * self.n + c] += v;
    }

    /// Entry `(r, c)`.
    #[inline]
    pub fn at(&self, r: usize, c: usize) -> f64 {
        self.data[r * self.n + c]
    }

    /// Solves `A·x = b` in place by LU with partial pivoting; the matrix is
    /// consumed (overwritten by its factors).
    ///
    /// # Errors
    ///
    /// Returns [`SpiceError::SingularMatrix`] if a pivot collapses below
    /// `1e-300`.
    pub fn solve(mut self, b: &[f64]) -> Result<Vec<f64>, SpiceError> {
        assert_eq!(b.len(), self.n, "rhs length must match dimension");
        let n = self.n;
        let mut x = b.to_vec();
        let mut perm: Vec<usize> = (0..n).collect();

        for k in 0..n {
            // Partial pivot.
            let mut max_row = k;
            let mut max_val = self.at(perm[k], k).abs();
            for (r, &pr) in perm.iter().enumerate().skip(k + 1) {
                let v = self.at(pr, k).abs();
                if v > max_val {
                    max_val = v;
                    max_row = r;
                }
            }
            if max_val < 1.0e-300 {
                return Err(SpiceError::SingularMatrix { pivot: k });
            }
            perm.swap(k, max_row);
            let pk = perm[k];
            let pivot = self.at(pk, k);
            for &pr in perm.iter().skip(k + 1) {
                let factor = self.at(pr, k) / pivot;
                if factor == 0.0 {
                    continue;
                }
                self.data[pr * n + k] = factor;
                for c in (k + 1)..n {
                    let sub = factor * self.at(pk, c);
                    self.data[pr * n + c] -= sub;
                }
            }
        }

        // Forward substitution (L has unit diagonal, factors stored below).
        let mut y = vec![0.0; n];
        for k in 0..n {
            let mut sum = x[perm[k]];
            for (c, &yc) in y.iter().enumerate().take(k) {
                sum -= self.at(perm[k], c) * yc;
            }
            y[k] = sum;
        }
        // Back substitution.
        for k in (0..n).rev() {
            let mut sum = y[k];
            for (c, &xc) in x.iter().enumerate().take(n).skip(k + 1) {
                sum -= self.at(perm[k], c) * xc;
            }
            x[k] = sum / self.at(perm[k], k);
        }
        Ok(x)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn solves_identity() {
        let mut m = DenseMatrix::zeros(3);
        for i in 0..3 {
            m.add(i, i, 1.0);
        }
        let x = m.solve(&[1.0, 2.0, 3.0]).unwrap();
        assert_eq!(x, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn solves_general_system() {
        // [2 1; 1 3] x = [5; 10] -> x = [1; 3].
        let mut m = DenseMatrix::zeros(2);
        m.add(0, 0, 2.0);
        m.add(0, 1, 1.0);
        m.add(1, 0, 1.0);
        m.add(1, 1, 3.0);
        let x = m.solve(&[5.0, 10.0]).unwrap();
        assert!((x[0] - 1.0).abs() < 1e-12);
        assert!((x[1] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn pivoting_handles_zero_diagonal() {
        // [0 1; 1 0] x = [2; 3] -> x = [3; 2].
        let mut m = DenseMatrix::zeros(2);
        m.add(0, 1, 1.0);
        m.add(1, 0, 1.0);
        let x = m.solve(&[2.0, 3.0]).unwrap();
        assert!((x[0] - 3.0).abs() < 1e-12);
        assert!((x[1] - 2.0).abs() < 1e-12);
    }

    #[test]
    fn singular_matrix_detected() {
        let mut m = DenseMatrix::zeros(2);
        m.add(0, 0, 1.0);
        m.add(0, 1, 2.0);
        m.add(1, 0, 2.0);
        m.add(1, 1, 4.0);
        assert!(matches!(
            m.solve(&[1.0, 2.0]),
            Err(SpiceError::SingularMatrix { .. })
        ));
    }

    #[test]
    fn wide_dynamic_range() {
        // Conductance stamps span ~1e-5 .. 10 in the accelerator circuits;
        // the solver must stay accurate across that spread.
        let mut m = DenseMatrix::zeros(2);
        m.add(0, 0, 1.0e-5);
        m.add(1, 1, 10.0);
        let x = m.solve(&[1.0e-5, 10.0]).unwrap();
        assert!((x[0] - 1.0).abs() < 1e-9);
        assert!((x[1] - 1.0).abs() < 1e-9);
    }

    #[test]
    fn random_roundtrip() {
        // Deterministic pseudo-random matrix; verify A*x = b residual.
        let n = 20;
        let mut seed = 12345u64;
        let mut rand = || {
            seed = seed
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((seed >> 33) as f64 / (1u64 << 31) as f64) - 1.0
        };
        let mut m = DenseMatrix::zeros(n);
        for r in 0..n {
            for c in 0..n {
                m.add(r, c, rand());
            }
            m.add(r, r, 5.0); // diagonal dominance
        }
        let b: Vec<f64> = (0..n).map(|_| rand()).collect();
        let a = m.clone();
        let x = m.solve(&b).unwrap();
        for (r, &br) in b.iter().enumerate() {
            let mut sum = 0.0;
            for (c, &xc) in x.iter().enumerate() {
                sum += a.at(r, c) * xc;
            }
            assert!((sum - br).abs() < 1e-9, "row {r} residual");
        }
    }
}
