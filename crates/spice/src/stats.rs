//! Solver observability: counters and per-phase wall time accumulated by the
//! structure-caching MNA core and reported through analysis results.

/// Counters describing one analysis run (a DC solve or a full transient).
///
/// A *full factorization* performs pivot search and (for the sparse backend)
/// symbolic fill-in analysis; a *refactorization* replays the cached
/// elimination structure with fresh numeric values; a *factor reuse* skips
/// the numeric phase entirely because the assembled matrix is identical to
/// the one last factored (linear circuits hit this on every Newton iteration
/// after the first). `residual_fallbacks` counts refactorizations whose
/// solution failed the row-wise residual gate and were redone with a full
/// re-pivot.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SolveStats {
    /// Analysis points solved (timesteps plus operating points).
    pub solve_points: u64,
    /// Total Newton–Raphson iterations across all points.
    pub newton_iterations: u64,
    /// Factorizations with pivot search (sparse: plus symbolic analysis).
    pub full_factorizations: u64,
    /// Numeric-only refactorizations on the cached structure.
    pub refactorizations: u64,
    /// Solves that reused the previous factors unchanged.
    pub factor_reuses: u64,
    /// Refactorizations rejected by the residual gate and re-pivoted.
    pub residual_fallbacks: u64,
    /// System dimension (node + branch unknowns).
    pub n_unknowns: usize,
    /// Structural non-zeros of the assembled MNA matrix.
    pub base_nnz: usize,
    /// Non-zeros of the LU factors including fill-in (dense backend: n²).
    pub factor_nnz: usize,
    /// Wall time spent stamping element values, s.
    pub assembly_seconds: f64,
    /// Wall time spent factoring/refactoring, s.
    pub factor_seconds: f64,
    /// Wall time spent in triangular solves and residual checks, s.
    pub solve_seconds: f64,
}

impl SolveStats {
    /// Fill-in ratio of the factors over the assembled matrix (1.0 means no
    /// fill). Zero if nothing was factored yet.
    pub fn fill_ratio(&self) -> f64 {
        if self.base_nnz == 0 {
            0.0
        } else {
            self.factor_nnz as f64 / self.base_nnz as f64
        }
    }

    /// Folds another run's counters into this one (used when an analysis is
    /// composed of sub-analyses, e.g. a DC operating point feeding a
    /// transient).
    pub fn absorb(&mut self, other: &SolveStats) {
        self.solve_points += other.solve_points;
        self.newton_iterations += other.newton_iterations;
        self.full_factorizations += other.full_factorizations;
        self.refactorizations += other.refactorizations;
        self.factor_reuses += other.factor_reuses;
        self.residual_fallbacks += other.residual_fallbacks;
        self.n_unknowns = self.n_unknowns.max(other.n_unknowns);
        self.base_nnz = self.base_nnz.max(other.base_nnz);
        self.factor_nnz = self.factor_nnz.max(other.factor_nnz);
        self.assembly_seconds += other.assembly_seconds;
        self.factor_seconds += other.factor_seconds;
        self.solve_seconds += other.solve_seconds;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fill_ratio_handles_empty() {
        assert_eq!(SolveStats::default().fill_ratio(), 0.0);
        let s = SolveStats {
            base_nnz: 10,
            factor_nnz: 25,
            ..SolveStats::default()
        };
        assert!((s.fill_ratio() - 2.5).abs() < 1e-12);
    }

    #[test]
    fn absorb_sums_counters() {
        let mut a = SolveStats {
            newton_iterations: 3,
            full_factorizations: 1,
            ..SolveStats::default()
        };
        let b = SolveStats {
            newton_iterations: 4,
            refactorizations: 2,
            n_unknowns: 7,
            ..SolveStats::default()
        };
        a.absorb(&b);
        assert_eq!(a.newton_iterations, 7);
        assert_eq!(a.full_factorizations, 1);
        assert_eq!(a.refactorizations, 2);
        assert_eq!(a.n_unknowns, 7);
    }
}
