//! Modified nodal analysis: system assembly and Newton–Raphson iteration.
//!
//! Unknowns are the non-ground node voltages followed by one branch current
//! per voltage source and per op-amp output. Nonlinear devices (diodes,
//! op-amp saturation) are stamped as linearized companion models around the
//! current Newton iterate; integration uses backward-Euler companion models
//! for capacitors and the op-amp pole.
//!
//! The hot path lives in [`MnaSystem`], a persistent workspace built once
//! per analysis: a [`crate::stamp::StampPlan`] turns per-iteration assembly
//! into `values.fill(0.0)` plus indexed adds, and a structure-caching LU
//! backend ([`crate::solver::DenseLu`] below [`SPARSE_THRESHOLD`] unknowns,
//! [`crate::lu::SparseLu`] above) factors once and then refactors or even
//! reuses factors across Newton iterations and timesteps. Every solve is
//! allocation-free after construction.

use std::time::Instant;

use crate::error::SpiceError;
use crate::lu::SparseLu;
use crate::netlist::{Netlist, NodeId};
use crate::solver::DenseLu;
use crate::stamp::StampPlan;
use crate::stats::SolveStats;

/// Above this unknown count the sparse solver is used.
const SPARSE_THRESHOLD: usize = 150;

/// Maximum Newton iterations per solve.
const MAX_NEWTON: usize = 200;

/// Per-component Newton update damping, V (helps the diode/comparator
/// nonlinearities converge from poor initial guesses).
const DAMP_LIMIT: f64 = 0.3;

/// Absolute convergence tolerance on the update norm.
const TOL_ABS: f64 = 1.0e-9;

/// Row-wise relative residual gate on solutions obtained through a numeric
/// refactorization: if `|A·x − z|_i` exceeds this fraction of the row's
/// magnitude scale, the frozen pivot order has gone stale and the system is
/// re-factored with a full pivot search.
const RESID_RTOL: f64 = 1.0e-11;

/// Context distinguishing DC from one transient step.
#[derive(Debug, Clone, Copy)]
pub(crate) enum StepContext<'a> {
    /// DC operating point: capacitors open, op-amp pole ignored.
    Dc,
    /// One implicit step of size `h` from the previous solution.
    Transient {
        /// Step size, s.
        h: f64,
        /// Solution vector at the previous timestep.
        prev: &'a [f64],
        /// Capacitor branch currents at the previous timestep (one slot per
        /// element; unused entries stay 0). `None` selects backward Euler;
        /// `Some` selects the trapezoidal companion model.
        cap_currents: Option<&'a [f64]>,
    },
}

/// The assembled index maps for a netlist.
#[derive(Debug, Clone)]
pub(crate) struct MnaLayout {
    /// Unknown index of each non-ground node (`node.index() - 1`).
    node_count: usize,
    /// Branch-current unknown index per element (usize::MAX if none).
    branch_of_element: Vec<usize>,
    /// Total unknowns.
    pub(crate) n_unknowns: usize,
}

impl MnaLayout {
    pub(crate) fn build(netlist: &Netlist) -> Self {
        let node_count = netlist.node_count() - 1;
        let mut next_branch = node_count;
        let branch_of_element = netlist
            .elements()
            .iter()
            .map(|e| {
                if e.has_branch_current() {
                    let idx = next_branch;
                    next_branch += 1;
                    idx
                } else {
                    usize::MAX
                }
            })
            .collect();
        MnaLayout {
            node_count,
            branch_of_element,
            n_unknowns: next_branch,
        }
    }

    /// Unknown index of a node, or `None` for ground.
    #[inline]
    pub(crate) fn node(&self, id: NodeId) -> Option<usize> {
        if id.is_ground() {
            None
        } else {
            Some(id.index() - 1)
        }
    }

    /// Node voltage from a solution vector (0 for ground).
    #[inline]
    pub(crate) fn voltage(&self, x: &[f64], id: NodeId) -> f64 {
        self.node(id).map_or(0.0, |i| x[i])
    }

    /// Branch-current unknown index of element `ei` (must have one).
    #[inline]
    pub(crate) fn branch_of_element(&self, ei: usize) -> usize {
        let k = self.branch_of_element[ei];
        debug_assert_ne!(k, usize::MAX);
        k
    }

    /// Number of node-voltage unknowns.
    pub(crate) fn node_unknowns(&self) -> usize {
        self.node_count
    }

    /// Number of node-voltage unknowns (for sibling analysis modules).
    pub(crate) fn node_unknowns_public(&self) -> usize {
        self.node_count
    }

    /// A copy of the per-element branch-current indices, rebased so that
    /// index 0 is the first branch current (for recording).
    pub(crate) fn branch_indices(&self) -> Vec<usize> {
        self.branch_of_element
            .iter()
            .map(|&k| {
                if k == usize::MAX {
                    usize::MAX
                } else {
                    k - self.node_count
                }
            })
            .collect()
    }
}

/// Structure-caching linear backend: dense for small systems, sparse above
/// [`SPARSE_THRESHOLD`] unknowns.
#[derive(Debug)]
enum Backend {
    Dense {
        lu: DenseLu,
        /// Dense position (`r·n + c`) of every CSR slot, for scattering.
        dense_pos: Vec<u32>,
    },
    Sparse(SparseLu),
}

/// A persistent per-netlist solver workspace: stamp plan, CSR value array,
/// LU backend and scratch vectors, all allocated once at construction.
#[derive(Debug)]
pub(crate) struct MnaSystem {
    pub(crate) layout: MnaLayout,
    plan: StampPlan,
    backend: Backend,
    /// Assembled CSR values of the current Newton iterate.
    values: Vec<f64>,
    /// Values snapshot at the last (re)factorization, for reuse detection.
    values_at_factor: Vec<f64>,
    have_factor: bool,
    /// Right-hand side.
    z: Vec<f64>,
    /// Linear-solve output (the next Newton iterate before damping).
    xnew: Vec<f64>,
    /// Triangular-solve scratch.
    y: Vec<f64>,
    /// Observability counters, accumulated across every solve.
    pub(crate) stats: SolveStats,
}

impl MnaSystem {
    pub(crate) fn new(netlist: &Netlist) -> Self {
        let layout = MnaLayout::build(netlist);
        let plan = StampPlan::build(netlist, &layout);
        let n = layout.n_unknowns;
        let nnz = plan.nnz();
        let backend = if n > SPARSE_THRESHOLD {
            Backend::Sparse(SparseLu::new(n))
        } else {
            let dense_pos = (0..n)
                .flat_map(|r| {
                    plan.col_idx[plan.row_ptr[r]..plan.row_ptr[r + 1]]
                        .iter()
                        .map(move |&c| (r * n + c as usize) as u32)
                })
                .collect();
            Backend::Dense {
                lu: DenseLu::new(n),
                dense_pos,
            }
        };
        let stats = SolveStats {
            n_unknowns: n,
            base_nnz: nnz,
            ..SolveStats::default()
        };
        MnaSystem {
            layout,
            plan,
            backend,
            values: vec![0.0; nnz],
            values_at_factor: vec![0.0; nnz],
            have_factor: false,
            z: vec![0.0; n],
            xnew: vec![0.0; n],
            y: vec![0.0; n],
            stats,
        }
    }

    /// Runs Newton–Raphson to convergence for one analysis point, updating
    /// `x` in place. Allocation-free.
    pub(crate) fn solve_point(
        &mut self,
        netlist: &Netlist,
        x: &mut [f64],
        t: f64,
        ctx: StepContext<'_>,
    ) -> Result<(), SpiceError> {
        let mut last_delta = f64::INFINITY;

        for iteration in 1..=MAX_NEWTON {
            let t0 = Instant::now();
            self.plan.assemble(
                netlist,
                &self.layout,
                x,
                t,
                ctx,
                &mut self.values,
                &mut self.z,
            );
            self.stats.assembly_seconds += t0.elapsed().as_secs_f64();
            self.solve_linear()?;
            self.stats.newton_iterations += 1;

            // Damped update on the voltage unknowns only; branch currents
            // move freely (their scale differs wildly from volts).
            let mut delta: f64 = 0.0;
            for (i, (xi, &xn)) in x.iter_mut().zip(&self.xnew).enumerate() {
                let mut dx = xn - *xi;
                if i < self.layout.node_unknowns() {
                    dx = dx.clamp(-DAMP_LIMIT, DAMP_LIMIT);
                    delta = delta.max(dx.abs());
                }
                *xi += dx;
            }
            last_delta = delta;
            if delta < TOL_ABS {
                self.stats.solve_points += 1;
                return Ok(());
            }
            // Safety valve: a diverging iterate (NaN) is unrecoverable.
            if !delta.is_finite() {
                return Err(SpiceError::NewtonDiverged {
                    time: t,
                    iterations: iteration,
                    residual: delta,
                });
            }
        }
        Err(SpiceError::NewtonDiverged {
            time: t,
            iterations: MAX_NEWTON,
            residual: last_delta,
        })
    }

    /// One linear solve of the assembled system into `self.xnew`, choosing
    /// between factor reuse, numeric refactorization and full factorization.
    fn solve_linear(&mut self) -> Result<(), SpiceError> {
        let reusable = self.have_factor && self.values == self.values_at_factor;
        let mut refactored = false;
        if reusable {
            self.stats.factor_reuses += 1;
        } else {
            let t0 = Instant::now();
            match &mut self.backend {
                Backend::Dense { lu, dense_pos } => {
                    // Dense pivot search is O(n²) against an O(n³)
                    // elimination: a full factorization costs essentially
                    // the same as a replay, so always re-pivot.
                    lu.factor_scattered(dense_pos, &self.values)?;
                    self.stats.full_factorizations += 1;
                    self.stats.factor_nnz = self.layout.n_unknowns * self.layout.n_unknowns;
                }
                Backend::Sparse(lu) => {
                    if lu.is_frozen() && lu.refactor(&self.values) {
                        self.stats.refactorizations += 1;
                        refactored = true;
                    } else {
                        lu.factor(&self.plan.row_ptr, &self.plan.col_idx, &self.values)?;
                        self.stats.full_factorizations += 1;
                    }
                    self.stats.factor_nnz = lu.factor_nnz();
                }
            }
            self.values_at_factor.copy_from_slice(&self.values);
            self.have_factor = true;
            self.stats.factor_seconds += t0.elapsed().as_secs_f64();
        }

        let t1 = Instant::now();
        self.xnew.copy_from_slice(&self.z);
        match &self.backend {
            Backend::Dense { lu, .. } => lu.solve_in_place(&mut self.xnew, &mut self.y),
            Backend::Sparse(lu) => lu.solve_in_place(&mut self.xnew, &mut self.y),
        }

        // A replayed factorization can be numerically stale when the values
        // left the regime the pivots were chosen for (e.g. a diode turning
        // on). Guard with a cheap row-wise residual check and fall back to
        // a full re-pivot. The `!(..)` form routes NaN to the fallback.
        if refactored && !self.residual_ok() {
            self.stats.residual_fallbacks += 1;
            let t2 = Instant::now();
            match &mut self.backend {
                Backend::Sparse(lu) => {
                    lu.factor(&self.plan.row_ptr, &self.plan.col_idx, &self.values)?;
                    self.stats.full_factorizations += 1;
                    self.stats.factor_nnz = lu.factor_nnz();
                }
                Backend::Dense { .. } => unreachable!("refactor is sparse-only"),
            }
            self.values_at_factor.copy_from_slice(&self.values);
            self.stats.factor_seconds += t2.elapsed().as_secs_f64();
            self.xnew.copy_from_slice(&self.z);
            match &self.backend {
                Backend::Sparse(lu) => lu.solve_in_place(&mut self.xnew, &mut self.y),
                Backend::Dense { .. } => unreachable!("refactor is sparse-only"),
            }
        }
        self.stats.solve_seconds += t1.elapsed().as_secs_f64();
        Ok(())
    }

    /// Row-wise residual check of `A·xnew = z` over the assembled CSR.
    // The negated comparison fails the check when the residual is NaN.
    #[allow(clippy::neg_cmp_op_on_partial_ord)]
    fn residual_ok(&self) -> bool {
        for r in 0..self.layout.n_unknowns {
            let mut resid = -self.z[r];
            let mut scale = self.z[r].abs();
            for s in self.plan.row_ptr[r]..self.plan.row_ptr[r + 1] {
                let term = self.values[s] * self.xnew[self.plan.col_idx[s] as usize];
                resid += term;
                scale += term.abs();
            }
            if !(resid.abs() <= RESID_RTOL * scale) {
                return false;
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::waveform::Waveform;

    #[test]
    fn layout_assigns_branches_after_nodes() {
        let mut net = Netlist::new();
        let a = net.node("a");
        let b = net.node("b");
        net.resistor(a, b, 1.0);
        net.voltage_source(a, Netlist::GROUND, Waveform::Dc(1.0));
        net.voltage_source(b, Netlist::GROUND, Waveform::Dc(2.0));
        let layout = MnaLayout::build(&net);
        assert_eq!(layout.node_unknowns(), 2);
        assert_eq!(layout.n_unknowns, 4);
        assert_eq!(layout.branch_of_element[0], usize::MAX);
        assert_eq!(layout.branch_of_element(1), 2);
        assert_eq!(layout.branch_of_element(2), 3);
    }

    #[test]
    fn voltage_of_ground_is_zero() {
        let mut net = Netlist::new();
        let a = net.node("a");
        net.resistor(a, Netlist::GROUND, 1.0);
        let layout = MnaLayout::build(&net);
        let x = vec![3.3];
        assert_eq!(layout.voltage(&x, Netlist::GROUND), 0.0);
        assert_eq!(layout.voltage(&x, a), 3.3);
    }

    #[test]
    fn linear_circuit_reuses_factors_across_iterations() {
        // A purely linear divider assembles identical values every Newton
        // iteration and every solve: exactly one full factorization.
        let mut net = Netlist::new();
        let top = net.node("top");
        let mid = net.node("mid");
        net.voltage_source(top, Netlist::GROUND, Waveform::Dc(1.0));
        net.resistor(top, mid, 1.0e3);
        net.resistor(mid, Netlist::GROUND, 3.0e3);
        let mut sys = MnaSystem::new(&net);
        let mut x = vec![0.0; sys.layout.n_unknowns];
        sys.solve_point(&net, &mut x, 0.0, StepContext::Dc).unwrap();
        let mut x2 = vec![0.0; sys.layout.n_unknowns];
        sys.solve_point(&net, &mut x2, 0.0, StepContext::Dc)
            .unwrap();
        assert_eq!(sys.stats.full_factorizations, 1);
        assert!(sys.stats.factor_reuses >= 1);
        assert_eq!(sys.stats.solve_points, 2);
        assert!((x[1] - 0.75).abs() < 1e-9);
        assert_eq!(x, x2);
    }

    #[test]
    fn stats_record_sizes() {
        let mut net = Netlist::new();
        let a = net.node("a");
        net.voltage_source(a, Netlist::GROUND, Waveform::Dc(1.0));
        net.resistor(a, Netlist::GROUND, 1.0e3);
        let sys = MnaSystem::new(&net);
        assert_eq!(sys.stats.n_unknowns, 2);
        // Pattern: (a,a) from R, (a,k)/(k,a) from the source.
        assert_eq!(sys.stats.base_nnz, 3);
    }
}

#[cfg(test)]
mod retune_properties {
    use proptest::prelude::*;

    use super::{MnaSystem, StepContext, SPARSE_THRESHOLD};
    use crate::netlist::{ElementId, Netlist};
    use crate::waveform::Waveform;

    /// A memristor crossbar large enough for the sparse backend, returning
    /// the memristor ids so cases can retune them.
    fn crossbar() -> (Netlist, Vec<ElementId>) {
        let mut net = Netlist::new();
        let n = 12usize;
        let mut nodes = Vec::with_capacity(n * n);
        for r in 0..n {
            for c in 0..n {
                nodes.push(net.node(&format!("m{r}_{c}")));
            }
        }
        let at = |r: usize, c: usize| nodes[r * n + c];
        for r in 0..n {
            let drv = net.node(&format!("drv{r}"));
            net.voltage_source(drv, Netlist::GROUND, Waveform::Dc(0.2 + 0.01 * r as f64));
            net.resistor(drv, at(r, 0), 1.0e3);
            net.resistor(at(r, n - 1), Netlist::GROUND, 10.0e3);
        }
        let mut cells = Vec::new();
        for r in 0..n {
            for c in 0..n {
                let ohms = 1.0e3 + 99.0e3 * ((r * 31 + c * 17) % 97) as f64 / 96.0;
                if c + 1 < n {
                    cells.push(net.memristor(at(r, c), at(r, c + 1), ohms));
                }
                if r + 1 < n {
                    cells.push(net.memristor(at(r, c), at(r + 1, c), ohms + 500.0));
                }
            }
        }
        (net, cells)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(12))]

        /// The satellite invariant of the solver rework: after retuning
        /// memristors (same structure, new values), an in-place numeric
        /// refactorization must produce the same operating point as a cold
        /// pivot-searching factorization of the retuned system.
        #[test]
        fn refactor_after_retune_matches_cold_factorization(
            scales in proptest::collection::vec(0.1f64..10.0, 1..24),
            stride in 1usize..17,
        ) {
            let (mut net, cells) = crossbar();
            let mut sys = MnaSystem::new(&net);
            prop_assert!(sys.layout.n_unknowns > SPARSE_THRESHOLD);
            let mut x = vec![0.0; sys.layout.n_unknowns];
            sys.solve_point(&net, &mut x, 0.0, StepContext::Dc).unwrap();
            prop_assert_eq!(sys.stats.full_factorizations, 1);

            // Retune: scale a scattered subset of cells within the paper's
            // 1 kOhm-100 kOhm tuning range.
            for (i, &scale) in scales.iter().enumerate() {
                let id = cells[(i * stride) % cells.len()];
                net.set_memristor(id, (1.0e3 * scale).clamp(1.0e3, 100.0e3));
            }

            // Warm solve: the changed values must take the refactor path
            // on the frozen structure, never a fresh symbolic analysis.
            let mut x_warm = vec![0.0; sys.layout.n_unknowns];
            sys.solve_point(&net, &mut x_warm, 0.0, StepContext::Dc)
                .unwrap();
            prop_assert!(sys.stats.refactorizations >= 1);
            prop_assert_eq!(sys.stats.full_factorizations, 1);
            prop_assert_eq!(sys.stats.residual_fallbacks, 0);

            // Cold solve of the retuned netlist from scratch.
            let mut cold = MnaSystem::new(&net);
            let mut x_cold = vec![0.0; cold.layout.n_unknowns];
            cold.solve_point(&net, &mut x_cold, 0.0, StepContext::Dc)
                .unwrap();

            for (i, (&w, &c)) in x_warm.iter().zip(&x_cold).enumerate() {
                prop_assert!(
                    (w - c).abs() <= 1.0e-12 * c.abs().max(1.0),
                    "unknown {}: warm {:e} vs cold {:e}", i, w, c
                );
            }
        }
    }
}
