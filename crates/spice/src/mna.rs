//! Modified nodal analysis: system assembly and Newton–Raphson iteration.
//!
//! Unknowns are the non-ground node voltages followed by one branch current
//! per voltage source and per op-amp output. Nonlinear devices (diodes,
//! op-amp saturation) are stamped as linearized companion models around the
//! current Newton iterate; integration uses backward-Euler companion models
//! for capacitors and the op-amp pole.

use crate::elements::Element;
use crate::error::SpiceError;
use crate::netlist::{Netlist, NodeId};
use crate::solver::DenseMatrix;
use crate::sparse::SparseMatrix;

/// Above this unknown count the sparse solver is used.
const SPARSE_THRESHOLD: usize = 150;

/// Maximum Newton iterations per solve.
const MAX_NEWTON: usize = 200;

/// Per-component Newton update damping, V (helps the diode/comparator
/// nonlinearities converge from poor initial guesses).
const DAMP_LIMIT: f64 = 0.3;

/// Absolute convergence tolerance on the update norm.
const TOL_ABS: f64 = 1.0e-9;

/// Context distinguishing DC from one transient step.
#[derive(Debug, Clone, Copy)]
pub(crate) enum StepContext<'a> {
    /// DC operating point: capacitors open, op-amp pole ignored.
    Dc,
    /// One implicit step of size `h` from the previous solution.
    Transient {
        /// Step size, s.
        h: f64,
        /// Solution vector at the previous timestep.
        prev: &'a [f64],
        /// Capacitor branch currents at the previous timestep (one slot per
        /// element; unused entries stay 0). `None` selects backward Euler;
        /// `Some` selects the trapezoidal companion model.
        cap_currents: Option<&'a [f64]>,
    },
}

/// The assembled index maps for a netlist.
#[derive(Debug, Clone)]
pub(crate) struct MnaLayout {
    /// Unknown index of each non-ground node (`node.index() - 1`).
    node_count: usize,
    /// Branch-current unknown index per element (usize::MAX if none).
    branch_of_element: Vec<usize>,
    /// Total unknowns.
    pub(crate) n_unknowns: usize,
}

impl MnaLayout {
    pub(crate) fn build(netlist: &Netlist) -> Self {
        let node_count = netlist.node_count() - 1;
        let mut next_branch = node_count;
        let branch_of_element = netlist
            .elements()
            .iter()
            .map(|e| {
                if e.has_branch_current() {
                    let idx = next_branch;
                    next_branch += 1;
                    idx
                } else {
                    usize::MAX
                }
            })
            .collect();
        MnaLayout {
            node_count,
            branch_of_element,
            n_unknowns: next_branch,
        }
    }

    /// Unknown index of a node, or `None` for ground.
    #[inline]
    pub(crate) fn node(&self, id: NodeId) -> Option<usize> {
        if id.is_ground() {
            None
        } else {
            Some(id.index() - 1)
        }
    }

    /// Node voltage from a solution vector (0 for ground).
    #[inline]
    pub(crate) fn voltage(&self, x: &[f64], id: NodeId) -> f64 {
        self.node(id).map_or(0.0, |i| x[i])
    }

    /// Number of node-voltage unknowns.
    pub(crate) fn node_unknowns(&self) -> usize {
        self.node_count
    }

    /// Number of node-voltage unknowns (for sibling analysis modules).
    pub(crate) fn node_unknowns_public(&self) -> usize {
        self.node_count
    }

    /// A copy of the per-element branch-current indices, rebased so that
    /// index 0 is the first branch current (for recording).
    pub(crate) fn branch_indices(&self) -> Vec<usize> {
        self.branch_of_element
            .iter()
            .map(|&k| {
                if k == usize::MAX {
                    usize::MAX
                } else {
                    k - self.node_count
                }
            })
            .collect()
    }
}

/// Abstraction over the dense and sparse backends.
trait LinearBackend {
    fn add(&mut self, r: usize, c: usize, v: f64);
    fn solve_system(self, b: &[f64]) -> Result<Vec<f64>, SpiceError>;
}

impl LinearBackend for DenseMatrix {
    fn add(&mut self, r: usize, c: usize, v: f64) {
        DenseMatrix::add(self, r, c, v);
    }
    fn solve_system(self, b: &[f64]) -> Result<Vec<f64>, SpiceError> {
        self.solve(b)
    }
}

impl LinearBackend for SparseMatrix {
    fn add(&mut self, r: usize, c: usize, v: f64) {
        SparseMatrix::add(self, r, c, v);
    }
    fn solve_system(self, b: &[f64]) -> Result<Vec<f64>, SpiceError> {
        self.solve(b)
    }
}

/// Stamps every element for the given iterate `x` and context, then solves
/// the linearized system once.
fn assemble_and_solve<B: LinearBackend>(
    mut a: B,
    netlist: &Netlist,
    layout: &MnaLayout,
    x: &[f64],
    t: f64,
    ctx: StepContext<'_>,
) -> Result<Vec<f64>, SpiceError> {
    let mut z = vec![0.0; layout.n_unknowns];

    let stamp_conductance = |a: &mut B, na: NodeId, nb: NodeId, g: f64| {
        if let Some(i) = layout.node(na) {
            a.add(i, i, g);
            if let Some(j) = layout.node(nb) {
                a.add(i, j, -g);
            }
        }
        if let Some(j) = layout.node(nb) {
            a.add(j, j, g);
            if let Some(i) = layout.node(na) {
                a.add(j, i, -g);
            }
        }
    };

    for (ei, e) in netlist.elements().iter().enumerate() {
        match e {
            Element::Resistor { a: na, b: nb, ohms }
            | Element::Memristor { a: na, b: nb, ohms } => {
                stamp_conductance(&mut a, *na, *nb, 1.0 / ohms);
            }
            Element::Switch {
                a: na,
                b: nb,
                state,
                ron,
                roff,
            } => {
                let r = match state {
                    crate::elements::SwitchState::Closed => *ron,
                    crate::elements::SwitchState::Open => *roff,
                };
                stamp_conductance(&mut a, *na, *nb, 1.0 / r);
            }
            Element::Capacitor {
                a: na,
                b: nb,
                farads,
            } => {
                if let StepContext::Transient {
                    h,
                    prev,
                    cap_currents,
                } = ctx
                {
                    let v_prev = layout.voltage(prev, *na) - layout.voltage(prev, *nb);
                    let (g, ieq) = match cap_currents {
                        // Trapezoidal companion:
                        // i_n = (2C/h)·(v_n − v_prev) − i_prev.
                        Some(ic) => {
                            let g = 2.0 * farads / h;
                            (g, g * v_prev + ic[ei])
                        }
                        // BE companion: i = (C/h)·v − (C/h)·v_prev.
                        None => {
                            let g = farads / h;
                            (g, g * v_prev)
                        }
                    };
                    stamp_conductance(&mut a, *na, *nb, g);
                    if let Some(i) = layout.node(*na) {
                        z[i] += ieq;
                    }
                    if let Some(j) = layout.node(*nb) {
                        z[j] -= ieq;
                    }
                }
                // DC: capacitor is open — no stamp.
            }
            Element::VoltageSource { p, n, waveform } => {
                let k = ei;
                let k = {
                    debug_assert_ne!(layout.branch_of_element[k], usize::MAX);
                    layout.branch_of_element[k]
                };
                if let Some(i) = layout.node(*p) {
                    a.add(i, k, 1.0);
                    a.add(k, i, 1.0);
                }
                if let Some(j) = layout.node(*n) {
                    a.add(j, k, -1.0);
                    a.add(k, j, -1.0);
                }
                z[k] = waveform.value(t);
            }
            Element::Diode {
                anode,
                cathode,
                model,
            } => {
                let v = layout.voltage(x, *anode) - layout.voltage(x, *cathode);
                let (i0, gd) = model.current_and_derivative(v);
                // Companion: i = gd·v + (i0 - gd·v0).
                stamp_conductance(&mut a, *anode, *cathode, gd);
                let ieq = i0 - gd * v;
                if let Some(i) = layout.node(*anode) {
                    z[i] -= ieq;
                }
                if let Some(j) = layout.node(*cathode) {
                    z[j] += ieq;
                }
            }
            Element::VcSwitch {
                a: na,
                b: nb,
                ctrl,
                threshold,
                active_high,
                ron,
                roff,
                vs,
            } => {
                let vc = layout.voltage(x, *ctrl);
                let vab = layout.voltage(x, *na) - layout.voltage(x, *nb);
                let (g, dg) = crate::elements::vc_switch_conductance(
                    vc,
                    *threshold,
                    *active_high,
                    *ron,
                    *roff,
                    *vs,
                );
                // i = g(vc)·(va − vb); linearize in va, vb AND vc.
                stamp_conductance(&mut a, *na, *nb, g);
                let kc = vab * dg;
                if let Some(c) = layout.node(*ctrl) {
                    if let Some(i) = layout.node(*na) {
                        a.add(i, c, kc);
                    }
                    if let Some(j) = layout.node(*nb) {
                        a.add(j, c, -kc);
                    }
                }
                // Companion current: i0 - g·vab0 - kc·vc0 = -kc·vc0.
                let ieq = -kc * vc;
                if let Some(i) = layout.node(*na) {
                    z[i] -= ieq;
                }
                if let Some(j) = layout.node(*nb) {
                    z[j] += ieq;
                }
            }
            Element::Opamp {
                inp,
                inn,
                out,
                model,
            } => {
                let k = layout.branch_of_element[ei];
                // Current injection at the output node.
                if let Some(o) = layout.node(*out) {
                    a.add(o, k, 1.0);
                }
                let vd = layout.voltage(x, *inp) - layout.voltage(x, *inn);
                let (sat0, dsat) = model.target_and_derivative(vd);
                match ctx {
                    StepContext::Dc => {
                        // vout = sat(A0·vd), linearized:
                        // vout - dsat·(vp - vn) = sat0 - dsat·vd0.
                        if let Some(o) = layout.node(*out) {
                            a.add(k, o, 1.0);
                        }
                        if let Some(i) = layout.node(*inp) {
                            a.add(k, i, -dsat);
                        }
                        if let Some(j) = layout.node(*inn) {
                            a.add(k, j, dsat);
                        }
                        z[k] = sat0 - dsat * vd;
                    }
                    StepContext::Transient { h, prev, .. } => {
                        // τ·dvout/dt = sat(A0·vd) - vout, BE:
                        // vout·(1 + h/τ) - (h/τ)·sat = vout_prev.
                        let tau = model.pole_tau();
                        let alpha = h / tau;
                        let vout_prev = layout.voltage(prev, *out);
                        if let Some(o) = layout.node(*out) {
                            a.add(k, o, 1.0 + alpha);
                        }
                        if let Some(i) = layout.node(*inp) {
                            a.add(k, i, -alpha * dsat);
                        }
                        if let Some(j) = layout.node(*inn) {
                            a.add(k, j, alpha * dsat);
                        }
                        z[k] = vout_prev + alpha * (sat0 - dsat * vd);
                    }
                }
            }
        }
    }
    a.solve_system(&z)
}

/// Runs Newton–Raphson to convergence for one analysis point.
pub(crate) fn solve_point(
    netlist: &Netlist,
    layout: &MnaLayout,
    initial: &[f64],
    t: f64,
    ctx: StepContext<'_>,
) -> Result<Vec<f64>, SpiceError> {
    let n = layout.n_unknowns;
    let mut x = initial.to_vec();
    let mut last_delta = f64::INFINITY;

    for iteration in 1..=MAX_NEWTON {
        let x_new = if n > SPARSE_THRESHOLD {
            assemble_and_solve(SparseMatrix::zeros(n), netlist, layout, &x, t, ctx)?
        } else {
            assemble_and_solve(DenseMatrix::zeros(n), netlist, layout, &x, t, ctx)?
        };
        // Damped update on the voltage unknowns only; branch currents move
        // freely (their scale differs wildly from volts).
        let mut delta: f64 = 0.0;
        for i in 0..n {
            let mut dx = x_new[i] - x[i];
            if i < layout.node_unknowns() {
                dx = dx.clamp(-DAMP_LIMIT, DAMP_LIMIT);
                delta = delta.max(dx.abs());
            }
            x[i] += dx;
        }
        last_delta = delta;
        if delta < TOL_ABS {
            return Ok(x);
        }
        // Safety valve: a diverging iterate (NaN) is unrecoverable.
        if !delta.is_finite() {
            return Err(SpiceError::NewtonDiverged {
                time: t,
                iterations: iteration,
                residual: delta,
            });
        }
    }
    Err(SpiceError::NewtonDiverged {
        time: t,
        iterations: MAX_NEWTON,
        residual: last_delta,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::waveform::Waveform;

    #[test]
    fn layout_assigns_branches_after_nodes() {
        let mut net = Netlist::new();
        let a = net.node("a");
        let b = net.node("b");
        net.resistor(a, b, 1.0);
        net.voltage_source(a, Netlist::GROUND, Waveform::Dc(1.0));
        net.voltage_source(b, Netlist::GROUND, Waveform::Dc(2.0));
        let layout = MnaLayout::build(&net);
        assert_eq!(layout.node_unknowns(), 2);
        assert_eq!(layout.n_unknowns, 4);
        assert_eq!(layout.branch_of_element[0], usize::MAX);
        assert_eq!(layout.branch_of_element[1], 2);
        assert_eq!(layout.branch_of_element[2], 3);
    }

    #[test]
    fn voltage_of_ground_is_zero() {
        let mut net = Netlist::new();
        let a = net.node("a");
        net.resistor(a, Netlist::GROUND, 1.0);
        let layout = MnaLayout::build(&net);
        let x = vec![3.3];
        assert_eq!(layout.voltage(&x, Netlist::GROUND), 0.0);
        assert_eq!(layout.voltage(&x, a), 3.3);
    }
}
