//! Batched and multi-core execution of accelerator workloads.
//!
//! Two levels of concurrency live here:
//!
//! * **Array-level** (the paper's Section 4.3): row-structure functions
//!   (HamD/MD) process up to `array.rows` candidates per analog pass, so a
//!   batch's wall-clock time is the slowest convergence in each pass summed
//!   over passes — see [`BatchOutcome`].
//! * **Host-level**: a data center runs one simulated accelerator per core.
//!   [`DistanceAccelerator::compute_batch_with`] and
//!   [`DistanceAccelerator::run_stream_with`] shard their workloads over a
//!   [`BatchEngine`], giving every worker thread its own accelerator clone.
//!   Results are bitwise identical at every thread count: per-pair outcomes
//!   are deterministic, come back in input order, and all floating-point
//!   reductions run serially in that order.

use mda_distance::BatchEngine;

use crate::accelerator::{AnalogOutcome, DistanceAccelerator};
use crate::error::AcceleratorError;
use crate::pipeline::ThroughputReport;

/// Outcome of a batched row-structure run.
#[derive(Debug, Clone)]
pub struct BatchOutcome {
    /// Per-candidate outcomes, in input order.
    pub outcomes: Vec<AnalogOutcome>,
    /// Array passes needed (`ceil(candidates / array rows)`).
    pub passes: usize,
    /// Wall-clock analog time for the whole batch: the slowest convergence
    /// in each pass, summed over passes — the concurrency the Section 4.3
    /// power analysis assumes (one candidate per array row).
    pub batch_time_s: f64,
}

impl DistanceAccelerator {
    /// Computes a row-structure distance between `query` and every
    /// candidate, exploiting the array's row-level parallelism: up to
    /// `array.rows` candidates are processed concurrently per pass.
    ///
    /// Equivalent to [`Self::compute_batch_with`] on a default (all-cores)
    /// [`BatchEngine`].
    ///
    /// # Errors
    ///
    /// Returns [`AcceleratorError::InvalidConfig`] if the configured
    /// function is not a row-structure one (matrix functions occupy the
    /// whole array for a single pair), plus any per-pair computation error.
    pub fn compute_batch(
        &self,
        query: &[f64],
        candidates: &[Vec<f64>],
    ) -> Result<BatchOutcome, AcceleratorError> {
        self.compute_batch_with(query, candidates, &BatchEngine::new())
    }

    /// [`Self::compute_batch`] sharded over `engine`: each worker thread
    /// simulates its own accelerator clone, and the pass/time accounting is
    /// reduced serially in candidate order, so the outcome is bitwise
    /// identical for every thread count.
    ///
    /// # Errors
    ///
    /// Same as [`Self::compute_batch`]; with several failing candidates the
    /// lowest-indexed failure is reported, as in the serial loop.
    pub fn compute_batch_with(
        &self,
        query: &[f64],
        candidates: &[Vec<f64>],
        engine: &BatchEngine,
    ) -> Result<BatchOutcome, AcceleratorError> {
        let kind = self.configured_kind()?;
        if kind.uses_matrix_structure() {
            return Err(AcceleratorError::InvalidConfig {
                reason: format!(
                    "batched execution needs a row-structure function (HamD/MD), got {kind}"
                ),
            });
        }
        if query.is_empty() {
            return Err(AcceleratorError::InvalidConfig {
                reason: "batch query has a zero-length sequence".into(),
            });
        }
        if let Some(index) = candidates.iter().position(|c| c.is_empty()) {
            return Err(AcceleratorError::InvalidConfig {
                reason: format!("batch candidate {index} has a zero-length sequence"),
            });
        }
        let outcomes = engine.try_map_with(
            candidates,
            || self.clone(),
            |acc: &mut DistanceAccelerator, _, candidate| acc.compute(query, candidate),
        )?;
        // Pass accounting mirrors the analog array, not the host threads:
        // rows candidates share a pass, each pass costs its slowest member.
        let rows = self.config().array.rows.max(1);
        let mut batch_time_s = 0.0;
        let mut passes = 0usize;
        for pass in outcomes.chunks(rows) {
            passes += 1;
            batch_time_s += pass
                .iter()
                .map(|o| o.convergence_time_s)
                .fold(0.0f64, f64::max);
        }
        Ok(BatchOutcome {
            outcomes,
            passes,
            batch_time_s,
        })
    }

    /// [`Self::run_stream`](crate::pipeline) sharded over `engine`: one
    /// accelerator clone per worker thread, one work item per pair.
    ///
    /// Per-pair measurements come back in stream order and the report's
    /// sums and means are accumulated serially in that order, so the report
    /// is bitwise identical for every thread count.
    ///
    /// # Errors
    ///
    /// Fails if any pair fails; with several failing pairs the
    /// lowest-indexed failure is reported, as in the serial loop.
    pub fn run_stream_with(
        &self,
        pairs: &[(Vec<f64>, Vec<f64>)],
        engine: &BatchEngine,
    ) -> Result<ThroughputReport, AcceleratorError> {
        crate::pipeline::validate_stream(pairs)?;
        let measurements = engine.try_map_with(
            pairs,
            || self.clone(),
            |acc: &mut DistanceAccelerator, _, (p, q)| {
                let outcome = acc.compute(p, q)?;
                Ok::<_, AcceleratorError>((
                    p.len() + q.len(),
                    outcome.convergence_time_s,
                    outcome.relative_error,
                ))
            },
        )?;
        let mut report = ThroughputReport {
            computations: 0,
            elements_processed: 0,
            analog_time_s: 0.0,
            mean_relative_error: 0.0,
            worst_relative_error: 0.0,
        };
        let mut error_sum = 0.0;
        for (elements, time_s, rel_err) in measurements {
            report.computations += 1;
            report.elements_processed += elements;
            report.analog_time_s += time_s;
            error_sum += rel_err;
            report.worst_relative_error = report.worst_relative_error.max(rel_err);
        }
        if report.computations > 0 {
            report.mean_relative_error = error_sum / report.computations as f64;
        }
        Ok(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::AcceleratorConfig;
    use mda_distance::DistanceKind;

    fn accelerator(kind: DistanceKind) -> DistanceAccelerator {
        let mut acc = DistanceAccelerator::new(AcceleratorConfig::paper_defaults());
        acc.configure(kind).unwrap();
        acc
    }

    fn series(len: usize, phase: f64) -> Vec<f64> {
        (0..len)
            .map(|i| (i as f64 * 0.4 + phase).sin() * 2.0)
            .collect()
    }

    #[test]
    fn batch_exploits_row_parallelism() {
        let mut config = AcceleratorConfig::paper_defaults();
        config.array = crate::array::ArrayDimensions::new(4, 64);
        let mut acc = DistanceAccelerator::new(config);
        acc.configure(DistanceKind::Manhattan).unwrap();
        let query = series(8, 0.0);
        let candidates: Vec<Vec<f64>> = (0..10).map(|i| series(8, 0.1 * i as f64)).collect();
        let batch = acc.compute_batch(&query, &candidates).unwrap();
        assert_eq!(batch.outcomes.len(), 10);
        assert_eq!(batch.passes, 3); // ceil(10 / 4 rows)
                                     // Batch wall time is far below the sum of individual runs.
        let serial: f64 = batch.outcomes.iter().map(|o| o.convergence_time_s).sum();
        assert!(batch.batch_time_s < serial / 2.0);
    }

    #[test]
    fn batch_rejects_matrix_functions() {
        let acc = accelerator(DistanceKind::Dtw);
        assert!(matches!(
            acc.compute_batch(&[0.0, 1.0], &[vec![0.0, 1.0]]),
            Err(AcceleratorError::InvalidConfig { .. })
        ));
    }

    #[test]
    fn batch_identical_across_thread_counts() {
        let acc = accelerator(DistanceKind::Manhattan);
        let query = series(12, 0.0);
        let candidates: Vec<Vec<f64>> = (0..9).map(|i| series(12, 0.3 * i as f64)).collect();
        let serial = acc
            .compute_batch_with(&query, &candidates, &BatchEngine::serial())
            .unwrap();
        for threads in [2, 5] {
            let parallel = acc
                .compute_batch_with(
                    &query,
                    &candidates,
                    &BatchEngine::serial()
                        .with_threads(threads)
                        .with_chunk_size(2),
                )
                .unwrap();
            assert_eq!(parallel.passes, serial.passes);
            assert_eq!(
                parallel.batch_time_s.to_bits(),
                serial.batch_time_s.to_bits()
            );
            assert_eq!(parallel.outcomes.len(), serial.outcomes.len());
            for (p, s) in parallel.outcomes.iter().zip(&serial.outcomes) {
                assert_eq!(p.value.to_bits(), s.value.to_bits());
                assert_eq!(
                    p.convergence_time_s.to_bits(),
                    s.convergence_time_s.to_bits()
                );
            }
        }
    }

    #[test]
    fn stream_identical_across_thread_counts() {
        let acc = accelerator(DistanceKind::Manhattan);
        let pairs: Vec<(Vec<f64>, Vec<f64>)> = (0..7)
            .map(|k| (series(10, 0.2 * k as f64), series(10, 0.2 * k as f64 + 1.0)))
            .collect();
        let serial = acc.run_stream_with(&pairs, &BatchEngine::serial()).unwrap();
        for threads in [2, 4] {
            let parallel = acc
                .run_stream_with(
                    &pairs,
                    &BatchEngine::serial()
                        .with_threads(threads)
                        .with_chunk_size(2),
                )
                .unwrap();
            assert_eq!(parallel, serial);
            assert_eq!(
                parallel.analog_time_s.to_bits(),
                serial.analog_time_s.to_bits()
            );
        }
    }

    #[test]
    fn parallel_stream_reports_lowest_indexed_error() {
        let acc = accelerator(DistanceKind::Manhattan);
        let mut pairs: Vec<(Vec<f64>, Vec<f64>)> = (0..6)
            .map(|k| (series(8, k as f64), series(8, 0.5)))
            .collect();
        pairs[2] = (vec![0.0], vec![0.0, 1.0]); // length mismatch
        let err = acc
            .run_stream_with(
                &pairs,
                &BatchEngine::serial().with_threads(3).with_chunk_size(1),
            )
            .unwrap_err();
        assert!(matches!(err, AcceleratorError::Distance(_)));
    }
}
