//! Global accelerator configuration — the paper's Table 1 plus the array
//! geometry of Section 4.3.

use crate::array::ArrayDimensions;
use crate::converters::{AdcSpec, DacSpec};

/// Configuration of one accelerator instance.
#[derive(Debug, Clone, PartialEq)]
pub struct AcceleratorConfig {
    /// Supply voltage, V. Table 1: 1.0 V.
    pub vcc: f64,
    /// Voltage resolution: volts per unit of sequence value. Table 1:
    /// 20 mV for a value of 1 ("1.2 and −0.5 are translated to 24 mV and
    /// −10 mV").
    pub voltage_resolution: f64,
    /// Unit voltage `Vstep` for LCS/EdD/HamD contributions. Section 4.1:
    /// 10 mV, chosen so outputs don't overflow at length 40.
    pub v_step: f64,
    /// Threshold voltage `Vthre` for the thresholded functions (in volts,
    /// application-specific per Section 4.1).
    pub v_thre: f64,
    /// Op-amp open-loop gain. Table 1: 1e4.
    pub opamp_gain: f64,
    /// Op-amp gain–bandwidth product, Hz. Table 1: 50 GHz.
    pub opamp_gbw: f64,
    /// Parasitic capacitance per circuit net, F. Table 1: 20 fF.
    pub parasitic_capacitance: f64,
    /// Nominal memristor resistance used for the unit-ratio (HRS-programmed)
    /// analog resistors, Ω — drives the static power accounting (Section
    /// 4.3 assumes "at least one memristor is set to HRS from the source to
    /// the ground").
    pub nominal_resistance: f64,
    /// Effective resistance of the signal propagation paths, Ω. The
    /// RC product with the per-net parasitic capacitance sets the analog
    /// settling speed; LRS-level paths (~1 kΩ × 20 fF = 20 ps/net) are what
    /// make the paper's "several nanoseconds" runtimes possible.
    pub signal_path_resistance: f64,
    /// PE array geometry. Section 4.3: 128 × 128.
    pub array: ArrayDimensions,
    /// DAC array specification.
    pub dac: DacSpec,
    /// ADC array specification.
    pub adc: AdcSpec,
    /// Seed for the deterministic per-instance analog error model.
    pub noise_seed: u64,
}

impl AcceleratorConfig {
    /// The experimental setup of the paper (Tables 1–2 and Section 4.3).
    pub fn paper_defaults() -> Self {
        AcceleratorConfig {
            vcc: 1.0,
            voltage_resolution: 20.0e-3,
            v_step: 10.0e-3,
            v_thre: 2.0e-3,
            opamp_gain: 1.0e4,
            opamp_gbw: 50.0e9,
            parasitic_capacitance: 20.0e-15,
            nominal_resistance: 100.0e3,
            signal_path_resistance: 1.0e3,
            array: ArrayDimensions::new(128, 128),
            dac: DacSpec::paper_reference(),
            adc: AdcSpec::paper_reference(),
            noise_seed: 0x6d64_6121,
        }
    }

    /// Converts a sequence value to its encoded voltage.
    pub fn value_to_voltage(&self, value: f64) -> f64 {
        value * self.voltage_resolution
    }

    /// Converts a measured voltage back to a sequence value.
    pub fn voltage_to_value(&self, voltage: f64) -> f64 {
        voltage / self.voltage_resolution
    }

    /// The largest value magnitude encodable: bounded by both `Vcc/2`
    /// (keeping every memristor far below the 3 V switching threshold) and
    /// the DAC's programmable full-scale range.
    pub fn max_encodable_value(&self) -> f64 {
        let rail_bound = self.vcc / 2.0;
        let dac_bound = self.dac.full_scale / 2.0;
        rail_bound.min(dac_bound) / self.voltage_resolution
    }
}

impl Default for AcceleratorConfig {
    fn default() -> Self {
        Self::paper_defaults()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_defaults_match_table1() {
        let c = AcceleratorConfig::paper_defaults();
        assert_eq!(c.vcc, 1.0);
        assert_eq!(c.voltage_resolution, 0.02);
        assert_eq!(c.v_step, 0.01);
        assert_eq!(c.opamp_gain, 1.0e4);
        assert_eq!(c.opamp_gbw, 50.0e9);
        assert_eq!(c.parasitic_capacitance, 20.0e-15);
        assert_eq!(c.array.rows, 128);
        assert_eq!(c.array.cols, 128);
    }

    #[test]
    fn paper_translation_examples() {
        // Section 4.1: "1.2 and −0.5 are translated to 24 mV and −10 mV".
        let c = AcceleratorConfig::paper_defaults();
        assert!((c.value_to_voltage(1.2) - 24.0e-3).abs() < 1e-12);
        assert!((c.value_to_voltage(-0.5) - (-10.0e-3)).abs() < 1e-12);
    }

    #[test]
    fn voltage_roundtrip() {
        let c = AcceleratorConfig::paper_defaults();
        for v in [-2.0, -0.1, 0.0, 0.7, 3.3] {
            assert!((c.voltage_to_value(c.value_to_voltage(v)) - v).abs() < 1e-12);
        }
    }

    #[test]
    fn max_encodable_value_stays_subthreshold() {
        let c = AcceleratorConfig::paper_defaults();
        // DAC full scale ±125 mV at 20 mV/unit -> 6.25 units.
        assert_eq!(c.max_encodable_value(), 6.25);
        assert!(c.value_to_voltage(c.max_encodable_value()) < 3.0);
    }
}
