//! Tiling of computations larger than the physical PE array.
//!
//! Section 3.1: "When the sequence length is larger than the number of PEs
//! in each row or column, tiling technique will be applied and the
//! throughput will decrease."
//!
//! The matrix structure is tiled in wavefront order: an `m x n` DP matrix is
//! cut into `ceil(m/R) x ceil(n/C)` tiles; boundary rows/columns are carried
//! between tiles. The row structure simply processes `ceil(n/C)` chunks and
//! accumulates partial sums digitally.

use crate::array::{ArrayDimensions, Structure};

/// The tiling plan for one computation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TilingPlan {
    /// Tiles along the `P` (row) axis.
    pub row_tiles: usize,
    /// Tiles along the `Q` (column) axis.
    pub col_tiles: usize,
    /// Total number of array passes.
    pub passes: usize,
}

impl TilingPlan {
    /// Plans the tiling of an `m x n` computation over `array` using the
    /// given structure.
    ///
    /// # Panics
    ///
    /// Panics if `m` or `n` is zero.
    pub fn plan(structure: Structure, array: ArrayDimensions, m: usize, n: usize) -> Self {
        assert!(m > 0 && n > 0, "sequence lengths must be positive");
        match structure {
            Structure::Matrix => {
                let row_tiles = m.div_ceil(array.rows);
                let col_tiles = n.div_ceil(array.cols);
                TilingPlan {
                    row_tiles,
                    col_tiles,
                    passes: row_tiles * col_tiles,
                }
            }
            Structure::Row => {
                let col_tiles = n.div_ceil(array.cols);
                TilingPlan {
                    row_tiles: 1,
                    col_tiles,
                    passes: col_tiles,
                }
            }
        }
    }

    /// Throughput relative to an untiled computation (1 / passes).
    pub fn throughput_factor(&self) -> f64 {
        1.0 / self.passes as f64
    }
}

/// Computes a Manhattan distance in tiles of `chunk` elements, accumulating
/// partial sums — functionally identical to the untiled result, which the
/// tests verify. `evaluate_chunk` stands in for one analog array pass.
pub fn tiled_row_sum<F>(p: &[f64], q: &[f64], chunk: usize, mut evaluate_chunk: F) -> f64
where
    F: FnMut(&[f64], &[f64]) -> f64,
{
    assert_eq!(p.len(), q.len(), "row structure requires equal lengths");
    assert!(chunk > 0, "chunk must be positive");
    p.chunks(chunk)
        .zip(q.chunks(chunk))
        .map(|(pc, qc)| evaluate_chunk(pc, qc))
        .sum()
}

/// Computes a full DP recurrence in tiles, carrying boundaries between
/// tiles. `cell` is the DP cell update `(cost_inputs) -> value`; this is the
/// digital shadow of the analog wavefront tiling, used to verify that tiled
/// and untiled evaluations agree exactly.
///
/// The recurrence is expressed through the generic cell function
/// `f(diag, up, left, p_i, q_j)`; boundary values come from `top_boundary`
/// (row 0), `left_boundary` (column 0) and `corner` (cell `(0,0)`).
#[allow(clippy::too_many_arguments)]
pub fn tiled_dp<F>(
    p: &[f64],
    q: &[f64],
    tile_rows: usize,
    tile_cols: usize,
    corner: f64,
    top_boundary: impl Fn(usize) -> f64,
    left_boundary: impl Fn(usize) -> f64,
    cell: F,
) -> f64
where
    F: Fn(f64, f64, f64, f64, f64) -> f64,
{
    assert!(tile_rows > 0 && tile_cols > 0, "tile dims must be positive");
    let (m, n) = (p.len(), q.len());
    // Full boundary state: previous row of the global matrix, plus the
    // left-column carry per row band. We keep the whole previous row
    // (length n+1) and sweep row bands of height `tile_rows`.
    let mut prev_row: Vec<f64> = (0..=n)
        .map(|j| if j == 0 { corner } else { top_boundary(j) })
        .collect();

    let mut i0 = 0;
    while i0 < m {
        let band = (m - i0).min(tile_rows);
        // Row band [i0+1 ..= i0+band]; process in column tiles.
        let mut rows: Vec<Vec<f64>> = vec![vec![0.0; n + 1]; band];
        for (r, row) in rows.iter_mut().enumerate() {
            row[0] = left_boundary(i0 + r + 1);
        }
        let mut j0 = 0;
        while j0 < n {
            let width = (n - j0).min(tile_cols);
            for r in 0..band {
                for c in 0..width {
                    let i = i0 + r + 1;
                    let j = j0 + c + 1;
                    let diag = if r == 0 {
                        prev_row[j - 1]
                    } else {
                        rows[r - 1][j - 1]
                    };
                    let up = if r == 0 { prev_row[j] } else { rows[r - 1][j] };
                    let left = rows[r][j - 1];
                    rows[r][j] = cell(diag, up, left, p[i - 1], q[j - 1]);
                }
            }
            j0 += width;
        }
        prev_row = rows.pop().expect("band >= 1");
        // Rebuild corner/boundary semantics for the next band: prev_row[0]
        // must be the left boundary of the last processed row.
        i0 += band;
    }
    prev_row[n]
}

#[cfg(test)]
mod tests {
    use super::*;
    use mda_distance::{Dtw, EditDistance, Manhattan};

    #[test]
    fn plan_counts() {
        let a = ArrayDimensions::new(128, 128);
        let p = TilingPlan::plan(Structure::Matrix, a, 300, 200);
        assert_eq!(p.row_tiles, 3);
        assert_eq!(p.col_tiles, 2);
        assert_eq!(p.passes, 6);
        assert!((p.throughput_factor() - 1.0 / 6.0).abs() < 1e-12);

        let p = TilingPlan::plan(Structure::Row, a, 1, 300);
        assert_eq!(p.passes, 3);
    }

    #[test]
    fn untiled_fits_in_one_pass() {
        let a = ArrayDimensions::new(128, 128);
        assert_eq!(TilingPlan::plan(Structure::Matrix, a, 40, 40).passes, 1);
        assert_eq!(TilingPlan::plan(Structure::Row, a, 1, 40).passes, 1);
    }

    #[test]
    fn tiled_row_sum_equals_untiled_manhattan() {
        let p: Vec<f64> = (0..37).map(|i| (i as f64 * 0.7).sin()).collect();
        let q: Vec<f64> = (0..37).map(|i| (i as f64 * 0.5).cos()).collect();
        let reference = Manhattan::new().distance(&p, &q).unwrap();
        for chunk in [1, 4, 16, 37, 100] {
            let tiled = tiled_row_sum(&p, &q, chunk, |pc, qc| {
                Manhattan::new().distance(pc, qc).unwrap()
            });
            assert!(
                (tiled - reference).abs() < 1e-12,
                "chunk {chunk}: {tiled} vs {reference}"
            );
        }
    }

    #[test]
    fn tiled_dp_equals_untiled_dtw() {
        let p: Vec<f64> = (0..23).map(|i| (i as f64 * 0.31).sin()).collect();
        let q: Vec<f64> = (0..19).map(|i| (i as f64 * 0.29).cos()).collect();
        let reference = Dtw::new().distance(&p, &q).unwrap();
        for (tr, tc) in [(4, 4), (8, 3), (23, 19), (1, 1), (5, 19)] {
            let tiled = tiled_dp(
                &p,
                &q,
                tr,
                tc,
                0.0,
                |_| f64::INFINITY,
                |_| f64::INFINITY,
                |diag, up, left, pi, qj| {
                    let best = diag.min(up).min(left);
                    if best.is_finite() {
                        (pi - qj).abs() + best
                    } else {
                        f64::INFINITY
                    }
                },
            );
            assert!(
                (tiled - reference).abs() < 1e-9,
                "tile {tr}x{tc}: {tiled} vs {reference}"
            );
        }
    }

    #[test]
    fn tiled_dp_equals_untiled_edit_distance() {
        let p: Vec<f64> = (0..17).map(|i| ((i * 7) % 5) as f64).collect();
        let q: Vec<f64> = (0..21).map(|i| ((i * 3) % 4) as f64).collect();
        let reference = EditDistance::new(0.1).distance(&p, &q).unwrap();
        let tiled = tiled_dp(
            &p,
            &q,
            6,
            5,
            0.0,
            |j| j as f64,
            |i| i as f64,
            |diag, up, left, pi, qj| {
                let subst = if (pi - qj).abs() <= 0.1 {
                    diag
                } else {
                    diag + 1.0
                };
                subst.min(up + 1.0).min(left + 1.0)
            },
        );
        assert!((tiled - reference).abs() < 1e-9);
    }
}
