//! Inter-PE structures: the matrix and row organisations of Fig. 1, and the
//! active-PE accounting the power analysis depends on.

use mda_distance::dtw::Band;
use mda_distance::DistanceKind;

/// Which inter-PE wiring a distance function uses (Fig. 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Structure {
    /// 2-D mesh with diagonal dependencies — DTW, LCS, EdD, HauD.
    Matrix,
    /// 1-D row of independent PEs feeding one analog adder — HamD, MD.
    Row,
}

impl Structure {
    /// The structure used by a distance function.
    pub fn for_kind(kind: DistanceKind) -> Structure {
        if kind.uses_matrix_structure() {
            Structure::Matrix
        } else {
            Structure::Row
        }
    }
}

/// PE array geometry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ArrayDimensions {
    /// PEs per column.
    pub rows: usize,
    /// PEs per row.
    pub cols: usize,
}

impl ArrayDimensions {
    /// A `rows x cols` array.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn new(rows: usize, cols: usize) -> Self {
        assert!(rows > 0 && cols > 0, "array dimensions must be positive");
        ArrayDimensions { rows, cols }
    }

    /// Total PE count.
    pub fn pe_count(&self) -> usize {
        self.rows * self.cols
    }

    /// Whether an `m x n` matrix-structure computation fits without tiling.
    pub fn fits_matrix(&self, m: usize, n: usize) -> bool {
        m <= self.rows && n <= self.cols
    }

    /// Whether a length-`n` row-structure computation fits without tiling.
    pub fn fits_row(&self, n: usize) -> bool {
        n <= self.cols
    }

    /// Number of PEs that must be active for a computation, which drives the
    /// op-amp/memristor power budget (Section 4.3).
    ///
    /// For DTW the paper powers only the Sakoe–Chiba band:
    /// `7R(2n − R)` op-amps with `R = 5% n` — here we count the actual
    /// admissible cells. Other matrix functions power the full `m x n`
    /// rectangle; row functions power `n` PEs.
    pub fn active_pes(&self, kind: DistanceKind, m: usize, n: usize, band: Option<Band>) -> usize {
        match Structure::for_kind(kind) {
            Structure::Row => n.min(self.cols),
            Structure::Matrix => {
                let m = m.min(self.rows);
                let n = n.min(self.cols);
                match (kind, band) {
                    (DistanceKind::Dtw, Some(b)) => b.active_cells(m, n),
                    _ => m * n,
                }
            }
        }
    }
}

impl std::fmt::Display for ArrayDimensions {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}x{}", self.rows, self.cols)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn structure_for_kind_matches_fig1() {
        assert_eq!(Structure::for_kind(DistanceKind::Dtw), Structure::Matrix);
        assert_eq!(Structure::for_kind(DistanceKind::Lcs), Structure::Matrix);
        assert_eq!(Structure::for_kind(DistanceKind::Edit), Structure::Matrix);
        assert_eq!(
            Structure::for_kind(DistanceKind::Hausdorff),
            Structure::Matrix
        );
        assert_eq!(Structure::for_kind(DistanceKind::Hamming), Structure::Row);
        assert_eq!(Structure::for_kind(DistanceKind::Manhattan), Structure::Row);
    }

    #[test]
    fn fits_checks() {
        let a = ArrayDimensions::new(128, 128);
        assert!(a.fits_matrix(128, 128));
        assert!(!a.fits_matrix(129, 1));
        assert!(a.fits_row(128));
        assert!(!a.fits_row(129));
        assert_eq!(a.pe_count(), 16384);
    }

    #[test]
    fn active_pes_row_is_length() {
        let a = ArrayDimensions::new(128, 128);
        assert_eq!(a.active_pes(DistanceKind::Manhattan, 40, 40, None), 40);
        assert_eq!(a.active_pes(DistanceKind::Hamming, 200, 200, None), 128);
    }

    #[test]
    fn active_pes_full_matrix() {
        let a = ArrayDimensions::new(128, 128);
        assert_eq!(a.active_pes(DistanceKind::Lcs, 40, 40, None), 1600);
        assert_eq!(a.active_pes(DistanceKind::Edit, 10, 20, None), 200);
    }

    #[test]
    fn active_pes_dtw_band_is_much_smaller() {
        let a = ArrayDimensions::new(128, 128);
        let n = 128;
        let banded = a.active_pes(DistanceKind::Dtw, n, n, Some(Band::five_percent(n)));
        let full = a.active_pes(DistanceKind::Dtw, n, n, None);
        assert!(banded < full / 5, "banded {banded} vs full {full}");
        // The paper's closed form 7R(2n−R)/7 ~ R(2n−R) cells with R = 7:
        // R(2n - R) = 7 * (256 - 7) = 1743; actual band area ~ (2R+1)n.
        let expected = (2 * 7 + 1) * n;
        assert!(
            (banded as i64 - expected as i64).unsigned_abs() < 200,
            "banded {banded} vs ~{expected}"
        );
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_dims_panic() {
        let _ = ArrayDimensions::new(0, 4);
    }

    #[test]
    fn display_format() {
        assert_eq!(ArrayDimensions::new(128, 64).to_string(), "128x64");
    }
}
