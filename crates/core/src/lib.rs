//! # mda-core
//!
//! The DAC'17 **reconfigurable memristor-based distance accelerator**: a
//! single analog fabric that computes six time-series distance functions
//! (DTW, LCS, EdD, HauD, HamD, MD) by reconfiguring the connections inside
//! and between its processing elements (PEs).
//!
//! The crate models the accelerator at two levels of fidelity:
//!
//! * **Device level** ([`pe`]): every PE circuit of the paper's Fig. 2 is
//!   synthesized as an `mda-spice` netlist — op-amp subtractors and adders
//!   built from memristors, diode min/max networks, comparators and
//!   transmission gates — and validated against the digital reference in
//!   `mda-distance`.
//! * **Array level** ([`analog`]): a behavioural analog network in which
//!   each module is a first-order lag with an RC time constant derived from
//!   its load capacitance (Table 1: 20 fF per net). This reproduces the
//!   paper's Fig. 5 convergence-time and relative-error trends at any
//!   sequence length in milliseconds of wall clock, where transistor-level
//!   SPICE took the authors ~20 hours per run.
//!
//! Supporting architecture pieces: the DAC/ADC arrays ([`converters`]), the
//! control-and-configuration module with its configuration library
//! ([`controller`]), the matrix/row inter-PE structures ([`mod@array`]), tiling
//! for sequences longer than the array ([`tiling`]), and the
//! early-determination optimization for row-structure functions ([`early`]).
//!
//! ## Quickstart
//!
//! ```
//! use mda_core::{AcceleratorConfig, DistanceAccelerator};
//! use mda_distance::DistanceKind;
//!
//! # fn main() -> Result<(), mda_core::AcceleratorError> {
//! let mut acc = DistanceAccelerator::new(AcceleratorConfig::paper_defaults());
//! acc.configure(DistanceKind::Dtw)?;
//! let p = [0.0, 2.0, 4.0, 2.0];
//! let q = [0.0, 2.4, 3.6, 1.6];
//! let outcome = acc.compute(&p, &q)?;
//! assert!(outcome.relative_error < 0.15); // ADC LSB dominates small outputs
//! assert!(outcome.convergence_time_s > 0.0);
//! # Ok(())
//! # }
//! ```

pub mod accelerator;
pub mod analog;
pub mod array;
pub mod batch;
pub mod bounds;
pub mod config;
pub mod controller;
pub mod converters;
pub mod early;
pub mod encode;
pub mod error;
pub mod pe;
pub mod pipeline;
pub mod tiling;

pub use accelerator::{AnalogOutcome, DistanceAccelerator};
pub use array::{ArrayDimensions, Structure};
pub use batch::BatchOutcome;
pub use config::AcceleratorConfig;
pub use controller::{ConfigurationLib, PeConfiguration};
pub use converters::{AdcSpec, DacSpec};
pub use encode::VoltageEncoder;
pub use error::AcceleratorError;
pub use pipeline::{validate_stream, ThroughputReport};
