//! Device-level PE circuits — the paper's Fig. 2, synthesized as
//! `mda-spice` netlists.
//!
//! Each submodule builds one distance function's PE from the shared
//! primitives in [`common`] and provides DC-level evaluation helpers used to
//! validate the circuit against the `mda-distance` reference:
//!
//! * [`dtw`] — absolution + minimum + addition modules (Fig. 2(a));
//! * [`lcs`] — selecting + computing modules with comparator-driven TGs
//!   (Fig. 2(b));
//! * [`edit`] — three computing paths + minimum module (Fig. 2(c));
//! * [`hausdorff`] — computing + comparing modules and the column/converter
//!   connection (Fig. 2(d1)/(d2));
//! * [`hamming`] — absolution + comparator + TG pair, row adder (Fig. 2(e));
//! * [`manhattan`] — absolution module + row adder (Fig. 2(f)).

pub mod common;
pub mod dtw;
pub mod edit;
pub mod hamming;
pub mod hausdorff;
pub mod lcs;
pub mod manhattan;

pub use common::Rails;
