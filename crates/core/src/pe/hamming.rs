//! The Hamming-distance PE circuit (Fig. 2(e)) and its row-structure
//! assembly.
//!
//! Each PE compares `|P[i] − Q[i]|` against `Vthre`; on a mismatch a TG
//! connects `Vstep` to the PE output, otherwise the output is grounded.
//! The row structure's analog adder sums all PE outputs with the
//! `M0/Mk = w_k` weighted-memristor ratios.

use mda_spice::{Netlist, NodeId, Waveform};

use super::common::{abs_module, analog_adder, comparator, tg_mux, Rails};
use crate::config::AcceleratorConfig;
use crate::error::AcceleratorError;

/// Builds one HamD PE; returns the `Ham[i]` output node (`Vstep` on a
/// mismatch, 0 otherwise).
pub fn build_pe(net: &mut Netlist, rails: &Rails, p: NodeId, q: NodeId) -> NodeId {
    let abs = abs_module(net, rails, p, q, 1.0);
    // Comparator is HIGH on a mismatch (|P − Q| > Vthre).
    let mismatch = comparator(net, rails, abs, rails.v_thre_node);
    tg_mux(net, rails, rails.v_step_node, Netlist::GROUND, mismatch)
}

/// Builds the full row-structure HamD circuit; returns
/// `(netlist, output node)` whose voltage is `Σ w_i·Vstep·[mismatch_i]`.
///
/// # Errors
///
/// Returns [`AcceleratorError::EncodingRange`] for unencodable values or
/// [`AcceleratorError::Distance`]-style shape problems via panics upstream
/// (lengths are asserted equal).
///
/// # Panics
///
/// Panics if `p` and `q` have different lengths or weights don't align.
pub fn build_row(
    config: &AcceleratorConfig,
    p: &[f64],
    q: &[f64],
    threshold: f64,
    weights: &[f64],
) -> Result<(Netlist, NodeId), AcceleratorError> {
    assert_eq!(p.len(), q.len(), "row structure requires equal lengths");
    assert_eq!(p.len(), weights.len(), "one weight per element");
    let mut net = Netlist::new();
    let rails = Rails::install(
        &mut net,
        config.vcc,
        config.v_step,
        config.value_to_voltage(threshold),
        config.nominal_resistance,
    );
    let max = config.max_encodable_value();
    let encode = |net: &mut Netlist, name: &str, value: f64| {
        if !value.is_finite() || value.abs() > max {
            return Err(AcceleratorError::EncodingRange { value, max });
        }
        let node = net.node(name);
        net.voltage_source(
            node,
            Netlist::GROUND,
            Waveform::Dc(config.value_to_voltage(value)),
        );
        Ok(node)
    };
    let mut pe_outputs = Vec::with_capacity(p.len());
    for (i, (&pv, &qv)) in p.iter().zip(q).enumerate() {
        let pn = encode(&mut net, &format!("p{i}"), pv)?;
        let qn = encode(&mut net, &format!("q{i}"), qv)?;
        pe_outputs.push(build_pe(&mut net, &rails, pn, qn));
    }
    let out = analog_adder(&mut net, &rails, &pe_outputs, weights);
    Ok((net, out))
}

/// Evaluates the device-level HamD circuit at DC, decoding the mismatch
/// count by dividing by `Vstep`.
///
/// # Errors
///
/// Propagates encoding and simulation errors.
pub fn evaluate_dc(
    config: &AcceleratorConfig,
    p: &[f64],
    q: &[f64],
    threshold: f64,
    weights: &[f64],
) -> Result<f64, AcceleratorError> {
    let (net, out) = build_row(config, p, q, threshold, weights)?;
    let v = net.dc()?;
    Ok(v[out.index()] / config.v_step)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mda_distance::Hamming;

    fn config() -> AcceleratorConfig {
        AcceleratorConfig::paper_defaults()
    }

    #[test]
    fn counts_mismatches() {
        let p = [0.0, 1.0, 2.0, 3.0];
        let q = [0.0, 5.0, 2.0, -3.0];
        let expected = Hamming::new(0.2).distance(&p, &q).unwrap();
        assert_eq!(expected, 2.0);
        let w = vec![1.0; 4];
        let got = evaluate_dc(&config(), &p, &q, 0.2, &w).unwrap();
        assert!((got - 2.0).abs() < 0.4, "HamD = {got}");
    }

    #[test]
    fn identical_sequences_count_zero() {
        let p = [0.3, -0.7, 1.2];
        let w = vec![1.0; 3];
        let got = evaluate_dc(&config(), &p, &p, 0.2, &w).unwrap();
        assert!(got.abs() < 0.3, "HamD(p, p) = {got}");
    }

    #[test]
    fn all_mismatches_count_length() {
        let p = [5.0, 5.0, 5.0];
        let q = [-5.0, -5.0, -5.0];
        let w = vec![1.0; 3];
        let got = evaluate_dc(&config(), &p, &q, 0.2, &w).unwrap();
        assert!((got - 3.0).abs() < 0.4, "HamD = {got}");
    }

    #[test]
    fn weighted_mismatches() {
        // Mismatch at positions 0 and 2, weights 2 and 0.5 -> 2.5.
        let p = [5.0, 0.0, 5.0];
        let q = [-5.0, 0.0, -5.0];
        let w = vec![2.0, 1.0, 0.5];
        let got = evaluate_dc(&config(), &p, &q, 0.2, &w).unwrap();
        assert!((got - 2.5).abs() < 0.4, "weighted HamD = {got}");
    }
}
