//! Shared analog sub-circuits used by every PE (Section 3.1: the PE is a
//! superset of nine analog subtractors, two transmission gates, five diodes,
//! one comparator, one buffer and one converter).
//!
//! All resistances are memristors programmed to the nominal HRS value, or to
//! analog ratios for the weighted variants.

use mda_spice::{DiodeModel, Netlist, NodeId, OpampModel, Waveform};

/// The diode model used inside PEs: a higher saturation current than the
/// generic default shrinks the forward drop at the µA-level currents the
/// memristor networks draw (~0.5 mV at 5 µA), approximating the paper's
/// ideal zero-threshold diode while keeping Newton stable.
pub fn pe_diode_model() -> DiodeModel {
    DiodeModel {
        is_sat: 1.0e-6,
        vt: 0.3e-3,
        gmin: 1.0e-12,
    }
}

/// Shared rail nodes every PE connects to.
#[derive(Debug, Clone, Copy)]
pub struct Rails {
    /// Supply voltage, V.
    pub vcc: f64,
    /// The `Vcc` rail node.
    pub vcc_node: NodeId,
    /// The `Vcc/2` rail node.
    pub vcc_half_node: NodeId,
    /// The `Vstep` rail node.
    pub v_step_node: NodeId,
    /// The `Vthre` rail node.
    pub v_thre_node: NodeId,
    /// Nominal memristor resistance, Ω.
    pub r: f64,
}

impl Rails {
    /// Creates the rail sources in a netlist.
    pub fn install(net: &mut Netlist, vcc: f64, v_step: f64, v_thre: f64, r: f64) -> Self {
        let vcc_node = net.node("rail_vcc");
        net.voltage_source(vcc_node, Netlist::GROUND, Waveform::Dc(vcc));
        let vcc_half_node = net.node("rail_vcc_half");
        net.voltage_source(vcc_half_node, Netlist::GROUND, Waveform::Dc(vcc / 2.0));
        let v_step_node = net.node("rail_vstep");
        net.voltage_source(v_step_node, Netlist::GROUND, Waveform::Dc(v_step));
        let v_thre_node = net.node("rail_vthre");
        net.voltage_source(v_thre_node, Netlist::GROUND, Waveform::Dc(v_thre));
        Rails {
            vcc,
            vcc_node,
            vcc_half_node,
            v_step_node,
            v_thre_node,
            r,
        }
    }

    /// The op-amp model used for PE subtractors/adders (Table 1).
    pub fn opamp(&self) -> OpampModel {
        OpampModel {
            gain: 1.0e4,
            gbw: 50.0e9,
            vmin: -self.vcc,
            vmax: self.vcc,
            input_offset: 0.0,
        }
    }

    /// The comparator model (rails `[0, Vcc]`).
    pub fn comparator(&self) -> OpampModel {
        OpampModel::comparator(self.vcc)
    }
}

/// Unity-gain analog subtractor: `out = v1 − v2` (difference amplifier with
/// four equal memristors).
pub fn subtractor(net: &mut Netlist, rails: &Rails, v1: NodeId, v2: NodeId) -> NodeId {
    weighted_subtractor(net, rails, v1, v2, 1.0)
}

/// Weighted analog subtractor: `out = w·(v1 − v2)`.
///
/// Realised with memristor ratios `R1/R2 = 1/w` on the non-inverting divider
/// and `R4/R3 = w` on the feedback pair (our difference-amp topology's
/// equivalent of the paper's `M1/M2 = (2 − w)/w` configuration).
///
/// # Panics
///
/// Panics if `w` is not positive/finite.
pub fn weighted_subtractor(
    net: &mut Netlist,
    rails: &Rails,
    v1: NodeId,
    v2: NodeId,
    w: f64,
) -> NodeId {
    assert!(w.is_finite() && w > 0.0, "weight must be positive");
    let vp = net.node("sub_vp");
    let vm = net.node("sub_vm");
    let out = net.node("sub_out");
    let r = rails.r;
    // Non-inverting divider: R1 = r/w from v1, R2 = r to ground.
    net.memristor(v1, vp, r / w);
    net.memristor(vp, Netlist::GROUND, r);
    // Inverting path: R3 = r from v2, R4 = w*r feedback.
    net.memristor(v2, vm, r);
    net.memristor(vm, out, w * r);
    net.opamp(vp, vm, out, rails.opamp());
    out
}

/// Two-input non-inverting summer with a subtracted term:
/// `out = a + b − c` (the DTW/EdD "addition module" shape).
pub fn sum_minus(net: &mut Netlist, rails: &Rails, a: NodeId, b: NodeId, c: NodeId) -> NodeId {
    let vp = net.node("sum_vp");
    let vm = net.node("sum_vm");
    let out = net.node("sum_out");
    let r = rails.r;
    // V+ = (a + b)/2 through two equal memristors.
    net.memristor(a, vp, r);
    net.memristor(b, vp, r);
    // V− path: c through r, feedback r -> gain 2 on V+, −1 on c.
    net.memristor(c, vm, r);
    net.memristor(vm, out, r);
    net.opamp(vp, vm, out, rails.opamp());
    out
}

/// Two-input adder: `out = a + b`.
pub fn adder2(net: &mut Netlist, rails: &Rails, a: NodeId, b: NodeId) -> NodeId {
    sum_minus(net, rails, a, b, Netlist::GROUND)
}

/// Diode OR: `out ≈ max(inputs…)` with a memristor pull-down load, followed
/// by a unity-gain buffer.
///
/// The buffer is essential: the diode node is high-impedance (diodes block
/// reverse current), so a downstream resistive divider would back-drive it —
/// this is the buffer the paper draws inside the PE of Fig. 2.
///
/// # Panics
///
/// Panics if `inputs` is empty.
pub fn diode_max(net: &mut Netlist, rails: &Rails, inputs: &[NodeId]) -> NodeId {
    let raw = diode_max_unbuffered(net, rails, inputs);
    buffer(net, rails, raw)
}

/// Diode OR without the output buffer — for nodes that only feed other
/// diodes (the HauD column chain) where the extra op-amp is unnecessary.
///
/// # Panics
///
/// Panics if `inputs` is empty.
pub fn diode_max_unbuffered(net: &mut Netlist, rails: &Rails, inputs: &[NodeId]) -> NodeId {
    assert!(!inputs.is_empty(), "diode max needs at least one input");
    let out = net.node("max_out");
    for &input in inputs {
        net.diode_with(input, out, pe_diode_model());
    }
    net.memristor(out, Netlist::GROUND, rails.r);
    out
}

/// The absolution module (Fig. 2): `out = w·|p − q|`, built from two
/// opposed weighted subtractors whose outputs are diode-ORed.
pub fn abs_module(net: &mut Netlist, rails: &Rails, p: NodeId, q: NodeId, w: f64) -> NodeId {
    let pq = weighted_subtractor(net, rails, p, q, w);
    let qp = weighted_subtractor(net, rails, q, p, w);
    diode_max(net, rails, &[pq, qp])
}

/// A comparator producing `Vcc` when `v(plus) > v(minus)`, else 0.
pub fn comparator(net: &mut Netlist, rails: &Rails, plus: NodeId, minus: NodeId) -> NodeId {
    let out = net.node("cmp_out");
    net.opamp(plus, minus, out, rails.comparator());
    net.memristor(out, Netlist::GROUND, rails.r);
    out
}

/// A unity-gain buffer (Table 1 op-amp in voltage-follower connection).
pub fn buffer(net: &mut Netlist, rails: &Rails, input: NodeId) -> NodeId {
    net.buffer(input, rails.opamp())
}

/// The row structure's analog adder (Fig. 4(b)): an inverting summer over
/// weighted memristors followed by a unity inverter, so
/// `out = Σ wᵢ·vᵢ`. The weights are the `M0/Mk` ratios of Section 3.2.5.
///
/// # Panics
///
/// Panics if `inputs` is empty or weights don't align with inputs.
pub fn analog_adder(
    net: &mut Netlist,
    rails: &Rails,
    inputs: &[NodeId],
    weights: &[f64],
) -> NodeId {
    assert!(!inputs.is_empty(), "adder needs at least one input");
    assert_eq!(inputs.len(), weights.len(), "one weight per input");
    let r = rails.r;
    // Stage 1: inverting summer, virtual ground at vm.
    let vm = net.node("add_vm");
    let stage1 = net.node("add_stage1");
    for (&input, &w) in inputs.iter().zip(weights) {
        assert!(w.is_finite() && w > 0.0, "weights must be positive");
        net.memristor(input, vm, r / w);
    }
    net.memristor(vm, stage1, r);
    net.opamp(Netlist::GROUND, vm, stage1, rails.opamp());
    // Stage 2: unity inverter.
    let vm2 = net.node("inv_vm");
    let out = net.node("add_out");
    net.memristor(stage1, vm2, r);
    net.memristor(vm2, out, r);
    net.opamp(Netlist::GROUND, vm2, out, rails.opamp());
    out
}

/// A 2-way transmission-gate multiplexer: `out = a` when the control is
/// high, `b` otherwise.
pub fn tg_mux(net: &mut Netlist, rails: &Rails, a: NodeId, b: NodeId, ctrl: NodeId) -> NodeId {
    let out = net.node("mux_out");
    let mid = rails.vcc / 2.0;
    net.vc_switch(a, out, ctrl, mid, true);
    net.vc_switch(b, out, ctrl, mid, false);
    net.memristor(out, Netlist::GROUND, rails.r * 10.0);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use mda_spice::Waveform;

    fn setup() -> (Netlist, Rails) {
        let mut net = Netlist::new();
        let rails = Rails::install(&mut net, 1.0, 10.0e-3, 2.0e-3, 100.0e3);
        (net, rails)
    }

    fn dc_input(net: &mut Netlist, name: &str, v: f64) -> NodeId {
        let n = net.node(name);
        net.voltage_source(n, Netlist::GROUND, Waveform::Dc(v));
        n
    }

    #[test]
    fn subtractor_unity() {
        let (mut net, rails) = setup();
        let a = dc_input(&mut net, "a", 0.40);
        let b = dc_input(&mut net, "b", 0.15);
        let out = subtractor(&mut net, &rails, a, b);
        let v = net.dc().unwrap();
        assert!(
            (v[out.index()] - 0.25).abs() < 2e-3,
            "sub = {}",
            v[out.index()]
        );
    }

    #[test]
    fn subtractor_weighted() {
        let (mut net, rails) = setup();
        let a = dc_input(&mut net, "a", 0.30);
        let b = dc_input(&mut net, "b", 0.10);
        let out = weighted_subtractor(&mut net, &rails, a, b, 0.5);
        let v = net.dc().unwrap();
        assert!(
            (v[out.index()] - 0.10).abs() < 2e-3,
            "w*sub = {}",
            v[out.index()]
        );
    }

    #[test]
    fn sum_minus_three_terms() {
        let (mut net, rails) = setup();
        let a = dc_input(&mut net, "a", 0.20);
        let b = dc_input(&mut net, "b", 0.30);
        let c = dc_input(&mut net, "c", 0.15);
        let out = sum_minus(&mut net, &rails, a, b, c);
        let v = net.dc().unwrap();
        assert!(
            (v[out.index()] - 0.35).abs() < 2e-3,
            "a+b-c = {}",
            v[out.index()]
        );
    }

    #[test]
    fn diode_max_selects_largest() {
        let (mut net, rails) = setup();
        let xs = [0.12, 0.31, 0.07];
        let nodes: Vec<NodeId> = xs
            .iter()
            .enumerate()
            .map(|(i, &x)| dc_input(&mut net, &format!("x{i}"), x))
            .collect();
        let out = diode_max(&mut net, &rails, &nodes);
        let v = net.dc().unwrap();
        assert!(
            (v[out.index()] - 0.31).abs() < 6e-3,
            "max = {}",
            v[out.index()]
        );
    }

    #[test]
    fn abs_module_both_signs() {
        let (mut net, rails) = setup();
        let p = dc_input(&mut net, "p", 0.10);
        let q = dc_input(&mut net, "q", 0.34);
        let out = abs_module(&mut net, &rails, p, q, 1.0);
        let v = net.dc().unwrap();
        assert!(
            (v[out.index()] - 0.24).abs() < 6e-3,
            "|p-q| = {}",
            v[out.index()]
        );

        let (mut net, rails) = setup();
        let p = dc_input(&mut net, "p", 0.34);
        let q = dc_input(&mut net, "q", 0.10);
        let out = abs_module(&mut net, &rails, p, q, 1.0);
        let v = net.dc().unwrap();
        assert!(
            (v[out.index()] - 0.24).abs() < 6e-3,
            "|p-q| = {}",
            v[out.index()]
        );
    }

    #[test]
    fn abs_module_equal_inputs_is_zero() {
        let (mut net, rails) = setup();
        let p = dc_input(&mut net, "p", 0.22);
        let q = dc_input(&mut net, "q", 0.22);
        let out = abs_module(&mut net, &rails, p, q, 1.0);
        let v = net.dc().unwrap();
        assert!(v[out.index()].abs() < 5e-3, "|0| = {}", v[out.index()]);
    }

    #[test]
    fn comparator_and_mux() {
        let (mut net, rails) = setup();
        let hi = dc_input(&mut net, "hi", 0.30);
        let lo = dc_input(&mut net, "lo", 0.10);
        let a = dc_input(&mut net, "a", 0.41);
        let b = dc_input(&mut net, "b", 0.13);
        let cmp = comparator(&mut net, &rails, hi, lo);
        let out = tg_mux(&mut net, &rails, a, b, cmp);
        let v = net.dc().unwrap();
        assert!(
            (v[out.index()] - 0.41).abs() < 3e-3,
            "mux = {}",
            v[out.index()]
        );
    }

    #[test]
    fn analog_adder_weighted_sum() {
        let (mut net, rails) = setup();
        let xs = [0.05, 0.10, 0.02];
        let ws = [1.0, 2.0, 1.0];
        let nodes: Vec<NodeId> = xs
            .iter()
            .enumerate()
            .map(|(i, &x)| dc_input(&mut net, &format!("x{i}"), x))
            .collect();
        let out = analog_adder(&mut net, &rails, &nodes, &ws);
        let v = net.dc().unwrap();
        // 0.05 + 0.20 + 0.02 = 0.27.
        assert!(
            (v[out.index()] - 0.27).abs() < 3e-3,
            "sum = {}",
            v[out.index()]
        );
    }

    #[test]
    fn abs_module_transfer_curve_is_v_shaped() {
        // DC-sweep the P input across ±0.4 V with Q fixed at 0: the output
        // must trace |P| — the absolution module's defining transfer curve.
        let (mut net, rails) = setup();
        let p = net.node("p");
        let src = net.voltage_source(p, Netlist::GROUND, Waveform::Dc(0.0));
        let q = dc_input(&mut net, "q", 0.0);
        let out = abs_module(&mut net, &rails, p, q, 1.0);
        let values: Vec<f64> = (-8..=8).map(|i| i as f64 * 0.05).collect();
        let sweep = mda_spice::dc_sweep(&net, src, &values).expect("sweepable");
        for (v, sol) in values.iter().zip(&sweep) {
            let got = sol[out.index()];
            assert!((got - v.abs()).abs() < 6e-3, "abs({v}) read {got}");
        }
    }

    #[test]
    fn buffer_follows() {
        let (mut net, rails) = setup();
        let a = dc_input(&mut net, "a", 0.27);
        let out = buffer(&mut net, &rails, a);
        let v = net.dc().unwrap();
        assert!((v[out.index()] - 0.27).abs() < 1e-3);
    }
}
