//! The Hausdorff-distance PE circuit (Fig. 2(d1)) and the column/converter
//! connection of Fig. 2(d2).
//!
//! Column `j` chains PEs computing `Hau(i, j) = max(Hau(i−1, j),
//! Vcc − w·|P[i] − Q[j]|)`; the converter restores
//! `Vcc − Hau(m, j) = min_i w·|P[i] − Q[j]|`, and the final diode stage
//! outputs the maximum over the columns — the directed Hausdorff distance.

use mda_spice::{Netlist, NodeId, Waveform};

use super::common::{abs_module, diode_max, diode_max_unbuffered, subtractor, Rails};
use crate::config::AcceleratorConfig;
use crate::error::AcceleratorError;

/// Builds one HauD PE; returns the `Hau(i, j)` output node.
///
/// `hau_prev` is the previous PE's output in the column (ground for the
/// first row — `Vcc − w·|PQ|` is always positive, so it wins the max).
pub fn build_pe(
    net: &mut Netlist,
    rails: &Rails,
    p: NodeId,
    q: NodeId,
    hau_prev: NodeId,
    w: f64,
) -> NodeId {
    // Computing module: Vcc − w·|P − Q|.
    let abs = abs_module(net, rails, p, q, w);
    let complement = subtractor(net, rails, rails.vcc_node, abs);
    // Comparing module: running maximum along the column.
    diode_max(net, rails, &[hau_prev, complement])
}

/// Builds the full HauD circuit per Fig. 2(d2); returns
/// `(netlist, output node)` where the output voltage encodes
/// `max_j min_i w·|P[i] − Q[j]|`.
///
/// # Errors
///
/// Returns [`AcceleratorError::EncodingRange`] if a value exceeds the
/// encodable range.
pub fn build_matrix(
    config: &AcceleratorConfig,
    p: &[f64],
    q: &[f64],
    w: f64,
) -> Result<(Netlist, NodeId), AcceleratorError> {
    let mut net = Netlist::new();
    let rails = Rails::install(
        &mut net,
        config.vcc,
        config.v_step,
        config.v_thre,
        config.nominal_resistance,
    );
    let max = config.max_encodable_value();
    let encode = |net: &mut Netlist, name: &str, value: f64| {
        if !value.is_finite() || value.abs() > max {
            return Err(AcceleratorError::EncodingRange { value, max });
        }
        let node = net.node(name);
        net.voltage_source(
            node,
            Netlist::GROUND,
            Waveform::Dc(config.value_to_voltage(value)),
        );
        Ok(node)
    };
    let p_nodes: Vec<NodeId> = p
        .iter()
        .enumerate()
        .map(|(i, &v)| encode(&mut net, &format!("p{i}"), v))
        .collect::<Result<_, _>>()?;
    let q_nodes: Vec<NodeId> = q
        .iter()
        .enumerate()
        .map(|(j, &v)| encode(&mut net, &format!("q{j}"), v))
        .collect::<Result<_, _>>()?;

    // One column per Q element; chain the comparing modules down the column.
    let mut column_minima = Vec::with_capacity(q_nodes.len());
    for &qn in &q_nodes {
        let mut hau = Netlist::GROUND;
        for &pn in &p_nodes {
            hau = build_pe(&mut net, &rails, pn, qn, hau, w);
        }
        // Converter: Vcc − Hau(m, j) = min_i w·|P[i] − Q[j]|.
        let min_j = subtractor(&mut net, &rails, rails.vcc_node, hau);
        column_minima.push(min_j);
    }
    // Final maximum over the column minima. The unbuffered variant is fine
    // here because the ADC presents a high-impedance load, but we buffer for
    // measurement uniformity.
    let _ = diode_max_unbuffered; // see doc note above
    let out = diode_max(&mut net, &rails, &column_minima);
    Ok((net, out))
}

/// Evaluates the device-level HauD circuit at DC and decodes the distance.
///
/// # Errors
///
/// Propagates encoding and simulation errors.
pub fn evaluate_dc(
    config: &AcceleratorConfig,
    p: &[f64],
    q: &[f64],
    w: f64,
) -> Result<f64, AcceleratorError> {
    let (net, out) = build_matrix(config, p, q, w)?;
    let v = net.dc()?;
    Ok(config.voltage_to_value(v[out.index()]))
}

#[cfg(test)]
mod tests {
    use super::*;
    use mda_distance::Hausdorff;

    fn config() -> AcceleratorConfig {
        AcceleratorConfig::paper_defaults()
    }

    #[test]
    fn identical_sets_have_zero_distance() {
        let p = [0.5, 1.0];
        let got = evaluate_dc(&config(), &p, &p, 1.0).unwrap();
        assert!(got.abs() < 0.4, "HauD(p, p) = {got}");
    }

    #[test]
    fn single_pair_is_absolute_difference() {
        let got = evaluate_dc(&config(), &[2.0], &[0.5], 1.0).unwrap();
        assert!((got - 1.5).abs() < 0.4, "HauD = {got}");
    }

    #[test]
    fn matches_digital_directed_hausdorff() {
        let p = [0.0, 4.0];
        let q = [1.0, 3.5, 6.0];
        let expected = Hausdorff::new().distance(&p, &q).unwrap();
        assert_eq!(expected, 2.0);
        let got = evaluate_dc(&config(), &p, &q, 1.0).unwrap();
        assert!(
            (got - expected).abs() < 0.6,
            "analog {got} vs digital {expected}"
        );
    }

    #[test]
    fn subset_has_near_zero_distance() {
        let p = [0.0, 1.0, 2.0];
        let q = [1.0];
        let got = evaluate_dc(&config(), &p, &q, 1.0).unwrap();
        assert!(got.abs() < 0.4, "HauD(subset) = {got}");
    }

    #[test]
    fn weights_scale_distance() {
        let w1 = evaluate_dc(&config(), &[2.0], &[0.0], 1.0).unwrap();
        let w05 = evaluate_dc(&config(), &[2.0], &[0.0], 0.5).unwrap();
        assert!((w05 - w1 / 2.0).abs() < 0.4, "w=1: {w1}, w=0.5: {w05}");
    }
}
