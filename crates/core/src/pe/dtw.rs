//! The DTW PE circuit (Fig. 2(a)) and its matrix-structure assembly.
//!
//! Per Eq. 8 of the paper the minimum of the three neighbour costs is
//! computed as a *maximum* (which diodes solve naturally) of the
//! complemented values `Vcc/2 − D`:
//!
//! ```text
//! D[i][j] = w·|P − Q| + Vcc/2 − max(Vcc/2 − D_left, Vcc/2 − D_up, Vcc/2 − D_diag)
//! ```

use mda_spice::{Netlist, NodeId, Waveform};

use super::common::{abs_module, diode_max, subtractor, sum_minus, Rails};
use crate::config::AcceleratorConfig;
use crate::error::AcceleratorError;

/// Input nodes of one DTW PE.
#[derive(Debug, Clone, Copy)]
pub struct DtwPeInputs {
    /// Voltage encoding `P[i]`.
    pub p: NodeId,
    /// Voltage encoding `Q[j]`.
    pub q: NodeId,
    /// Neighbour cost `D[i][j−1]`.
    pub d_left: NodeId,
    /// Neighbour cost `D[i−1][j]`.
    pub d_up: NodeId,
    /// Neighbour cost `D[i−1][j−1]`.
    pub d_diag: NodeId,
}

/// Builds one DTW PE; returns the `D[i][j]` output node.
///
/// Uses 6 op-amps (2 absolution, 3 complement subtractors, 1 addition) and
/// 5 diodes, matching the Fig. 2(a) module inventory.
pub fn build_pe(net: &mut Netlist, rails: &Rails, inputs: DtwPeInputs, w: f64) -> NodeId {
    // Absolution module: w·|P − Q|.
    let abs = abs_module(net, rails, inputs.p, inputs.q, w);
    // Minimum module: complement each neighbour then diode-max.
    let c_left = subtractor(net, rails, rails.vcc_half_node, inputs.d_left);
    let c_up = subtractor(net, rails, rails.vcc_half_node, inputs.d_up);
    let c_diag = subtractor(net, rails, rails.vcc_half_node, inputs.d_diag);
    let vmax = diode_max(net, rails, &[c_left, c_up, c_diag]);
    // Addition module: |PQ| + Vcc/2 − vmax = |PQ| + min(D…).
    sum_minus(net, rails, abs, rails.vcc_half_node, vmax)
}

/// Builds the full matrix-structure DTW circuit for two (short) sequences
/// and returns `(netlist, output node)`. Boundary "infinity" is represented
/// by the `Vcc/2` rail — the largest representable cost, which never wins
/// the complemented maximum.
///
/// Intended for device-level validation at small lengths; array-scale runs
/// use the behavioural engine in [`crate::analog`].
///
/// # Errors
///
/// Returns [`AcceleratorError::EncodingRange`] if a value exceeds the
/// encodable range.
pub fn build_matrix(
    config: &AcceleratorConfig,
    p: &[f64],
    q: &[f64],
    w: f64,
) -> Result<(Netlist, NodeId), AcceleratorError> {
    let mut net = Netlist::new();
    let rails = Rails::install(
        &mut net,
        config.vcc,
        config.v_step,
        config.v_thre,
        config.nominal_resistance,
    );
    let encode = |net: &mut Netlist, name: &str, value: f64| -> Result<NodeId, AcceleratorError> {
        let max = config.max_encodable_value();
        if !value.is_finite() || value.abs() > max {
            return Err(AcceleratorError::EncodingRange { value, max });
        }
        let node = net.node(name);
        net.voltage_source(
            node,
            Netlist::GROUND,
            Waveform::Dc(config.value_to_voltage(value)),
        );
        Ok(node)
    };
    let p_nodes: Vec<NodeId> = p
        .iter()
        .enumerate()
        .map(|(i, &v)| encode(&mut net, &format!("p{i}"), v))
        .collect::<Result<_, _>>()?;
    let q_nodes: Vec<NodeId> = q
        .iter()
        .enumerate()
        .map(|(j, &v)| encode(&mut net, &format!("q{j}"), v))
        .collect::<Result<_, _>>()?;

    let inf = rails.vcc_half_node;
    let zero = Netlist::GROUND;
    let (m, n) = (p.len(), q.len());
    // d[i][j] for the DP boundary: row/col 0.
    let mut d = vec![vec![zero; n + 1]; m + 1];
    d[0][1..].fill(inf);
    for row in d.iter_mut().skip(1) {
        row[0] = inf;
    }
    d[0][0] = zero;
    for i in 1..=m {
        for j in 1..=n {
            d[i][j] = build_pe(
                &mut net,
                &rails,
                DtwPeInputs {
                    p: p_nodes[i - 1],
                    q: q_nodes[j - 1],
                    d_left: d[i][j - 1],
                    d_up: d[i - 1][j],
                    d_diag: d[i - 1][j - 1],
                },
                w,
            );
        }
    }
    Ok((net, d[m][n]))
}

/// Convenience: evaluates the device-level DTW circuit at DC and decodes
/// the distance value.
///
/// # Errors
///
/// Propagates encoding and simulation errors.
pub fn evaluate_dc(
    config: &AcceleratorConfig,
    p: &[f64],
    q: &[f64],
    w: f64,
) -> Result<f64, AcceleratorError> {
    let (net, out) = build_matrix(config, p, q, w)?;
    let v = net.dc()?;
    Ok(config.voltage_to_value(v[out.index()]))
}

#[cfg(test)]
mod tests {
    use super::*;
    use mda_distance::{Distance, Dtw};

    fn config() -> AcceleratorConfig {
        AcceleratorConfig::paper_defaults()
    }

    #[test]
    fn single_pe_matches_recurrence() {
        // A 1x1 DTW: D = |p - q| + min(inf, inf, 0) = |p - q|.
        let d = evaluate_dc(&config(), &[1.5], &[0.5], 1.0).unwrap();
        assert!((d - 1.0).abs() < 0.2, "DTW(1x1) = {d}");
    }

    #[test]
    fn two_by_two_matches_digital() {
        let p = [0.0, 2.0];
        let q = [1.0, 2.0];
        let expected = Dtw::new().evaluate(&p, &q).unwrap();
        let got = evaluate_dc(&config(), &p, &q, 1.0).unwrap();
        assert!(
            (got - expected).abs() < 0.35,
            "analog {got} vs digital {expected}"
        );
    }

    #[test]
    fn three_by_three_matches_digital() {
        let p = [0.0, 1.0, 3.0];
        let q = [0.5, 1.5, 2.5];
        let expected = Dtw::new().evaluate(&p, &q).unwrap();
        let got = evaluate_dc(&config(), &p, &q, 1.0).unwrap();
        let rel = (got - expected).abs() / expected.max(1.0);
        assert!(rel < 0.1, "analog {got} vs digital {expected} (rel {rel})");
    }

    #[test]
    fn identical_sequences_near_zero() {
        let p = [0.5, 1.0, 0.5];
        let got = evaluate_dc(&config(), &p, &p, 1.0).unwrap();
        assert!(got.abs() < 0.5, "DTW(p, p) = {got}");
    }

    #[test]
    fn weighted_pe_scales_cost() {
        let unweighted = evaluate_dc(&config(), &[2.0], &[0.0], 1.0).unwrap();
        let half = evaluate_dc(&config(), &[2.0], &[0.0], 0.5).unwrap();
        assert!(
            (half - unweighted / 2.0).abs() < 0.3,
            "w=1: {unweighted}, w=0.5: {half}"
        );
    }

    #[test]
    fn out_of_range_value_rejected() {
        assert!(matches!(
            evaluate_dc(&config(), &[30.0], &[0.0], 1.0),
            Err(AcceleratorError::EncodingRange { .. })
        ));
    }
}
