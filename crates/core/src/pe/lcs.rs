//! The LCS PE circuit (Fig. 2(b)) and its matrix-structure assembly.
//!
//! The selecting module compares `|P − Q|` with `Vthre` and routes either
//! the match path (`L_diag + w·Vstep`) or the no-match path
//! (`max(L_left, L_up)`) to the output through a pair of transmission gates.

use mda_spice::{Netlist, NodeId, Waveform};

use super::common::{
    abs_module, adder2, comparator, diode_max, tg_mux, weighted_subtractor, Rails,
};
use crate::config::AcceleratorConfig;
use crate::error::AcceleratorError;

/// Input nodes of one LCS PE.
#[derive(Debug, Clone, Copy)]
pub struct LcsPeInputs {
    /// Voltage encoding `P[i]`.
    pub p: NodeId,
    /// Voltage encoding `Q[j]`.
    pub q: NodeId,
    /// Neighbour value `L[i][j−1]`.
    pub l_left: NodeId,
    /// Neighbour value `L[i−1][j]`.
    pub l_up: NodeId,
    /// Neighbour value `L[i−1][j−1]`.
    pub l_diag: NodeId,
}

/// Builds one LCS PE; returns the `L[i][j]` output node.
pub fn build_pe(net: &mut Netlist, rails: &Rails, inputs: LcsPeInputs, w: f64) -> NodeId {
    // Selecting module: |P − Q| vs Vthre. Comparator is HIGH on a match.
    let abs = abs_module(net, rails, inputs.p, inputs.q, 1.0);
    let is_match = comparator(net, rails, rails.v_thre_node, abs);
    // Computing module, match path: L_diag + w·Vstep.
    let step = if (w - 1.0).abs() < 1e-12 {
        rails.v_step_node
    } else {
        weighted_subtractor(net, rails, rails.v_step_node, Netlist::GROUND, w)
    };
    let match_path = adder2(net, rails, inputs.l_diag, step);
    // No-match path: max(L_left, L_up) through diodes.
    let no_match_path = diode_max(net, rails, &[inputs.l_left, inputs.l_up]);
    // TG pair selects the active path.
    tg_mux(net, rails, match_path, no_match_path, is_match)
}

/// Builds the full matrix-structure LCS circuit; returns
/// `(netlist, output node)`. The DP boundary `L = 0` is the ground rail.
///
/// # Errors
///
/// Returns [`AcceleratorError::EncodingRange`] if a value exceeds the
/// encodable range.
pub fn build_matrix(
    config: &AcceleratorConfig,
    p: &[f64],
    q: &[f64],
    threshold: f64,
    w: f64,
) -> Result<(Netlist, NodeId), AcceleratorError> {
    let mut net = Netlist::new();
    let rails = Rails::install(
        &mut net,
        config.vcc,
        config.v_step,
        config.value_to_voltage(threshold),
        config.nominal_resistance,
    );
    let max = config.max_encodable_value();
    let encode = |net: &mut Netlist, name: &str, value: f64| {
        if !value.is_finite() || value.abs() > max {
            return Err(AcceleratorError::EncodingRange { value, max });
        }
        let node = net.node(name);
        net.voltage_source(
            node,
            Netlist::GROUND,
            Waveform::Dc(config.value_to_voltage(value)),
        );
        Ok(node)
    };
    let p_nodes: Vec<NodeId> = p
        .iter()
        .enumerate()
        .map(|(i, &v)| encode(&mut net, &format!("p{i}"), v))
        .collect::<Result<_, _>>()?;
    let q_nodes: Vec<NodeId> = q
        .iter()
        .enumerate()
        .map(|(j, &v)| encode(&mut net, &format!("q{j}"), v))
        .collect::<Result<_, _>>()?;

    let (m, n) = (p.len(), q.len());
    let zero = Netlist::GROUND;
    let mut l = vec![vec![zero; n + 1]; m + 1];
    for i in 1..=m {
        for j in 1..=n {
            l[i][j] = build_pe(
                &mut net,
                &rails,
                LcsPeInputs {
                    p: p_nodes[i - 1],
                    q: q_nodes[j - 1],
                    l_left: l[i][j - 1],
                    l_up: l[i - 1][j],
                    l_diag: l[i - 1][j - 1],
                },
                w,
            );
        }
    }
    Ok((net, l[m][n]))
}

/// Evaluates the device-level LCS circuit at DC, decoding the match count
/// by dividing the output voltage by `Vstep`.
///
/// # Errors
///
/// Propagates encoding and simulation errors.
pub fn evaluate_dc(
    config: &AcceleratorConfig,
    p: &[f64],
    q: &[f64],
    threshold: f64,
    w: f64,
) -> Result<f64, AcceleratorError> {
    let (net, out) = build_matrix(config, p, q, threshold, w)?;
    let v = net.dc()?;
    Ok(v[out.index()] / config.v_step)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mda_distance::Lcs;

    fn config() -> AcceleratorConfig {
        AcceleratorConfig::paper_defaults()
    }

    #[test]
    fn single_match_counts_one() {
        let got = evaluate_dc(&config(), &[1.0], &[1.0], 0.2, 1.0).unwrap();
        assert!((got - 1.0).abs() < 0.3, "LCS(match) = {got}");
    }

    #[test]
    fn single_mismatch_counts_zero() {
        let got = evaluate_dc(&config(), &[1.0], &[5.0], 0.2, 1.0).unwrap();
        assert!(got.abs() < 0.3, "LCS(mismatch) = {got}");
    }

    #[test]
    fn three_by_three_matches_digital() {
        let p = [0.0, 1.0, 2.0];
        let q = [0.0, 1.1, 2.0];
        let expected = Lcs::new(0.2).similarity(&p, &q).unwrap();
        let got = evaluate_dc(&config(), &p, &q, 0.2, 1.0).unwrap();
        assert!(
            (got - expected).abs() < 0.5,
            "analog {got} vs digital {expected}"
        );
    }

    #[test]
    fn mixed_sequence_accumulates_matches() {
        // Two of three aligned positions match within the threshold.
        let p = [0.0, 1.0, 4.0];
        let q = [0.0, 1.0, -4.0];
        let expected = Lcs::new(0.2).similarity(&p, &q).unwrap();
        assert_eq!(expected, 2.0);
        let got = evaluate_dc(&config(), &p, &q, 0.2, 1.0).unwrap();
        assert!((got - 2.0).abs() < 0.5, "LCS = {got}");
    }

    #[test]
    fn weighted_match_contribution() {
        // w = 0.5 halves each match's Vstep contribution.
        let got = evaluate_dc(&config(), &[1.0], &[1.0], 0.2, 0.5).unwrap();
        assert!((got - 0.5).abs() < 0.2, "weighted LCS = {got}");
    }
}
