//! The edit-distance PE circuit (Fig. 2(c)) and its matrix-structure
//! assembly.
//!
//! Three computing paths produce the candidate costs, a comparator decides
//! whether the substitution path pays `Vstep`, and the minimum module picks
//! the smallest through the complement-and-diode-max trick (with the output
//! buffer the paper adds so values below `Vcc/2` are representable).

use mda_spice::{Netlist, NodeId, Waveform};

use super::common::{abs_module, adder2, comparator, diode_max, subtractor, tg_mux, Rails};
use crate::config::AcceleratorConfig;
use crate::error::AcceleratorError;

/// Input nodes of one EdD PE.
#[derive(Debug, Clone, Copy)]
pub struct EditPeInputs {
    /// Voltage encoding `P[i]`.
    pub p: NodeId,
    /// Voltage encoding `Q[j]`.
    pub q: NodeId,
    /// Neighbour cost `E[i][j−1]`.
    pub e_left: NodeId,
    /// Neighbour cost `E[i−1][j]`.
    pub e_up: NodeId,
    /// Neighbour cost `E[i−1][j−1]`.
    pub e_diag: NodeId,
}

/// Builds one EdD PE; returns the `E[i][j]` output node.
pub fn build_pe(net: &mut Netlist, rails: &Rails, inputs: EditPeInputs) -> NodeId {
    // Match detection (shared with the first computing path).
    let abs = abs_module(net, rails, inputs.p, inputs.q, 1.0);
    let is_match = comparator(net, rails, rails.v_thre_node, abs);
    // Path 1 (substitution): E_diag on a match, E_diag + Vstep otherwise.
    let diag_plus = adder2(net, rails, inputs.e_diag, rails.v_step_node);
    let p1 = tg_mux(net, rails, inputs.e_diag, diag_plus, is_match);
    // Paths 2 and 3 (delete/insert): always pay Vstep.
    let p2 = adder2(net, rails, inputs.e_up, rails.v_step_node);
    let p3 = adder2(net, rails, inputs.e_left, rails.v_step_node);
    // Minimum module: complement, diode-max (internally buffered), restore.
    let c1 = subtractor(net, rails, rails.vcc_half_node, p1);
    let c2 = subtractor(net, rails, rails.vcc_half_node, p2);
    let c3 = subtractor(net, rails, rails.vcc_half_node, p3);
    let vmax = diode_max(net, rails, &[c1, c2, c3]);
    subtractor(net, rails, rails.vcc_half_node, vmax)
}

/// Builds the full matrix-structure EdD circuit; returns
/// `(netlist, output node)`. Boundary costs `E[i][0] = i·Vstep` and
/// `E[0][j] = j·Vstep` are driven by dedicated sources.
///
/// # Errors
///
/// Returns [`AcceleratorError::EncodingRange`] if a value exceeds the
/// encodable range.
pub fn build_matrix(
    config: &AcceleratorConfig,
    p: &[f64],
    q: &[f64],
    threshold: f64,
) -> Result<(Netlist, NodeId), AcceleratorError> {
    let mut net = Netlist::new();
    let rails = Rails::install(
        &mut net,
        config.vcc,
        config.v_step,
        config.value_to_voltage(threshold),
        config.nominal_resistance,
    );
    let max = config.max_encodable_value();
    let encode = |net: &mut Netlist, name: &str, value: f64| {
        if !value.is_finite() || value.abs() > max {
            return Err(AcceleratorError::EncodingRange { value, max });
        }
        let node = net.node(name);
        net.voltage_source(
            node,
            Netlist::GROUND,
            Waveform::Dc(config.value_to_voltage(value)),
        );
        Ok(node)
    };
    let p_nodes: Vec<NodeId> = p
        .iter()
        .enumerate()
        .map(|(i, &v)| encode(&mut net, &format!("p{i}"), v))
        .collect::<Result<_, _>>()?;
    let q_nodes: Vec<NodeId> = q
        .iter()
        .enumerate()
        .map(|(j, &v)| encode(&mut net, &format!("q{j}"), v))
        .collect::<Result<_, _>>()?;

    let (m, n) = (p.len(), q.len());
    let boundary = |net: &mut Netlist, name: String, steps: usize| {
        let node = net.node(&name);
        net.voltage_source(
            node,
            Netlist::GROUND,
            Waveform::Dc(steps as f64 * config.v_step),
        );
        node
    };
    let mut e = vec![vec![Netlist::GROUND; n + 1]; m + 1];
    for (j, cell) in e[0].iter_mut().enumerate().skip(1) {
        *cell = boundary(&mut net, format!("b_top{j}"), j);
    }
    for (i, row) in e.iter_mut().enumerate().skip(1) {
        row[0] = boundary(&mut net, format!("b_left{i}"), i);
    }
    for i in 1..=m {
        for j in 1..=n {
            e[i][j] = build_pe(
                &mut net,
                &rails,
                EditPeInputs {
                    p: p_nodes[i - 1],
                    q: q_nodes[j - 1],
                    e_left: e[i][j - 1],
                    e_up: e[i - 1][j],
                    e_diag: e[i - 1][j - 1],
                },
            );
        }
    }
    Ok((net, e[m][n]))
}

/// Evaluates the device-level EdD circuit at DC, decoding the operation
/// count by dividing by `Vstep`.
///
/// # Errors
///
/// Propagates encoding and simulation errors.
pub fn evaluate_dc(
    config: &AcceleratorConfig,
    p: &[f64],
    q: &[f64],
    threshold: f64,
) -> Result<f64, AcceleratorError> {
    let (net, out) = build_matrix(config, p, q, threshold)?;
    let v = net.dc()?;
    Ok(v[out.index()] / config.v_step)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mda_distance::EditDistance;

    fn config() -> AcceleratorConfig {
        AcceleratorConfig::paper_defaults()
    }

    #[test]
    fn equal_elements_cost_zero() {
        let got = evaluate_dc(&config(), &[1.0], &[1.0], 0.2).unwrap();
        assert!(got.abs() < 0.35, "EdD(match) = {got}");
    }

    #[test]
    fn substitution_costs_one() {
        let got = evaluate_dc(&config(), &[1.0], &[5.0], 0.2).unwrap();
        assert!((got - 1.0).abs() < 0.35, "EdD(sub) = {got}");
    }

    #[test]
    fn two_by_three_matches_digital() {
        let p = [0.0, 1.0];
        let q = [0.0, 1.0, 2.0];
        let expected = EditDistance::new(0.2).distance(&p, &q).unwrap();
        assert_eq!(expected, 1.0); // one insertion
        let got = evaluate_dc(&config(), &p, &q, 0.2).unwrap();
        assert!((got - 1.0).abs() < 0.5, "EdD = {got}");
    }

    #[test]
    fn three_by_three_matches_digital() {
        let p = [0.0, 2.0, 4.0];
        let q = [0.0, 2.0, -4.0];
        let expected = EditDistance::new(0.2).distance(&p, &q).unwrap();
        assert_eq!(expected, 1.0);
        let got = evaluate_dc(&config(), &p, &q, 0.2).unwrap();
        assert!(
            (got - expected).abs() < 0.5,
            "analog {got} vs digital {expected}"
        );
    }
}
