//! The Manhattan-distance PE circuit (Fig. 2(f)) — the subset of the HamD
//! PE — and its row-structure assembly.
//!
//! Each PE is just the absolution module: `D[i] = w·|P[i] − Q[i]|`; the row
//! structure's analog adder produces `Σ w_i·|P[i] − Q[i]|`.

use mda_spice::{Netlist, NodeId, Waveform};

use super::common::{abs_module, analog_adder, Rails};
use crate::config::AcceleratorConfig;
use crate::error::AcceleratorError;

/// Builds one MD PE; returns the `D[i]` output node.
pub fn build_pe(net: &mut Netlist, rails: &Rails, p: NodeId, q: NodeId, w: f64) -> NodeId {
    abs_module(net, rails, p, q, w)
}

/// Builds the full row-structure MD circuit; returns
/// `(netlist, output node)` whose voltage encodes the Manhattan distance.
///
/// Per-element weights can be applied either inside the PE (`w` in
/// [`build_pe`]) or at the adder (`M0/Mk` ratios); this builder uses the
/// adder ratios, matching Section 3.2.6.
///
/// # Errors
///
/// Returns [`AcceleratorError::EncodingRange`] for unencodable values.
///
/// # Panics
///
/// Panics if `p` and `q` have different lengths or weights don't align.
pub fn build_row(
    config: &AcceleratorConfig,
    p: &[f64],
    q: &[f64],
    weights: &[f64],
) -> Result<(Netlist, NodeId), AcceleratorError> {
    assert_eq!(p.len(), q.len(), "row structure requires equal lengths");
    assert_eq!(p.len(), weights.len(), "one weight per element");
    let mut net = Netlist::new();
    let rails = Rails::install(
        &mut net,
        config.vcc,
        config.v_step,
        config.v_thre,
        config.nominal_resistance,
    );
    let max = config.max_encodable_value();
    let encode = |net: &mut Netlist, name: &str, value: f64| {
        if !value.is_finite() || value.abs() > max {
            return Err(AcceleratorError::EncodingRange { value, max });
        }
        let node = net.node(name);
        net.voltage_source(
            node,
            Netlist::GROUND,
            Waveform::Dc(config.value_to_voltage(value)),
        );
        Ok(node)
    };
    let mut pe_outputs = Vec::with_capacity(p.len());
    for (i, (&pv, &qv)) in p.iter().zip(q).enumerate() {
        let pn = encode(&mut net, &format!("p{i}"), pv)?;
        let qn = encode(&mut net, &format!("q{i}"), qv)?;
        pe_outputs.push(build_pe(&mut net, &rails, pn, qn, 1.0));
    }
    let out = analog_adder(&mut net, &rails, &pe_outputs, weights);
    Ok((net, out))
}

/// Evaluates the device-level MD circuit at DC and decodes the distance.
///
/// # Errors
///
/// Propagates encoding and simulation errors.
pub fn evaluate_dc(
    config: &AcceleratorConfig,
    p: &[f64],
    q: &[f64],
    weights: &[f64],
) -> Result<f64, AcceleratorError> {
    let (net, out) = build_row(config, p, q, weights)?;
    let v = net.dc()?;
    Ok(config.voltage_to_value(v[out.index()]))
}

#[cfg(test)]
mod tests {
    use super::*;
    use mda_distance::Manhattan;

    fn config() -> AcceleratorConfig {
        AcceleratorConfig::paper_defaults()
    }

    #[test]
    fn single_element_absolute_difference() {
        let got = evaluate_dc(&config(), &[2.0], &[0.5], &[1.0]).unwrap();
        assert!((got - 1.5).abs() < 0.3, "MD = {got}");
    }

    #[test]
    fn matches_digital_manhattan() {
        let p = [0.0, 2.0, -1.0, 0.5];
        let q = [1.0, 0.5, -0.5, 0.5];
        let expected = Manhattan::new().distance(&p, &q).unwrap();
        let got = evaluate_dc(&config(), &p, &q, &[1.0; 4]).unwrap();
        let abs_err = (got - expected).abs();
        assert!(abs_err < 0.5, "analog {got} vs digital {expected}");
    }

    #[test]
    fn identical_sequences_near_zero() {
        let p = [0.1, 0.9, -0.4];
        let got = evaluate_dc(&config(), &p, &p, &[1.0; 3]).unwrap();
        assert!(got.abs() < 0.3, "MD(p, p) = {got}");
    }

    #[test]
    fn adder_weights_scale_contributions() {
        let p = [1.0, 1.0];
        let q = [0.0, 0.0];
        // Weights 2 and 0.5 -> 2·1 + 0.5·1 = 2.5.
        let got = evaluate_dc(&config(), &p, &q, &[2.0, 0.5]).unwrap();
        assert!((got - 2.5).abs() < 0.4, "weighted MD = {got}");
    }

    #[test]
    fn longer_rows_accumulate() {
        let n = 8;
        let p: Vec<f64> = (0..n).map(|i| i as f64 * 0.25).collect();
        let q = vec![0.0; n];
        let expected = Manhattan::new().distance(&p, &q).unwrap();
        let got = evaluate_dc(&config(), &p, &q, &vec![1.0; n]).unwrap();
        assert!(
            (got - expected).abs() / expected < 0.1,
            "analog {got} vs digital {expected}"
        );
    }
}
