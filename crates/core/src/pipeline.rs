//! Streaming throughput: the data-center framing of the paper's
//! introduction, where the accelerator continuously serves distance
//! computations arriving from IoT streams.

use crate::accelerator::DistanceAccelerator;
use crate::error::AcceleratorError;
use mda_distance::BatchEngine;

/// Aggregate statistics from a stream of computations.
#[derive(Debug, Clone, PartialEq)]
pub struct ThroughputReport {
    /// Computations served.
    pub computations: usize,
    /// Total sequence elements pushed through the DAC interface.
    pub elements_processed: usize,
    /// Total analog busy time (sum of per-computation convergence times,
    /// including tiling passes), s.
    pub analog_time_s: f64,
    /// Mean relative error across the stream.
    pub mean_relative_error: f64,
    /// Worst relative error observed.
    pub worst_relative_error: f64,
}

impl ThroughputReport {
    /// Served element throughput, elements/s of analog busy time.
    pub fn elements_per_second(&self) -> f64 {
        if self.analog_time_s <= 0.0 {
            return 0.0;
        }
        self.elements_processed as f64 / self.analog_time_s
    }

    /// Served computation rate, computations/s of analog busy time.
    pub fn computations_per_second(&self) -> f64 {
        if self.analog_time_s <= 0.0 {
            return 0.0;
        }
        self.computations as f64 / self.analog_time_s
    }
}

/// Validates a stream before any thread dispatch: every pair must carry
/// two non-empty sequences. Rejections are typed and name the offending
/// pair, instead of surfacing as a failure (or panic) deep inside a
/// [`BatchEngine`] worker.
///
/// # Errors
///
/// [`AcceleratorError::InvalidConfig`] naming the first offending pair.
pub fn validate_stream(pairs: &[(Vec<f64>, Vec<f64>)]) -> Result<(), AcceleratorError> {
    for (index, (p, q)) in pairs.iter().enumerate() {
        if p.is_empty() || q.is_empty() {
            return Err(AcceleratorError::InvalidConfig {
                reason: format!("stream pair {index} has a zero-length sequence"),
            });
        }
    }
    Ok(())
}

impl DistanceAccelerator {
    /// Serves a stream of `(p, q)` pairs with the configured function,
    /// aggregating timing and accuracy statistics.
    ///
    /// Equivalent to [`DistanceAccelerator::run_stream_with`] on a default
    /// (all-cores) [`BatchEngine`]: one simulated accelerator per worker
    /// thread, with a report that is bitwise identical at every thread
    /// count.
    ///
    /// # Errors
    ///
    /// Fails on the first failing pair (lowest stream index); pairs before
    /// it are not reported. Use well-formed streams or pre-validate.
    pub fn run_stream(
        &self,
        pairs: &[(Vec<f64>, Vec<f64>)],
    ) -> Result<ThroughputReport, AcceleratorError> {
        self.run_stream_with(pairs, &BatchEngine::new())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::AcceleratorConfig;
    use mda_distance::DistanceKind;

    fn pairs(count: usize, len: usize) -> Vec<(Vec<f64>, Vec<f64>)> {
        (0..count)
            .map(|k| {
                let p: Vec<f64> = (0..len)
                    .map(|i| ((i + k) as f64 * 0.4).sin() * 2.0)
                    .collect();
                let q: Vec<f64> = p.iter().map(|v| v + 1.0).collect();
                (p, q)
            })
            .collect()
    }

    #[test]
    fn stream_aggregates_counts_and_time() {
        let mut acc = DistanceAccelerator::new(AcceleratorConfig::paper_defaults());
        acc.configure(DistanceKind::Manhattan).unwrap();
        let stream = pairs(8, 12);
        let report = acc.run_stream(&stream).unwrap();
        assert_eq!(report.computations, 8);
        assert_eq!(report.elements_processed, 8 * 24);
        assert!(report.analog_time_s > 0.0);
        assert!(
            report.elements_per_second() > 1.0e9,
            "analog throughput is GHz-scale"
        );
        assert!(report.mean_relative_error < 0.1);
        assert!(report.worst_relative_error >= report.mean_relative_error);
    }

    #[test]
    fn empty_stream_reports_zeroes() {
        let mut acc = DistanceAccelerator::new(AcceleratorConfig::paper_defaults());
        acc.configure(DistanceKind::Manhattan).unwrap();
        let report = acc.run_stream(&[]).unwrap();
        assert_eq!(report.computations, 0);
        assert_eq!(report.elements_per_second(), 0.0);
        assert_eq!(report.computations_per_second(), 0.0);
    }

    #[test]
    fn zero_length_sequences_rejected_before_dispatch() {
        let mut acc = DistanceAccelerator::new(AcceleratorConfig::paper_defaults());
        acc.configure(DistanceKind::Manhattan).unwrap();
        let mut stream = pairs(3, 8);
        stream[1] = (Vec::new(), vec![1.0]);
        let err = acc.run_stream(&stream).unwrap_err();
        let AcceleratorError::InvalidConfig { reason } = &err else {
            panic!("expected a typed config error, got {err:?}");
        };
        assert!(reason.contains("pair 1"), "{reason}");
    }

    #[test]
    fn batch_rejects_zero_length_candidates() {
        let mut acc = DistanceAccelerator::new(AcceleratorConfig::paper_defaults());
        acc.configure(DistanceKind::Manhattan).unwrap();
        let err = acc
            .compute_batch(&[0.0, 1.0], &[vec![0.0, 1.0], Vec::new()])
            .unwrap_err();
        let AcceleratorError::InvalidConfig { reason } = &err else {
            panic!("expected a typed config error, got {err:?}");
        };
        assert!(reason.contains("candidate 1"), "{reason}");
    }

    #[test]
    fn stream_propagates_errors() {
        let mut acc = DistanceAccelerator::new(AcceleratorConfig::paper_defaults());
        acc.configure(DistanceKind::Manhattan).unwrap();
        let bad = vec![(vec![0.0], vec![0.0, 1.0])]; // length mismatch
        assert!(acc.run_stream(&bad).is_err());
    }

    #[test]
    fn dp_functions_cost_more_analog_time_per_pair() {
        let stream = pairs(4, 16);
        let mut md = DistanceAccelerator::new(AcceleratorConfig::paper_defaults());
        md.configure(DistanceKind::Manhattan).unwrap();
        let mut dtw = DistanceAccelerator::new(AcceleratorConfig::paper_defaults());
        dtw.configure(DistanceKind::Dtw).unwrap();
        let t_md = md.run_stream(&stream).unwrap().analog_time_s;
        let t_dtw = dtw.run_stream(&stream).unwrap().analog_time_s;
        assert!(t_dtw > t_md, "DTW {t_dtw:.2e} should exceed MD {t_md:.2e}");
    }
}
