//! Early determination (Section 3.3(1), Fig. 3).
//!
//! In the row structure every input is symmetric, so the *relative ordering*
//! of several candidates' outputs is already correct long before any of them
//! converges: "The sequence with the minimum value obtained at the Early
//! Point is also the one with the minimum value obtained in the convergence
//! state." The paper exploits this to read HamD/MD classifications at one
//! tenth of the convergence time.

use crate::accelerator::DistanceAccelerator;
use crate::error::AcceleratorError;
use mda_spice::Trace;

/// Result of an early-determination comparison of several candidates.
#[derive(Debug, Clone)]
pub struct EarlyDecision {
    /// Index of the winning (minimum-distance) candidate at the early point.
    pub early_winner: usize,
    /// Index of the winner at full convergence.
    pub converged_winner: usize,
    /// The early read-out time, s.
    pub early_time_s: f64,
    /// The slowest candidate's convergence time, s.
    pub convergence_time_s: f64,
    /// Speedup of the early read-out (`convergence / early`).
    pub speedup: f64,
}

impl EarlyDecision {
    /// `true` if the early read-out agrees with the converged answer.
    pub fn consistent(&self) -> bool {
        self.early_winner == self.converged_winner
    }
}

/// Finds the argmin across traces at a given time.
fn argmin_at(traces: &[Trace], t: f64) -> usize {
    traces
        .iter()
        .enumerate()
        .min_by(|a, b| {
            a.1.at_time(t)
                .partial_cmp(&b.1.at_time(t))
                .expect("finite voltages")
        })
        .map(|(i, _)| i)
        .expect("at least one trace")
}

/// Runs the configured (row-structure) accelerator against every candidate
/// and reads the winner at `fraction` of the slowest convergence time
/// (the paper uses one tenth).
///
/// # Errors
///
/// Propagates accelerator errors; returns
/// [`AcceleratorError::InvalidConfig`] if no candidates are supplied or the
/// configured function is not a row-structure one.
pub fn early_determination(
    accelerator: &DistanceAccelerator,
    query: &[f64],
    candidates: &[Vec<f64>],
    fraction: f64,
) -> Result<EarlyDecision, AcceleratorError> {
    if candidates.is_empty() {
        return Err(AcceleratorError::InvalidConfig {
            reason: "early determination needs at least one candidate".into(),
        });
    }
    let kind = accelerator.configured_kind()?;
    if kind.uses_matrix_structure() {
        return Err(AcceleratorError::InvalidConfig {
            reason: format!("early determination applies to row-structure functions, not {kind}"),
        });
    }
    let mut traces = Vec::with_capacity(candidates.len());
    let mut slowest = 0.0f64;
    for candidate in candidates {
        let outcome = accelerator.compute(query, candidate)?;
        slowest = slowest.max(outcome.convergence_time_s);
        traces.push(outcome.output_trace);
    }
    let early_time = slowest * fraction;
    let early_winner = argmin_at(&traces, early_time);
    let converged_winner = argmin_at(&traces, slowest * 2.0);
    Ok(EarlyDecision {
        early_winner,
        converged_winner,
        early_time_s: early_time,
        convergence_time_s: slowest,
        speedup: if early_time > 0.0 {
            slowest / early_time
        } else {
            1.0
        },
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::accelerator::DistanceAccelerator;
    use crate::config::AcceleratorConfig;
    use mda_distance::DistanceKind;

    fn candidates() -> (Vec<f64>, Vec<Vec<f64>>) {
        let query = vec![0.0, 0.5, 1.0, 0.5, 0.0, -0.5];
        let near = vec![0.1, 0.55, 0.9, 0.45, 0.05, -0.4];
        let mid = vec![0.5, 1.0, 1.5, 1.0, 0.5, 0.0];
        let far = vec![3.0, 3.5, 4.0, 3.5, 3.0, 2.5];
        (query, vec![far, near, mid])
    }

    #[test]
    fn early_point_agrees_with_convergence_md() {
        let mut acc = DistanceAccelerator::new(AcceleratorConfig::paper_defaults());
        acc.configure(DistanceKind::Manhattan).unwrap();
        let (query, cands) = candidates();
        let decision = early_determination(&acc, &query, &cands, 0.1).unwrap();
        assert!(decision.consistent(), "{decision:?}");
        assert_eq!(decision.converged_winner, 1); // the "near" candidate
        assert!(decision.speedup > 5.0, "speedup {}", decision.speedup);
    }

    #[test]
    fn early_point_agrees_with_convergence_hamd() {
        let mut acc = DistanceAccelerator::new(AcceleratorConfig::paper_defaults());
        acc.configure(DistanceKind::Hamming).unwrap();
        let (query, cands) = candidates();
        let decision = early_determination(&acc, &query, &cands, 0.1).unwrap();
        assert!(decision.consistent(), "{decision:?}");
    }

    #[test]
    fn matrix_functions_rejected() {
        let mut acc = DistanceAccelerator::new(AcceleratorConfig::paper_defaults());
        acc.configure(DistanceKind::Dtw).unwrap();
        let (query, cands) = candidates();
        assert!(matches!(
            early_determination(&acc, &query, &cands, 0.1),
            Err(AcceleratorError::InvalidConfig { .. })
        ));
    }

    #[test]
    fn converged_winner_is_read_correctly_from_mixed_length_traces() {
        // Regression: the converged winner is read at `slowest * 2.0`, which
        // lies past the end of every trace that converged (and stopped
        // recording) sooner. `Trace::at_time` must clamp to the final sample
        // there. Trace B is short with a steeply falling tail: linear
        // extrapolation to t = 4.0 would read 1.5 - 3.5 * 3 = -9.0 and
        // wrongly crown B; clamping reads 1.5 and correctly crowns A.
        let a = Trace::new(vec![0.0, 1.0, 2.0, 3.0, 4.0], vec![9.0, 7.0, 5.0, 3.0, 1.0]);
        let b = Trace::new(vec![0.0, 1.0], vec![5.0, 1.5]);
        let traces = [a, b];
        let slowest = 2.0;
        assert_eq!(argmin_at(&traces, slowest * 2.0), 0);
    }

    #[test]
    fn early_determination_handles_candidates_with_unequal_convergence() {
        // End-to-end mixed-length coverage: candidates at wildly different
        // distances converge at different times, so their output traces have
        // different lengths; the converged read happens past the end of the
        // faster ones.
        let mut acc = DistanceAccelerator::new(AcceleratorConfig::paper_defaults());
        acc.configure(DistanceKind::Manhattan).unwrap();
        let query = vec![0.0, 0.25, 0.5, 0.25, 0.0];
        let near: Vec<f64> = query.iter().map(|v| v + 0.02).collect();
        let far: Vec<f64> = query.iter().map(|v| v + 3.5).collect();
        let decision = early_determination(&acc, &query, &[far, near], 0.1).unwrap();
        assert_eq!(decision.converged_winner, 1);
        assert!(decision.consistent(), "{decision:?}");
    }

    #[test]
    fn empty_candidates_rejected() {
        let mut acc = DistanceAccelerator::new(AcceleratorConfig::paper_defaults());
        acc.configure(DistanceKind::Manhattan).unwrap();
        assert!(matches!(
            early_determination(&acc, &[0.0], &[], 0.1),
            Err(AcceleratorError::InvalidConfig { .. })
        ));
    }
}
