//! The control-and-configuration module and its configuration library
//! (Fig. 1): for each distance function, which inter-PE structure is used,
//! which of the PE's shared resources are active, and how a weight value
//! maps onto memristor resistance ratios (Section 3.2).

use crate::array::Structure;
use crate::error::AcceleratorError;
use mda_distance::DistanceKind;

/// A single memristor-ratio assignment produced when configuring a weight.
#[derive(Debug, Clone, PartialEq)]
pub struct RatioAssignment {
    /// Which memristor pair the ratio applies to, e.g. `"M1/M2"`.
    pub pair: &'static str,
    /// The target resistance ratio.
    pub ratio: f64,
}

/// The per-function PE configuration stored in the configuration lib.
///
/// Resource counts describe which of the shared PE primitives (Section 3.1:
/// nine subtractors, two TGs, five diodes, one comparator, one buffer, one
/// converter) a given function activates.
#[derive(Debug, Clone, PartialEq)]
pub struct PeConfiguration {
    /// The distance function this configuration implements.
    pub kind: DistanceKind,
    /// Inter-PE wiring.
    pub structure: Structure,
    /// Active op-amps (subtractors/adders/buffers/converters) per PE.
    pub opamps_per_pe: usize,
    /// Active diodes per PE.
    pub diodes_per_pe: usize,
    /// Active transmission gates per PE.
    pub tgs_per_pe: usize,
    /// Whether the comparator is used.
    pub uses_comparator: bool,
    /// Whether the thresholded matching (`Vthre`) is used.
    pub uses_threshold: bool,
    /// Whether the step voltage (`Vstep`) is used.
    pub uses_v_step: bool,
}

impl PeConfiguration {
    /// Memristor ratio assignments that realise weight `w` for this
    /// function (Section 3.2):
    ///
    /// * DTW: `M1/M2 = (2 − w)/w`;
    /// * LCS: with `M1/M2 = k1`, `M3 = w·k1·M2` and `M5/M4 = (1 + k1)·w`;
    /// * EdD: same configuration as LCS around op-amps A3–A5;
    /// * HauD: `M2/M1 = M3/M4 = w`;
    /// * HamD/MD: row-adder ratios `M0/Mk = w`.
    ///
    /// # Errors
    ///
    /// Returns [`AcceleratorError::InvalidConfig`] for non-positive weights,
    /// or weights ≥ 2 for DTW (whose `(2 − w)/w` mapping requires `w < 2`).
    pub fn weight_ratios(&self, w: f64) -> Result<Vec<RatioAssignment>, AcceleratorError> {
        if !w.is_finite() || w <= 0.0 {
            return Err(AcceleratorError::InvalidConfig {
                reason: format!("weight must be positive and finite, got {w}"),
            });
        }
        let asg = |pair, ratio| RatioAssignment { pair, ratio };
        match self.kind {
            DistanceKind::Dtw => {
                if w >= 2.0 {
                    return Err(AcceleratorError::InvalidConfig {
                        reason: format!("DTW weight must be < 2 for the (2−w)/w mapping, got {w}"),
                    });
                }
                Ok(vec![asg("M1/M2", (2.0 - w) / w)])
            }
            DistanceKind::Lcs | DistanceKind::Edit => {
                // k1 = 1 when M1 and M2 are both HRS.
                let k1 = 1.0;
                Ok(vec![
                    asg("M1/M2", k1),
                    asg("M3/M2", w * k1),
                    asg("M5/M4", (1.0 + k1) * w),
                ])
            }
            DistanceKind::Hausdorff => Ok(vec![asg("M2/M1", w), asg("M3/M4", w)]),
            DistanceKind::Hamming | DistanceKind::Manhattan => Ok(vec![asg("M0/Mk", w)]),
        }
    }

    /// For the general (unweighted) functions all ratios are 1 and only
    /// HRS/LRS programming is needed.
    pub fn unit_weight_needs_analog_programming(&self) -> bool {
        self.weight_ratios(1.0)
            .map(|rs| rs.iter().any(|r| (r.ratio - 1.0).abs() > 1e-12))
            .unwrap_or(false)
    }

    /// Physically programs the weight `w` onto as-fabricated memristor
    /// devices using the Section 3.3 tuning loops, returning the achieved
    /// ratio and the programming effort per assignment.
    ///
    /// Each ratio pair is realised as one device tuned against an in-place
    /// reference, both sampled from the process-variation distribution.
    ///
    /// # Errors
    ///
    /// Returns [`AcceleratorError::InvalidConfig`] for invalid weights, or
    /// if any tuning loop fails to converge (a ratio outside the
    /// memristor's dynamic range).
    pub fn program_weight<R: rand::Rng + ?Sized>(
        &self,
        w: f64,
        rng: &mut R,
    ) -> Result<Vec<ProgrammedRatio>, AcceleratorError> {
        use mda_memristor::tuning::{tune_ratio, PulseSchedule};
        use mda_memristor::{BiolekParams, Memristor, ProcessVariation};

        let assignments = self.weight_ratios(w)?;
        let variation = ProcessVariation::paper_defaults();
        let params = BiolekParams::paper_defaults();
        assignments
            .into_iter()
            .map(|asg| {
                // Nominal mid-range devices; the reference stays as
                // fabricated, the target device is tuned against it.
                let reference = Memristor::at_resistance(params, variation.sample(30.0e3, rng));
                let mut device = Memristor::at_resistance(
                    params,
                    variation.sample(30.0e3 * asg.ratio.clamp(0.1, 3.0), rng),
                );
                let report = tune_ratio(
                    &mut device,
                    reference.resistance(),
                    asg.ratio,
                    0.01,
                    PulseSchedule::default(),
                    500,
                    1.0e-3,
                    rng,
                );
                if !report.converged() {
                    return Err(AcceleratorError::InvalidConfig {
                        reason: format!(
                            "ratio {} = {:.3} not programmable (final error {:.3})",
                            asg.pair, asg.ratio, report.final_error
                        ),
                    });
                }
                Ok(ProgrammedRatio {
                    pair: asg.pair,
                    target: asg.ratio,
                    achieved: device.resistance() / reference.resistance(),
                    tuning_iterations: report.iterations,
                })
            })
            .collect()
    }
}

/// The outcome of physically programming one memristor ratio.
#[derive(Debug, Clone, PartialEq)]
pub struct ProgrammedRatio {
    /// Which memristor pair was programmed.
    pub pair: &'static str,
    /// The target resistance ratio.
    pub target: f64,
    /// The ratio achieved after tuning.
    pub achieved: f64,
    /// Modulate/verify iterations spent.
    pub tuning_iterations: usize,
}

impl ProgrammedRatio {
    /// Relative error of the achieved ratio.
    pub fn ratio_error(&self) -> f64 {
        (self.achieved / self.target - 1.0).abs()
    }
}

/// The configuration library: one entry per supported distance function.
#[derive(Debug, Clone)]
pub struct ConfigurationLib {
    entries: Vec<PeConfiguration>,
}

impl ConfigurationLib {
    /// The six-entry library of the paper.
    pub fn paper_library() -> Self {
        use DistanceKind::*;
        let entry = |kind,
                     opamps_per_pe,
                     diodes_per_pe,
                     tgs_per_pe,
                     uses_comparator,
                     uses_threshold,
                     uses_v_step| PeConfiguration {
            kind,
            structure: Structure::for_kind(kind),
            opamps_per_pe,
            diodes_per_pe,
            tgs_per_pe,
            uses_comparator,
            uses_threshold,
            uses_v_step,
        };
        ConfigurationLib {
            entries: vec![
                // DTW (Fig. 2a): absolution (2 subtractors) + minimum
                // (3 subtractors) + addition (1) + output buffer = 7 op-amps,
                // 2 + 3 diodes.
                entry(Dtw, 7, 5, 0, false, false, false),
                // LCS (Fig. 2b): selecting module (2 subtractors for |P−Q|,
                // comparator) + computing module (adder, max diodes) = 5
                // op-amps, 2 TGs.
                entry(Lcs, 5, 4, 2, true, true, true),
                // EdD (Fig. 2c): three computing paths + minimum module with
                // buffer = 9 op-amps (the PE superset), 5 diodes, 2 TGs.
                entry(Edit, 9, 5, 2, true, true, true),
                // HauD (Fig. 2d): computing (2 subtractors) + complement +
                // comparing-module buffer = 4 op-amps.
                entry(Hausdorff, 4, 4, 0, false, false, false),
                // HamD (Fig. 2e): absolution (2 subtractors + buffer) +
                // comparator, with the TG pair gating Vstep.
                entry(Hamming, 4, 2, 2, true, true, true),
                // MD (Fig. 2f): absolution module only (subset of HamD).
                entry(Manhattan, 3, 2, 0, false, false, false),
            ],
        }
    }

    /// Looks up the configuration for a function.
    pub fn configuration(&self, kind: DistanceKind) -> &PeConfiguration {
        self.entries
            .iter()
            .find(|e| e.kind == kind)
            .expect("library covers all six functions")
    }

    /// All configurations.
    pub fn iter(&self) -> impl Iterator<Item = &PeConfiguration> {
        self.entries.iter()
    }

    /// A simple reconfiguration-cost metric between two functions: the
    /// number of per-PE resource deltas (op-amps, diodes, TGs, comparator)
    /// whose activation must change. Switching within the same structure is
    /// cheap; crossing structures re-routes the inter-PE connections too.
    pub fn reconfiguration_cost(&self, from: DistanceKind, to: DistanceKind) -> usize {
        let a = self.configuration(from);
        let b = self.configuration(to);
        let mut cost = a.opamps_per_pe.abs_diff(b.opamps_per_pe)
            + a.diodes_per_pe.abs_diff(b.diodes_per_pe)
            + a.tgs_per_pe.abs_diff(b.tgs_per_pe)
            + usize::from(a.uses_comparator != b.uses_comparator);
        if a.structure != b.structure {
            cost += 8; // inter-PE re-routing
        }
        cost
    }
}

impl Default for ConfigurationLib {
    fn default() -> Self {
        Self::paper_library()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn library_covers_all_six() {
        let lib = ConfigurationLib::paper_library();
        for kind in DistanceKind::ALL {
            let cfg = lib.configuration(kind);
            assert_eq!(cfg.kind, kind);
            assert!(cfg.opamps_per_pe >= 1);
            // The PE superset has 9 subtracters (Section 3.1).
            assert!(cfg.opamps_per_pe <= 9);
            assert!(cfg.diodes_per_pe <= 5);
            assert!(cfg.tgs_per_pe <= 2);
        }
    }

    #[test]
    fn dtw_weight_ratio_formula() {
        let lib = ConfigurationLib::paper_library();
        let cfg = lib.configuration(DistanceKind::Dtw);
        // w = 1 -> ratio 1 (HRS/HRS).
        let r = cfg.weight_ratios(1.0).unwrap();
        assert_eq!(r.len(), 1);
        assert_eq!(r[0].ratio, 1.0);
        // w = 0.5 -> (2 - 0.5)/0.5 = 3.
        assert_eq!(cfg.weight_ratios(0.5).unwrap()[0].ratio, 3.0);
        // w >= 2 invalid.
        assert!(cfg.weight_ratios(2.0).is_err());
    }

    #[test]
    fn lcs_weight_ratio_formulas() {
        let lib = ConfigurationLib::paper_library();
        let cfg = lib.configuration(DistanceKind::Lcs);
        let r = cfg.weight_ratios(0.8).unwrap();
        assert_eq!(r.len(), 3);
        assert_eq!(r[0].pair, "M1/M2");
        assert_eq!(r[1].ratio, 0.8); // w * k1
        assert_eq!(r[2].ratio, 1.6); // (1 + k1) * w
    }

    #[test]
    fn hausdorff_symmetric_ratios() {
        let lib = ConfigurationLib::paper_library();
        let r = lib
            .configuration(DistanceKind::Hausdorff)
            .weight_ratios(1.3)
            .unwrap();
        assert_eq!(r.len(), 2);
        assert!(r.iter().all(|a| (a.ratio - 1.3).abs() < 1e-12));
    }

    #[test]
    fn unit_weights_use_only_hrs_lrs() {
        // Section 3.1: "For general computation ... the ratio of 1 is
        // adopted, and only the HRS and LRS of memristors are used."
        let lib = ConfigurationLib::paper_library();
        for kind in [
            DistanceKind::Dtw,
            DistanceKind::Hausdorff,
            DistanceKind::Hamming,
            DistanceKind::Manhattan,
        ] {
            assert!(
                !lib.configuration(kind)
                    .unit_weight_needs_analog_programming(),
                "{kind} at w = 1 should need no analog programming"
            );
        }
        // LCS/EdD at unit weight: M5/M4 = 2, which IS an analog ratio.
        assert!(lib
            .configuration(DistanceKind::Lcs)
            .unit_weight_needs_analog_programming());
    }

    #[test]
    fn invalid_weights_rejected() {
        let lib = ConfigurationLib::paper_library();
        for kind in DistanceKind::ALL {
            assert!(lib.configuration(kind).weight_ratios(0.0).is_err());
            assert!(lib.configuration(kind).weight_ratios(-1.0).is_err());
            assert!(lib.configuration(kind).weight_ratios(f64::NAN).is_err());
        }
    }

    #[test]
    fn reconfiguration_cost_structure_change_dominates() {
        let lib = ConfigurationLib::paper_library();
        let same_structure = lib.reconfiguration_cost(DistanceKind::Dtw, DistanceKind::Lcs);
        let cross_structure = lib.reconfiguration_cost(DistanceKind::Dtw, DistanceKind::Manhattan);
        assert!(cross_structure > same_structure);
        // Identity reconfiguration is free.
        assert_eq!(
            lib.reconfiguration_cost(DistanceKind::Dtw, DistanceKind::Dtw),
            0
        );
    }

    #[test]
    fn programming_weights_achieves_one_percent_ratios() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(77);
        let lib = ConfigurationLib::paper_library();
        for kind in DistanceKind::ALL {
            let w = if kind == DistanceKind::Dtw { 0.8 } else { 1.3 };
            let programmed = lib
                .configuration(kind)
                .program_weight(w, &mut rng)
                .unwrap_or_else(|e| panic!("{kind}: {e}"));
            for p in &programmed {
                assert!(
                    p.ratio_error() < 0.02,
                    "{kind} {}: achieved {:.4} vs target {:.4}",
                    p.pair,
                    p.achieved,
                    p.target
                );
                assert!(p.tuning_iterations >= 1);
            }
        }
    }

    #[test]
    fn unprogrammable_ratio_reports_error() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(78);
        let lib = ConfigurationLib::paper_library();
        // DTW weight near zero demands a ratio (2-w)/w -> huge, beyond the
        // Roff/Ron dynamic range against a mid-range reference.
        let result = lib
            .configuration(DistanceKind::Dtw)
            .program_weight(0.01, &mut rng);
        assert!(result.is_err());
    }

    #[test]
    fn md_is_subset_of_hamd() {
        // Section 3.2.6: "the PE circuit structure of MD ... is the subset
        // of that of HamD".
        let lib = ConfigurationLib::paper_library();
        let md = lib.configuration(DistanceKind::Manhattan);
        let hamd = lib.configuration(DistanceKind::Hamming);
        assert!(md.opamps_per_pe <= hamd.opamps_per_pe);
        assert!(md.diodes_per_pe <= hamd.diodes_per_pe);
        assert!(!md.uses_comparator && hamd.uses_comparator);
    }
}
