//! DAC/ADC array models.
//!
//! Section 4.3 of the paper adopts a published 8-bit 1.6 GS/s DAC (Tseng et
//! al.) and a 35 mW 8-bit 8.8 GS/s SAR ADC (Kull et al.). Here we model
//! their *functional* effect — quantization of the analog interface — and
//! carry their throughput/power figures for the power analysis in
//! `mda-power`.

/// Specification of one digital-to-analog converter.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DacSpec {
    /// Resolution in bits.
    pub bits: u32,
    /// Sample rate, samples/s.
    pub sample_rate: f64,
    /// Power per converter at full rate, W.
    pub power: f64,
    /// Full-scale range, V (symmetric: ±`full_scale/2`).
    pub full_scale: f64,
}

impl DacSpec {
    /// The paper's reference DAC: 8-bit, 1.6 GS/s, 32 mW (projected to
    /// 32 nm). The programmable reference is set to a ±125 mV full scale —
    /// just covering the ±6-sigma range of z-normalized inputs at the
    /// 20 mV/unit encoding — so the 8-bit grid resolves 0.98 mV
    /// (~0.05 sequence units) instead of wasting codes on unreachable
    /// voltages.
    pub fn paper_reference() -> Self {
        DacSpec {
            bits: 8,
            sample_rate: 1.6e9,
            power: 32.0e-3,
            full_scale: 0.25,
        }
    }

    /// Quantizes a voltage to the DAC's output grid (mid-tread, clamped to
    /// full scale).
    pub fn quantize(&self, v: f64) -> f64 {
        quantize(v, self.bits, self.full_scale)
    }

    /// The LSB step size, V.
    pub fn lsb(&self) -> f64 {
        self.full_scale / (1u64 << self.bits) as f64
    }
}

/// Specification of one analog-to-digital converter.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdcSpec {
    /// Resolution in bits.
    pub bits: u32,
    /// Sample rate, samples/s.
    pub sample_rate: f64,
    /// Power per converter at full rate, W.
    pub power: f64,
    /// Full-scale range, V.
    pub full_scale: f64,
}

impl AdcSpec {
    /// The paper's reference ADC: 8-bit, 8.8 GS/s, 35 mW in 32 nm SOI,
    /// ±0.5 V full scale.
    pub fn paper_reference() -> Self {
        AdcSpec {
            bits: 8,
            sample_rate: 8.8e9,
            power: 35.0e-3,
            full_scale: 1.0,
        }
    }

    /// Quantizes a sampled voltage to the ADC's code grid.
    pub fn quantize(&self, v: f64) -> f64 {
        quantize(v, self.bits, self.full_scale)
    }

    /// The LSB step size, V.
    pub fn lsb(&self) -> f64 {
        self.full_scale / (1u64 << self.bits) as f64
    }
}

/// Mid-tread uniform quantization over `[-full_scale/2, full_scale/2]`.
fn quantize(v: f64, bits: u32, full_scale: f64) -> f64 {
    let half = full_scale / 2.0;
    let lsb = full_scale / (1u64 << bits) as f64;
    let clamped = v.clamp(-half, half);
    (clamped / lsb).round() * lsb
}

/// Number of converters needed to stream `lanes` parallel analog lanes at
/// `lane_rate` samples/s each through converters of `converter_rate`.
pub fn converters_required(lanes: usize, lane_rate: f64, converter_rate: f64) -> usize {
    let total = lanes as f64 * lane_rate;
    (total / converter_rate).ceil().max(1.0) as usize
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_specs() {
        let d = DacSpec::paper_reference();
        assert_eq!(d.bits, 8);
        assert_eq!(d.sample_rate, 1.6e9);
        let a = AdcSpec::paper_reference();
        assert_eq!(a.bits, 8);
        assert_eq!(a.sample_rate, 8.8e9);
    }

    #[test]
    fn lsb_values() {
        let d = DacSpec::paper_reference();
        assert!((d.lsb() - 0.25 / 256.0).abs() < 1e-12);
        let a = AdcSpec::paper_reference();
        assert!((a.lsb() - 1.0 / 256.0).abs() < 1e-12);
    }

    #[test]
    fn quantization_error_bounded_by_half_lsb() {
        let d = DacSpec::paper_reference();
        for i in 0..100 {
            let v = -0.12 + i as f64 * 0.002;
            let q = d.quantize(v);
            assert!((q - v).abs() <= d.lsb() / 2.0 + 1e-12);
        }
    }

    #[test]
    fn quantization_clamps_to_full_scale() {
        let a = AdcSpec::paper_reference();
        assert!(a.quantize(3.0) <= 0.5);
        assert!(a.quantize(-3.0) >= -0.5);
    }

    #[test]
    fn quantization_is_idempotent() {
        let a = AdcSpec::paper_reference();
        for v in [-0.37, 0.0, 0.123, 0.499] {
            let q = a.quantize(v);
            assert_eq!(a.quantize(q), q);
        }
    }

    #[test]
    fn converter_count_ceils() {
        // 128 lanes at 50 MS/s = 6.4 GS/s over 1.6 GS/s DACs -> 4 DACs.
        assert_eq!(converters_required(128, 50.0e6, 1.6e9), 4);
        // Minimum of one converter.
        assert_eq!(converters_required(1, 1.0, 1.6e9), 1);
    }
}
