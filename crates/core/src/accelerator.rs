//! The top-level accelerator facade: configure a distance function, push
//! sequences through the DAC array, run the analog fabric, read the result
//! back through the ADC array.

use mda_distance::dtw::Band;
use mda_distance::{
    Distance, DistanceKind, Dtw, EditDistance, Hamming, Hausdorff, Lcs, Manhattan, Weights,
};
use mda_spice::Trace;

use crate::analog::graph::builders;
use crate::analog::{AnalogEngine, ErrorModel};
use crate::array::Structure;
use crate::config::AcceleratorConfig;
use crate::controller::ConfigurationLib;
use crate::encode::VoltageEncoder;
use crate::error::AcceleratorError;
use crate::tiling::TilingPlan;

/// Parameters of the currently configured function.
#[derive(Debug, Clone)]
pub struct FunctionParams {
    /// Match threshold in sequence units (LCS/EdD/HamD).
    pub threshold: f64,
    /// Per-element/pair weight (uniform value; full weight matrices are
    /// programmed through `mda_memristor::tuning` and applied digitally in
    /// the reference comparison).
    pub weight: f64,
    /// Sakoe–Chiba band for DTW.
    pub band: Band,
}

impl Default for FunctionParams {
    fn default() -> Self {
        FunctionParams {
            threshold: 0.1,
            weight: 1.0,
            band: Band::Full,
        }
    }
}

/// Outcome of one accelerated distance computation.
#[derive(Debug, Clone)]
pub struct AnalogOutcome {
    /// The decoded distance value (sequence units / step counts).
    pub value: f64,
    /// The exact digital reference value for the same inputs.
    pub reference: f64,
    /// `|value − reference| / |reference|` (absolute error if the reference
    /// is zero).
    pub relative_error: f64,
    /// The paper's convergence-time measurement, s.
    pub convergence_time_s: f64,
    /// PEs powered for this computation.
    pub active_pes: usize,
    /// Tiling plan (passes > 1 when the sequences exceed the array).
    pub tiling: TilingPlan,
    /// The raw analog output waveform (for early determination).
    pub output_trace: Trace,
}

/// The reconfigurable memristor-based distance accelerator.
///
/// See the crate-level docs for an end-to-end example.
#[derive(Debug, Clone)]
pub struct DistanceAccelerator {
    config: AcceleratorConfig,
    encoder: VoltageEncoder,
    lib: ConfigurationLib,
    engine: AnalogEngine,
    configured: Option<(DistanceKind, FunctionParams)>,
    /// Count of reconfigurations performed (for reporting).
    reconfigurations: usize,
}

impl DistanceAccelerator {
    /// A new accelerator with the given configuration, not yet configured
    /// for any distance function.
    pub fn new(config: AcceleratorConfig) -> Self {
        DistanceAccelerator {
            encoder: VoltageEncoder::new(config.clone()),
            config,
            lib: ConfigurationLib::paper_library(),
            engine: AnalogEngine::new(),
            configured: None,
            reconfigurations: 0,
        }
    }

    /// The accelerator configuration.
    pub fn config(&self) -> &AcceleratorConfig {
        &self.config
    }

    /// The configuration library.
    pub fn library(&self) -> &ConfigurationLib {
        &self.lib
    }

    /// Configures the fabric for `kind` with default parameters.
    ///
    /// # Errors
    ///
    /// Currently infallible for all six kinds; returns `Err` only for
    /// invalid parameter combinations via [`Self::configure_with`].
    pub fn configure(&mut self, kind: DistanceKind) -> Result<(), AcceleratorError> {
        self.configure_with(kind, FunctionParams::default())
    }

    /// Configures the fabric for `kind` with explicit parameters.
    ///
    /// # Errors
    ///
    /// Returns [`AcceleratorError::InvalidConfig`] for non-positive
    /// thresholds or weights outside the memristor-ratio domain.
    pub fn configure_with(
        &mut self,
        kind: DistanceKind,
        params: FunctionParams,
    ) -> Result<(), AcceleratorError> {
        if !params.threshold.is_finite() || params.threshold < 0.0 {
            return Err(AcceleratorError::InvalidConfig {
                reason: format!("threshold must be non-negative, got {}", params.threshold),
            });
        }
        // Validate the weight maps onto memristor ratios.
        self.lib.configuration(kind).weight_ratios(params.weight)?;
        self.configured = Some((kind, params));
        self.reconfigurations += 1;
        Ok(())
    }

    /// The currently configured function.
    ///
    /// # Errors
    ///
    /// Returns [`AcceleratorError::NotConfigured`] before the first
    /// [`Self::configure`].
    pub fn configured_kind(&self) -> Result<DistanceKind, AcceleratorError> {
        self.configured
            .as_ref()
            .map(|(k, _)| *k)
            .ok_or(AcceleratorError::NotConfigured)
    }

    /// Number of reconfigurations performed so far.
    pub fn reconfigurations(&self) -> usize {
        self.reconfigurations
    }

    /// The digital reference for the configured function (used for the
    /// relative-error measurement and available to applications that want
    /// to cross-check).
    fn reference_distance(
        kind: DistanceKind,
        params: &FunctionParams,
        p: &[f64],
        q: &[f64],
    ) -> Result<f64, AcceleratorError> {
        let weights = Weights::Uniform;
        let d: Box<dyn Distance + Send + Sync> = match kind {
            DistanceKind::Dtw => Box::new(Dtw::new().with_band(params.band).with_weights(weights)),
            DistanceKind::Lcs => Box::new(Lcs::new(params.threshold)),
            DistanceKind::Edit => Box::new(EditDistance::new(params.threshold)),
            DistanceKind::Hausdorff => Box::new(Hausdorff::new()),
            DistanceKind::Hamming => Box::new(Hamming::new(params.threshold)),
            DistanceKind::Manhattan => Box::new(Manhattan::new()),
        };
        let mut v = d.evaluate(p, q)?;
        if (params.weight - 1.0).abs() > 1e-12 {
            // Uniform non-unit weight scales every function linearly.
            v *= params.weight;
        }
        Ok(v)
    }

    /// Runs one distance computation through the analog model.
    ///
    /// # Errors
    ///
    /// Returns [`AcceleratorError::NotConfigured`] before configuration,
    /// [`AcceleratorError::EncodingRange`] for unencodable values, or
    /// [`AcceleratorError::Distance`] for inputs the function rejects
    /// (empty, length mismatch).
    pub fn compute(&self, p: &[f64], q: &[f64]) -> Result<AnalogOutcome, AcceleratorError> {
        let (kind, params) = self
            .configured
            .as_ref()
            .ok_or(AcceleratorError::NotConfigured)?;
        let kind = *kind;
        // Validate inputs via the digital reference first (shape errors).
        let reference = Self::reference_distance(kind, params, p, q)?;

        // DAC encoding.
        let p_volts = self.encoder.encode(p)?;
        let q_volts = self.encoder.encode(q)?;
        let thr_volts = self.config.value_to_voltage(params.threshold);

        let mut errors = ErrorModel::new(self.config.noise_seed);
        let graph = match kind {
            DistanceKind::Dtw => builders::dtw(
                &self.config,
                &p_volts,
                &q_volts,
                params.weight,
                params.band,
                &mut errors,
            ),
            DistanceKind::Lcs => builders::lcs(
                &self.config,
                &p_volts,
                &q_volts,
                thr_volts,
                params.weight,
                &mut errors,
            ),
            DistanceKind::Edit => {
                builders::edit(&self.config, &p_volts, &q_volts, thr_volts, &mut errors)
            }
            DistanceKind::Hausdorff => {
                builders::hausdorff(&self.config, &p_volts, &q_volts, params.weight, &mut errors)
            }
            DistanceKind::Hamming => builders::hamming(
                &self.config,
                &p_volts,
                &q_volts,
                thr_volts,
                &vec![params.weight; p.len().min(q.len())],
                &mut errors,
            ),
            DistanceKind::Manhattan => builders::manhattan(
                &self.config,
                &p_volts,
                &q_volts,
                &vec![params.weight; p.len().min(q.len())],
                &mut errors,
            ),
        };

        let sim = self.engine.simulate(&graph);

        // ADC read-out and decoding.
        let quantized = self.config.adc.quantize(sim.final_voltage);
        let value = match kind {
            // Step-counting functions decode in Vstep units.
            DistanceKind::Lcs | DistanceKind::Edit | DistanceKind::Hamming => {
                quantized / self.config.v_step
            }
            _ => self.config.voltage_to_value(quantized),
        };

        let relative_error = if reference.abs() > 1e-12 {
            ((value - reference) / reference).abs()
        } else {
            value.abs()
        };

        let band = if kind == DistanceKind::Dtw {
            Some(params.band)
        } else {
            None
        };
        let structure = Structure::for_kind(kind);
        let tiling = TilingPlan::plan(structure, self.config.array, p.len(), q.len());
        let active_pes = self.config.array.active_pes(kind, p.len(), q.len(), band);

        // Tiling multiplies the wall-clock time by the number of passes.
        let convergence_time_s = sim.convergence_time_s * tiling.passes as f64;

        Ok(AnalogOutcome {
            value,
            reference,
            relative_error,
            convergence_time_s,
            active_pes,
            tiling,
            output_trace: sim.output_trace,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn accelerator(kind: DistanceKind) -> DistanceAccelerator {
        let mut acc = DistanceAccelerator::new(AcceleratorConfig::paper_defaults());
        acc.configure(kind).unwrap();
        acc
    }

    fn series(len: usize, phase: f64) -> Vec<f64> {
        (0..len)
            .map(|i| (i as f64 * 0.4 + phase).sin() * 2.0)
            .collect()
    }

    #[test]
    fn unconfigured_compute_fails() {
        let acc = DistanceAccelerator::new(AcceleratorConfig::paper_defaults());
        assert!(matches!(
            acc.compute(&[0.0], &[0.0]),
            Err(AcceleratorError::NotConfigured)
        ));
    }

    #[test]
    fn all_six_functions_compute_with_small_error() {
        // Match margins must be decisive relative to the 8-bit DAC LSB
        // (3.9 mV = 0.195 units): element differences are either ~0.02
        // units (clear match at a 0.5-unit threshold) or ~3 units (clear
        // mismatch) — the regime the thresholded functions are designed for.
        let p = series(8, 0.0);
        let q: Vec<f64> = p
            .iter()
            .enumerate()
            .map(|(i, &v)| if i % 2 == 0 { v + 0.02 } else { v + 3.0 })
            .collect();
        for kind in DistanceKind::ALL {
            let mut acc = DistanceAccelerator::new(AcceleratorConfig::paper_defaults());
            acc.configure_with(
                kind,
                FunctionParams {
                    threshold: 0.5,
                    ..FunctionParams::default()
                },
            )
            .unwrap();
            let outcome = acc.compute(&p, &q).unwrap();
            assert!(
                outcome.relative_error < 0.25,
                "{kind}: value {} vs reference {} (rel {})",
                outcome.value,
                outcome.reference,
                outcome.relative_error
            );
            assert!(outcome.convergence_time_s > 0.0, "{kind}");
        }
    }

    #[test]
    fn reconfiguration_switches_function() {
        let mut acc = accelerator(DistanceKind::Manhattan);
        let p = [0.0, 1.0, 2.0];
        let q = [1.0, 1.0, 1.0];
        let md = acc.compute(&p, &q).unwrap();
        assert!((md.reference - 2.0).abs() < 1e-12);
        acc.configure(DistanceKind::Hamming).unwrap();
        let hd = acc.compute(&p, &q).unwrap();
        assert!((hd.reference - 2.0).abs() < 1e-12);
        assert_eq!(acc.reconfigurations(), 2);
    }

    #[test]
    fn length_mismatch_propagates() {
        let acc = accelerator(DistanceKind::Manhattan);
        assert!(matches!(
            acc.compute(&[0.0], &[0.0, 1.0]),
            Err(AcceleratorError::Distance(_))
        ));
    }

    #[test]
    fn banded_dtw_configuration() {
        let mut acc = DistanceAccelerator::new(AcceleratorConfig::paper_defaults());
        acc.configure_with(
            DistanceKind::Dtw,
            FunctionParams {
                band: Band::SakoeChiba(2),
                ..FunctionParams::default()
            },
        )
        .unwrap();
        let p = series(12, 0.0);
        let q = series(12, 0.3);
        let outcome = acc.compute(&p, &q).unwrap();
        assert!(outcome.relative_error < 0.25);
        // The band shrinks the active-PE count below the full square.
        assert!(outcome.active_pes < 12 * 12);
    }

    #[test]
    fn tiling_kicks_in_beyond_array_size() {
        let mut config = AcceleratorConfig::paper_defaults();
        config.array = crate::array::ArrayDimensions::new(8, 8);
        let mut acc = DistanceAccelerator::new(config);
        acc.configure(DistanceKind::Manhattan).unwrap();
        let p = series(20, 0.0);
        let q = series(20, 0.4);
        let outcome = acc.compute(&p, &q).unwrap();
        assert_eq!(outcome.tiling.passes, 3); // ceil(20/8)
        assert!(outcome.relative_error < 0.2);
    }

    #[test]
    fn invalid_threshold_rejected() {
        let mut acc = DistanceAccelerator::new(AcceleratorConfig::paper_defaults());
        assert!(acc
            .configure_with(
                DistanceKind::Lcs,
                FunctionParams {
                    threshold: -1.0,
                    ..FunctionParams::default()
                },
            )
            .is_err());
    }

    #[test]
    fn weighted_computation_scales() {
        let mut acc = DistanceAccelerator::new(AcceleratorConfig::paper_defaults());
        acc.configure_with(
            DistanceKind::Manhattan,
            FunctionParams {
                weight: 0.5,
                ..FunctionParams::default()
            },
        )
        .unwrap();
        let p = [2.0, 4.0];
        let q = [0.0, 0.0];
        let outcome = acc.compute(&p, &q).unwrap();
        assert!((outcome.reference - 3.0).abs() < 1e-12);
        assert!(outcome.relative_error < 0.1);
    }
}
