//! Per-module analog error model.
//!
//! Every analog stage contributes a small systematic output offset:
//!
//! * op-amp **zero drift** (input offset voltage amplified by the closed
//!   loop) — the paper attributes the larger DTW/EdD errors to "larger zero
//!   drift exists \[in\] PEs for DTW and EdD";
//! * **diode forward drop** at the µA currents of the min/max networks;
//! * **finite open-loop gain** (1e4), a ~0.01 % signal-dependent shortfall.
//!
//! Offsets are drawn deterministically from the accelerator's noise seed so
//! runs are reproducible.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::analog::graph::NodeOp;

/// Deterministic per-instance offset generator.
#[derive(Debug, Clone)]
pub struct ErrorModel {
    rng: StdRng,
    /// Scale multiplier (1.0 = nominal; 0.0 disables all analog error).
    scale: f64,
}

impl ErrorModel {
    /// A model seeded from the accelerator configuration.
    pub fn new(seed: u64) -> Self {
        ErrorModel {
            rng: StdRng::seed_from_u64(seed),
            scale: 1.0,
        }
    }

    /// An idealized model that injects no error (for calibration runs).
    pub fn ideal() -> Self {
        ErrorModel {
            rng: StdRng::seed_from_u64(0),
            scale: 0.0,
        }
    }

    /// Scales every offset by `scale` (1.0 = nominal). Used by the noise
    /// ablation to sweep "how good do the analog components have to be".
    #[must_use]
    pub fn with_scale(mut self, scale: f64) -> Self {
        self.scale = scale;
        self
    }

    /// Systematic bias (V) for a module type: negative for diode-drop
    /// dominated stages, positive drift for the complement/restore pairs of
    /// the DTW/EdD minimum modules.
    fn bias(op: &NodeOp) -> f64 {
        match op {
            NodeOp::Const(_) => 0.0,
            NodeOp::Sub => -0.10e-3,
            NodeOp::Abs => -0.20e-3,
            // Min is implemented as complement + diode max + restore: two
            // extra subtractor stages -> the "larger zero drift" of DTW/EdD.
            NodeOp::Min => 0.90e-3,
            NodeOp::Max => -0.30e-3,
            NodeOp::Add => -0.15e-3,
            NodeOp::AddWeighted(_) => -0.15e-3,
            NodeOp::SelectMatch { .. } => -0.20e-3,
            NodeOp::Mismatch { .. } => -0.10e-3,
        }
    }

    /// Random per-instance spread (standard deviation, V).
    fn sigma(op: &NodeOp) -> f64 {
        match op {
            NodeOp::Const(_) => 0.0,
            NodeOp::Sub | NodeOp::Mismatch { .. } => 0.15e-3,
            NodeOp::Abs | NodeOp::Max => 0.25e-3,
            NodeOp::Min => 0.40e-3,
            NodeOp::Add | NodeOp::AddWeighted(_) => 0.15e-3,
            NodeOp::SelectMatch { .. } => 0.25e-3,
        }
    }

    /// Draws the offset for one module instance.
    pub fn offset_for(&mut self, op: &NodeOp) -> f64 {
        let bias = Self::bias(op);
        let sigma = Self::sigma(op);
        // Box–Muller gaussian.
        let u1: f64 = self.rng.gen_range(1e-12..1.0);
        let u2: f64 = self.rng.gen_range(0.0..1.0);
        let g = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        self.scale * (bias + sigma * g)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ideal_model_injects_nothing() {
        let mut m = ErrorModel::ideal();
        for _ in 0..10 {
            assert_eq!(m.offset_for(&NodeOp::Abs), 0.0);
        }
    }

    #[test]
    fn offsets_are_sub_millivolt_scale() {
        let mut m = ErrorModel::new(42);
        for _ in 0..100 {
            let o = m.offset_for(&NodeOp::Min);
            assert!(o.abs() < 3.0e-3, "offset {o} out of scale");
        }
    }

    #[test]
    fn min_stages_drift_more_than_add_stages() {
        // The statistical property behind "relative error of DTW and EdD is
        // larger than others'".
        let mut m = ErrorModel::new(7);
        let min_mean: f64 = (0..500).map(|_| m.offset_for(&NodeOp::Min)).sum::<f64>() / 500.0;
        let add_mean: f64 = (0..500).map(|_| m.offset_for(&NodeOp::Add)).sum::<f64>() / 500.0;
        assert!(min_mean.abs() > add_mean.abs());
    }

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = ErrorModel::new(9);
        let mut b = ErrorModel::new(9);
        for _ in 0..20 {
            assert_eq!(a.offset_for(&NodeOp::Abs), b.offset_for(&NodeOp::Abs));
        }
    }

    #[test]
    fn scale_multiplies_offsets() {
        let base: Vec<f64> = {
            let mut m = ErrorModel::new(5);
            (0..10).map(|_| m.offset_for(&NodeOp::Abs)).collect()
        };
        let doubled: Vec<f64> = {
            let mut m = ErrorModel::new(5).with_scale(2.0);
            (0..10).map(|_| m.offset_for(&NodeOp::Abs)).collect()
        };
        for (b, d) in base.iter().zip(&doubled) {
            assert!((d - 2.0 * b).abs() < 1e-15);
        }
    }

    #[test]
    fn const_nodes_never_drift() {
        let mut m = ErrorModel::new(3);
        assert_eq!(m.offset_for(&NodeOp::Const(0.5)), 0.0);
    }
}
