//! Array-level behavioural analog model.
//!
//! Device-level MNA simulation of a full PE array is exactly what made the
//! paper's own evaluation painful ("the runtime is about 20 hours for DTW
//! simulations for sequences of length 40"). This module abstracts each
//! analog module (subtractor, absolution, diode min/max, adder, selecting
//! module) into a **first-order lag**: its output relaxes toward the ideal
//! function of its present inputs with an RC time constant derived from the
//! module's net count and the Table 1 parasitic capacitance (20 fF/net),
//! plus a deterministic per-instance offset error (zero drift, diode drop,
//! finite op-amp gain).
//!
//! The [`engine::AnalogEngine`] integrates the resulting ODE network and
//! measures the paper's convergence time (output within 0.1 % of its final
//! value) and relative error — reproducing the Fig. 5 methodology at any
//! sequence length in milliseconds.

pub mod engine;
pub mod error_model;
pub mod graph;

pub use engine::{AnalogEngine, SimulationOutcome};
pub use error_model::ErrorModel;
pub use graph::{AnalogGraph, NodeOp, NodeRef};
