//! The behavioural ODE engine: integrates the first-order-lag network and
//! measures the paper's convergence time and relative error.

use mda_spice::Trace;

use crate::analog::graph::{AnalogGraph, NodeOp, NodeRef};

/// Result of one analog simulation.
#[derive(Debug, Clone)]
pub struct SimulationOutcome {
    /// The settled output voltage, V.
    pub final_voltage: f64,
    /// The paper's convergence time: output within 0.1 % of its final
    /// value, measured from the input edge, s.
    pub convergence_time_s: f64,
    /// The recorded output waveform.
    pub output_trace: Trace,
    /// Number of integration steps taken.
    pub steps: usize,
}

/// Integrates an [`AnalogGraph`].
///
/// Each node follows `dy/dt = (f(inputs) + offset − y)/τ`, discretized with
/// the exact exponential update `y ← target + (y − target)·e^(−dt/τ)`
/// (unconditionally stable; the decay factor is precomputed per node). Fast
/// diode/TG stages (τ below half a step) are treated as combinational and
/// updated in topological order within the step, so a 40-deep diode max
/// chain doesn't accrue an artificial step-per-stage latency.
#[derive(Debug, Clone)]
pub struct AnalogEngine {
    /// Convergence band as a fraction of the final value (paper: 0.001).
    pub convergence_fraction: f64,
    /// Hard cap on integration steps.
    pub max_steps: usize,
}

impl Default for AnalogEngine {
    fn default() -> Self {
        AnalogEngine {
            convergence_fraction: 0.001,
            max_steps: 2_000_000,
        }
    }
}

/// Precompiled per-node stepping plan.
struct StepPlan {
    /// Indices of non-const nodes in topological order.
    active: Vec<usize>,
    /// Per-node decay factor `e^(−dt/τ)`; 0.0 marks a fast/combinational
    /// node that snaps to its target.
    decay: Vec<f64>,
    dt: f64,
}

impl StepPlan {
    fn build(graph: &AnalogGraph, max_steps_hint: usize) -> StepPlan {
        let min_slow_tau = graph
            .nodes
            .iter()
            .map(|nd| nd.tau)
            .filter(|&t| t > 1.0e-10)
            .fold(f64::INFINITY, f64::min);
        let dt = if min_slow_tau.is_finite() {
            min_slow_tau / 8.0
        } else {
            1.0e-10
        };
        let fast_cutoff = dt / 2.0;
        let mut active = Vec::with_capacity(graph.len());
        let mut decay = vec![0.0; graph.len()];
        for (i, node) in graph.nodes.iter().enumerate() {
            if matches!(node.op, NodeOp::Const(_)) {
                continue;
            }
            active.push(i);
            decay[i] = if node.tau <= fast_cutoff {
                0.0
            } else {
                (-dt / node.tau).exp()
            };
        }
        let _ = max_steps_hint;
        StepPlan { active, decay, dt }
    }
}

impl AnalogEngine {
    /// An engine with the paper's 0.1 % convergence criterion.
    pub fn new() -> Self {
        Self::default()
    }

    /// Core stepping loop shared by [`Self::simulate`] and
    /// [`Self::simulate_with_probes`].
    fn run(&self, graph: &AnalogGraph, probes: &[NodeRef]) -> (SimulationOutcome, Vec<Trace>) {
        let n = graph.len();
        let steady = graph.steady_state();
        let out = graph.output().0;
        let plan = StepPlan::build(graph, self.max_steps);
        let vcc = graph.vcc();

        let mut y = vec![0.0; n];
        for (i, node) in graph.nodes.iter().enumerate() {
            if let NodeOp::Const(v) = node.op {
                y[i] = v;
            }
        }

        let mut times = vec![0.0];
        let mut values = vec![y[out]];
        let mut probe_values: Vec<Vec<f64>> = probes.iter().map(|p| vec![y[p.0]]).collect();

        let band: Vec<f64> = steady
            .iter()
            .map(|s| (s.abs() * self.convergence_fraction).max(1.0e-6))
            .collect();

        let mut t = 0.0;
        let mut steps = 0usize;
        let mut scratch: Vec<f64> = Vec::with_capacity(8);
        // Checking the settle condition is as expensive as a step; only do
        // it periodically.
        const SETTLE_CHECK_INTERVAL: usize = 8;
        loop {
            steps += 1;
            t += plan.dt;
            for &i in &plan.active {
                let node = &graph.nodes[i];
                scratch.clear();
                scratch.extend(node.inputs.iter().map(|r| y[r.0]));
                let target =
                    (node.op.evaluate(&scratch, node.weight) + node.offset).clamp(-vcc, vcc);
                let d = plan.decay[i];
                y[i] = if d == 0.0 {
                    target
                } else {
                    target + (y[i] - target) * d
                };
            }
            times.push(t);
            values.push(y[out]);
            for (k, p) in probes.iter().enumerate() {
                probe_values[k].push(y[p.0]);
            }
            if steps.is_multiple_of(SETTLE_CHECK_INTERVAL) || steps >= self.max_steps {
                let all_settled = plan
                    .active
                    .iter()
                    .all(|&i| (y[i] - steady[i]).abs() <= band[i]);
                if all_settled || steps >= self.max_steps {
                    break;
                }
            }
        }

        let trace = Trace::new(times.clone(), values);
        let convergence_time_s = trace
            .convergence_time(self.convergence_fraction)
            .unwrap_or(t);
        let outcome = SimulationOutcome {
            final_voltage: y[out],
            convergence_time_s,
            output_trace: trace,
            steps,
        };
        let probe_traces = probe_values
            .into_iter()
            .map(|vals| Trace::new(times.clone(), vals))
            .collect();
        (outcome, probe_traces)
    }

    /// Runs the simulation from all-zero initial state (inputs step at
    /// t = 0) until every node is inside the convergence band of its steady
    /// state, then reports the output's convergence time.
    pub fn simulate(&self, graph: &AnalogGraph) -> SimulationOutcome {
        self.run(graph, &[]).0
    }

    /// Simulates and additionally records the full waveform of a set of
    /// nodes (used by the early-determination analysis).
    pub fn simulate_with_probes(
        &self,
        graph: &AnalogGraph,
        probes: &[NodeRef],
    ) -> (SimulationOutcome, Vec<Trace>) {
        self.run(graph, probes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analog::error_model::ErrorModel;
    use crate::analog::graph::builders;
    use crate::config::AcceleratorConfig;
    use mda_distance::dtw::Band;
    use mda_distance::{Distance, Dtw, Manhattan};

    fn cfg() -> AcceleratorConfig {
        AcceleratorConfig::paper_defaults()
    }

    fn volts(config: &AcceleratorConfig, xs: &[f64]) -> Vec<f64> {
        xs.iter().map(|&x| config.value_to_voltage(x)).collect()
    }

    fn series(len: usize, phase: f64) -> Vec<f64> {
        (0..len)
            .map(|i| (i as f64 * 0.4 + phase).sin() * 2.0)
            .collect()
    }

    #[test]
    fn simulation_settles_to_steady_state() {
        let config = cfg();
        let p = series(6, 0.0);
        let q = series(6, 0.3);
        let g = builders::dtw(
            &config,
            &volts(&config, &p),
            &volts(&config, &q),
            1.0,
            Band::Full,
            &mut ErrorModel::ideal(),
        );
        let outcome = AnalogEngine::new().simulate(&g);
        let expected = Dtw::new().evaluate(&p, &q).unwrap();
        let got = config.voltage_to_value(outcome.final_voltage);
        assert!(
            (got - expected).abs() < 0.05,
            "settled {got} vs digital {expected}"
        );
        assert!(outcome.convergence_time_s > 0.0);
    }

    #[test]
    fn dtw_convergence_grows_with_length() {
        let config = cfg();
        let engine = AnalogEngine::new();
        let mut last = 0.0;
        for len in [4, 8, 16] {
            let p = series(len, 0.0);
            let q = series(len, 0.5);
            let g = builders::dtw(
                &config,
                &volts(&config, &p),
                &volts(&config, &q),
                1.0,
                Band::Full,
                &mut ErrorModel::ideal(),
            );
            let tc = engine.simulate(&g).convergence_time_s;
            assert!(tc > last, "len {len}: {tc} not > {last}");
            last = tc;
        }
    }

    #[test]
    fn hausdorff_convergence_saturates_with_length() {
        // The paper's Section 4.2 observation: HauD's convergence time is
        // roughly constant once the length exceeds ~10.
        let config = cfg();
        let engine = AnalogEngine::new();
        let tc = |len: usize| {
            let p = series(len, 0.0);
            let q = series(len, 0.5);
            let g = builders::hausdorff(
                &config,
                &volts(&config, &p),
                &volts(&config, &q),
                1.0,
                &mut ErrorModel::ideal(),
            );
            engine.simulate(&g).convergence_time_s
        };
        let t10 = tc(10);
        let t40 = tc(40);
        assert!(
            t40 < t10 * 2.0,
            "HauD convergence should be ~flat: t10 = {t10:.3e}, t40 = {t40:.3e}"
        );
    }

    #[test]
    fn manhattan_convergence_grows_with_length() {
        // Row structure: the adder's summing-node capacitance grows with n.
        let config = cfg();
        let engine = AnalogEngine::new();
        let tc = |len: usize| {
            let p = series(len, 0.0);
            let q = series(len, 0.5);
            let g = builders::manhattan(
                &config,
                &volts(&config, &p),
                &volts(&config, &q),
                &vec![1.0; len],
                &mut ErrorModel::ideal(),
            );
            engine.simulate(&g).convergence_time_s
        };
        let t10 = tc(10);
        let t40 = tc(40);
        assert!(
            t40 > t10 * 1.5,
            "MD convergence should grow: t10 = {t10:.3e}, t40 = {t40:.3e}"
        );
    }

    #[test]
    fn noisy_run_relative_error_is_small() {
        let config = cfg();
        let p = series(8, 0.0);
        let q = series(8, 0.7);
        let g = builders::manhattan(
            &config,
            &volts(&config, &p),
            &volts(&config, &q),
            &[1.0; 8],
            &mut ErrorModel::new(config.noise_seed),
        );
        let outcome = AnalogEngine::new().simulate(&g);
        let expected = Manhattan::new().evaluate(&p, &q).unwrap();
        let got = config.voltage_to_value(outcome.final_voltage);
        let rel = ((got - expected) / expected).abs();
        assert!(rel < 0.05, "relative error {rel}");
    }

    #[test]
    fn output_trace_is_monotone_charging_for_md() {
        // A row-structure output charges monotonically (single lag chain),
        // which is what makes early determination possible.
        let config = cfg();
        let p = [1.0, 2.0, 0.5, 1.5];
        let q = [0.0, 0.0, 0.0, 0.0];
        let g = builders::manhattan(
            &config,
            &volts(&config, &p),
            &volts(&config, &q),
            &[1.0; 4],
            &mut ErrorModel::ideal(),
        );
        let outcome = AnalogEngine::new().simulate(&g);
        let vals = outcome.output_trace.values();
        for w in vals.windows(2) {
            assert!(w[1] >= w[0] - 1e-9, "non-monotone output");
        }
    }

    #[test]
    fn probes_record_waveforms() {
        let config = cfg();
        let p = [1.0, 2.0];
        let q = [0.0, 0.0];
        let g = builders::manhattan(
            &config,
            &volts(&config, &p),
            &volts(&config, &q),
            &[1.0; 2],
            &mut ErrorModel::ideal(),
        );
        let probe = g.output();
        let (outcome, traces) = AnalogEngine::new().simulate_with_probes(&g, &[probe]);
        assert_eq!(traces.len(), 1);
        assert_eq!(traces[0].len(), outcome.output_trace.len());
        assert!((traces[0].last() - outcome.final_voltage).abs() < 1e-12);
    }

    #[test]
    fn simulate_and_probe_runs_agree() {
        let config = cfg();
        let p = series(5, 0.0);
        let q = series(5, 0.6);
        let g = builders::dtw(
            &config,
            &volts(&config, &p),
            &volts(&config, &q),
            1.0,
            Band::Full,
            &mut ErrorModel::new(1),
        );
        let a = AnalogEngine::new().simulate(&g);
        let (b, _) = AnalogEngine::new().simulate_with_probes(&g, &[]);
        assert_eq!(a.final_voltage, b.final_voltage);
        assert_eq!(a.convergence_time_s, b.convergence_time_s);
    }
}
